"""Synthetic code models: static control-flow graphs walked at run time.

A :class:`CodeModel` is the stand-in for a program's (or kernel's) text
segment.  It is a set of basic blocks laid out at consecutive program-counter
values.  Each block carries a statically generated body (a tuple of
instruction categories and dependence flags) and ends in exactly one control
transfer whose behavior (taken bias, target set) was fixed when the model was
built -- just like static code.

Walking the graph therefore produces:

* a PC stream with genuine spatial and temporal locality (hot loop regions,
  cold excursions) that drives the instruction cache and ITLB;
* branch-site streams with stable per-site biases that a real McFarling
  predictor and BTB can learn (or fail to learn);
* instruction-category sequences matching a calibrated mix.

Models may be divided into *segments* -- disjoint block ranges whose control
transfers stay inside the segment.  The kernel model uses one segment per OS
service, which reproduces the paper's locality contrast: SPECInt kernel time
concentrates in the TLB-refill segment (good I-cache locality) while Apache
spreads across many services (poor locality).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from repro.isa.instruction import Instruction
from repro.isa.mix import BASE_LATENCY, InstructionMix
from repro.isa.types import InstrType, Mode

# Terminator encodings (plain ints for speed).
TERM_COND = 0
TERM_UNCOND = 1
TERM_INDIRECT = 2
TERM_CALL = 3
TERM_RETURN = 4

_TERM_ITYPE = {
    TERM_COND: InstrType.COND_BRANCH,
    TERM_UNCOND: InstrType.UNCOND_BRANCH,
    TERM_INDIRECT: InstrType.INDIRECT_JUMP,
    TERM_CALL: InstrType.CALL,
    TERM_RETURN: InstrType.RETURN,
}

#: Bimodal conditional-branch bias extremes.  The mixture weight between them
#: is solved from the mix's target taken rate.
_HI_BIAS = 0.96
_LO_BIAS = 0.06

_MAX_CALL_DEPTH = 16


@dataclass(frozen=True)
class SegmentSpec:
    """One contiguous, control-flow-closed region of a code model."""

    name: str
    n_blocks: int
    hot_blocks: int

    def __post_init__(self) -> None:
        if self.n_blocks < 2:
            raise ValueError(f"segment {self.name!r} needs >= 2 blocks")
        if not 1 <= self.hot_blocks <= self.n_blocks:
            raise ValueError(
                f"segment {self.name!r}: hot_blocks must be in [1, n_blocks]"
            )


@dataclass(frozen=True)
class CodeModelConfig:
    """Build-time parameters of a code model."""

    name: str
    base_pc: int
    mix: InstructionMix
    segments: tuple[SegmentSpec, ...] = (SegmentSpec("main", 256, 32),)
    #: Probability that a cold block's branch leads back toward the hot set.
    return_to_hot: float = 0.6
    #: Probability that a hot block's conditional branch targets the cold
    #: region (rare excursions out of the loop nest).
    cold_excursion: float = 0.04
    #: Probability that an executed indirect jump switches to another of its
    #: static targets (drives BTB target mispredictions).
    indirect_switch: float = 0.2
    #: Per-terminator probability of a random jump within the hot set.
    #: Static random targets can form tiny absorbing orbits (two blocks
    #: whose unconditional branches point at each other); this perturbation
    #: models the data-dependent control flow a real program has and keeps
    #: the walk ergodic over the hot region.
    ergodic_jump: float = 0.03
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("code model needs at least one segment")


@dataclass
class _Segment:
    """Resolved segment: block index range plus hot sub-range."""

    name: str
    start: int
    end: int  # exclusive
    hot_end: int  # exclusive; hot blocks are [start, hot_end)


class _Stratifier:
    """Low-discrepancy weighted assignment via Bresenham credit counters.

    Each call to :meth:`next` returns the item whose accumulated credit is
    highest, then debits one unit -- so every window of N consecutive draws
    contains each item close to ``weight * N`` times.  Initial credits are
    randomly phased so different models interleave items differently.
    """

    def __init__(self, weighted_items, rng: random.Random) -> None:
        items = [(item, w) for item, w in weighted_items if w > 0]
        if not items:
            raise ValueError("stratifier needs at least one positive weight")
        total = sum(w for _, w in items)
        self._items = [item for item, _ in items]
        self._weights = [w / total for _, w in items]
        self._credits = [rng.random() * w for w in self._weights]

    def next(self):
        credits = self._credits
        weights = self._weights
        best = 0
        for i in range(len(credits)):
            credits[i] += weights[i]
            if credits[i] > credits[best]:
                best = i
        credits[best] -= 1.0
        return self._items[best]


class CodeModel:
    """A built synthetic text segment (see module docstring)."""

    def __init__(self, config: CodeModelConfig) -> None:
        self.config = config
        self.name = config.name
        rng = random.Random((config.seed ^ zlib.crc32(config.name.encode())) & 0xFFFFFFFF)
        self._build(rng)

    # -- construction -----------------------------------------------------

    def _build(self, rng: random.Random) -> None:
        cfg = self.config
        mix = cfg.mix
        profile = mix.branches

        self.segments: dict[str, _Segment] = {}
        n_total = sum(s.n_blocks for s in cfg.segments)
        self.n_blocks = n_total

        # Per-block static data.
        self.block_pc: list[int] = [0] * n_total
        self.block_body: list[tuple[tuple[InstrType, bool, bool], ...]] = [()] * n_total
        self.term_type: list[int] = [0] * n_total
        self.taken_prob: list[float] = [0.0] * n_total
        self.target: list[int] = [0] * n_total
        self.indirect_targets: list[tuple[int, ...]] = [()] * n_total
        self.indirect_cursor: list[int] = [0] * n_total  # mutable run-time state
        self.fallthrough: list[int] = [0] * n_total

        # Solve the bimodal mixture weight for the target taken rate.
        want = min(max(profile.cond_taken, _LO_BIAS), _HI_BIAS)
        loop_frac = (want - _LO_BIAS) / (_HI_BIAS - _LO_BIAS)

        # Stratified assignment (Bresenham-style credit counters) for body
        # categories, terminator types, and conditional-branch biases.  A
        # walker visits only a segment's hot prefix, so the *composition of
        # every contiguous block window* must match the target mix; random
        # i.i.d. draws leave small, heavily-executed segments with wildly
        # skewed dynamic mixes (a 15-block TLB-refill handler could come out
        # all-loads or all-taken by chance).
        body_strat = _Stratifier(mix.body_weights(), rng)
        term_strat = _Stratifier(
            [
                (TERM_UNCOND, profile.uncond),
                (TERM_INDIRECT, profile.indirect),
                (TERM_CALL, profile.call),
                (TERM_RETURN, profile.ret),
                (TERM_COND, profile.cond),
            ],
            rng,
        )
        bias_strat = _Stratifier([(True, loop_frac), (False, 1.0 - loop_frac)], rng)

        mean_len = mix.mean_block_len
        dep_prob = mix.dep_prob
        phys_frac = mix.phys_frac

        pc = cfg.base_pc
        start = 0
        for spec in cfg.segments:
            seg = _Segment(spec.name, start, start + spec.n_blocks, start + spec.hot_blocks)
            self.segments[spec.name] = seg
            start = seg.end

        for seg in self.segments.values():
            for b in range(seg.start, seg.end):
                length = max(3, round(rng.gauss(mean_len, mean_len * 0.25)))
                body = []
                for _ in range(length - 1):
                    itype = body_strat.next()
                    dep = rng.random() < dep_prob.get(itype, 0.3)
                    phys = (
                        itype in (InstrType.LOAD, InstrType.STORE, InstrType.SYNC)
                        and rng.random() < phys_frac
                    )
                    body.append((itype, dep, phys))
                self.block_pc[b] = pc
                self.block_body[b] = tuple(body)
                pc += length * 4

                term = term_strat.next()
                self.term_type[b] = term
                self.fallthrough[b] = b + 1 if b + 1 < seg.end else seg.start
                if term == TERM_COND:
                    is_loopy = bias_strat.next()
                    self.taken_prob[b] = (
                        rng.uniform(_HI_BIAS - 0.03, _HI_BIAS + 0.03)
                        if is_loopy
                        else rng.uniform(_LO_BIAS - 0.04, _LO_BIAS + 0.06)
                    )
                    self.taken_prob[b] = min(0.99, max(0.01, self.taken_prob[b]))
                    self.target[b] = self._pick_target(rng, seg, b)
                elif term == TERM_UNCOND:
                    self.target[b] = self._pick_target(rng, seg, b)
                elif term == TERM_INDIRECT:
                    k = max(1, profile.indirect_targets)
                    self.indirect_targets[b] = tuple(
                        self._pick_target(rng, seg, b) for _ in range(k)
                    )
                elif term == TERM_CALL:
                    self.target[b] = self._pick_target(rng, seg, b)
                # TERM_RETURN needs no target: the walker's call stack decides.

        self.text_bytes = pc - cfg.base_pc

    def _pick_target(self, rng: random.Random, seg: _Segment, block: int) -> int:
        """Choose a branch target inside *seg* with hot/cold structure."""
        cfg = self.config
        in_hot = block < seg.hot_end
        hot_n = seg.hot_end - seg.start
        cold_n = seg.end - seg.hot_end
        if in_hot:
            if cold_n and rng.random() < cfg.cold_excursion:
                return rng.randrange(seg.hot_end, seg.end)
            # Uniform target over the hot set: the resulting
            # random walk visits hot blocks near-uniformly, which keeps the
            # dynamic instruction mix close to the static one.
            return rng.randrange(seg.start, seg.hot_end)
        # Cold block: usually head back toward the hot set.
        if hot_n and rng.random() < cfg.return_to_hot:
            return rng.randrange(seg.start, seg.hot_end)
        if cold_n:
            return rng.randrange(seg.hot_end, seg.end)
        return rng.randrange(seg.start, seg.hot_end)

    # -- queries -----------------------------------------------------------

    def entry(self, segment: str = "main") -> int:
        """Entry block index of *segment*."""
        return self.segments[segment].start

    def segment_of(self, block: int) -> str:
        """Name of the segment containing *block*."""
        for seg in self.segments.values():
            if seg.start <= block < seg.end:
                return seg.name
        raise IndexError(block)


class CodeWalker:
    """Per-thread execution cursor over a :class:`CodeModel`.

    Multiple walkers may share one model (Apache's 64 server processes share
    the Apache text; every kernel thread shares the kernel text), which is
    what creates shared-text instruction-cache behavior.  Each walker owns
    its position, call stack, and data-address generator.
    """

    __slots__ = (
        "model",
        "rng",
        "data",
        "mode",
        "service",
        "thread_id",
        "asn",
        "block",
        "slot",
        "call_stack",
        "_body",
        "_seg",
    )

    def __init__(
        self,
        model: CodeModel,
        rng: random.Random,
        data,
        mode: Mode,
        service: str,
        thread_id: int,
        asn: int,
        segment: str | None = None,
    ) -> None:
        self.model = model
        self.rng = rng
        self.data = data
        self.mode = mode
        self.service = service
        self.thread_id = thread_id
        self.asn = asn
        if segment is None:
            segment = next(iter(model.segments))
        seg = model.segments[segment]
        self._seg = seg
        self.block = seg.start
        self.slot = 0
        self.call_stack: list[int] = []
        self._body = model.block_body[self.block]

    def jump_to(self, segment: str) -> None:
        """Reset the walker to the entry of *segment* (service dispatch)."""
        seg = self.model.segments[segment]
        self._seg = seg
        self.block = seg.start
        self.slot = 0
        self.call_stack.clear()
        self._body = self.model.block_body[self.block]

    def next_instruction(self) -> Instruction:
        """Emit the next dynamic instruction of this thread's walk."""
        m = self.model
        if self.slot < len(self._body):
            itype, dep, phys = self._body[self.slot]
            pc = m.block_pc[self.block] + self.slot * 4
            self.slot += 1
            addr = None
            if itype is InstrType.LOAD or itype is InstrType.STORE or itype is InstrType.SYNC:
                addr, phys = self.data.next(itype is not InstrType.LOAD, phys)
            return Instruction(
                itype,
                self.mode,
                self.service,
                pc,
                addr=addr,
                phys=phys,
                dep=dep,
                latency=BASE_LATENCY[itype],
                thread_id=self.thread_id,
                asn=self.asn,
            )
        return self._terminator()

    def _terminator(self) -> Instruction:
        m = self.model
        b = self.block
        pc = m.block_pc[b] + self.slot * 4
        term = m.term_type[b]
        taken = True
        if term == TERM_COND:
            taken = self.rng.random() < m.taken_prob[b]
            nxt = m.target[b] if taken else m.fallthrough[b]
        elif term == TERM_UNCOND:
            nxt = m.target[b]
        elif term == TERM_INDIRECT:
            targets = m.indirect_targets[b]
            if len(targets) > 1 and self.rng.random() < m.config.indirect_switch:
                m.indirect_cursor[b] = (m.indirect_cursor[b] + 1) % len(targets)
            nxt = targets[m.indirect_cursor[b]]
        elif term == TERM_CALL:
            nxt = m.target[b]
            if len(self.call_stack) < _MAX_CALL_DEPTH:
                self.call_stack.append(m.fallthrough[b])
        else:  # TERM_RETURN
            if self.call_stack:
                nxt = self.call_stack.pop()
            else:
                nxt = m.fallthrough[b]
        if self.rng.random() < m.config.ergodic_jump:
            seg = self._seg
            nxt = self.rng.randrange(seg.start, seg.hot_end)
            if term == TERM_COND:
                taken = True
        itype = _TERM_ITYPE[term]
        instr = Instruction(
            itype,
            self.mode,
            self.service,
            pc,
            taken=taken,
            target=m.block_pc[nxt],
            dep=self.rng.random() < self.model.config.mix.dep_prob.get(itype, 0.3),
            latency=1,
            thread_id=self.thread_id,
            asn=self.asn,
        )
        self.block = nxt
        self.slot = 0
        self._body = m.block_body[nxt]
        return instr
