"""Instruction and execution-mode taxonomies.

The categories follow the breakdown the paper uses in its instruction-mix
tables (Tables 2 and 5): loads, stores, conditional branches, unconditional
branches, indirect jumps, PAL call/return, remaining integer, and floating
point.  ``SYNC`` models the Alpha load-locked / store-conditional pairs that
kernel spin locks are built from (the paper's SMT provisions two dedicated
synchronization units).
"""

from __future__ import annotations

import enum


class InstrType(enum.IntEnum):
    """Dynamic instruction categories."""

    INT_ALU = 0
    FP_ALU = 1
    LOAD = 2
    STORE = 3
    COND_BRANCH = 4
    UNCOND_BRANCH = 5
    INDIRECT_JUMP = 6
    CALL = 7          # subroutine call (unconditional, pushes return stack)
    RETURN = 8        # subroutine return (indirect, pops return stack)
    PAL_CALL = 9      # trap into PAL code (callsys, TLB refill entry, ...)
    PAL_RETURN = 10   # return from PAL code to the interrupted stream
    SYNC = 11         # load-locked / store-conditional synchronization op


class Mode(enum.IntEnum):
    """Processor execution mode of an instruction.

    PAL code is the thin software layer below the operating system proper on
    Alpha; the paper reports it separately from kernel time, so we track it as
    its own mode.
    """

    USER = 0
    KERNEL = 1
    PAL = 2


#: Instruction types that transfer control.
BRANCH_TYPES = frozenset(
    {
        InstrType.COND_BRANCH,
        InstrType.UNCOND_BRANCH,
        InstrType.INDIRECT_JUMP,
        InstrType.CALL,
        InstrType.RETURN,
        InstrType.PAL_CALL,
        InstrType.PAL_RETURN,
    }
)

#: Instruction types that reference data memory.
MEMORY_TYPES = frozenset({InstrType.LOAD, InstrType.STORE, InstrType.SYNC})


def is_branch(itype: InstrType) -> bool:
    """Return True when *itype* transfers control."""
    return itype in BRANCH_TYPES


def is_memory(itype: InstrType) -> bool:
    """Return True when *itype* references data memory."""
    return itype in MEMORY_TYPES
