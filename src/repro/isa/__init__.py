"""Synthetic Alpha-like instruction model.

The simulator does not execute real Alpha binaries.  Instead, workloads and
operating-system services are *stochastic programs*: synthetic control-flow
graphs walked at run time, emitting instructions whose category mix, branch
behavior, and memory reference streams are calibrated to the characteristics
published in the paper (its Tables 2 and 5).  Cache, TLB, and branch-predictor
behavior then *emerges* from the generated program counter and data-address
streams.
"""

from repro.isa.types import InstrType, Mode, BRANCH_TYPES, MEMORY_TYPES
from repro.isa.instruction import Instruction
from repro.isa.mix import InstructionMix, BranchProfile
from repro.isa.code import CodeModel, CodeModelConfig, CodeWalker
from repro.isa.data import DataModel, Region

__all__ = [
    "InstrType",
    "Mode",
    "BRANCH_TYPES",
    "MEMORY_TYPES",
    "Instruction",
    "InstructionMix",
    "BranchProfile",
    "CodeModel",
    "CodeModelConfig",
    "CodeWalker",
    "DataModel",
    "Region",
]
