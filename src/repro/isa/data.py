"""Synthetic data-address generators.

A :class:`DataModel` produces the effective-address stream of one software
thread.  It draws from a set of :class:`Region` descriptors -- named address
ranges with a working-set structure (hot pages, sequential runs, cold
excursions).  Regions may be shared between threads (e.g. the kernel file
cache or socket buffers), which is the mechanism behind both the destructive
interthread cache conflicts and the constructive interthread prefetching the
paper measures.

On top of the stochastic region mix, a data model supports explicit *copy
bursts*: the OS service models install a (source, destination, length)
triple before data-movement phases such as ``read``/``write`` buffer copies
and netisr packet processing, and subsequent loads/stores walk those extents
sequentially.  This puts genuinely shared, genuinely sequential traffic
through the cache hierarchy.
"""

from __future__ import annotations

import functools
import random
import zlib
from dataclasses import dataclass

#: Alpha page size.
PAGE_SIZE = 8192
PAGE_SHIFT = 13
#: Access granularity (one quadword).
WORD = 8


@dataclass(frozen=True)
class Region:
    """A named address range with working-set parameters.

    Parameters
    ----------
    name:
        Identifier used in diagnostics.
    base:
        Starting virtual (or physical, when ``phys``) address; page aligned.
    n_pages:
        Total footprint in pages.
    hot_pages:
        Size of the hot working set, in pages (``<= n_pages``).  Hot jumps
        land on a fixed set of *hot lines* spread over these pages, so the
        region exerts page-granular TLB pressure but line-granular cache
        pressure -- like real programs, whose hot data is a few hundred
        addresses scattered over many pages.
    hot_lines:
        Number of distinct hot cache lines (default ``4 * hot_pages``).
    weight:
        Relative probability that an un-bursted access selects this region.
    p_seq:
        Probability of continuing the current sequential run.
    p_hot:
        Probability (given not sequential) of jumping within the hot set;
        the remainder goes to a cold page anywhere in the region.
    phys:
        True for physical-address regions that bypass the DTLB.
    shared:
        Documentation flag: the region is referenced by multiple threads.
    """

    name: str
    base: int
    n_pages: int
    hot_pages: int
    hot_lines: int | None = None
    weight: float = 1.0
    p_seq: float = 0.55
    p_hot: float = 0.92
    phys: bool = False
    shared: bool = False

    def __post_init__(self) -> None:
        if self.base % PAGE_SIZE:
            raise ValueError(f"region {self.name!r}: base not page aligned")
        if self.n_pages < 1:
            raise ValueError(f"region {self.name!r}: need at least one page")
        if not 1 <= self.hot_pages <= self.n_pages:
            raise ValueError(f"region {self.name!r}: hot_pages out of range")
        if self.weight < 0:
            raise ValueError(f"region {self.name!r}: negative weight")

    @property
    def size(self) -> int:
        """Region size in bytes."""
        return self.n_pages * PAGE_SIZE

    @property
    def limit(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        """True when *addr* falls inside this region."""
        return self.base <= addr < self.limit

    @functools.cached_property
    def hot_addresses(self) -> tuple[int, ...]:
        """The fixed hot-line address set (one word per hot line).

        Derived deterministically from the region's name and geometry, so
        every thread sharing a region descriptor shares the same hot set --
        the substrate of constructive interthread prefetching.
        """
        n_lines = self.hot_lines if self.hot_lines is not None else 4 * self.hot_pages
        n_lines = max(1, n_lines)
        seed = zlib.crc32(self.name.encode()) ^ self.base ^ (self.hot_pages << 8) ^ n_lines
        rng = random.Random(seed & 0xFFFFFFFF)
        addresses = []
        for i in range(n_lines):
            page = i % self.hot_pages
            line_offset = rng.randrange(0, PAGE_SIZE, 64)
            addresses.append(self.base + page * PAGE_SIZE + line_offset
                             + rng.randrange(0, 64, WORD))
        return tuple(addresses)


class DataModel:
    """Per-thread effective-address generator over a set of regions."""

    __slots__ = (
        "rng",
        "_virt",
        "_phys",
        "_virt_weights",
        "_phys_weights",
        "_cursor",
        "_copy_src",
        "_copy_dst",
        "_copy_src_left",
        "_copy_dst_left",
        "_copy_src_phys",
        "_copy_dst_phys",
    )

    def __init__(self, regions: list[Region], rng: random.Random) -> None:
        if not regions:
            raise ValueError("data model needs at least one region")
        self.rng = rng
        self._virt = [r for r in regions if not r.phys]
        self._phys = [r for r in regions if r.phys]
        self._virt_weights = [r.weight for r in self._virt]
        self._phys_weights = [r.weight for r in self._phys]
        # Per-region sequential cursor, keyed by region identity.
        self._cursor: dict[str, int] = {r.name: r.base for r in regions}
        self._copy_src = 0
        self._copy_dst = 0
        self._copy_src_left = 0
        self._copy_dst_left = 0
        self._copy_src_phys = False
        self._copy_dst_phys = False

    # -- copy bursts -------------------------------------------------------

    def set_copy(
        self,
        src: int,
        dst: int,
        nbytes: int,
        src_phys: bool = False,
        dst_phys: bool = False,
    ) -> None:
        """Install a sequential copy: loads walk *src*, stores walk *dst*.

        Any previously active burst is replaced.  The burst drains as the
        thread's memory instructions execute; either side may outlive the
        other if the instruction stream is load- or store-heavy.
        """
        if nbytes <= 0:
            raise ValueError("copy burst must move at least one byte")
        self._copy_src = src
        self._copy_dst = dst
        self._copy_src_left = nbytes
        self._copy_dst_left = nbytes
        self._copy_src_phys = src_phys
        self._copy_dst_phys = dst_phys

    def set_scan(self, base: int, nbytes: int, store: bool = False, phys: bool = False) -> None:
        """Install a one-sided sequential walk (e.g. checksum or zeroing)."""
        if nbytes <= 0:
            raise ValueError("scan burst must touch at least one byte")
        if store:
            self._copy_dst = base
            self._copy_dst_left = nbytes
            self._copy_dst_phys = phys
        else:
            self._copy_src = base
            self._copy_src_left = nbytes
            self._copy_src_phys = phys

    @property
    def burst_active(self) -> bool:
        """True while a copy/scan burst still has bytes to move."""
        return self._copy_src_left > 0 or self._copy_dst_left > 0

    # -- address generation --------------------------------------------------

    def next(self, is_store: bool, site_phys: bool) -> tuple[int, bool]:
        """Produce the next effective address and its actual phys-ness.

        ``site_phys`` is the static instruction-site request for a physical
        (DTLB-bypassing) address; an active copy burst overrides it with the
        burst's own addressing mode.  The returned address is word aligned.
        """
        if is_store and self._copy_dst_left > 0:
            addr = self._copy_dst
            self._copy_dst += WORD
            self._copy_dst_left -= WORD
            return addr, self._copy_dst_phys
        if not is_store and self._copy_src_left > 0:
            addr = self._copy_src
            self._copy_src += WORD
            self._copy_src_left -= WORD
            return addr, self._copy_src_phys
        if (site_phys or not self._virt) and self._phys:
            region = self._pick(self._phys, self._phys_weights)
        else:
            region = self._pick(self._virt, self._virt_weights)
        return self._region_next(region), region.phys

    def next_address(self, is_store: bool, phys: bool) -> int:
        """Address-only convenience wrapper around :meth:`next`."""
        addr, _ = self.next(is_store, phys)
        return addr

    def _pick(self, regions: list[Region], weights: list[float]) -> Region:
        if len(regions) == 1:
            return regions[0]
        return self.rng.choices(regions, weights)[0]

    def _region_next(self, region: Region) -> int:
        rng = self.rng
        cursor = self._cursor[region.name]
        r = rng.random()
        if r < region.p_seq:
            addr = cursor + WORD
            if addr >= region.limit:
                addr = region.base
            # Keep sequential runs within a page: at a page boundary, wrap
            # back to the start of the page just walked half the time.
            if (
                (addr & (PAGE_SIZE - 1)) == 0
                and addr - PAGE_SIZE >= region.base
                and rng.random() < 0.5
            ):
                addr -= PAGE_SIZE
        elif r < region.p_seq + (1.0 - region.p_seq) * region.p_hot:
            # Two-tier hot distribution: most hot references go to a small
            # "core" (the top quarter of the hot lines), the rest anywhere
            # in the hot set.  Real working sets are strongly skewed; a
            # uniform hot set would thrash the cache far more than real
            # programs do.
            hot = region.hot_addresses
            if rng.random() < 0.75:
                addr = hot[rng.randrange(max(1, len(hot) // 4))]
            else:
                addr = hot[rng.randrange(len(hot))]
        else:
            page = rng.randrange(region.n_pages)
            addr = region.base + page * PAGE_SIZE + rng.randrange(0, PAGE_SIZE, WORD)
        self._cursor[region.name] = addr
        return addr
