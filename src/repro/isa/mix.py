"""Instruction-mix descriptors.

A mix describes the dynamic instruction-category distribution of a program or
kernel service, in the same shape as the paper's Tables 2 and 5: fractions of
loads, stores, branches (with a subtype breakdown and a conditional-taken
rate), floating point, synchronization, and remaining integer operations.

Code models consume a mix in two pieces:

* the *branch fraction* fixes the mean basic-block length (each synthetic
  block ends in exactly one control transfer), and
* the remaining categories, renormalized, populate block bodies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.types import InstrType

#: Base functional-unit latencies in cycles, by category.  Memory latency is
#: determined by the cache hierarchy; the value here is the address-generation
#: cost added on top of the cache access.
BASE_LATENCY: dict[InstrType, int] = {
    InstrType.INT_ALU: 1,
    InstrType.FP_ALU: 4,
    InstrType.LOAD: 1,
    InstrType.STORE: 1,
    InstrType.COND_BRANCH: 1,
    InstrType.UNCOND_BRANCH: 1,
    InstrType.INDIRECT_JUMP: 1,
    InstrType.CALL: 1,
    InstrType.RETURN: 1,
    InstrType.PAL_CALL: 1,
    InstrType.PAL_RETURN: 1,
    InstrType.SYNC: 2,
}

#: Default probability that an instruction of the given category consumes the
#: result of the immediately preceding instruction in its thread.  These
#: values set the dependence-chain density that bounds single-thread ILP.
DEFAULT_DEP_PROB: dict[InstrType, float] = {
    InstrType.INT_ALU: 0.42,
    InstrType.FP_ALU: 0.55,
    InstrType.LOAD: 0.30,
    InstrType.STORE: 0.55,
    InstrType.COND_BRANCH: 0.60,
    InstrType.UNCOND_BRANCH: 0.05,
    InstrType.INDIRECT_JUMP: 0.45,
    InstrType.CALL: 0.05,
    InstrType.RETURN: 0.05,
    InstrType.PAL_CALL: 0.05,
    InstrType.PAL_RETURN: 0.05,
    InstrType.SYNC: 0.60,
}


@dataclass(frozen=True)
class BranchProfile:
    """Distribution of control-transfer subtypes and behavior.

    Fractions are of *all branches* and should sum to at most 1.0; the
    remainder is assigned to conditional branches.

    ``cond_taken`` is the target taken rate for conditional branches.
    ``loopiness`` controls how strongly conditional-branch biases cluster at
    the extremes: loop-dominated user code has strongly bimodal biases (easy
    to predict), while kernel "diamond" error-check branches cluster at a low
    taken rate (also easy to predict via fall-through, which matches the
    paper's observation that the kernel predicts *better* than SPECInt
    despite lacking loops).

    ``indirect_targets`` is the number of distinct targets an indirect-jump
    site cycles through; >1 produces the BTB target mispredictions the paper
    attributes to kernel indirect jumps.
    """

    uncond: float = 0.19
    indirect: float = 0.10
    call: float = 0.025
    ret: float = 0.025
    cond_taken: float = 0.60
    loopiness: float = 0.75
    indirect_targets: int = 2

    @property
    def cond(self) -> float:
        """Fraction of branches that are conditional."""
        return max(0.0, 1.0 - self.uncond - self.indirect - self.call - self.ret)


@dataclass(frozen=True)
class InstructionMix:
    """Dynamic instruction-category fractions for one instruction source.

    ``load`` + ``store`` + ``branch`` + ``fp`` + ``sync`` must be <= 1.0;
    the remainder is integer ALU work ("remaining integer" in the paper's
    tables).
    """

    load: float = 0.20
    store: float = 0.10
    branch: float = 0.15
    fp: float = 0.02
    sync: float = 0.0
    branches: BranchProfile = field(default_factory=BranchProfile)
    #: Fraction of loads/stores that address physical memory directly and
    #: bypass the DTLB (kernel code only; user code never does this).
    phys_frac: float = 0.0
    dep_prob: dict[InstrType, float] = field(default_factory=lambda: dict(DEFAULT_DEP_PROB))

    def __post_init__(self) -> None:
        total = self.load + self.store + self.branch + self.fp + self.sync
        if total > 1.0 + 1e-9:
            raise ValueError(f"instruction mix fractions sum to {total:.3f} > 1")
        for name in ("load", "store", "branch", "fp", "sync", "phys_frac"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"negative mix fraction {name}={value}")

    @property
    def int_alu(self) -> float:
        """Remaining-integer fraction."""
        return 1.0 - self.load - self.store - self.branch - self.fp - self.sync

    @property
    def mean_block_len(self) -> float:
        """Mean basic-block length implied by the branch fraction."""
        if self.branch <= 0:
            raise ValueError("mix with zero branches has unbounded blocks")
        return 1.0 / self.branch

    def body_weights(self) -> list[tuple[InstrType, float]]:
        """Category weights for non-terminator block slots, normalized."""
        non_branch = 1.0 - self.branch
        if non_branch <= 0:
            return [(InstrType.INT_ALU, 1.0)]
        pairs = [
            (InstrType.LOAD, self.load / non_branch),
            (InstrType.STORE, self.store / non_branch),
            (InstrType.FP_ALU, self.fp / non_branch),
            (InstrType.SYNC, self.sync / non_branch),
            (InstrType.INT_ALU, self.int_alu / non_branch),
        ]
        return [(t, w) for t, w in pairs if w > 0]
