"""The dynamic instruction record that flows through the pipeline.

An :class:`Instruction` is produced by a workload / OS instruction source and
carries both its *program* properties (category, PC, data address, actual
branch outcome) and its *pipeline* state (fetch cycle, readiness, completion,
squash flag).  Keeping pipeline state on the instruction object avoids a
second per-instruction allocation in the simulator's hot loop.
"""

from __future__ import annotations

from repro.isa.types import InstrType, Mode

# Pipeline state encodings (kept as plain ints for speed).
ST_FETCHED = 0
ST_QUEUED = 1
ST_ISSUED = 2
ST_COMPLETED = 3
ST_RETIRED = 4
ST_SQUASHED = 5


class Instruction:
    """One dynamic instruction.

    Parameters
    ----------
    itype:
        Instruction category (:class:`~repro.isa.types.InstrType`).
    mode:
        Execution mode (user / kernel / PAL).
    service:
        Attribution label used by the measurement layer, e.g. ``"user"``,
        ``"syscall:read"``, ``"pal:dtlb_miss"``, ``"netisr"``, ``"idle"``.
    pc:
        Virtual program counter.
    addr:
        Effective data address for memory operations, else ``None``.
    phys:
        True when a kernel memory operation specifies a physical address
        directly and therefore bypasses the DTLB (the paper reports 35-68%
        of kernel memory operations do this).
    taken / target:
        Actual outcome of a control transfer.
    dep:
        True when this instruction consumes the result of the immediately
        preceding instruction in the same software thread.  The probabilistic
        dependence chain is what limits single-thread ILP.
    latency:
        Base functional-unit latency in cycles (memory latency is added by
        the cache hierarchy at issue time).
    """

    __slots__ = (
        "itype",
        "mode",
        "service",
        "pc",
        "addr",
        "phys",
        "taken",
        "target",
        "dep",
        "latency",
        "thread_id",
        "asn",
        # pipeline state
        "state",
        "fetch_cycle",
        "completion",
        "producer",
        "predicted_taken",
        "predicted_target",
        "seq",
        "tlb_done",
        "ctx",
    )

    def __init__(
        self,
        itype: InstrType,
        mode: Mode,
        service: str,
        pc: int,
        addr: int | None = None,
        phys: bool = False,
        taken: bool = False,
        target: int = 0,
        dep: bool = False,
        latency: int = 1,
        thread_id: int = 0,
        asn: int = 0,
    ) -> None:
        self.itype = itype
        self.mode = mode
        self.service = service
        self.pc = pc
        self.addr = addr
        self.phys = phys
        self.taken = taken
        self.target = target
        self.dep = dep
        self.latency = latency
        self.thread_id = thread_id
        self.asn = asn
        # Pipeline bookkeeping, filled in by the core.
        self.state = ST_FETCHED
        self.fetch_cycle = -1
        self.completion = -1
        self.producer: Instruction | None = None
        self.predicted_taken = False
        self.predicted_target = 0
        self.seq = -1
        # True once a DTLB refill has been performed for this instruction,
        # so re-delivery after the handler does not re-probe the DTLB.
        self.tlb_done = False
        # Hardware context that fetched the instruction.
        self.ctx = -1

    @property
    def is_branch(self) -> bool:
        """True when this instruction transfers control."""
        return self.itype in _BRANCHES

    @property
    def is_memory(self) -> bool:
        """True when this instruction references data memory."""
        return self.itype in _MEMORY

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [
            f"{self.itype.name}",
            f"mode={self.mode.name}",
            f"svc={self.service}",
            f"pc={self.pc:#x}",
        ]
        if self.addr is not None:
            parts.append(f"addr={self.addr:#x}{'P' if self.phys else ''}")
        if self.is_branch:
            parts.append(f"taken={self.taken} tgt={self.target:#x}")
        return f"<Instr {' '.join(parts)}>"


# Local frozensets duplicated from repro.isa.types for attribute-free speed
# in the properties above (set lookup on a module-level constant).
_BRANCHES = frozenset(
    {
        InstrType.COND_BRANCH,
        InstrType.UNCOND_BRANCH,
        InstrType.INDIRECT_JUMP,
        InstrType.CALL,
        InstrType.RETURN,
        InstrType.PAL_CALL,
        InstrType.PAL_RETURN,
    }
)
_MEMORY = frozenset({InstrType.LOAD, InstrType.STORE, InstrType.SYNC})
