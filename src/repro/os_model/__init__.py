"""MiniDUX: the synthetic Digital-Unix-4.0d stand-in.

The paper runs a real, SMP-aware operating system (modified for SMT) under
full-system simulation.  MiniDUX reproduces every OS code path the paper
measures as an instruction-stream generator with its own kernel-text segment
and kernel-data footprint:

* PAL code (TLB refill entry, callsys, interrupt entry, return-from-trap);
* the system-call layer (preamble/dispatch plus a catalog of services with
  per-call cost and data-movement models);
* kernel memory management (TLB refill, page allocation, mmap region ops);
* an SMP-style scheduler with per-context idle threads, quantum expiry,
  run-queue spinlock, and ASN management over the shared TLB;
* interrupt handling and the *netisr* protocol-stack threads.

Time spent in each path is an emergent product of the simulated CPU running
these streams -- not a transcribed constant.
"""

from repro.os_model.address_space import AddressSpace, KernelLayout, user_base
from repro.os_model.thread import Frame, SoftwareThread, ThreadState
from repro.os_model.vm import VMSystem
from repro.os_model.syscalls import SYSCALL_CATALOG, SyscallSpec
from repro.os_model.kernel import MiniDUX, OSMode

__all__ = [
    "AddressSpace",
    "KernelLayout",
    "user_base",
    "Frame",
    "SoftwareThread",
    "ThreadState",
    "VMSystem",
    "SYSCALL_CATALOG",
    "SyscallSpec",
    "MiniDUX",
    "OSMode",
]
