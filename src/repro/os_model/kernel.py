"""MiniDUX: the synthetic kernel (see package docstring).

This module owns the kernel and PAL text models, the shared kernel data
regions, thread creation, and the dispatcher that turns workload directives,
TLB misses, and interrupts into execution frames.  It is the single point
where every OS code path the paper measures is spliced into the instruction
streams.
"""

from __future__ import annotations

import enum
import random
from collections import deque
from typing import Callable

from repro.isa.code import CodeModel, CodeModelConfig, CodeWalker, SegmentSpec
from repro.isa.data import PAGE_SIZE, DataModel, Region
from repro.isa.mix import BranchProfile, InstructionMix
from repro.isa.types import InstrType, Mode
from repro.memory.classify import mode_kind
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.tlb import KERNEL_ASN
from repro.os_model.address_space import AddressSpace, KernelLayout, is_kernel_address
from repro.os_model.interrupts import InterruptController, InterruptRequest
from repro.os_model.locks import LockTable
from repro.os_model.scheduler import Scheduler
from repro.os_model.syscalls import SYSCALL_CATALOG, SyscallSpec
from repro.os_model.thread import Frame, SoftwareThread, ThreadState
from repro.os_model.vm import VMSystem

#: Kernel-text base PC (inside the kernel virtual range).
KERNEL_TEXT_BASE = 0xFFFF_F000_0000
#: PAL code lives in physical memory and bypasses both the ITLB and DTLB.
PAL_TEXT_BASE = 0x8_0000_F000_0000
COPY_TEXT_BASE = 0xFFFF_F800_0000

#: Kernel text layout: one control-flow-closed segment per OS service, so
#: that service diversity translates directly into I-cache footprint -- the
#: paper's SPECInt-vs-Apache kernel-locality contrast.
KERNEL_SEGMENTS = (
    SegmentSpec("preamble", 60, 14),
    SegmentSpec("tlb_refill", 40, 14),
    SegmentSpec("vm_alloc", 220, 30),
    SegmentSpec("sched", 200, 26),
    SegmentSpec("idle", 24, 8),
    SegmentSpec("spinlock", 8, 4),
    SegmentSpec("intr", 140, 20),
    SegmentSpec("netisr", 320, 42),
    SegmentSpec("nettx", 220, 30),
    SegmentSpec("driver", 260, 30),
    SegmentSpec("sys_rw", 300, 38),
    SegmentSpec("sys_stat", 220, 28),
    SegmentSpec("sys_open", 280, 34),
    SegmentSpec("sys_socket", 340, 42),
    SegmentSpec("sys_sockctl", 240, 30),
    SegmentSpec("sys_mmap", 180, 26),
    SegmentSpec("sys_fork", 400, 40),
    SegmentSpec("sys_fcntl", 60, 12),
    SegmentSpec("sys_misc", 80, 14),
)

PAL_SEGMENTS = (
    SegmentSpec("callsys", 12, 5),
    SegmentSpec("rti", 10, 4),
    SegmentSpec("dtlb", 30, 12),
    SegmentSpec("itlb", 22, 8),
    SegmentSpec("intr", 16, 6),
    SegmentSpec("swpctx", 14, 6),
    SegmentSpec("setipl", 8, 4),
)

#: Kernel instruction mix, calibrated to the kernel columns of the paper's
#: Tables 2 and 5 (no floating point, physical addressing on roughly half of
#: memory operations, markedly lower conditional-taken rate than user code).
KERNEL_MIX = InstructionMix(
    load=0.17,
    store=0.12,
    branch=0.16,
    fp=0.0,
    sync=0.01,
    phys_frac=0.45,
    branches=BranchProfile(
        uncond=0.15, indirect=0.09, call=0.04, ret=0.04,
        cond_taken=0.40, indirect_targets=3,
    ),
)

#: Copy-loop mix (uiomove/bcopy): memory-dominated, tight loops.
COPY_MIX = InstructionMix(
    load=0.30,
    store=0.30,
    branch=0.13,
    fp=0.0,
    branches=BranchProfile(uncond=0.05, indirect=0.0, call=0.0, ret=0.0, cond_taken=0.85),
)

#: PAL-code mix: short, physically-addressed handler sequences.
PAL_MIX = InstructionMix(
    load=0.20,
    store=0.12,
    branch=0.10,
    fp=0.0,
    phys_frac=1.0,
    branches=BranchProfile(uncond=0.30, indirect=0.05, call=0.0, ret=0.0, cond_taken=0.35),
)


class OSMode(enum.Enum):
    """Operating-system simulation mode.

    ``FULL`` executes every kernel and PAL instruction.  ``APP_ONLY``
    reproduces the paper's application-only simulator: system calls and
    traps complete instantly with no effect on the hardware state (their
    *semantic* effects -- blocking, wakeups, network delivery -- still
    happen, so workloads make progress).
    """

    FULL = "full"
    APP_ONLY = "app-only"


class MiniDUX:
    """The synthetic kernel instance driving one simulated machine."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        n_contexts: int,
        rng: random.Random,
        mode: OSMode = OSMode.FULL,
        quantum: int = 20_000,
        timer_interval: int = 100_000,
        seed: int = 0,
        tlb_flush_on_switch: bool = False,
        spin_policy: str = "spin",
        registry=None,
    ) -> None:
        self.hierarchy = hierarchy
        self.n_contexts = n_contexts
        self.rng = rng
        self.mode = mode
        self.timer_interval = timer_interval
        #: Ablation: flush the whole TLB on context switch instead of
        #: relying on ASN tags (what a TLB without address-space numbers
        #: would force).
        self.tlb_flush_on_switch = tlb_flush_on_switch
        #: Lock-wait policy.  "spin" is Digital Unix's SMP behavior (and the
        #: paper's measured configuration); "yield" deschedules the waiter
        #: until the holder releases -- the SMT-aware OS optimization the
        #: paper proposes as future work, since spinning burns issue slots
        #: other contexts could use.
        if spin_policy not in ("spin", "yield"):
            raise ValueError(f"unknown spin policy {spin_policy!r}")
        self.spin_policy = spin_policy
        self.layout = KernelLayout()

        self.kernel_text = CodeModel(
            CodeModelConfig("kernel", KERNEL_TEXT_BASE, KERNEL_MIX,
                            segments=KERNEL_SEGMENTS, indirect_switch=0.55, seed=seed)
        )
        self.copy_text = CodeModel(
            CodeModelConfig("kcopy", COPY_TEXT_BASE, COPY_MIX,
                            segments=(SegmentSpec("copy", 40, 10),), seed=seed)
        )
        self.pal_text = CodeModel(
            CodeModelConfig("pal", PAL_TEXT_BASE, PAL_MIX,
                            segments=PAL_SEGMENTS, seed=seed)
        )

        self._build_kernel_regions()
        self.kernel_as = AddressSpace(pid=-1, name="kernel", asn=KERNEL_ASN)
        self.vm = VMSystem(random.Random(rng.randrange(1 << 30)))
        self.locks = LockTable()
        self.scheduler = Scheduler(n_contexts, quantum, random.Random(rng.randrange(1 << 30)))
        self.scheduler.flush_asn = self._flush_asn
        self.scheduler.on_switch = self._on_switch
        self.interrupts = InterruptController(n_contexts)
        self.wait_queues: dict[str, deque[SoftwareThread]] = {}
        self.devices: list = []
        self.threads: list[SoftwareThread] = []
        #: Every software thread (workload, daemon, idle, CPU pseudo-thread)
        #: by tid -- the attribution layer resolves a running tid to its
        #: open span stack through this map.
        self.threads_by_tid: dict[int, SoftwareThread] = {}
        self._next_tid = 0
        self.marks: dict[tuple[str, str], int] = {}
        self.thread_phase: dict[str, str] = {}
        self.now = 0

        # Counters surfaced by the analysis layer.
        self.syscall_counts: dict[str, int] = {}
        #: Per-syscall wall-clock latency sums: name -> [invocations
        #: completed, total cycles dispatch->completion].  Timestamps come
        #: from the coarse OS clock (updated every tick), so individual
        #: samples carry a few cycles of quantization.
        self.syscall_latency: dict[str, list[int]] = {}
        # The kernel's event counters live in the probe registry (one
        # queryable tree, ``os.*``); the CounterGroup keeps the historical
        # dict idiom (``counters["x"] += 1``) working for call sites and
        # analysis code.  Without a registry they fall back to private
        # counters, so direct MiniDUX construction still counts.
        from repro.obs.registry import CounterGroup, NULL_REGISTRY

        obs = registry if registry is not None else NULL_REGISTRY
        self.obs = obs
        self.counters = CounterGroup(obs, "os", (
            "dtlb_miss_events",
            "itlb_miss_events",
            "icache_flushes",
            "spin_instructions",
            "thread_spin_instructions",
        ))
        # Direct counter handles for the spin loop (bumped per spin
        # instruction -- the mapping facade is too slow there).
        self.spin_counter = self.counters.raw("spin_instructions")
        self.thread_spin_counter = self.counters.raw("thread_spin_instructions")
        #: Wall-clock (cycle) latency distribution over completed syscalls.
        self.syscall_hist = obs.histogram("os.syscall_latency_cycles")
        obs.derive_map("os.syscall", self._syscall_probe_map)
        obs.derive_map("os.lock", self._lock_probe_map)
        obs.derive_map("os.vm.incursion", lambda: dict(self.vm.incursions))
        obs.derive("os.sched.switches", lambda: self.scheduler.switches)
        obs.derive("os.sched.asn_recycles",
                   lambda: self.scheduler.asn_recycles)
        #: Optional EventBus (see repro.obs.events); None = no events.
        self.events = None
        self.vm.on_incursion = self._vm_incursion
        #: Core-registered listeners called with (ctx,) on context switch.
        self.switch_listeners: list[Callable[[int], None]] = []
        #: Wired by the network layer: called with each transmitted packet.
        self.net_tx_hook: Callable | None = None

        # Per-context CPU pseudo-threads host interrupt and scheduler frames.
        self.cpu_threads = [self._make_cpu_thread(ctx) for ctx in range(n_contexts)]
        # Per-context idle threads (schedulable, lowest priority).
        for ctx in range(n_contexts):
            idle = self.create_kernel_thread(f"idle{ctx}", self._idle_behavior())
            idle.state = ThreadState.READY
            self.scheduler.set_idle_thread(ctx, idle)
        self._next_timer = timer_interval
        # One instruction stream per hardware context (what fetch sees).
        from repro.os_model.stream import ContextStream

        self.streams = [ContextStream(self, ctx) for ctx in range(n_contexts)]

    # -- construction helpers ----------------------------------------------

    def _build_kernel_regions(self) -> None:
        virt, phys = self.layout.virt, self.layout.phys
        # Hot sets are deliberately concentrated on few pages (many hot
        # lines per page): the shared 128-entry DTLB must fit the combined
        # kernel + user working set the way the paper's machine does, while
        # the caches still see a large line-granular kernel footprint.
        self.reg_vfs = Region("k:vfs", virt(0), 24, 6, hot_lines=48,
                              weight=0.5, p_hot=0.95, shared=True)
        self.reg_proc = Region("k:proc", virt(1), 12, 3, hot_lines=24,
                               weight=0.2, p_hot=0.95, shared=True)
        self.reg_net = Region("k:net", virt(2), 16, 5, hot_lines=36,
                              weight=0.3, p_hot=0.95, shared=True)
        self.reg_malloc = Region("k:malloc", virt(3), 24, 5, hot_lines=36,
                                 weight=0.35, p_hot=0.95, shared=True)
        self.reg_sockbuf = Region("k:sockbuf", virt(4), 24, 6, hot_lines=48,
                                  weight=0.3, p_hot=0.95, shared=True)
        self._kstack_base = virt(5)
        self.reg_lockwords = Region("k:locks", virt(6), 1, 1, hot_lines=8,
                                    weight=0.0, shared=True)
        self.reg_pagetable = Region("k:pt", phys(0), 32, 8, hot_lines=24,
                                    weight=0.3, p_hot=0.97, phys=True,
                                    shared=True)
        self.reg_filecache = Region("k:filecache", phys(1), 128, 24,
                                    hot_lines=64, weight=0.5, p_hot=0.97,
                                    phys=True, shared=True)
        self.reg_nicring = Region("k:nicring", phys(2), 8, 4, hot_lines=16,
                                  weight=0.12, p_hot=0.97, phys=True,
                                  shared=True)
        self.reg_pal = Region("k:pal", phys(3), 8, 4, hot_lines=16, phys=True)

    def _kstack_region(self, tid: int) -> Region:
        return Region(
            f"k:stack{tid}", self._kstack_base + tid * 2 * PAGE_SIZE, 2, 1,
            hot_lines=12, weight=1.0, p_seq=0.4, p_hot=0.97,
        )

    def _kernel_regions_for(self, tid: int) -> list[Region]:
        kstack = self._kstack_region(tid)
        return [
            kstack, self.reg_vfs, self.reg_proc, self.reg_net,
            self.reg_malloc, self.reg_sockbuf,
            self.reg_pagetable, self.reg_filecache, self.reg_nicring,
        ]

    def _attach_kernel_walkers(self, thread: SoftwareThread) -> None:
        krng = random.Random(self.rng.randrange(1 << 30))
        kdata = DataModel(self._kernel_regions_for(thread.tid), krng)
        pdata = DataModel([self.reg_pal, self.reg_pagetable], krng)
        thread.kernel_walker = CodeWalker(
            self.kernel_text, krng, kdata, Mode.KERNEL, "kernel", thread.tid, KERNEL_ASN)
        thread.copy_walker = CodeWalker(
            self.copy_text, krng, kdata, Mode.KERNEL, "kernel", thread.tid, KERNEL_ASN)
        thread.pal_walker = CodeWalker(
            self.pal_text, krng, pdata, Mode.PAL, "pal", thread.tid, KERNEL_ASN)
        # Trap handlers (TLB refill, page allocation) get a *separate* data
        # model so that a trap taken mid-copy never consumes the interrupted
        # service's copy burst -- which would re-fault on the same page and
        # recurse.  Its regions are wired kernel state only.
        trap_data = DataModel(
            [self._kstack_region(thread.tid), self.reg_pagetable,
             self.reg_malloc, self.reg_proc],
            krng,
        )
        thread.trap_walker = CodeWalker(
            self.kernel_text, krng, trap_data, Mode.KERNEL, "kernel", thread.tid, KERNEL_ASN)

    def _make_cpu_thread(self, ctx: int) -> SoftwareThread:
        thread = SoftwareThread(900 + ctx, f"cpu{ctx}", self.kernel_as)
        self._attach_kernel_walkers(thread)
        self.threads_by_tid[thread.tid] = thread
        return thread

    # -- thread creation -------------------------------------------------------

    def create_process(
        self,
        name: str,
        pid: int,
        code_model: CodeModel,
        address_space: AddressSpace,
        behavior_factory: Callable[[SoftwareThread], object],
        urng_seed: int | None = None,
    ) -> SoftwareThread:
        """Create a user process thread and admit it to the scheduler."""
        tid = self._alloc_tid()
        thread = SoftwareThread(tid, name, address_space)
        urng = random.Random(urng_seed if urng_seed is not None else self.rng.randrange(1 << 30))
        udata = DataModel(address_space.regions, urng)
        thread.user_walker = CodeWalker(
            code_model, urng, udata, Mode.USER, "user", tid, asn=0)
        self._attach_kernel_walkers(thread)
        thread.behavior = behavior_factory(thread)
        self.threads.append(thread)
        self.threads_by_tid[tid] = thread
        self.scheduler.make_ready(thread)
        return thread

    def create_kernel_thread(self, name: str, behavior) -> SoftwareThread:
        """Create a kernel daemon thread (netisr, idle, pagedaemon...)."""
        tid = self._alloc_tid()
        thread = SoftwareThread(tid, name, self.kernel_as)
        self._attach_kernel_walkers(thread)
        thread.behavior = behavior
        self.threads.append(thread)
        self.threads_by_tid[tid] = thread
        return thread

    def start_thread(self, thread: SoftwareThread) -> None:
        """Admit a (kernel) thread to the run queue."""
        self.scheduler.make_ready(thread)

    def _alloc_tid(self) -> int:
        tid = self._next_tid
        self._next_tid += 1
        return tid

    def _idle_behavior(self):
        # The idle loop polls briefly, then waits for an interrupt --
        # spinning at full rate would consume SMT fetch/issue bandwidth that
        # belongs to real work (the resource waste the paper calls out).
        while True:
            yield ("idle", 48)
            yield ("halt", 240)

    # -- wait queues ------------------------------------------------------------

    def sleep_on(self, queue: str, thread: SoftwareThread) -> None:
        """Block *thread* on the named wait queue."""
        thread.block(queue)
        self.wait_queues.setdefault(queue, deque()).append(thread)

    def wakeup_one(self, queue: str) -> SoftwareThread | None:
        """Wake the oldest sleeper on *queue* (None when empty)."""
        q = self.wait_queues.get(queue)
        if not q:
            return None
        thread = q.popleft()
        self.scheduler.make_ready(thread)
        return thread

    def wakeup_all(self, queue: str) -> int:
        """Wake every sleeper on *queue*; returns the number woken."""
        q = self.wait_queues.get(queue)
        if not q:
            return 0
        n = 0
        while q:
            self.scheduler.make_ready(q.popleft())
            n += 1
        return n

    # -- observability -----------------------------------------------------------

    def _syscall_probe_map(self) -> dict:
        """Per-syscall probe family: ``os.syscall.<name>.{count,cycles}``."""
        out = {}
        for name, count in self.syscall_counts.items():
            out[f"{name}.count"] = count
        for name, (completions, cycles) in self.syscall_latency.items():
            out[f"{name}.completions"] = completions
            out[f"{name}.cycles"] = cycles
        return out

    def _vm_incursion(self, kind: str) -> None:
        """VMSystem observer: post each MM-code entry as an instant event
        (the frame-level span already covers the allocation *cycles*; the
        instant records the incursion *type* for Figure-3-style drill-down)."""
        if self.events is not None:
            svc = "vm:page_alloc" if kind == "page_allocation" else f"vm:{kind}"
            self.events.emit(self.now, "vm", kind, service=svc)

    def _lock_probe_map(self) -> dict:
        """Per-lock probe family: ``os.lock.<name>.{acquisitions,contentions}``."""
        out = {}
        for name, n in self.locks.acquisitions.items():
            out[f"{name}.acquisitions"] = n
        for name, n in self.locks.contentions.items():
            out[f"{name}.contentions"] = n
        return out

    # -- call-path spans ---------------------------------------------------------

    def _span_begin(self, thread: SoftwareThread, kind: str, name: str,
                    label: str, ctx: int | None = None) -> None:
        """Open a nested service span on *thread* and emit its B event.

        The span stack (:meth:`SoftwareThread.span_push`) is what the
        cycle-attribution layer folds into call paths; the B/E event pair
        is the same structure on the trace timeline.  Spans follow the
        frame-stack discipline -- whoever pushes handler frames opens the
        span first and closes it from the final frame's completion hook,
        so nesting can never cross.
        """
        thread.span_push(label)
        if self.events is not None:
            self.events.emit(self.now, kind, name, "B", ctx=ctx,
                             tid=thread.tid, service=label)

    def _span_end(self, thread: SoftwareThread, kind: str, name: str,
                  label: str, ctx: int | None = None) -> None:
        """Emit the matching E event and close the innermost span."""
        if self.events is not None:
            self.events.emit(self.now, kind, name, "E", ctx=ctx,
                             tid=thread.tid, service=label)
        thread.span_pop(label)

    # -- cost helper -------------------------------------------------------------

    def _cost(self, mean: float, spread: float) -> int:
        """Draw a frame budget around *mean* (minimum 3 instructions)."""
        return max(3, int(self.rng.gauss(mean, spread)))

    # -- the dispatcher -----------------------------------------------------------

    def dispatch(self, thread: SoftwareThread, directive: tuple, now: int) -> None:
        """Turn one behavior directive into frames (or immediate effects)."""
        kind = directive[0]
        if kind == "compute":
            self._dispatch_compute(thread, directive)
        elif kind == "syscall":
            name = directive[1]
            args = directive[2] if len(directive) > 2 else {}
            self._dispatch_syscall(thread, SYSCALL_CATALOG[name], args)
        elif kind == "kwork":
            self._dispatch_kwork(thread, directive[1])
        elif kind == "idle":
            thread.push_frame(
                Frame(thread.kernel_walker, directive[1], "idle", "idle"))
        elif kind == "halt":
            # WTINT-style pause: the context stalls (no instructions) until
            # the deadline; wakeups implicitly end it via rescheduling.
            thread.halt_until = now + directive[1]
        elif kind == "sleep":
            self.sleep_on(directive[1], thread)
        elif kind == "mark":
            label = directive[1]
            self.marks[(thread.name, label)] = now
            self.thread_phase[thread.name] = label
        elif kind == "exit":
            thread.state = ThreadState.DONE
        else:
            raise ValueError(f"unknown directive {kind!r}")

    def _dispatch_compute(self, thread: SoftwareThread, directive: tuple) -> None:
        n = directive[1]
        opts = directive[2] if len(directive) > 2 else {}
        on_start = None
        if "scan" in opts:
            scan = opts["scan"]

            def on_start(scan=scan):
                base, nbytes = scan() if callable(scan) else scan
                thread.user_walker.data.set_scan(base, nbytes)

        thread.push_frame(
            Frame(thread.user_walker, n, "user", on_start=on_start))

    def _dispatch_syscall(self, thread: SoftwareThread, spec: SyscallSpec, args: dict) -> None:
        self.syscall_counts[spec.name] = self.syscall_counts.get(spec.name, 0) + 1
        dispatched_at = self.now
        full = self.mode is OSMode.FULL
        svc = f"syscall:{spec.name}"
        self._span_begin(thread, "syscall", spec.name, svc)
        frames: list[Frame] = []

        if full:
            frames.append(Frame(thread.pal_walker, self._cost(12, 2), "pal:callsys",
                                "callsys", transfer=InstrType.PAL_CALL))
            frames.append(Frame(thread.kernel_walker, self._cost(140, 30),
                                "syscall:preamble", "preamble"))

        body_cost = self._cost(spec.base_cost, spec.base_cost * spec.cost_spread) if full else 0
        lock = spec.lock if full else None

        block_if = args.get("block_if")
        queue = args.get("queue", spec.name)
        # Locks guard a critical section, not the whole service body: real
        # kernels hold spin locks only around the shared-structure updates.
        if spec.blocking and block_if is not None:
            # Entry portion runs, then the call may sleep; the remainder of
            # the body resumes as a continuation after wakeup.
            entry = max(0, int(body_cost * 0.4))
            crit = int(body_cost * 0.12)
            rest = body_cost - entry - crit

            def maybe_block():
                if block_if():
                    self.sleep_on(queue, thread)

            frames.append(Frame(thread.kernel_walker, entry, svc,
                                spec.text_segment, on_complete=maybe_block))
            frames.append(Frame(thread.kernel_walker, crit, svc,
                                spec.text_segment, lock=lock))
            frames.append(Frame(thread.kernel_walker, rest, svc, spec.text_segment))
        else:
            crit = int(body_cost * 0.15)
            frames.append(Frame(thread.kernel_walker, crit, svc,
                                spec.text_segment, lock=lock))
            frames.append(Frame(thread.kernel_walker, body_cost - crit, svc,
                                spec.text_segment))

        copy = args.get("copy")
        if copy is not None:
            nbytes = args.get("nbytes", 0)
            copy_cost = int(nbytes / 8 * spec.copy_factor) if full else 0

            def install_copy(copy=copy):
                src, dst, src_phys, dst_phys = copy() if callable(copy) else copy
                data = thread.kernel_walker.data
                data.set_copy(src, dst, max(8, args.get("nbytes", 8)),
                              src_phys=src_phys, dst_phys=dst_phys)

            frames.append(Frame(thread.copy_walker, copy_cost, svc,
                                "copy", on_start=install_copy if full else None,
                                on_complete=None))

        if args.get("disk"):
            dma = args.get("dma")

            def dma_effect(dma=dma):
                if dma is not None:
                    addr, nbytes = dma() if callable(dma) else dma
                    self.hierarchy.dma_write(addr, nbytes)

            frames.append(Frame(thread.kernel_walker,
                                self._cost(1100, 250) if full else 0,
                                svc, "driver", on_complete=dma_effect))

        for extra in args.get("post_frames", ()):
            segment, cost, effect = extra
            frames.append(Frame(thread.kernel_walker, cost if full else 0,
                                svc, segment, on_complete=effect))

        on_done = args.get("on_done")

        def complete(name=spec.name, started=dispatched_at, on_done=on_done):
            record = self.syscall_latency.setdefault(name, [0, 0])
            latency = max(0, self.now - started)
            record[0] += 1
            record[1] += latency
            self.syscall_hist.observe(latency)
            self._span_end(thread, "syscall", name, f"syscall:{name}")
            if on_done is not None:
                on_done()

        if full:
            frames.append(Frame(thread.pal_walker, self._cost(8, 1), "pal:rti",
                                "rti", on_complete=complete,
                                transfer=InstrType.PAL_RETURN))
        else:
            frames.append(Frame(thread.kernel_walker, 0, svc,
                                on_complete=complete))
        thread.push_frames(frames)

    def _dispatch_kwork(self, thread: SoftwareThread, spec: dict) -> None:
        """Generic kernel work (used by netisr and daemon threads)."""
        full = self.mode is OSMode.FULL
        service = spec["service"]
        frames: list[Frame] = []
        on_start = None
        if "copy" in spec:
            copy = spec["copy"]

            def on_start(copy=copy):
                src, dst, src_phys, dst_phys, nbytes = copy() if callable(copy) else copy
                thread.kernel_walker.data.set_copy(
                    src, dst, max(8, nbytes), src_phys=src_phys, dst_phys=dst_phys)

        frames.append(Frame(thread.kernel_walker, spec["cost"] if full else 0,
                            service, spec["segment"],
                            on_start=on_start if full else None,
                            lock=spec.get("lock") if full else None))
        if "copy_cost" in spec and full:
            frames.append(Frame(thread.copy_walker, spec["copy_cost"], service, "copy"))
        frames.append(Frame(thread.kernel_walker, 0, service,
                            on_complete=spec.get("on_done")))
        thread.push_frames(frames)

    # -- TLB miss handling ----------------------------------------------------

    def handle_dtlb_miss(self, thread: SoftwareThread, instr, vpn: int, asn: int) -> bool:
        """Splice the DTLB refill (and allocation) path; True when deferred.

        In APP_ONLY mode the translation is installed instantly (the paper's
        "traps complete instantly with no effect on hardware state").
        """
        self.counters["dtlb_miss_events"] += 1
        kind = mode_kind(instr.mode)
        if self.mode is not OSMode.FULL or thread.trap_depth >= 1:
            # Application-only mode, or a miss taken *inside* a refill
            # handler: the Alpha handles nested TLB misses entirely in PAL
            # (physically addressed), so the fill is immediate -- an
            # instant event, not a span, since no handler cycles follow.
            if self.events is not None:
                self.events.emit(self.now, "tlb", "dtlb_refill",
                                 tid=thread.tid, service="tlb:refill")
            self.hierarchy.dtlb.fill(vpn, asn, thread.tid, kind)
            if self.vm.needs_allocation(thread.process.pid, instr.addr):
                if self.vm.allocate(thread.process.pid, instr.addr):
                    if self.mode is OSMode.FULL:
                        self.hierarchy.icache_flush()
                        self.counters["icache_flushes"] += 1
            return False

        pte = self.pte_address(vpn)
        tdata = thread.trap_walker.data

        def pte_scan(tdata=tdata, pte=pte):
            tdata.set_scan(pte, 24, phys=True)

        frames = [
            Frame(thread.pal_walker, self._cost(14, 2), "pal:dtlb", "dtlb",
                  transfer=InstrType.PAL_CALL),
            Frame(thread.trap_walker, self._cost(34, 6), "tlb:refill",
                  "tlb_refill", on_start=pte_scan),
        ]
        if self.vm.needs_allocation(thread.process.pid, instr.addr):

            def do_alloc(addr=instr.addr, pid=thread.process.pid):
                if self.vm.allocate(pid, addr):
                    self.hierarchy.icache_flush()
                    self.counters["icache_flushes"] += 1

            # Page allocation runs without a global lock: Digital Unix locks
            # VM objects at finer grain, so concurrent first-touch faults on
            # different processes' pages proceed in parallel.
            frames.append(Frame(thread.trap_walker, self._cost(260, 60),
                                "vm:page_alloc", "vm_alloc",
                                on_complete=do_alloc))

        def finish(instr=instr, vpn=vpn, asn=asn, kind=kind):
            self.hierarchy.dtlb.fill(vpn, asn, thread.tid, kind)
            instr.tlb_done = True
            thread.trap_depth -= 1
            self._span_end(thread, "tlb", "dtlb_refill", "tlb:refill")
            thread.pending.append(instr)

        frames.append(Frame(thread.pal_walker, self._cost(8, 1), "pal:rti",
                            "rti", on_complete=finish,
                            transfer=InstrType.PAL_RETURN))
        thread.trap_depth += 1
        self._span_begin(thread, "tlb", "dtlb_refill", "tlb:refill")
        thread.push_frames(frames)
        return True

    def handle_itlb_miss(self, thread: SoftwareThread, instr, vpn: int, asn: int) -> bool:
        """Splice the (PAL-only) ITLB refill; True when *instr* was deferred."""
        self.counters["itlb_miss_events"] += 1
        kind = mode_kind(instr.mode)
        if self.mode is not OSMode.FULL or thread.trap_depth >= 1:
            if self.events is not None:
                self.events.emit(self.now, "tlb", "itlb_refill",
                                 tid=thread.tid, service="tlb:refill")
            self.hierarchy.itlb.fill(vpn, asn, thread.tid, kind)
            return False

        def finish(instr=instr):
            self.hierarchy.itlb.fill(vpn, asn, thread.tid, kind)
            thread.trap_depth -= 1
            self._span_end(thread, "tlb", "itlb_refill", "tlb:refill")
            thread.pending.append(instr)

        thread.trap_depth += 1
        self._span_begin(thread, "tlb", "itlb_refill", "tlb:refill")
        thread.push_frames([
            Frame(thread.pal_walker, self._cost(22, 4), "pal:itlb", "itlb",
                  on_complete=finish, transfer=InstrType.PAL_CALL),
        ])
        return True

    def pte_address(self, vpn: int) -> int:
        """Physical address of the page-table entry mapping *vpn*."""
        return self.reg_pagetable.base + (vpn * 8) % self.reg_pagetable.size

    # -- interrupts & time -------------------------------------------------------

    def post_interrupt(self, label: str, cost: int, effect: Callable | None = None) -> None:
        """Queue a device interrupt for delivery to some context."""
        self.interrupts.post(InterruptRequest(label, cost, effect))

    def _deliver_interrupt(self, ctx: int, request: InterruptRequest) -> bool:
        if self.mode is not OSMode.FULL:
            if request.effect is not None:
                request.effect()
            return True
        cpu = self.cpu_threads[ctx]
        if len(cpu.frames) > 24:
            return False
        label = request.label

        def intr_return(label=label, ctx=ctx):
            self._span_end(cpu, "interrupt", label, label, ctx=ctx)

        self._span_begin(cpu, "interrupt", label, label, ctx=ctx)
        cpu.push_frames([
            Frame(cpu.pal_walker, self._cost(14, 3), "pal:intr", "intr",
                  transfer=InstrType.PAL_CALL),
            Frame(cpu.kernel_walker, self._cost(request.cost, request.cost * 0.25),
                  label, "intr", on_complete=request.effect),
            Frame(cpu.pal_walker, self._cost(8, 1), "pal:rti", "rti",
                  on_complete=intr_return, transfer=InstrType.PAL_RETURN),
        ])
        return True

    def tick(self, now: int) -> None:
        """Per-cycle (or strided) housekeeping: devices, clock, delivery."""
        self.now = now
        for device in self.devices:
            device.tick(now)
        if now >= self._next_timer:
            self._next_timer = now + self.timer_interval
            self.post_interrupt("intr:clock", 180)
        if self.interrupts.pending:
            self.interrupts.dispatch(self._deliver_interrupt)

    def state_summary(self) -> dict:
        """Deterministic, JSON-safe summary of kernel execution state.

        Hashed into checkpoint state digests (see
        :mod:`repro.core.checkpoint`): two runs of the same config whose
        summaries match are at the same point of the same trajectory.
        RNG states are captured via ``repr`` -- exact, cheap, and only
        ever compared by hash.
        """
        sched = self.scheduler
        return {
            "threads": [
                [t.tid, t.name, t.state.name, t.halt_until, len(t.frames),
                 len(t.pending), t.instructions_generated, t.trap_depth]
                for t in self.threads
            ],
            "cpu_threads": [
                [t.tid, len(t.frames), len(t.pending)]
                for t in self.cpu_threads
            ],
            "scheduler": {
                "current": [t.tid if t is not None else None
                            for t in sched.current],
                "run_queue": [t.tid for t in sched.run_queue],
                "quantum_end": list(sched.quantum_end),
                "switches": sched.switches,
                "asn_recycles": sched.asn_recycles,
                "rng": repr(sched.rng.getstate()),
            },
            "wait_queues": {
                name: [t.tid for t in q]
                for name, q in sorted(self.wait_queues.items()) if q
            },
            "marks": sorted(
                [name, label, cycle]
                for (name, label), cycle in self.marks.items()
            ),
            "next_timer": self._next_timer,
            "syscalls": dict(sorted(self.syscall_counts.items())),
            "rng": repr(self.rng.getstate()),
        }

    # -- context switching --------------------------------------------------------

    def _on_switch(self, ctx: int, old: SoftwareThread | None, new: SoftwareThread) -> None:
        if self.tlb_flush_on_switch and old is not None and old.process is not new.process:
            self.hierarchy.dtlb.flush_all()
            self.hierarchy.itlb.flush_all()
        if new.process.pid >= 0:
            self.scheduler.assign_asn(new.process)
            if new.user_walker is not None:
                new.user_walker.asn = new.process.asn
        if self.mode is OSMode.FULL:
            cpu = self.cpu_threads[ctx]
            name = f"dispatch:{new.name}"

            def switch_done(name=name, ctx=ctx):
                self._span_end(cpu, "sched", name, "sched", ctx=ctx)

            self._span_begin(cpu, "sched", name, "sched", ctx=ctx)
            cpu.push_frames([
                Frame(cpu.kernel_walker, self._cost(300, 60), "sched", "sched",
                      lock="runq"),
                Frame(cpu.pal_walker, self._cost(14, 3), "pal:swpctx", "swpctx",
                      on_complete=switch_done, transfer=InstrType.PAL_CALL),
            ])
        elif self.events is not None:
            # APP_ONLY dispatch is instantaneous (no frames), so the event
            # stays an instant rather than a zero-width span.
            self.events.emit(self.now, "sched", f"dispatch:{new.name}",
                             ctx=ctx, tid=new.tid)
        for listener in self.switch_listeners:
            listener(ctx)

    def _flush_asn(self, asn: int) -> None:
        self.hierarchy.dtlb.flush_asn(asn)
        self.hierarchy.itlb.flush_asn(asn)

    # -- address helpers -----------------------------------------------------------

    def lock_word_address(self, name: str) -> int:
        """Kernel virtual address of the named lock's word (one line each,
        so contended spinning hammers a genuinely shared cache line)."""
        return self.reg_lockwords.base + self.locks.DEFAULT_LOCKS.index(name) * 64

    def asn_for(self, thread: SoftwareThread, addr: int) -> int:
        """ASN governing *addr* when referenced by *thread*."""
        if is_kernel_address(addr):
            return KERNEL_ASN
        return thread.process.asn

    def page_is_kernel(self, addr: int) -> bool:
        return is_kernel_address(addr)
