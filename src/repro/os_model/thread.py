"""Software threads and execution frames.

A :class:`SoftwareThread` is a kernel-visible thread: an Apache server
process, one SPECInt program, a netisr protocol thread, or a per-context
idle thread.  Its dynamic execution is a stack of :class:`Frame` objects --
bounded slices of code-model walks -- plus a *behavior*: a generator of
directives (``("compute", n)``, ``("syscall", name, args)``, ...) that the
kernel's dispatcher turns into new frames when the stack drains.

The frame stack is also how every OS entry is spliced into the stream:

* a system call pushes PAL-entry, kernel-preamble, service-body and
  PAL-return frames;
* a DTLB/ITLB miss (detected here, at generation time, by probing the
  shared TLBs) defers the faulting instruction and pushes the refill
  handler -- plus the page-allocation path on first touch;
* a thread that blocks mid-syscall simply keeps its remaining frames and
  resumes them when woken, like a real kernel continuation.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Iterator

from repro.isa.code import CodeWalker
from repro.isa.instruction import Instruction
from repro.isa.types import InstrType


class ThreadState(enum.Enum):
    """Scheduler-visible thread states."""

    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


class Frame:
    """A bounded slice of a code-model walk.

    Parameters
    ----------
    walker:
        The :class:`~repro.isa.code.CodeWalker` to draw instructions from.
    budget:
        Number of instructions this frame emits before completing.
    service:
        Attribution label applied to the walker while this frame runs.
    segment:
        Optional code-model segment to jump to when the frame starts.
    on_start / on_complete:
        Callbacks run before the first instruction and after the last
        (e.g. install a copy burst; fill a TLB entry; block the thread).
    lock:
        Optional named kernel lock held for the frame's duration; when
        contended the thread spins (emitting synchronization instructions)
        before entering.
    """

    __slots__ = (
        "walker",
        "budget",
        "service",
        "segment",
        "on_start",
        "on_complete",
        "lock",
        "started",
        "lock_held",
        "transfer",
    )

    def __init__(
        self,
        walker: CodeWalker,
        budget: int,
        service: str,
        segment: str | None = None,
        on_start: Callable | None = None,
        on_complete: Callable | None = None,
        lock: str | None = None,
        transfer: InstrType | None = None,
    ) -> None:
        if budget < 0:
            raise ValueError("frame budget must be non-negative")
        self.walker = walker
        self.budget = budget
        self.service = service
        self.segment = segment
        self.on_start = on_start
        self.on_complete = on_complete
        self.lock = lock
        self.started = False
        self.lock_held = False
        #: Optional control-transfer instruction (PAL_CALL / PAL_RETURN)
        #: emitted as the frame's first instruction, modeling the trap entry
        #: or return-from-trap that redirects the stream into this frame.
        self.transfer = transfer

    def start(self) -> None:
        """Activate the frame: position the walker and run ``on_start``."""
        self.started = True
        self.walker.service = self.service
        if self.segment is not None:
            self.walker.jump_to(self.segment)
        if self.on_start is not None:
            self.on_start()

    def next_instruction(self) -> Instruction | None:
        """Emit one instruction, or None when the budget is exhausted."""
        if self.budget <= 0:
            return None
        self.budget -= 1
        self.walker.service = self.service
        if self.transfer is not None:
            itype = self.transfer
            self.transfer = None
            walker = self.walker
            target = walker.model.block_pc[walker.block]
            return Instruction(
                itype, walker.mode, self.service, target - 4,
                taken=True, target=target, latency=1,
                thread_id=walker.thread_id, asn=walker.asn,
            )
        return self.walker.next_instruction()


class SoftwareThread:
    """One kernel-schedulable thread (see module docstring)."""

    def __init__(
        self,
        tid: int,
        name: str,
        process,
        behavior: Iterator | None = None,
        bound_context: int | None = None,
    ) -> None:
        self.tid = tid
        self.name = name
        self.process = process  # AddressSpace (kernel threads use the kernel AS)
        self.behavior = behavior
        self.state = ThreadState.READY
        self.frames: list[Frame] = []
        self.pending: deque[Instruction] = deque()
        #: Set by MiniDUX: called with (thread, directive) to push frames.
        self.dispatcher: Callable | None = None
        #: Walkers installed by the kernel/workload factories.
        self.user_walker: CodeWalker | None = None
        self.kernel_walker: CodeWalker | None = None
        self.pal_walker: CodeWalker | None = None
        self.spin_walker: CodeWalker | None = None
        #: Page of the last generated PC, for ITLB probing on page change.
        self.last_pc_page = -1
        #: Diagnostic: why the thread is blocked ("accept", "select", ...).
        self.block_reason: str | None = None
        #: Hardware context this thread is pinned to (idle threads), or None.
        self.bound_context = bound_context
        #: Instructions generated on behalf of this thread (all modes).
        self.instructions_generated = 0
        #: Depth of in-flight TLB-miss handlers; nested misses beyond the
        #: limit take the instant PAL double-miss path.
        self.trap_depth = 0
        #: Scheduling priority: 0 = kernel daemon (netisr runs at software
        #: interrupt level and preempts user processes), 1 = timeshare.
        self.priority = 1
        #: Cycle until which the thread is halted (WTINT-style wait used by
        #: the idle loop so an idle context does not burn fetch bandwidth).
        self.halt_until = 0
        #: Open kernel-service span labels, innermost last (mirrors the
        #: frame-stack discipline: a span opened by a nested handler always
        #: closes before its parent's).  ``span_paths`` keeps the matching
        #: ``;``-joined prefix path per open span so attribution never
        #: rebuilds a join in the hot path.
        self.spans: list[str] = []
        self.span_paths: list[str] = []
        self._path_cache: dict[str, str] = {}

    # -- call-path spans -----------------------------------------------------

    def span_push(self, label: str) -> None:
        """Open a nested service span (syscall, TLB refill, interrupt...)."""
        paths = self.span_paths
        parent = paths[-1] if paths else ""
        paths.append(parent + ";" + label if parent else label)
        self.spans.append(label)
        self._path_cache.clear()

    def span_pop(self, label: str) -> None:
        """Close the innermost span if it matches *label* (defensive: a
        mismatched pop -- e.g. a span whose closer never ran because the
        thread exited -- is ignored rather than corrupting the stack)."""
        if self.spans and self.spans[-1] == label:
            self.spans.pop()
            self.span_paths.pop()
            self._path_cache.clear()

    def service_path(self, service: str) -> str:
        """The call path charged when this thread runs *service*: the open
        span chain with *service* as the leaf (the leaf always equals the
        service label, which is what makes per-path cycle totals reconcile
        exactly with the flat per-service cycle counters)."""
        cache = self._path_cache
        path = cache.get(service)
        if path is None:
            paths = self.span_paths
            if not paths:
                path = service
            elif self.spans[-1] == service:
                path = paths[-1]
            else:
                path = paths[-1] + ";" + service
            cache[service] = path
        return path

    # -- frame stack ---------------------------------------------------------

    def push_frame(self, frame: Frame) -> None:
        """Push *frame* so it runs before everything currently stacked."""
        self.frames.append(frame)

    def push_frames(self, frames: list[Frame]) -> None:
        """Push *frames* so that ``frames[0]`` runs first."""
        self.frames.extend(reversed(frames))

    @property
    def current_frame(self) -> Frame | None:
        return self.frames[-1] if self.frames else None

    def defer(self, instr: Instruction) -> None:
        """Park a TLB-faulting instruction until its handler completes."""
        self.pending.append(instr)

    # -- state transitions -----------------------------------------------------

    def block(self, reason: str) -> None:
        """Mark the thread blocked (remaining frames resume on wake)."""
        self.state = ThreadState.BLOCKED
        self.block_reason = reason

    def wake(self) -> None:
        """Make a blocked thread runnable again."""
        if self.state is ThreadState.BLOCKED:
            self.state = ThreadState.READY
            self.block_reason = None

    @property
    def runnable(self) -> bool:
        return self.state in (ThreadState.READY, ThreadState.RUNNING)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Thread {self.tid} {self.name} {self.state.value} frames={len(self.frames)}>"
