"""The system-call catalog.

Each entry models one Digital Unix service: its resource category (the
grouping of the paper's Figure 7 right-hand chart), its base kernel cost in
instructions (data-movement costs are added per byte by the kernel model),
its kernel-text segment, the kernel lock it contends on, and whether it can
block.  Names follow the paper's Figure 7 (``smmap`` is Digital Unix's mmap).

Costs are calibration parameters, not measurements: they were chosen so that
the *relative* per-call weights of Figure 7 (stat ~10% of all cycles,
read/write/writev ~19%, network and file services roughly balanced) emerge
for the Apache workload.  EXPERIMENTS.md records the resulting shapes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SyscallCategory(enum.Enum):
    """Resource/operation grouping used by Figure 7's right-hand chart."""

    FILE_READ_WRITE = "file read/write"
    FILE_INQUIRY = "file inquiry"
    FILE_CONTROL = "file control"
    NET_READ_WRITE = "net read/write"
    NET_CONTROL = "net control"
    MEMORY = "memory"
    PROCESS = "process"
    OTHER = "other"


@dataclass(frozen=True)
class SyscallSpec:
    """Static description of one system call."""

    name: str
    category: SyscallCategory
    base_cost: int
    cost_spread: float = 0.25
    #: Kernel-text segment; defaults to the call's own segment.
    segment: str | None = None
    lock: str | None = None
    blocking: bool = False
    #: Instructions of copy-loop code per 8 copied bytes.
    copy_factor: float = 3.5
    #: Name reported in by-name charts; socket reads report as "read", the
    #: way the paper's Figure 7 groups them.
    display: str | None = None

    @property
    def text_segment(self) -> str:
        return self.segment if self.segment is not None else f"sys_{self.name}"

    @property
    def display_name(self) -> str:
        return self.display if self.display is not None else self.name


def _spec(name, category, base_cost, **kwargs) -> tuple[str, SyscallSpec]:
    return name, SyscallSpec(name, category, base_cost, **kwargs)


#: The catalog.  Segments are shared between closely-related calls the way
#: real kernels share code paths (read/write share the VFS rw path, etc.).
SYSCALL_CATALOG: dict[str, SyscallSpec] = dict(
    [
        # File system.
        _spec("read", SyscallCategory.FILE_READ_WRITE, 800, segment="sys_rw", lock="vfs"),
        _spec("write", SyscallCategory.FILE_READ_WRITE, 850, segment="sys_rw", lock="vfs"),
        _spec("stat", SyscallCategory.FILE_INQUIRY, 1500, lock="vfs"),
        _spec("open", SyscallCategory.FILE_CONTROL, 1000, lock="vfs"),
        _spec("close", SyscallCategory.FILE_CONTROL, 480, segment="sys_open", lock="vfs"),
        _spec("lseek", SyscallCategory.FILE_CONTROL, 220, segment="sys_rw"),
        _spec("fcntl", SyscallCategory.FILE_CONTROL, 260),
        # Network.  Socket reads/writes reuse the rw entry but spend their
        # time in the socket layer segment.
        _spec("sock_read", SyscallCategory.NET_READ_WRITE, 950,
              segment="sys_socket", lock="socket", blocking=True,
              display="read"),
        _spec("writev", SyscallCategory.NET_READ_WRITE, 1100, segment="sys_socket", lock="socket"),
        _spec("send", SyscallCategory.NET_READ_WRITE, 900, segment="sys_socket", lock="socket"),
        _spec("accept", SyscallCategory.NET_CONTROL, 950,
              segment="sys_sockctl", lock="socket", blocking=True),
        _spec("select", SyscallCategory.NET_CONTROL, 680, segment="sys_sockctl", blocking=True),
        _spec("setsockopt", SyscallCategory.NET_CONTROL, 300, segment="sys_sockctl"),
        _spec("getsockname", SyscallCategory.NET_CONTROL, 240, segment="sys_sockctl"),
        # Memory management.
        _spec("smmap", SyscallCategory.MEMORY, 1150, segment="sys_mmap", lock="vm"),
        _spec("munmap", SyscallCategory.MEMORY, 850, segment="sys_mmap", lock="vm"),
        _spec("brk", SyscallCategory.MEMORY, 420, segment="sys_mmap", lock="vm"),
        # Process control.
        # Process-control paths lock at object grain internally; no single
        # spin lock is held across their (long) bodies.
        _spec("fork", SyscallCategory.PROCESS, 7500),
        _spec("execve", SyscallCategory.PROCESS, 8000, segment="sys_fork"),
        _spec("exit", SyscallCategory.PROCESS, 1900, segment="sys_fork"),
        _spec("wait4", SyscallCategory.PROCESS, 600, segment="sys_fork", blocking=True),
        # Miscellaneous.
        _spec("getpid", SyscallCategory.OTHER, 110, segment="sys_misc"),
        _spec("gettimeofday", SyscallCategory.OTHER, 170, segment="sys_misc"),
        _spec("sigaction", SyscallCategory.OTHER, 250, segment="sys_misc"),
        _spec("umask", SyscallCategory.OTHER, 100, segment="sys_misc"),
    ]
)

#: Figure 7's by-name chart groups everything outside this list as "Other".
FIGURE7_NAMES = (
    "smmap",
    "munmap",
    "stat",
    "read",
    "write",
    "writev",
    "close",
    "accept",
    "select",
    "open",
)


def catalog_segments() -> set[str]:
    """All kernel-text segments the catalog references."""
    return {spec.text_segment for spec in SYSCALL_CATALOG.values()}
