"""Interrupt posting and delivery.

Devices (the NIC, the clock) post interrupt requests; the controller
delivers each to a hardware context, where PAL entry + kernel handler
frames preempt whatever is running.  Delivery rotates across contexts and
avoids piling onto a context that is still draining an earlier handler.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class InterruptRequest:
    """One posted interrupt: an attribution label, a handler cost, and the
    effect to apply when the handler completes."""

    label: str
    cost: int
    effect: Callable | None = None


class InterruptController:
    """Pending-interrupt queue with rotating context delivery."""

    def __init__(self, n_contexts: int) -> None:
        self.n_contexts = n_contexts
        self.pending: deque[InterruptRequest] = deque()
        self._next_ctx = 0
        self.posted = 0
        self.delivered: dict[str, int] = {}

    def post(self, request: InterruptRequest) -> None:
        """Queue an interrupt for delivery."""
        self.pending.append(request)
        self.posted += 1

    def dispatch(self, deliver: Callable[[int, InterruptRequest], bool]) -> int:
        """Deliver pending interrupts via *deliver(ctx, request)*.

        ``deliver`` returns False to refuse a context (handler backlog);
        after a full rotation of refusals the interrupt stays pending.
        Returns the number delivered.
        """
        count = 0
        while self.pending:
            request = self.pending[0]
            delivered = False
            for _ in range(self.n_contexts):
                ctx = self._next_ctx
                self._next_ctx = (self._next_ctx + 1) % self.n_contexts
                if deliver(ctx, request):
                    delivered = True
                    break
            if not delivered:
                break
            self.pending.popleft()
            self.delivered[request.label] = self.delivered.get(request.label, 0) + 1
            count += 1
        return count
