"""Per-hardware-context instruction streams.

A :class:`ContextStream` is what the fetch unit sees: one instruction feed
per hardware context with *everything* already spliced in --

* squash-recovery replays (correct-path instructions the core squashed on a
  mispredict are re-delivered first),
* interrupt and context-switch frames hosted on the context's CPU
  pseudo-thread,
* the scheduler's choice of software thread, including the idle thread,
* TLB interception: every generated instruction probes the shared ITLB (on
  PC page change) and DTLB (virtual memory operations); a miss defers the
  instruction and splices the refill/allocation handler in front of it,
* spin-lock contention: a thread whose next kernel frame needs a held lock
  emits load-locked/branch spin pairs until the lock frees.
"""

from __future__ import annotations

from collections import deque

from repro.isa.data import PAGE_SHIFT
from repro.isa.instruction import Instruction
from repro.isa.types import InstrType, Mode
from repro.memory.classify import mode_kind
from repro.memory.tlb import KERNEL_ASN
from repro.os_model.address_space import is_kernel_address
from repro.os_model.thread import SoftwareThread


class ContextStream:
    """The OS-composed instruction feed for one hardware context."""

    def __init__(self, os, ctx: int) -> None:
        self.os = os
        self.ctx = ctx
        self.cpu = os.cpu_threads[ctx]
        #: Correct-path instructions squashed by the core, awaiting replay.
        self.replay: deque[Instruction] = deque()
        self._spin_toggle = False

    # -- public feed -------------------------------------------------------

    def next_instruction(self, now: int) -> Instruction | None:
        """Produce the next instruction for this context, or None if the
        context has nothing runnable this cycle."""
        if self.replay:
            return self.replay.popleft()
        os = self.os
        cpu = self.cpu
        if cpu.frames or cpu.pending:
            instr = self._thread_next(cpu, now)
            if instr is not None:
                return instr
        sched = os.scheduler
        if sched.should_resched(self.ctx, now):
            new = sched.pick_next(self.ctx)
            sched.install(self.ctx, new, now)
            if cpu.frames:  # context-switch frames pushed by the OS hook
                instr = self._thread_next(cpu, now)
                if instr is not None:
                    return instr
        thread = sched.current[self.ctx]
        if thread is None or not thread.runnable:
            return None
        return self._thread_next(thread, now)

    def next_fast(self, now: int, skip: int) -> tuple[Instruction | None, int]:
        """Fast-functional feed: one materialized instruction plus the
        *weight* it stands for (see :mod:`repro.core.engine`).

        Identical to :meth:`next_instruction` except that an instruction
        drawn from a started frame may consume up to *skip* additional
        instructions of that frame's budget without materializing them
        -- the returned instruction is an i.i.d. draw from the same
        code-model mix, so weighting it by ``1 + skipped`` keeps every
        retired-instruction statistic unbiased.  Frame *dynamics* are
        stride-independent: locks are acquired at frame start and
        released at completion, and completion (dispatch, wake-ups,
        syscall returns) triggers when the budget reaches zero, which
        skipping reaches with the identical retired-instruction count.
        PAL, spin, replayed and TLB-deferred instructions always
        materialize one-for-one.
        """
        if self.replay:
            return self.replay.popleft(), 1
        os = self.os
        cpu = self.cpu
        if cpu.frames or cpu.pending:
            instr = self._thread_next(cpu, now)
            if instr is not None:
                return instr, 1
        sched = os.scheduler
        if sched.should_resched(self.ctx, now):
            new = sched.pick_next(self.ctx)
            sched.install(self.ctx, new, now)
            if cpu.frames:
                instr = self._thread_next(cpu, now)
                if instr is not None:
                    return instr, 1
        thread = sched.current[self.ctx]
        if thread is None or not thread.runnable:
            return None, 0
        instr = self._thread_next(thread, now)
        if instr is None:
            return None, 0
        if skip and instr.mode is not Mode.PAL and not thread.pending:
            fr = thread.frames[-1] if thread.frames else None
            if fr is not None and fr.started and fr.budget > skip:
                fr.budget -= skip
                thread.instructions_generated += skip
                return instr, 1 + skip
        return instr, 1

    def push_replay(self, instructions) -> None:
        """Queue squashed correct-path instructions for redelivery, oldest
        first (called by the core on a misprediction squash)."""
        self.replay.extend(instructions)

    @property
    def current_service(self) -> str:
        """Attribution label for cycle accounting of stalls."""
        if self.cpu.frames:
            fr = self.cpu.frames[-1]
            return fr.service
        thread = self.os.scheduler.current[self.ctx]
        if thread is None:
            return "idle"
        fr = thread.current_frame
        return fr.service if fr is not None else "user"

    @property
    def current_attrib(self) -> tuple[str, str]:
        """``(service, call_path)`` for cycle attribution -- the same label
        :attr:`current_service` returns plus the owning thread's open span
        chain with that label as the leaf (see
        :meth:`~repro.os_model.thread.SoftwareThread.service_path`)."""
        if self.cpu.frames:
            fr = self.cpu.frames[-1]
            return fr.service, self.cpu.service_path(fr.service)
        thread = self.os.scheduler.current[self.ctx]
        if thread is None:
            return "idle", "idle"
        fr = thread.current_frame
        if fr is None:
            return "user", thread.service_path("user")
        return fr.service, thread.service_path(fr.service)

    # -- thread stepping ------------------------------------------------------

    def _thread_next(self, thread: SoftwareThread, now: int) -> Instruction | None:
        os = self.os
        if thread.halt_until > now:
            return None
        for _ in range(300):
            if thread.pending:
                instr = thread.pending.popleft()
                if self._intercept(thread, instr):
                    return instr
                continue
            fr = thread.current_frame
            if fr is None:
                if thread.behavior is None:
                    return None
                try:
                    directive = next(thread.behavior)
                except StopIteration:
                    os.dispatch(thread, ("exit",), now)
                    return None
                os.dispatch(thread, directive, now)
                if not thread.runnable:
                    return None
                continue
            if not fr.started:
                if fr.lock is not None and not fr.lock_held:
                    if os.locks.acquire(fr.lock, thread.tid):
                        fr.lock_held = True
                    elif os.spin_policy == "yield" and thread.behavior is not None:
                        # SMT-aware optimization: deschedule instead of
                        # burning issue slots; the release wakes us.  CPU
                        # pseudo-threads (scheduler/interrupt frames) are
                        # dispatch-level code and must always spin.
                        os.sleep_on(f"lock:{fr.lock}", thread)
                        return None
                    else:
                        instr = self._spin_instruction(thread, fr.lock)
                        if self._intercept(thread, instr):
                            return instr
                        continue
                fr.start()
            instr = fr.next_instruction()
            if instr is None:
                thread.frames.pop()
                if fr.lock_held:
                    os.locks.release(fr.lock, thread.tid)
                    os.wakeup_one(f"lock:{fr.lock}")
                if fr.on_complete is not None:
                    fr.on_complete()
                if not thread.runnable:
                    return None
                continue
            thread.instructions_generated += 1
            if self._intercept(thread, instr):
                return instr
        raise RuntimeError(
            f"context {self.ctx}: no instruction after 300 steps "
            f"(thread {thread.name}, frames={len(thread.frames)})"
        )

    # -- TLB interception -----------------------------------------------------

    def _intercept(self, thread: SoftwareThread, instr: Instruction) -> bool:
        """Probe the shared TLBs for *instr*; False when it was deferred
        behind a refill handler."""
        if instr.mode is Mode.PAL:
            return True  # PAL runs physically addressed: no TLB involved
        os = self.os
        page = instr.pc >> PAGE_SHIFT
        if page != thread.last_pc_page:
            thread.last_pc_page = page
            asn = KERNEL_ASN if is_kernel_address(instr.pc) else thread.process.asn
            if not os.hierarchy.itlb.probe(page, asn, thread.tid, mode_kind(instr.mode)):
                if os.handle_itlb_miss(thread, instr, page, asn):
                    return False
        if instr.addr is not None and not instr.phys and not instr.tlb_done:
            vpn = instr.addr >> PAGE_SHIFT
            asn = os.asn_for(thread, instr.addr)
            if not os.hierarchy.dtlb.probe(vpn, asn, thread.tid, mode_kind(instr.mode)):
                if os.handle_dtlb_miss(thread, instr, vpn, asn):
                    return False
        return True

    # -- spin locks ----------------------------------------------------------

    def _spin_instruction(self, thread: SoftwareThread, lock_name: str) -> Instruction:
        """One beat of a spin loop: LDx_L/BXX pairs on the lock word."""
        os = self.os
        os.spin_counter.add()
        if thread.behavior is not None:
            os.thread_spin_counter.add()
        seg = os.kernel_text.segments["spinlock"]
        lock_index = os.locks.DEFAULT_LOCKS.index(lock_name)
        pc = os.kernel_text.block_pc[seg.start] + lock_index * 16
        self._spin_toggle = not self._spin_toggle
        if self._spin_toggle:
            return Instruction(
                InstrType.SYNC, Mode.KERNEL, "spinlock", pc,
                addr=os.lock_word_address(lock_name), dep=False, latency=2,
                thread_id=thread.tid, asn=KERNEL_ASN,
            )
        return Instruction(
            InstrType.COND_BRANCH, Mode.KERNEL, "spinlock", pc + 4,
            taken=True, target=pc, dep=True, latency=1,
            thread_id=thread.tid, asn=KERNEL_ASN,
        )
