"""The SMP-style process scheduler, as modified for SMT.

Digital Unix schedules an SMT processor as if it were a shared-memory
multiprocessor: one run queue (guarded by a spin lock) feeding all hardware
contexts, a per-context idle thread, quantum-based preemption, and ASN
management over the *shared* TLB -- the paper's one real OS modification.
When the ASN space wraps, the recycled ASN's translations are flushed from
both TLBs, which surfaces later as OS-invalidation TLB misses.
"""

from __future__ import annotations

import random

from repro.memory.tlb import KERNEL_ASN
from repro.os_model.thread import SoftwareThread, ThreadState


class Scheduler:
    """Single-run-queue scheduler over N hardware contexts."""

    def __init__(
        self,
        n_contexts: int,
        quantum: int,
        rng: random.Random,
        asn_count: int = 64,
    ) -> None:
        if n_contexts < 1:
            raise ValueError("need at least one hardware context")
        if asn_count < 2:
            raise ValueError("need at least two ASNs (kernel + one user)")
        self.n_contexts = n_contexts
        self.quantum = quantum
        self.rng = rng
        self.run_queue: list[SoftwareThread] = []
        self.current: list[SoftwareThread | None] = [None] * n_contexts
        self.idle: list[SoftwareThread | None] = [None] * n_contexts
        self.quantum_end = [0] * n_contexts
        # ASN allocation: slot 0 is the kernel's global ASN.
        self.asn_count = asn_count
        self._asn_owner: list[object | None] = [None] * asn_count
        self._next_asn = 1
        self.asn_recycles = 0
        self.switches = 0
        #: Count of priority-0 (software-interrupt-level) threads waiting.
        self._high_ready = 0
        #: Set by MiniDUX: called with (ctx, old, new) on every switch.
        self.on_switch = None
        #: Set by MiniDUX: flushes an ASN from the shared TLBs.
        self.flush_asn = None

    # -- thread admission -----------------------------------------------------

    def set_idle_thread(self, ctx: int, thread: SoftwareThread) -> None:
        """Install the per-context idle thread."""
        thread.bound_context = ctx
        self.idle[ctx] = thread

    def make_ready(self, thread: SoftwareThread) -> None:
        """Enqueue a runnable thread (idempotent)."""
        if thread.state is ThreadState.DONE:
            return
        if thread in self.run_queue or thread in self.current:
            thread.wake()
            return
        thread.wake()
        if thread.state is ThreadState.READY:
            self.run_queue.append(thread)
            if thread.priority == 0:
                self._high_ready += 1

    # -- ASN management --------------------------------------------------------

    def assign_asn(self, process) -> bool:
        """Ensure *process* holds a valid ASN; True when one was (re)assigned.

        Reassignment may recycle another process's ASN, flushing its entries
        from the shared TLBs (the SMT-aware assignment path the paper added).
        """
        if process.asn > 0 and self._asn_owner[process.asn] is process:
            return False
        # Pick the next slot whose owner is not currently on a context --
        # recycling a *running* process's ASN would corrupt its live
        # translations (this is the multi-thread-safe assignment the paper's
        # OS modification introduces).
        asn = None
        for _ in range(self.asn_count - 1):
            candidate = self._next_asn
            self._next_asn += 1
            if self._next_asn >= self.asn_count:
                self._next_asn = 1
            owner = self._asn_owner[candidate]
            if owner is None or not self._owner_running(owner):
                asn = candidate
                break
        if asn is None:  # every ASN is live; extremely oversubscribed
            asn = self._next_asn
            self._next_asn = 1 if self._next_asn + 1 >= self.asn_count else self._next_asn + 1
        victim = self._asn_owner[asn]
        if victim is not None and victim is not process:
            victim.asn = -1
            self.asn_recycles += 1
            if self.flush_asn is not None:
                self.flush_asn(asn)
        if asn == KERNEL_ASN:  # pragma: no cover - slot 0 never allocated
            raise RuntimeError("attempted to allocate the kernel ASN")
        self._asn_owner[asn] = process
        process.asn = asn
        return True

    def _owner_running(self, process) -> bool:
        """True when some context is currently running *process*."""
        return any(t is not None and t.process is process for t in self.current)

    # -- dispatch ---------------------------------------------------------------

    def quantum_expired(self, ctx: int, now: int) -> bool:
        """True when the thread on *ctx* has exhausted its time slice."""
        return now >= self.quantum_end[ctx]

    def should_resched(self, ctx: int, now: int) -> bool:
        """Cheap per-delivery check for whether *ctx* needs a new thread."""
        thread = self.current[ctx]
        if thread is None or not thread.runnable:
            return True
        if thread is self.idle[ctx] and self.run_queue:
            return True
        if (
            self._high_ready > 0
            and thread.priority > 0
            and not any(fr.lock_held for fr in thread.frames)
        ):
            # A software-interrupt-level thread (netisr) preempts timeshare
            # work immediately, as on Digital Unix.
            return True
        if now >= self.quantum_end[ctx] and self.run_queue:
            # Preempt only outside spinlock-protected frames.
            return not any(fr.lock_held for fr in thread.frames)
        return False

    def pick_next(self, ctx: int) -> SoftwareThread:
        """Pop the next runnable thread for *ctx* (the idle thread if none)."""
        queue = self.run_queue
        if self._high_ready > 0:
            for i, thread in enumerate(queue):
                if thread.runnable and thread.priority == 0 and thread.bound_context in (None, ctx):
                    del queue[i]
                    self._high_ready -= 1
                    return thread
            self._high_ready = 0  # stale count (woken thread raced away)
        for i, thread in enumerate(queue):
            if thread.runnable and thread.bound_context in (None, ctx):
                del queue[i]
                if thread.priority == 0 and self._high_ready > 0:
                    self._high_ready -= 1
                return thread
        idle = self.idle[ctx]
        if idle is None:
            raise RuntimeError(f"context {ctx} has no idle thread installed")
        return idle

    def install(self, ctx: int, thread: SoftwareThread, now: int) -> SoftwareThread | None:
        """Make *thread* current on *ctx*; returns the displaced thread."""
        old = self.current[ctx]
        if old is thread:
            self.quantum_end[ctx] = now + self.quantum
            return None
        if old is not None:
            if old.state is ThreadState.RUNNING:
                old.state = ThreadState.READY
            if old.runnable and old is not self.idle[ctx]:
                self.run_queue.append(old)
        self.current[ctx] = thread
        thread.state = ThreadState.RUNNING
        self.quantum_end[ctx] = now + self.quantum
        self.switches += 1
        if self.on_switch is not None:
            self.on_switch(ctx, old, thread)
        return old

    # -- introspection -----------------------------------------------------

    @property
    def runnable_count(self) -> int:
        """Threads ready to run (excluding those currently on contexts)."""
        return sum(1 for t in self.run_queue if t.runnable)
