"""Virtual-address-space layout.

Every process gets a disjoint user range (so distinct address spaces never
alias in the virtually-indexed cache proxy), the kernel owns one shared
virtual range mapped with the global ASN, and physical addresses live in
their own range and bypass the DTLB entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.data import PAGE_SIZE, Region
from repro.memory.tlb import KERNEL_ASN

#: Base of the kernel's virtual range.
KERNEL_VIRT_BASE = 0xFFFF_0000_0000
#: Base of the direct-mapped physical range (DTLB-bypassing accesses).
PHYS_BASE = 0x8_0000_0000_0000
#: Spacing between user address spaces.
_USER_STRIDE = 0x1_0000_0000
_USER_BASE = 0x10_0000_0000


def user_base(pid: int) -> int:
    """Base virtual address of process *pid*'s user range."""
    if pid < 0:
        raise ValueError("pid must be non-negative")
    return _USER_BASE + pid * _USER_STRIDE


def is_kernel_address(addr: int) -> bool:
    """True for addresses in the kernel's shared virtual range."""
    return addr >= KERNEL_VIRT_BASE


@dataclass
class AddressSpace:
    """One process's address space: an ASN plus its user regions.

    The ASN is assigned by the scheduler's ASN allocator and may change over
    the process's life when ASNs are recycled (which flushes the old ASN's
    TLB entries -- an OS-invalidation miss source).
    """

    pid: int
    name: str
    asn: int = -1  # unassigned until first scheduled
    regions: list[Region] = field(default_factory=list)

    @property
    def base(self) -> int:
        """Base of this process's user virtual range."""
        return user_base(self.pid)

    def region(self, suffix: str, offset: int, n_pages: int, hot_pages: int, **kwargs) -> Region:
        """Create (and register) a region at ``base + offset``."""
        if offset % PAGE_SIZE:
            raise ValueError("region offset must be page aligned")
        r = Region(f"{self.name}:{suffix}", self.base + offset, n_pages, hot_pages, **kwargs)
        self.regions.append(r)
        return r

    def asn_for(self, addr: int) -> int:
        """The ASN governing a translation of *addr* from this process."""
        return KERNEL_ASN if is_kernel_address(addr) else self.asn


@dataclass(frozen=True)
class KernelLayout:
    """Named offsets for the kernel's shared virtual and physical regions.

    Instances only carve out address ranges; the kernel model decides the
    working-set parameters of each region it instantiates.
    """

    virt_base: int = KERNEL_VIRT_BASE
    phys_base: int = PHYS_BASE

    def virt(self, index: int) -> int:
        """Base address of the *index*-th kernel virtual region slot."""
        return self.virt_base + index * 0x400_0000  # 64MB apart

    def phys(self, index: int) -> int:
        """Base address of the *index*-th physical region slot."""
        return self.phys_base + index * 0x400_0000
