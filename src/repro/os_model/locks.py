"""Kernel spin locks.

Digital Unix is SMP-synchronized; on an SMT those spin locks serialize
kernel threads that now run *simultaneously*.  The paper reports spinning
below 1.2% of cycles for SPECInt and below 4.5% for Apache; here, a thread
whose next kernel frame needs a held lock emits synchronization-unit
instructions (load-locked/store-conditional loops) until the holder
releases, so the spin fraction is emergent and measurable.
"""

from __future__ import annotations


class LockTable:
    """Named kernel locks with simple test-and-set semantics."""

    #: Locks referenced by the syscall catalog and kernel services.
    DEFAULT_LOCKS = ("runq", "vfs", "socket", "vm", "proc", "net")

    def __init__(self, names: tuple[str, ...] = DEFAULT_LOCKS) -> None:
        self._holder: dict[str, int | None] = {n: None for n in names}
        self.acquisitions: dict[str, int] = {n: 0 for n in names}
        self.contentions: dict[str, int] = {n: 0 for n in names}

    def acquire(self, name: str, tid: int) -> bool:
        """Try to take *name* for thread *tid*; False when held by another."""
        holder = self._holder[name]
        if holder is None or holder == tid:
            self._holder[name] = tid
            self.acquisitions[name] += 1
            return True
        self.contentions[name] += 1
        return False

    def release(self, name: str, tid: int) -> None:
        """Release *name*; a release by a non-holder is a model bug."""
        holder = self._holder[name]
        if holder != tid:
            raise RuntimeError(f"lock {name!r} released by {tid}, held by {holder}")
        self._holder[name] = None

    def holder(self, name: str) -> int | None:
        """Thread currently holding *name*, or None."""
        return self._holder[name]

    def contention_rate(self, name: str) -> float:
        """Fraction of acquisition attempts that found the lock held."""
        attempts = self.acquisitions[name] + self.contentions[name]
        return self.contentions[name] / attempts if attempts else 0.0
