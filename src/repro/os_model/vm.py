"""Kernel virtual-memory system: page allocation and MM incursion counts.

The paper's Figure 3 counts *incursions into kernel memory-management code*
by type, with page allocation the majority during SPECInt start-up.  Here a
DTLB miss on a never-touched page takes the allocation path (a much longer
kernel service than a plain refill), so MM activity declines naturally as
working sets stop growing -- the start-up -> steady-state transition of
Figures 1-4 is emergent, not scripted.

Instruction-page remaps additionally force an I-cache flush, which the paper
identifies as the dominant source of OS-induced instruction misses for
SPECInt.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.isa.data import PAGE_SHIFT
from repro.os_model.address_space import is_kernel_address


class VMSystem:
    """Page-allocation state and memory-management accounting."""

    #: Incursion types reported for Figure 3.
    INCURSION_TYPES = (
        "page_allocation",
        "mmap_map",
        "mmap_unmap",
        "fault_other",
        "pageout",
    )

    def __init__(self, rng: random.Random, icache_flush_prob: float = 0.03) -> None:
        self.rng = rng
        #: Probability that a page allocation is an instruction-page remap
        #: that forces an I-cache flush.
        self.icache_flush_prob = icache_flush_prob
        self._allocated: set[tuple[int, int]] = set()
        self.incursions: dict[str, int] = {t: 0 for t in self.INCURSION_TYPES}
        self.pages_allocated = 0
        #: Observer called with the incursion kind on every MM-code entry;
        #: the kernel wires this to the event bus (``vm`` events on the
        #: trace timeline).  None = unobserved, zero cost.
        self.on_incursion: Callable[[str], None] | None = None

    def needs_allocation(self, pid: int, addr: int) -> bool:
        """True when *addr* belongs to a never-touched user page.

        Kernel pages are wired at boot and never take the allocation path.
        """
        if is_kernel_address(addr):
            return False
        return (pid, addr >> PAGE_SHIFT) not in self._allocated

    def allocate(self, pid: int, addr: int, kind: str = "page_allocation") -> bool:
        """Allocate the page under *addr*; returns True when an I-cache
        flush (instruction-page remap) should follow."""
        if kind not in self.incursions:
            raise ValueError(f"unknown MM incursion type {kind!r}")
        self._allocated.add((pid, addr >> PAGE_SHIFT))
        self.incursions[kind] += 1
        self.pages_allocated += 1
        if self.on_incursion is not None:
            self.on_incursion(kind)
        return self.rng.random() < self.icache_flush_prob

    def record_incursion(self, kind: str) -> None:
        """Count an MM entry that does not allocate (protection fault &c.)."""
        if kind not in self.incursions:
            raise ValueError(f"unknown MM incursion type {kind!r}")
        self.incursions[kind] += 1
        if self.on_incursion is not None:
            self.on_incursion(kind)

    def release_range(self, pid: int, base: int, n_pages: int) -> int:
        """munmap: forget allocations so re-maps re-fault (region reuse)."""
        released = 0
        vpn0 = base >> PAGE_SHIFT
        for vpn in range(vpn0, vpn0 + n_pages):
            if (pid, vpn) in self._allocated:
                self._allocated.discard((pid, vpn))
                released += 1
        self.incursions["mmap_unmap"] += 1
        if self.on_incursion is not None:
            self.on_incursion("mmap_unmap")
        return released

    @property
    def total_incursions(self) -> int:
        """Total MM-code entries (the denominator of Figure 3)."""
        return sum(self.incursions.values())
