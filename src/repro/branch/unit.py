"""The front-end branch unit: predictor + BTB + return stacks combined.

The unit implements the paper's fetch-time prediction protocol:

* conditional branches get a direction from the McFarling predictor; a
  predicted-taken branch needs a BTB hit for its target, and **falls back to
  the fall-through path on a BTB miss** (which is why the kernel's high BTB
  miss rate does not translate into an equally high net misprediction rate);
* unconditional direct branches and calls resolve their target in decode --
  they exercise the BTB but do not cause squashes;
* indirect jumps require a correct BTB target; returns are predicted by the
  per-context return-address stack;
* PAL entry/return are precise trap redirections handled by the core, not
  predicted here.

Training happens at branch resolution, on correct-path instructions only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.btb import BranchTargetBuffer
from repro.branch.mcfarling import McFarlingPredictor
from repro.branch.ras import ReturnAddressStack
from repro.isa.instruction import Instruction
from repro.isa.types import InstrType
from repro.memory.classify import mode_kind


@dataclass(frozen=True)
class Prediction:
    """Front-end prediction outcome for one control transfer."""

    taken: bool
    next_pc: int
    mispredicted: bool
    #: True when this was a conditional direction prediction (the population
    #: the paper's "branch misprediction rate" is computed over).
    conditional: bool
    direction_wrong: bool


class BranchUnit:
    """Prediction and training facade used by the fetch stage."""

    def __init__(self, n_contexts: int, ras_depth: int = 12,
                 btb_entries: int = 1024, btb_assoc: int = 4,
                 per_context_history: bool = False) -> None:
        self.predictor = McFarlingPredictor(
            n_contexts=n_contexts, per_context_history=per_context_history)
        self.btb = BranchTargetBuffer(btb_entries, btb_assoc)
        self.ras = [ReturnAddressStack(ras_depth) for _ in range(n_contexts)]
        # Conditional direction-prediction stats split by user/kernel.
        self.cond_predictions = [0, 0]
        self.cond_mispredicts = [0, 0]

    def predict(self, instr: Instruction, ctx: int, count: bool = True) -> Prediction:
        """Predict the next PC for *instr* fetched by hardware context *ctx*.

        ``count=False`` suppresses statistics (used when re-predicting an
        instruction that was squashed and replayed, so squash recovery does
        not inflate prediction or BTB counters).
        """
        itype = instr.itype
        pc = instr.pc
        kind = mode_kind(instr.mode)
        fallthrough = pc + 4
        actual_next = instr.target

        if itype is InstrType.COND_BRANCH:
            pred_taken = self.predictor.predict(pc, ctx)
            # The BTB is probed for every branch at fetch (it is what
            # identifies the instruction as a branch and supplies the taken
            # target); only a predicted-taken branch *uses* the target.
            if count:
                target = self.btb.lookup(pc, instr.thread_id, kind)
            else:
                target = self.btb.peek(pc)
            if pred_taken:
                next_pc = target if target is not None else fallthrough
            else:
                next_pc = fallthrough
            direction_wrong = pred_taken != instr.taken
            if count:
                self.cond_predictions[kind] += 1
                if direction_wrong:
                    self.cond_mispredicts[kind] += 1
            return Prediction(pred_taken, next_pc, next_pc != actual_next, True, direction_wrong)

        if itype is InstrType.UNCOND_BRANCH or itype is InstrType.CALL:
            if count:
                self.btb.lookup(pc, instr.thread_id, kind)
            # Direct targets resolve in decode; no squash either way.
            if itype is InstrType.CALL:
                self.ras[ctx].push(fallthrough)
            return Prediction(True, actual_next, False, False, False)

        if itype is InstrType.RETURN:
            predicted = self.ras[ctx].pop()
            next_pc = predicted if predicted is not None else fallthrough
            return Prediction(True, next_pc, next_pc != actual_next, False, False)

        if itype is InstrType.INDIRECT_JUMP:
            if count:
                target = self.btb.lookup(pc, instr.thread_id, kind)
            else:
                target = self.btb.peek(pc)
            if target is None:
                return Prediction(True, fallthrough, fallthrough != actual_next, False, False)
            if target != actual_next:
                if count:
                    self.btb.record_target_mispredict(kind)
                return Prediction(True, target, True, False, False)
            return Prediction(True, target, False, False, False)

        # PAL entry/return: precise redirection by the trap hardware.
        return Prediction(True, actual_next, False, False, False)

    def resolve(self, instr: Instruction, ctx: int) -> None:
        """Train the predictor and BTB with a resolved, correct-path branch."""
        itype = instr.itype
        kind = mode_kind(instr.mode)
        if itype is InstrType.COND_BRANCH:
            self.predictor.update(instr.pc, instr.taken, ctx, instr.predicted_taken)
            if instr.taken:
                self.btb.insert(instr.pc, instr.target, instr.thread_id, kind)
        elif itype in (InstrType.UNCOND_BRANCH, InstrType.CALL, InstrType.INDIRECT_JUMP):
            self.btb.insert(instr.pc, instr.target, instr.thread_id, kind)
        # Returns train nothing: the RAS was updated speculatively at fetch.

    def clear_context(self, ctx: int) -> None:
        """Reset per-context state when a context switches software threads."""
        self.ras[ctx].clear()

    def register_probes(self, registry) -> None:
        """Register the branch layer's probe subtree (``branch.*``)."""
        self.btb.register_probes(registry, "branch.btb")
        for k, kind in enumerate(("user", "kernel")):
            registry.derive(f"branch.cond.predictions.{kind}",
                            lambda k=k: self.cond_predictions[k])
            registry.derive(f"branch.cond.mispredicts.{kind}",
                            lambda k=k: self.cond_mispredicts[k])

    def misprediction_rate(self, kind: int | None = None) -> float:
        """Conditional direction misprediction rate."""
        if kind is None:
            preds = sum(self.cond_predictions)
            bad = sum(self.cond_mispredicts)
        else:
            preds = self.cond_predictions[kind]
            bad = self.cond_mispredicts[kind]
        return bad / preds if preds else 0.0
