"""Branch-prediction substrate: McFarling hybrid predictor, branch target
buffer, and per-context return-address stacks, combined by
:class:`~repro.branch.unit.BranchUnit`.
"""

from repro.branch.mcfarling import McFarlingPredictor
from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack
from repro.branch.unit import BranchUnit, Prediction

__all__ = [
    "McFarlingPredictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "BranchUnit",
    "Prediction",
]
