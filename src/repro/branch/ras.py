"""Per-context return-address stacks.

SMT replicates subroutine-return prediction per hardware context (one of the
paper's listed per-context mechanisms), so each context owns a small
circular stack: calls push their return PC, returns pop a predicted target.
"""

from __future__ import annotations


class ReturnAddressStack:
    """A fixed-depth return-address predictor for one hardware context."""

    def __init__(self, depth: int = 12) -> None:
        if depth < 1:
            raise ValueError("return stack needs depth >= 1")
        self.depth = depth
        self._stack: list[int] = []
        self.pushes = 0
        self.pops = 0
        self.underflows = 0

    def push(self, return_pc: int) -> None:
        """Record the return address of a call."""
        if len(self._stack) >= self.depth:
            # Circular overwrite: drop the oldest entry.
            del self._stack[0]
        self._stack.append(return_pc)
        self.pushes += 1

    def pop(self) -> int | None:
        """Predict the target of a return; None when the stack is empty."""
        self.pops += 1
        if self._stack:
            return self._stack.pop()
        self.underflows += 1
        return None

    def clear(self) -> None:
        """Discard all entries (context reassigned to a new thread)."""
        self._stack.clear()

    def __len__(self) -> int:
        return len(self._stack)
