"""McFarling-style hybrid (tournament) conditional-branch predictor.

Table 1's configuration: a local predictor (4K-entry prediction table indexed
through a 2K-entry per-branch history table) and a global predictor (8K
two-bit counters indexed by global history) arbitrated by an 8K-entry
selection table.  This is the predictor family the Alpha 21264 shipped with.

On an SMT the global history register is a *shared* structure in the paper's
model; interleaved fetch from many threads scrambles it, which is part of why
the SMT misprediction rate exceeds the superscalar's on the same workload
(Table 4: 9.3% vs 5.0%).  The register here is likewise shared by default;
pass ``per_context_history`` to ablate that choice.
"""

from __future__ import annotations


def _counter_update(counter: int, taken: bool) -> int:
    """Saturating two-bit counter update."""
    if taken:
        return counter + 1 if counter < 3 else 3
    return counter - 1 if counter > 0 else 0


class McFarlingPredictor:
    """Hybrid local/global predictor with a choice table."""

    def __init__(
        self,
        local_hist_entries: int = 2048,
        local_pred_entries: int = 4096,
        global_entries: int = 8192,
        choice_entries: int = 8192,
        n_contexts: int = 1,
        per_context_history: bool = False,
    ) -> None:
        for n in (local_hist_entries, local_pred_entries, global_entries, choice_entries):
            if n & (n - 1) or n < 2:
                raise ValueError("predictor table sizes must be powers of two")
        self._lh_mask = local_hist_entries - 1
        self._lp_mask = local_pred_entries - 1
        self._g_mask = global_entries - 1
        self._c_mask = choice_entries - 1
        self._local_hist = [0] * local_hist_entries
        self._local_pred = [1] * local_pred_entries  # weakly not-taken
        self._global_pred = [1] * global_entries
        self._choice = [2] * choice_entries  # weakly prefer global
        self.per_context_history = per_context_history
        self._ghr = [0] * (n_contexts if per_context_history else 1)
        self.predictions = 0
        self.mispredictions = 0

    def _ghr_of(self, ctx: int) -> int:
        return self._ghr[ctx if self.per_context_history else 0]

    def predict(self, pc: int, ctx: int = 0) -> bool:
        """Predict the direction of the conditional branch at *pc*."""
        word = pc >> 2
        lh = self._local_hist[word & self._lh_mask]
        local = self._local_pred[lh & self._lp_mask] >= 2
        ghr = self._ghr_of(ctx)
        g_index = (ghr ^ word) & self._g_mask
        global_ = self._global_pred[g_index] >= 2
        use_global = self._choice[ghr & self._c_mask] >= 2
        return global_ if use_global else local

    def update(self, pc: int, taken: bool, ctx: int = 0, predicted: bool | None = None) -> None:
        """Train all tables with the resolved outcome of the branch at *pc*."""
        word = pc >> 2
        lh_index = word & self._lh_mask
        lh = self._local_hist[lh_index]
        lp_index = lh & self._lp_mask
        local_correct = (self._local_pred[lp_index] >= 2) == taken
        ghr = self._ghr_of(ctx)
        g_index = (ghr ^ word) & self._g_mask
        global_correct = (self._global_pred[g_index] >= 2) == taken

        self._local_pred[lp_index] = _counter_update(self._local_pred[lp_index], taken)
        self._global_pred[g_index] = _counter_update(self._global_pred[g_index], taken)
        if local_correct != global_correct:
            c_index = ghr & self._c_mask
            self._choice[c_index] = _counter_update(self._choice[c_index], global_correct)

        self._local_hist[lh_index] = ((lh << 1) | taken) & self._lp_mask
        slot = ctx if self.per_context_history else 0
        self._ghr[slot] = ((ghr << 1) | taken) & self._c_mask

        self.predictions += 1
        if predicted is not None and predicted != taken:
            self.mispredictions += 1

    @property
    def misprediction_rate(self) -> float:
        """Fraction of trained conditional branches that were mispredicted."""
        return self.mispredictions / self.predictions if self.predictions else 0.0
