"""Branch target buffer with ownership-classified misses.

1K entries, 4-way set associative (Table 1).  A lookup misses when the site
is absent; a *target misprediction* occurs when the site is present but its
stored target no longer matches (the paper highlights kernel indirect jumps
that "repeatedly change target address").  Both are counted; miss causes are
classified with the same ownership scheme as the caches so that the BTB
columns of Tables 3 and 7 can be produced.

On a BTB miss for a predicted-taken conditional branch, the front end falls
back to the fall-through path -- the behavior the paper credits for the
kernel's surprisingly good net prediction despite a 75% kernel BTB miss rate.
"""

from __future__ import annotations

from repro.memory.cache import placement_index
from repro.memory.classify import MissCause, MissStats

_INVALIDATED = -2


class _Entry:
    __slots__ = ("target", "owner_tid", "owner_kind")

    def __init__(self, target: int, owner_tid: int, owner_kind: int) -> None:
        self.target = target
        self.owner_tid = owner_tid
        self.owner_kind = owner_kind


class BranchTargetBuffer:
    """Set-associative BTB keyed by branch PC."""

    def __init__(self, entries: int = 1024, assoc: int = 4) -> None:
        if entries % assoc:
            raise ValueError("BTB entries must divide evenly into ways")
        self.n_sets = entries // assoc
        if self.n_sets & (self.n_sets - 1):
            raise ValueError("BTB set count must be a power of two")
        self.assoc = assoc
        self._mask = self.n_sets - 1
        self._sets: list[dict[int, _Entry]] = [dict() for _ in range(self.n_sets)]
        self._evicted: dict[int, tuple[int, int]] = {}
        self._seen: set[int] = set()
        self.stats = MissStats()
        self.target_mispredicts = [0, 0]  # by accessor kind

    def peek(self, pc: int) -> int | None:
        """Stat-free target lookup (used when re-predicting replayed
        instructions so squash recovery does not inflate BTB statistics)."""
        word = pc >> 2
        entry = self._sets[placement_index(word) & self._mask].get(word)
        return entry.target if entry is not None else None

    def lookup(self, pc: int, tid: int, kind: int) -> int | None:
        """Look up *pc*; return the stored target or None on miss."""
        word = pc >> 2
        s = self._sets[placement_index(word) & self._mask]
        entry = s.get(word)
        self.stats.accesses[kind] += 1
        if entry is not None:
            del s[word]
            s[word] = entry  # LRU refresh
            return entry.target
        self._classify_miss(word, tid, kind)
        return None

    def _classify_miss(self, word: int, tid: int, kind: int) -> None:
        stats = self.stats
        if word not in self._seen:
            stats.record_miss(kind, MissCause.COMPULSORY)
            return
        record = self._evicted.get(word)
        if record is None:
            stats.record_miss(kind, MissCause.INVALIDATION)
            return
        evictor_tid, evictor_kind = record
        if evictor_tid == _INVALIDATED:
            stats.record_miss(kind, MissCause.INVALIDATION)
        elif kind != evictor_kind:
            stats.record_miss(kind, MissCause.USER_KERNEL)
        elif tid == evictor_tid:
            stats.record_miss(kind, MissCause.INTRATHREAD)
        else:
            stats.record_miss(kind, MissCause.INTERTHREAD)

    def record_target_mispredict(self, kind: int) -> None:
        """Count a present-but-stale-target misprediction."""
        self.target_mispredicts[kind] += 1

    def insert(self, pc: int, target: int, tid: int, kind: int) -> None:
        """Install or update the entry for the control transfer at *pc*."""
        word = pc >> 2
        s = self._sets[placement_index(word) & self._mask]
        entry = s.get(word)
        if entry is not None:
            entry.target = target
            entry.owner_tid = tid
            entry.owner_kind = kind
            return
        if len(s) >= self.assoc:
            victim = next(iter(s))
            del s[victim]
            self._evicted[victim] = (tid, kind)
        s[word] = _Entry(target, tid, kind)
        self._seen.add(word)

    def flush_all(self) -> int:
        """Invalidate the whole BTB (not used by the default OS model)."""
        dropped = 0
        for s in self._sets:
            for word in s:
                self._evicted[word] = (_INVALIDATED, 0)
                dropped += 1
            s.clear()
        return dropped

    def register_probes(self, registry, prefix: str) -> None:
        """Expose lookup/miss/stale-target counters as derived probes."""
        from repro.obs.registry import register_miss_stats

        register_miss_stats(registry, prefix, self.stats)
        for k, kind in enumerate(("user", "kernel")):
            registry.derive(f"{prefix}.target_mispredict.{kind}",
                            lambda k=k: self.target_mispredicts[k])

    def miss_rate(self, kind: int | None = None) -> float:
        """Lookup miss rate, including stale-target mispredictions.

        This is the quantity the paper's tables call the BTB "miss" or
        "misprediction" rate: the fraction of lookups that failed to supply
        the correct target.
        """
        if kind is None:
            acc = sum(self.stats.accesses)
            bad = sum(self.stats.misses) + sum(self.target_mispredicts)
        else:
            acc = self.stats.accesses[kind]
            bad = self.stats.misses[kind] + self.target_mispredicts[kind]
        return bad / acc if acc else 0.0
