"""Command-line interface.

::

    python -m repro prefetch --workers 4          # warm the run store
    python -m repro run specint --cpu smt --instructions 200000 --progress
    python -m repro run specint --mode fast --stride 8
    python -m repro run specint --mode sampled --warmup 100000 \
        --sample 180000:20000 --checkpoint
    python -m repro table 4
    python -m repro figure 6
    python -m repro report --out EXPERIMENTS_GENERATED.md
    python -m repro prefetch --retries 2 --timeout 600 --keep-going
    python -m repro cache ls
    python -m repro cache ls --verify
    python -m repro cache gc --dry-run
    python -m repro cache clear
    python -m repro chaos --json chaos.json
    python -m repro serve --spec-file sweep.json --workers 4
    python -m repro serve --resume
    python -m repro lint --json findings.json
    python -m repro list
    python -m repro counters specint --grep mem.l2
    python -m repro counters specint --against specint-ss-full
    python -m repro diff specint-smt-app specint-smt-full --seeds 3
    python -m repro flame apache --out apache.folded
    python -m repro diff apache-ss-full apache-smt-full --flame
    python -m repro bench --check
    python -m repro trace specint --out trace.json
    python -m repro profile specint

``table`` and ``figure`` regenerate one of the paper's exhibits from the
canonical runs.  ``counters`` reads the hierarchical probe tree out of a
stored artifact (``--against`` diffs it against a second stored run);
``diff`` structurally compares two runs probe by probe, with optional
repeated-seed noise filtering (``--flame`` compares call-path
attribution tables instead); ``flame`` folds a run's call-path cycle
attribution into flamegraph.pl/speedscope input; ``bench`` measures the
simulator's own
speed on standardized scenarios, writes ``BENCH_<scenario>.json``
trajectory files, and gates regressions with ``--check``; ``trace``
re-runs a workload with the event bus attached and exports a Chrome
``trace_event`` file (open in Perfetto / ``chrome://tracing``);
``profile`` times the simulator's own components (see
``docs/observability.md``); ``lint`` runs the AST-based invariant
checks -- determinism, probe hygiene, schema/fingerprint drift -- and
``cache ls --verify`` re-fingerprints every stored artifact (see
``docs/static-analysis.md``); ``chaos`` runs the deterministic
fault-injection matrix against the supervised run engine and ``prefetch
--retries/--timeout/--keep-going`` supervise real sweeps; ``serve`` runs
sweeps as a resilient service -- every job transition goes through a
checksummed write-ahead journal under the store, so a killed sweep
resumes with ``--resume`` instead of restarting, duplicate submits
coalesce by artifact fingerprint, a circuit breaker degrades the
service to read-only under store failures, and SIGTERM drains
gracefully (see ``docs/robustness.md``).  Runs resolve through the content-addressed
on-disk store (default ``.repro_cache/``, override with
``REPRO_CACHE_DIR``), so only the first invocation *anywhere* pays the
simulation cost; ``REPRO_BUDGET_MULT`` scales the instruction budgets
(and is part of the store key).  ``prefetch`` executes all eight
canonical runs concurrently, one process per core (``--progress`` shows
an aggregate live line); ``report`` regenerates every exhibit and writes
a combined report.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import figures, metrics, tables
from repro.analysis.experiments import get_run
from repro.analysis.paper import build_comparison, render_markdown


def _parse_sample(text: str | None) -> tuple[int, int] | None:
    """``--sample N:M`` -> (skip, measure) instruction counts."""
    if text is None:
        return None
    parts = text.split(":")
    if len(parts) != 2:
        raise SystemExit(f"bad --sample {text!r}: want N:M "
                         "(e.g. 180000:20000)")
    try:
        skip, measure = int(parts[0]), int(parts[1])
    except ValueError:
        raise SystemExit(f"bad --sample {text!r}: N and M must be integers")
    return skip, measure


def _tier_kwargs(args) -> dict:
    """The execution-tier keyword arguments of a run command."""
    return {"mode": args.mode, "warmup": args.warmup,
            "sample": _parse_sample(args.sample), "stride": args.stride}


def _cmd_run(args) -> int:
    tier = _tier_kwargs(args)
    if args.retries is not None or args.timeout is not None:
        if args.progress_out:
            raise SystemExit(
                "--progress-out cannot be combined with --retries/--timeout")
        from repro.analysis.supervisor import (DEFAULT_RETRIES,
                                               run_many_supervised)

        item = {"workload": args.workload, "cpu": args.cpu,
                "os_mode": args.os_mode, "seed": args.seed}
        if args.instructions is not None:
            item["instructions"] = args.instructions
        item.update({k: v for k, v in tier.items()
                     if v not in (None, "full", 0)})
        retries = args.retries if args.retries is not None else DEFAULT_RETRIES
        results = run_many_supervised(
            [item], retries=retries, timeout=args.timeout,
            force=args.progress, progress=args.progress)
        (result,) = results.values()
        if not result.ok:
            for line in result.transcript:
                print(f"  {line}")
            print(f"run failed after {result.attempts} attempt(s): "
                  f"{result.error}")
            return 1
        rec = result.artifact
    elif args.progress or args.progress_out:
        from repro.analysis import experiments
        from repro.analysis.store import RunStore
        from repro.obs.live import Heartbeat, JsonlSink, TtyProgressSink

        spec = experiments.run_spec(args.workload, args.cpu, args.os_mode,
                                    args.instructions, args.seed, **tier)
        sink = (JsonlSink(args.progress_out) if args.progress_out
                else TtyProgressSink())
        heartbeat = Heartbeat(
            sink, target_instructions=spec["instructions"],
            label=f"{args.workload}-{args.cpu}-{args.os_mode}")
        rec = experiments.execute_spec(spec, heartbeat=heartbeat,
                                      checkpoint=args.checkpoint)
        RunStore().put(rec)
        experiments.register_artifact(rec)
    else:
        rec = get_run(args.workload, args.cpu, args.os_mode,
                      instructions=args.instructions, seed=args.seed,
                      checkpoint=args.checkpoint, **tier)
    w = rec.steady
    shares = metrics.class_shares(w)
    print(f"workload={args.workload} cpu={args.cpu} os_mode={args.os_mode}")
    if rec.mode != "full":
        print(f"execution mode      {rec.mode}")
    print(f"steady-state window: {w['retired']:,} instructions, "
          f"{w['cycles']:,} cycles")
    print(f"IPC                 {metrics.ipc(w):.2f}")
    print("cycles by class     " + "  ".join(
        f"{k}={v * 100:.1f}%" for k, v in shares.items()))
    print(f"L1I miss            {metrics.miss_rate(w, 'L1I') * 100:.2f}%")
    print(f"L1D miss            {metrics.miss_rate(w, 'L1D') * 100:.2f}%")
    print(f"L2 miss             {metrics.miss_rate(w, 'L2') * 100:.2f}%")
    print(f"DTLB miss           {metrics.miss_rate(w, 'DTLB') * 100:.2f}%")
    print(f"branch mispredict   {metrics.cond_mispredict_rate(w) * 100:.2f}%")
    print(f"squashed            {metrics.squash_fraction(w) * 100:.1f}% of fetched")
    _print_sampling(rec)
    return 0


def _print_sampling(rec) -> None:
    """Tiered-run provenance: leg plan, checkpoint reuse, and -- for
    sampled runs -- the whole-run extrapolation with its error bars."""
    sampling = rec.sampling
    if not sampling:
        return
    legs = ", ".join(f"{leg['mode']}:{leg['retired']:,}"
                     for leg in sampling.get("plan", []))
    print(f"leg plan            {legs} (stride {sampling.get('stride')})")
    ckpt = sampling.get("checkpoint")
    if ckpt:
        state = "restored from" if ckpt.get("restored") else "saved to"
        print(f"warm-up checkpoint  {state} store "
              f"({ckpt.get('fingerprint', '')[:12]}@{ckpt.get('boundary')})")
    extra = sampling.get("extrapolated")
    if not extra:
        return
    measured = extra.get("measured_instructions", 0)
    total = rec.total.get("retired", 0) or 1
    print(f"sampled windows     {extra.get('windows')} "
          f"({measured:,} measured instructions, "
          f"{measured / total * 100:.1f}% of run)")
    probes = extra.get("probes", {})
    for name in ("core.retired", "core.cycles", "mem.l1d.miss.user",
                 "mem.l1d.miss.kernel", "mem.l2.miss.kernel"):
        if name in probes:
            estimate, band = probes[name]
            print(f"  ~{name:<18s} {estimate:>14,.1f} +/- {band:,.1f}")


def _table(number: int) -> dict:
    if number == 2:
        return tables.table2(get_run("specint", "smt", "full"))
    if number == 3:
        return tables.table3(get_run("specint", "smt", "full"))
    if number == 4:
        return tables.table4(
            get_run("specint", "smt", "app"), get_run("specint", "smt", "full"),
            get_run("specint", "ss", "app"), get_run("specint", "ss", "full"))
    if number == 5:
        return tables.table5(get_run("apache", "smt", "full"))
    if number == 6:
        return tables.table6(get_run("apache", "smt", "full"),
                             get_run("specint", "smt", "full"),
                             get_run("apache", "ss", "full"))
    if number == 7:
        return tables.table7(get_run("apache", "smt", "full"))
    if number == 8:
        return tables.table8(get_run("apache", "smt", "full"),
                             get_run("apache", "ss", "full"))
    if number == 9:
        return tables.table9(
            get_run("apache", "smt", "omit"), get_run("apache", "smt", "full"),
            get_run("apache", "ss", "omit"), get_run("apache", "ss", "full"))
    raise SystemExit(f"no such table: {number} (the paper has Tables 2-9)")


def _figure(number: int) -> dict:
    specint = lambda: get_run("specint", "smt", "full")  # noqa: E731
    apache = lambda: get_run("apache", "smt", "full")  # noqa: E731
    if number == 1:
        return figures.fig1(specint())
    if number == 2:
        return figures.fig2(specint())
    if number == 3:
        return figures.fig3(specint())
    if number == 4:
        return figures.fig4(specint())
    if number == 5:
        return figures.fig5(apache())
    if number == 6:
        return figures.fig6(apache(), specint())
    if number == 7:
        return figures.fig7(apache())
    raise SystemExit(f"no such figure: {number} (the paper has Figures 1-7)")


def _cmd_table(args) -> int:
    print(_table(args.number)["text"])
    return 0


def _cmd_figure(args) -> int:
    print(_figure(args.number)["text"])
    return 0


def _cmd_prefetch(args) -> int:
    from repro.analysis.runner import prefetch_timed
    from repro.analysis.store import RunStore

    if (args.retries is not None or args.timeout is not None
            or args.keep_going):
        return _prefetch_supervised(args)
    artifacts, elapsed = prefetch_timed(max_workers=args.workers,
                                        force=args.force,
                                        progress=args.progress)
    for label in sorted(artifacts):
        art = artifacts[label]
        print(f"  {label:20s} {art.total['retired']:>12,} instructions "
              f"({art.fingerprint[:12]})")
    print(f"{len(artifacts)} canonical runs ready in {elapsed:.1f}s "
          f"(store: {RunStore().root})")
    return 0


def _prefetch_supervised(args) -> int:
    """``repro prefetch`` with any of --retries/--timeout/--keep-going:
    route through the supervised engine and report per-run outcomes
    (partial results exit nonzero instead of raising)."""
    from repro.analysis.store import RunStore
    from repro.analysis.supervisor import (DEFAULT_RETRIES,
                                           prefetch_timed_supervised)

    retries = args.retries if args.retries is not None else DEFAULT_RETRIES
    results, elapsed = prefetch_timed_supervised(
        retries=retries, timeout=args.timeout, keep_going=args.keep_going,
        max_workers=args.workers, force=args.force, progress=args.progress)
    failed = 0
    for label in sorted(results):
        r = results[label]
        if r.ok:
            src = ("store" if r.from_store
                   else f"{r.attempts} attempt(s)")
            print(f"  {label:20s} {r.artifact.total['retired']:>12,} "
                  f"instructions ({src})")
        else:
            failed += 1
            what = "skipped" if r.skipped else f"FAILED [{r.error_kind}]"
            print(f"  {label:20s} {what}: {r.error}")
    print(f"{len(results) - failed}/{len(results)} canonical runs ready "
          f"in {elapsed:.1f}s (store: {RunStore().root})")
    return 1 if failed else 0


def _cmd_cache(args) -> int:
    from repro.analysis.store import RunStore

    store = RunStore()
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} stored run(s) from {store.root}")
        return 0
    if args.cache_command == "ls" and args.verify:
        return _cache_verify(store)
    if args.cache_command == "gc":
        stale = store.gc(dry_run=args.dry_run)
        tmp = store.collect_tmp(dry_run=args.dry_run)
        if not stale and not tmp:
            print(f"no stale-schema entries or stranded temp files "
                  f"in {store.root}")
            return 0
        verb = "would remove" if args.dry_run else "removed"
        for entry in stale:
            version = ("?" if entry.schema_version is None
                       else f"v{entry.schema_version}")
            print(f"  {entry.label:24s} {version:<4s} {entry.size:>10,} B  "
                  f"{entry.path.name}")
        if stale:
            print(f"{verb} {len(stale)} stale run(s), "
                  f"{sum(e.size for e in stale):,} bytes from {store.root}")
        for path, size in tmp:
            print(f"  {'(interrupted write)':24s} {'':4s} {size:>10,} B  "
                  f"{path.name}")
        if tmp:
            print(f"{verb} {len(tmp)} stranded temp file(s), "
                  f"{sum(size for _, size in tmp):,} bytes "
                  f"from {store.root}")
        return 0
    entries = store.entries()
    quarantined = store.quarantine_entries()
    if not entries:
        print(f"store {store.root} is empty")
        if quarantined:
            print(f"[{len(quarantined)} quarantined corrupt file(s) in "
                  f"{store.root / 'quarantine'}]")
        return 0
    from repro.analysis.artifact import SCHEMA_VERSION
    from repro.core.checkpoint import CHECKPOINT_SCHEMA

    current = {"run": SCHEMA_VERSION, "checkpoint": CHECKPOINT_SCHEMA}
    total = 0
    stale = 0
    checkpoints = 0
    for entry in entries:
        total += entry.size
        if entry.kind == "checkpoint":
            checkpoints += 1
        version = ("?" if entry.schema_version is None
                   else f"v{entry.schema_version}")
        if entry.schema_version != current.get(entry.kind, SCHEMA_VERSION):
            stale += 1
            version += "*"
        flags = f"  [{','.join(entry.flags)}]" if entry.flags else ""
        print(f"  {entry.label:24s} {entry.kind:10s} {version:<4s} "
              f"{entry.created:19s} {entry.size:>10,} B  "
              f"{entry.fingerprint[:16]}  {entry.path.name}{flags}")
    summary = (f"{len(entries) - checkpoints} stored run(s), "
               f"{checkpoints} checkpoint(s), {total:,} bytes "
               f"in {store.root}")
    if stale:
        summary += (f"  [{stale} stale: schema behind current, "
                    "will re-run on next use]")
    if quarantined:
        summary += (f"  [{len(quarantined)} quarantined corrupt file(s) in "
                    f"{store.root / 'quarantine'}]")
    print(summary)
    return 0


def _cache_verify(store) -> int:
    """``repro cache ls --verify``: re-check every stored entry.

    The runtime companion to the lint S-rules, rendered from
    :meth:`~repro.analysis.store.RunStore.verify`: each current-schema
    artifact is re-loaded, its spec re-fingerprinted (MISMATCH = stored
    identity no longer matches its config), and its whole-payload
    checksum re-computed (CHECKSUM = bit rot).  Exits nonzero when any
    entry is bad.
    """
    records = store.verify()
    if not records:
        print(f"store {store.root} is empty")
        return 0
    bad = 0
    checked = 0
    for rec in records:
        status, name = rec["status"], rec["path"].name
        if status == "ok":
            checked += 1
            print(f"  {rec['label']:24s} ok        {rec['detail']}")
        elif status == "SKIP":
            print(f"  {rec['label']:24s} SKIP      {rec['detail']} ({name})")
        else:
            bad += 1
            if status in ("MISMATCH", "CHECKSUM"):
                checked += 1
            print(f"  {rec['label']:24s} {status}  {rec['detail']}  "
                  f"({name})")
    print(f"{checked} verified, {bad} problem(s) in {store.root}")
    return 1 if bad else 0


def _cmd_chaos(args) -> int:
    """``repro chaos``: run the deterministic fault matrix end to end."""
    from repro.faults import chaos

    if args.list:
        for name in chaos.scenario_names():
            print(name)
        return 0
    kwargs = {"seed": args.seed, "names": args.scenario or None}
    for key in ("timeout", "retries", "workers", "instructions"):
        value = getattr(args, key)
        if value is not None:
            kwargs["max_workers" if key == "workers" else key] = value
    try:
        if args.store:
            report = chaos.run_matrix(args.store, **kwargs)
        else:
            import tempfile

            with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
                report = chaos.run_matrix(tmp, **kwargs)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.json:
        import json as _json

        _guard_overwrite(args.json, args.force)
        with open(args.json, "w") as f:
            _json.dump(report.to_json_dict(), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.json}")
    print(report.render())
    return 0 if report.survived else 1


def _cmd_serve(args) -> int:
    """``repro serve``: queue-fed resilient sweep service."""
    from repro.analysis.service import ServiceError, run_service

    specs = None
    if args.spec_file:
        import json as _json

        try:
            with open(args.spec_file) as f:
                specs = _json.load(f)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read spec file: {exc}")
        if not isinstance(specs, list) or not specs:
            raise SystemExit("spec file must hold a non-empty JSON list "
                             "of run specs")
    try:
        report = run_service(
            specs, resume=args.resume, workers=args.workers,
            retries=args.retries, timeout=args.timeout,
            lease_s=args.lease, queue_limit=args.queue_limit,
            priority=args.priority, deadline_s=args.deadline,
            isolation=args.isolation, progress=args.progress,
            sigterm_drain=True)
    except ServiceError as exc:
        raise SystemExit(str(exc))
    if args.json:
        import json as _json

        _guard_overwrite(args.json, args.force)
        with open(args.json, "w") as f:
            _json.dump(report.to_json_dict(), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.json}")
    print(report.render())
    return 0 if report.ok else 1


def _cmd_counters(args) -> int:
    rec = get_run(args.workload, args.cpu, args.os_mode,
                  instructions=args.instructions, seed=args.seed)
    if args.against:
        return _counters_against(args, rec)
    probes = rec.window(args.window).get("probes", {})
    if args.grep:
        pattern = _compile_grep_or_exit(args.grep)
        probes = {k: v for k, v in probes.items() if pattern.search(k)}
    if not probes:
        print(f"no probes match regex {args.grep!r}" if args.grep
              else "artifact carries no probe snapshot (pre-v2 schema?)")
        return 1
    import json as _json

    from repro.obs.registry import snapshot_percentile

    width = max(len(name) for name in probes)
    for name in sorted(probes):
        value = probes[name]
        if isinstance(value, dict):  # histogram snapshot
            pct = "  ".join(
                f"p{int(q * 100)}={snapshot_percentile(value, q):.1f}"
                for q in (0.50, 0.95, 0.99))
            print(f"  {name:<{width}s} {pct}  "
                  f"{_json.dumps(value, sort_keys=True)}")
        elif isinstance(value, float):
            print(f"  {name:<{width}s} {value:>14.3f}")
        else:
            print(f"  {name:<{width}s} {value:>14,}")
    print(f"{len(probes)} probe(s) [{args.window} window] "
          f"{rec.label} ({rec.fingerprint[:12]})")
    return 0


def _counters_against(args, rec) -> int:
    """``repro counters --against``: side-by-side probe deltas."""
    from repro.obs.diff import diff_artifacts

    other = _resolve_run_arg(args.against, args.instructions, args.seed)
    report = diff_artifacts(other, rec, window=args.window, grep=args.grep)
    if not report.deltas:
        print(f"no probes match regex {args.grep!r}" if args.grep
              else "no probes to compare")
        return 1
    print(report.render(show_all=True))
    return 0


def _compile_grep_or_exit(pattern: str):
    """Compile a ``--grep`` regex, turning ``re.error`` into a CLI error.

    Grep patterns are unanchored regexes matched with ``re.search``
    (:func:`repro.obs.diff.compile_grep`): plain prefixes like ``mem.l2``
    keep working, and ``^``/``$`` anchor explicitly when needed.
    """
    from repro.obs.diff import compile_grep

    try:
        return compile_grep(pattern)
    except ValueError as exc:
        raise SystemExit(f"bad --grep: {exc}")


def _resolve_run_arg(text: str, instructions, seed):
    """A diff-side argument as an artifact.

    Accepts a ``workload-cpu-os_mode`` label (resolved through the
    memo/store/execute layers) or a path to a stored artifact JSON file.
    """
    import os as _os

    from repro.analysis.artifact import ArtifactError, RunArtifact

    if text.endswith(".json") or _os.sep in text:
        try:
            return RunArtifact.loads(open(text).read())
        except (OSError, ArtifactError) as exc:
            raise SystemExit(f"cannot load artifact file {text!r}: {exc}")
    parts = text.split("-")
    if len(parts) != 3:
        raise SystemExit(
            f"bad run {text!r}: want workload-cpu-os_mode "
            "(e.g. specint-smt-full) or a path to an artifact .json")
    return get_run(parts[0], parts[1], parts[2],
                   instructions=instructions, seed=seed)


def _cmd_diff(args) -> int:
    from repro.obs.diff import diff_artifacts, diff_runs
    from repro.obs.flame import diff_flame_artifacts, diff_flame_runs
    from repro.obs.timeline import (diff_timeline_artifacts,
                                    diff_timeline_runs, timeline_record)

    if args.timeline and args.flame:
        raise SystemExit("--timeline and --flame are mutually exclusive")
    if args.timeline and args.per_kilo:
        raise SystemExit(
            "--per-kilo does not apply to --timeline: timeline entries "
            "are already rates (shares and per-interval IPC)")
    if args.grep:
        _compile_grep_or_exit(args.grep)
    if args.seeds > 1:
        for text in (args.run_a, args.run_b):
            if text.endswith(".json"):
                raise SystemExit(
                    "--seeds needs run labels, not artifact files "
                    f"(cannot re-seed {text!r})")

        def _side(text):
            parts = text.split("-")
            if len(parts) != 3:
                raise SystemExit(
                    f"bad run {text!r}: want workload-cpu-os_mode")
            return {"workload": parts[0], "cpu": parts[1],
                    "os_mode": parts[2], "instructions": args.instructions,
                    "seed": args.seed}

        if args.timeline:
            report = diff_timeline_runs(
                _side(args.run_a), _side(args.run_b), grep=args.grep,
                seeds=args.seeds, max_workers=args.workers)
        else:
            fn = diff_flame_runs if args.flame else diff_runs
            report = fn(_side(args.run_a), _side(args.run_b),
                        window=args.window, grep=args.grep,
                        seeds=args.seeds, per_kilo=args.per_kilo,
                        max_workers=args.workers)
    else:
        art_a = _resolve_run_arg(args.run_a, args.instructions, args.seed)
        art_b = _resolve_run_arg(args.run_b, args.instructions, args.seed)
        if args.timeline:
            report = diff_timeline_artifacts(art_a, art_b, grep=args.grep)
            if not report.deltas:
                for art in (art_a, art_b):
                    if timeline_record(art) is None:
                        print(f"note: {art.label} carries no probe timeline "
                              "(pre-v7 artifact or telemetry disabled)")
        else:
            fn = diff_flame_artifacts if args.flame else diff_artifacts
            report = fn(art_a, art_b, window=args.window,
                        grep=args.grep, per_kilo=args.per_kilo)
    if args.json:
        import json as _json

        _guard_overwrite(args.json, args.force)
        with open(args.json, "w") as f:
            _json.dump(report.to_json_dict(), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.json}")
    print(report.render(n=args.top, key=args.sort, show_all=args.all))
    return 0


def _cmd_flame(args) -> int:
    """``repro flame``: fold one run's call-path attribution table.

    Prints a ranked call-path table; ``--out`` additionally writes the
    folded-stack file (``path;frames count`` lines) that flamegraph.pl
    and speedscope import directly.
    """
    from repro.obs import flame

    if args.grep:
        _compile_grep_or_exit(args.grep)
    rec = _resolve_run_arg(args.run, args.instructions, args.seed)
    window = rec.window(args.window)
    paths = flame.flame_paths(window)
    if not paths:
        print("artifact window carries no attribution table "
              "(pre-v6 schema? re-run to refresh)")
        return 1
    folded = flame.fold(paths, grep=args.grep)
    if args.grep and not folded:
        print(f"no call paths match regex {args.grep!r}")
        return 1
    if args.out:
        _guard_overwrite(args.out, args.force)
        with open(args.out, "w") as f:
            f.write(folded)
        print(f"wrote {args.out} ({folded.count(chr(10))} folded path(s))")
    if args.json:
        import json as _json

        _guard_overwrite(args.json, args.force)
        payload = {"label": rec.label, "fingerprint": rec.fingerprint,
                   "window": args.window, "grep": args.grep,
                   "attribution": {k: v for k, v in sorted(paths.items())}}
        with open(args.json, "w") as f:
            _json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.json}")
    print(flame.render_table(paths, top=args.top, grep=args.grep))
    print(f"[{args.window} window] {rec.label} ({rec.fingerprint[:12]})")
    dropped = window.get("probes", {}).get("core.events.dropped", 0)
    if dropped:
        print(f"warning: event ring dropped {dropped} event(s) during this "
              "run; span-derived paths may be truncated")
    return 0


def _cmd_timeline(args) -> int:
    """``repro timeline``: render a stored run's interval probe series.

    One sparkline row per derived headline series (interval IPC,
    kernel-cycle share, miss rates, ...), detected phase boundaries, and
    optional CSV/JSON exports of the raw record.
    """
    import json as _json

    from repro.analysis.export import probe_timeline_to_csv
    from repro.analysis.render import sparkline
    from repro.obs import timeline as tl

    if args.grep:
        _compile_grep_or_exit(args.grep)
    rec = _resolve_run_arg(args.run, args.instructions, args.seed)
    record = tl.timeline_record(rec)
    if record is None:
        print(f"{rec.label} carries no probe timeline "
              "(pre-v7 artifact or telemetry disabled; re-run to refresh)")
        return 1
    if args.csv:
        _guard_overwrite(args.csv, args.force)
        probe_timeline_to_csv(record, args.csv)
        print(f"wrote {args.csv} ({record['samples']} sample(s), "
              f"{len(record['columns'])} column(s))")
    if args.json:
        _guard_overwrite(args.json, args.force)
        payload = {"label": rec.label, "fingerprint": rec.fingerprint,
                   "record": record,
                   "phases": tl.detect_phases(record)}
        with open(args.json, "w") as f:
            _json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.json}")

    series = dict(tl.derived_series(record))
    series.update(tl.service_share_series(record))
    if args.probe:
        missing = [p for p in args.probe if p not in series]
        if missing:
            raise SystemExit(
                f"unknown timeline series {missing}; "
                f"available: {', '.join(sorted(series))}")
        series = {name: series[name] for name in args.probe}
    series = tl.filter_series(series, args.grep)
    if not series:
        print(f"no timeline series match regex {args.grep!r}")
        return 1

    interval = record["interval"]
    span = record["samples"] * interval
    print(f"{rec.label} ({rec.fingerprint[:12]})  "
          f"{record['samples']} sample(s) x {interval:,} cycles "
          f"= {span:,} cycles")
    label_w = max(len(name) for name in series)
    for name in sorted(series):
        values = series[name]
        line = sparkline(values, width=args.width)
        lo, hi = min(values), max(values)
        print(f"{name.ljust(label_w)}  {line}  "
              f"min {lo:.3f}  max {hi:.3f}  last {values[-1]:.3f}")
    phases = tl.detect_phases(record)
    if phases:
        print()
        for b in phases:
            print(f"phase @ cycle {b['cycle']:,}: {b['metric']} "
                  f"{b['before']:.3f} -> {b['after']:.3f}")
        warmup = tl.suggest_warmup(record)
        if warmup is not None:
            print(f"suggested sampled-mode warm-up: {warmup:,} instructions "
                  "(first phase boundary)")
    if record["dropped"]:
        print(f"warning: sample cap hit; the last {record['dropped']} "
              "interval(s) were not recorded and the series is truncated "
              "(raise max_samples via Simulation.configure_timeline, or "
              "widen the interval)")
    return 0


def _cmd_bench(args) -> int:
    from repro.obs import baseline

    scenarios = args.scenarios or list(baseline.DEFAULT_SCENARIOS)
    unknown = [s for s in scenarios if s not in baseline.SCENARIOS]
    if unknown:
        raise SystemExit(f"unknown scenario(s) {unknown} "
                         f"(want one of {sorted(baseline.SCENARIOS)})")
    tolerance = (args.tolerance if args.tolerance is not None
                 else baseline.DEFAULT_TOLERANCE)
    exit_code = 0
    for name in scenarios:
        measured = baseline.measure(name, instructions=args.instructions)
        host = measured["host"]
        stats = "  ".join(f"{k}={v:,}" for k, v in sorted(host.items()))
        if not args.check:
            path = baseline.write_baseline(measured, args.dir)
            print(f"{name}: {stats}  -> {path}")
            continue
        stored = baseline.load_baseline(name, args.dir)
        if stored is None:
            path = baseline.write_baseline(measured, args.dir)
            print(f"{name}: no baseline to check against; seeded {path}")
            continue
        regressions, notes = baseline.check(measured, stored,
                                            tolerance=tolerance)
        for note in notes:
            print(f"{name}: note: {note}")
        if regressions:
            exit_code = 1
            print(f"{name}: REGRESSION  {stats}")
            for item in regressions:
                print(f"  {item}")
        else:
            print(f"{name}: ok  {stats}")
            if args.update:
                baseline.write_baseline(measured, args.dir)
    return exit_code


def _guard_overwrite(path: str, force: bool) -> None:
    """Refuse to clobber an existing output file unless --force is given."""
    import os as _os

    if _os.path.exists(path) and not force:
        raise SystemExit(
            f"refusing to overwrite existing {path!r} (use --force)")


def _cmd_trace(args) -> int:
    from repro.analysis.experiments import build_simulation
    from repro.obs.events import EventBus
    from repro.obs.export import to_jsonl, write_chrome_trace

    _guard_overwrite(args.out, args.force)
    sim = build_simulation(args.workload, args.cpu, args.os_mode,
                           seed=args.seed)
    bus = EventBus(capacity=args.capacity)
    sim.attach_events(bus)
    sim.run(max_instructions=args.instructions)
    if args.jsonl:
        with open(args.out, "w") as f:
            f.write(to_jsonl(bus.events) + "\n")
    else:
        write_chrome_trace(args.out, bus.events,
                           n_contexts=sim.machine.cpu.n_contexts)
    kinds = ", ".join(f"{k}={v}" for k, v in sorted(bus.counts().items()))
    print(f"wrote {args.out} ({len(bus)} events: {kinds}; "
          f"{bus.dropped} dropped)")
    if bus.dropped:
        print(f"warning: event ring overflowed; the oldest {bus.dropped} "
              f"event(s) were dropped and the profile is truncated "
              f"(raise --capacity, currently {args.capacity})")
    return 0


def _cmd_profile(args) -> int:
    from repro.analysis.experiments import build_simulation
    from repro.obs.profile import profile_simulation

    if args.out:
        _guard_overwrite(args.out, args.force)
    sim = build_simulation(args.workload, args.cpu, args.os_mode,
                           seed=args.seed)
    prof = profile_simulation(sim, args.instructions)
    text = (prof.render()
            + f"\n\n{sim.stats.retired:,} instructions in "
            f"{sim.stats.cycles:,} cycles "
            f"({args.workload}/{args.cpu}/{args.os_mode})")
    if args.out:
        with open(args.out, "w") as f:
            f.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import build_report

    report = build_report(max_workers=args.workers)
    if args.out:
        report.write(args.out, exhibits_dir=args.exhibits_dir)
        print(f"wrote {args.out} "
              f"({report.shape_criteria_held}/{report.shape_criteria_total} "
              "shape criteria hold)")
    else:
        print(report.text)
    return 0


def _canonical_records() -> dict:
    return {
        "specint-smt-full": get_run("specint", "smt", "full"),
        "specint-smt-app": get_run("specint", "smt", "app"),
        "specint-ss-full": get_run("specint", "ss", "full"),
        "specint-ss-app": get_run("specint", "ss", "app"),
        "apache-smt-full": get_run("apache", "smt", "full"),
        "apache-ss-full": get_run("apache", "ss", "full"),
        "apache-smt-omit": get_run("apache", "smt", "omit"),
    }


def _cmd_compare(args) -> int:
    rows = build_comparison(_canonical_records())
    body = render_markdown(rows)
    if args.out:
        with open(args.out, "w") as f:
            f.write(body + "\n")
        print(f"wrote {args.out}")
    else:
        print(body)
    failed = [r for r in rows if not r.holds]
    print(f"\n{len(rows) - len(failed)}/{len(rows)} shape criteria hold")
    return 1 if failed and args.strict else 0


def _cmd_list(args) -> int:
    print("Canonical runs (workload x cpu x os_mode):")
    for wl in ("specint", "apache"):
        for cpu in ("smt", "ss"):
            modes = ("full", "app") if wl == "specint" else ("full", "omit")
            for mode in modes:
                print(f"  {wl:8s} {cpu:4s} {mode}")
    print("\nExhibits: figures 1-7, tables 2-9 "
          "(Table 1 is the machine configuration; see repro.core.config).")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'An Analysis of Operating System "
                     "Behavior on a Simultaneous Multithreaded Architecture' "
                     "(ASPLOS 2000)"),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one canonical simulation")
    p_run.add_argument("workload", choices=["specint", "apache"])
    p_run.add_argument("--cpu", choices=["smt", "ss"], default="smt")
    p_run.add_argument("--os-mode", choices=["full", "app", "omit"],
                       default="full", dest="os_mode")
    p_run.add_argument("--instructions", type=int, default=None)
    p_run.add_argument("--seed", type=int, default=11)
    p_run.add_argument("--mode", choices=["full", "fast", "sampled"],
                       default="full",
                       help="execution tier: full detail, fast-functional, "
                            "or interval sampling (docs/execution-modes.md)")
    p_run.add_argument("--warmup", type=int, default=0, metavar="N",
                       help="fast-forward the first N instructions before "
                            "the main phase (cache/TLB/predictor warm-up)")
    p_run.add_argument("--sample", default=None, metavar="N:M",
                       help="sampled mode interval: fast-forward N, then "
                            "measure M in detail, repeating")
    p_run.add_argument("--stride", type=int, default=None, metavar="S",
                       help="fast-mode frame subsampling stride "
                            "(default 8; 1 = materialize everything)")
    p_run.add_argument("--checkpoint", action="store_true",
                       help="reuse/save a store-backed warm-up checkpoint "
                            "for tiered runs (execution option only; "
                            "results and store keys are unchanged)")
    p_run.add_argument("--progress", action="store_true",
                       help="execute fresh (even if stored) with a live "
                            "progress line")
    p_run.add_argument("--progress-out", default=None, dest="progress_out",
                       metavar="FILE",
                       help="write JSONL heartbeat samples to FILE instead "
                            "of a progress line (headless runs)")
    p_run.add_argument("--retries", type=int, default=None,
                       help="supervised execution: retry a failed run up "
                            "to N times with backoff")
    p_run.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="supervised execution: terminate the run after "
                            "S seconds per attempt")
    p_run.set_defaults(func=_cmd_run)

    p_table = sub.add_parser("table", help="regenerate one paper table (2-9)")
    p_table.add_argument("number", type=int)
    p_table.set_defaults(func=_cmd_table)

    p_fig = sub.add_parser("figure", help="regenerate one paper figure (1-7)")
    p_fig.add_argument("number", type=int)
    p_fig.set_defaults(func=_cmd_figure)

    p_rep = sub.add_parser("report", help="regenerate every table and figure")
    p_rep.add_argument("--out", default=None)
    p_rep.add_argument("--exhibits-dir", default=None, dest="exhibits_dir",
                       help="also write one file per exhibit here")
    p_rep.add_argument("--workers", type=int, default=None,
                       help="warm missing canonical runs with this many "
                            "processes first")
    p_rep.set_defaults(func=_cmd_report)

    p_pre = sub.add_parser(
        "prefetch",
        help="execute all eight canonical runs in parallel and store them")
    p_pre.add_argument("--workers", type=int, default=None,
                       help="process count (default: one per core)")
    p_pre.add_argument("--force", action="store_true",
                       help="re-run even when the store already has a run")
    p_pre.add_argument("--progress", action="store_true",
                       help="show one aggregate live line while runs execute")
    p_pre.add_argument("--retries", type=int, default=None,
                       help="supervised prefetch: retry each failed run up "
                            "to N times with backoff")
    p_pre.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="supervised prefetch: terminate a run after "
                            "S seconds per attempt")
    p_pre.add_argument("--keep-going", action="store_true", dest="keep_going",
                       help="supervised prefetch: quarantine failing runs "
                            "and finish the rest (partial results)")
    p_pre.set_defaults(func=_cmd_prefetch)

    p_cache = sub.add_parser(
        "cache", help="inspect, garbage-collect, or clear the run store")
    p_cache.add_argument("cache_command", choices=["ls", "gc", "clear"])
    p_cache.add_argument("--dry-run", action="store_true", dest="dry_run",
                         help="gc: list stale entries without deleting them")
    p_cache.add_argument("--verify", action="store_true",
                         help="ls: re-fingerprint every entry and flag "
                              "config/fingerprint mismatches")
    p_cache.set_defaults(func=_cmd_cache)

    p_chaos = sub.add_parser(
        "chaos",
        help="run the deterministic fault-injection matrix end to end")
    p_chaos.add_argument("--scenario", action="append", default=None,
                         metavar="NAME",
                         help="run only this scenario (repeatable; "
                              "see --list)")
    p_chaos.add_argument("--list", action="store_true",
                         help="list scenario names and exit")
    p_chaos.add_argument("--seed", type=int, default=11,
                         help="fault-plan seed (same seed => same "
                              "transcript)")
    p_chaos.add_argument("--store", default=None, metavar="DIR",
                         help="root for per-scenario sub-stores "
                              "(default: a temp dir)")
    p_chaos.add_argument("--timeout", type=float, default=None, metavar="S",
                         help="per-attempt timeout inside scenarios")
    p_chaos.add_argument("--retries", type=int, default=None,
                         help="retry budget inside scenarios (default 2)")
    p_chaos.add_argument("--workers", type=int, default=None,
                         help="worker processes per scenario (default 2)")
    p_chaos.add_argument("--instructions", type=int, default=None,
                         help="instruction budget per chaos run")
    p_chaos.add_argument("--json", default=None, metavar="FILE",
                         help="also write the machine-readable report here")
    p_chaos.add_argument("--force", action="store_true",
                         help="overwrite an existing --json file")
    p_chaos.set_defaults(func=_cmd_chaos)

    p_serve = sub.add_parser(
        "serve",
        help="resilient sweep service: durable job queue, circuit "
             "breaker, graceful drain, crash recovery")
    p_serve.add_argument("--spec-file", default=None, metavar="FILE",
                         help="JSON list of run specs to admit (default: "
                              "the eight canonical runs)")
    p_serve.add_argument("--resume", action="store_true",
                         help="replay the journal of a dead incarnation: "
                              "complete orphaned claims whose artifact "
                              "landed, requeue the rest")
    p_serve.add_argument("--workers", type=int, default=1,
                         help="worker process slots (default 1)")
    p_serve.add_argument("--retries", type=int, default=2,
                         help="retry budget per job (default 2)")
    p_serve.add_argument("--timeout", type=float, default=None, metavar="S",
                         help="terminate a run after S seconds per attempt")
    p_serve.add_argument("--lease", type=float, default=60.0, metavar="S",
                         help="revoke a claim whose worker has not "
                              "heartbeat for S seconds (default 60)")
    p_serve.add_argument("--queue-limit", type=int, default=256,
                         dest="queue_limit", metavar="N",
                         help="pending-backlog bound; submits beyond it "
                              "are shed (default 256)")
    p_serve.add_argument("--priority", type=int, default=0,
                         help="priority for this batch of submits "
                              "(higher claims first)")
    p_serve.add_argument("--deadline", type=float, default=None, metavar="S",
                         help="total latency budget per job from submit; "
                              "expired jobs are quarantined unexecuted")
    p_serve.add_argument("--isolation",
                         choices=("auto", "process", "inline"),
                         default="auto",
                         help="worker isolation (default: processes when "
                              "available)")
    p_serve.add_argument("--progress", action="store_true",
                         help="show one aggregate live line while the "
                              "service runs")
    p_serve.add_argument("--json", default=None, metavar="FILE",
                         help="also write the service report here")
    p_serve.add_argument("--force", action="store_true",
                         help="overwrite an existing --json file")
    p_serve.set_defaults(func=_cmd_serve)

    p_cnt = sub.add_parser(
        "counters",
        help="print the hierarchical probe tree of a stored run")
    p_cnt.add_argument("workload", choices=["specint", "apache"])
    p_cnt.add_argument("--cpu", choices=["smt", "ss"], default="smt")
    p_cnt.add_argument("--os-mode", choices=["full", "app", "omit"],
                       default="full", dest="os_mode")
    p_cnt.add_argument("--instructions", type=int, default=None)
    p_cnt.add_argument("--seed", type=int, default=11)
    p_cnt.add_argument("--window", choices=["startup", "steady", "total"],
                       default="total")
    p_cnt.add_argument("--grep", default=None, metavar="REGEX",
                       help="only probes whose name matches REGEX "
                            "(unanchored search: plain prefixes like "
                            "mem.l2 or os.syscall still work)")
    p_cnt.add_argument("--against", default=None, metavar="RUN",
                       help="diff against a second run "
                            "(workload-cpu-os_mode label or artifact path)")
    p_cnt.set_defaults(func=_cmd_counters)

    p_diff = sub.add_parser(
        "diff",
        help="structural probe-tree diff of two stored runs")
    p_diff.add_argument("run_a", metavar="runA",
                        help="workload-cpu-os_mode label or artifact .json")
    p_diff.add_argument("run_b", metavar="runB")
    p_diff.add_argument("--window", choices=["startup", "steady", "total"],
                        default="steady")
    p_diff.add_argument("--grep", default=None, metavar="REGEX",
                        help="only probes (or call paths with --flame) "
                             "matching REGEX (unanchored search)")
    p_diff.add_argument("--flame", action="store_true",
                        help="diff call-path attribution tables instead of "
                             "flat probes: ranked ;-joined span-chain "
                             "movers with the same noise bands")
    p_diff.add_argument("--timeline", action="store_true",
                        help="diff interval probe timelines instead of "
                             "flat probes: ranked series@cycle movers over "
                             "the shared sample prefix, same noise bands")
    p_diff.add_argument("--seeds", type=int, default=1, metavar="N",
                        help="run each side under N consecutive seeds and "
                             "filter deltas inside the noise band")
    p_diff.add_argument("--instructions", type=int, default=None,
                        help="instruction budget for label-resolved runs")
    p_diff.add_argument("--seed", type=int, default=11,
                        help="base seed for label-resolved runs")
    p_diff.add_argument("--per-kilo", action="store_true", dest="per_kilo",
                        help="normalize counts per 1,000 retired "
                             "instructions of each side")
    p_diff.add_argument("--top", type=int, default=20,
                        help="show the N largest movers (default 20)")
    p_diff.add_argument("--all", action="store_true",
                        help="show every changed probe")
    p_diff.add_argument("--sort", choices=["abs", "rel"], default="abs",
                        help="rank movers by absolute or relative delta")
    p_diff.add_argument("--json", default=None, metavar="FILE",
                        help="also write the machine-readable report here")
    p_diff.add_argument("--force", action="store_true",
                        help="overwrite an existing --json file")
    p_diff.add_argument("--workers", type=int, default=None,
                        help="process count for seed fan-out")
    p_diff.set_defaults(func=_cmd_diff)

    p_flame = sub.add_parser(
        "flame",
        help="fold a stored run's call-path attribution into "
             "flamegraph input")
    p_flame.add_argument("run", metavar="run",
                         help="workload-cpu-os_mode label or artifact .json")
    p_flame.add_argument("--window", choices=["startup", "steady", "total"],
                         default="steady")
    p_flame.add_argument("--instructions", type=int, default=None,
                         help="instruction budget for label-resolved runs")
    p_flame.add_argument("--seed", type=int, default=11,
                         help="seed for label-resolved runs")
    p_flame.add_argument("--grep", default=None, metavar="REGEX",
                         help="only call paths matching REGEX "
                              "(unanchored search over the whole "
                              ";-joined path)")
    p_flame.add_argument("--out", default=None, metavar="FILE",
                         help="write folded-stack lines here "
                              "(flamegraph.pl / speedscope input)")
    p_flame.add_argument("--json", default=None, metavar="FILE",
                         help="also write the raw attribution table here")
    p_flame.add_argument("--top", type=int, default=30,
                         help="table rows to print (default 30)")
    p_flame.add_argument("--force", action="store_true",
                         help="overwrite existing --out/--json files")
    p_flame.set_defaults(func=_cmd_flame)

    p_tl = sub.add_parser(
        "timeline",
        help="render a stored run's per-interval probe time series")
    p_tl.add_argument("run", metavar="run",
                      help="workload-cpu-os_mode label or artifact .json")
    p_tl.add_argument("--probe", action="append", default=None,
                      metavar="SERIES",
                      help="show only this series (repeatable; exact names "
                           "like ipc, kernel_share, miss.l1d, svc.<leaf>)")
    p_tl.add_argument("--grep", default=None, metavar="REGEX",
                      help="only series matching REGEX (unanchored search)")
    p_tl.add_argument("--csv", default=None, metavar="FILE",
                      help="write the raw delta columns as CSV")
    p_tl.add_argument("--json", default=None, metavar="FILE",
                      help="write the record plus detected phases as JSON")
    p_tl.add_argument("--width", type=int, default=64,
                      help="sparkline width in glyphs (default 64)")
    p_tl.add_argument("--instructions", type=int, default=None,
                      help="instruction budget for label-resolved runs")
    p_tl.add_argument("--seed", type=int, default=11,
                      help="seed for label-resolved runs")
    p_tl.add_argument("--force", action="store_true",
                      help="overwrite existing --csv/--json files")
    p_tl.set_defaults(func=_cmd_timeline)

    p_bench = sub.add_parser(
        "bench",
        help="measure simulator speed; write/check BENCH_<scenario>.json")
    p_bench.add_argument("scenarios", nargs="*",
                         help="scenarios to run: specint, apache, fast, "
                              "sampled, report "
                              "(default: specint apache fast sampled)")
    p_bench.add_argument("--check", action="store_true",
                         help="compare against the stored baseline and exit "
                              "nonzero on regression")
    p_bench.add_argument("--tolerance", type=float, default=None,
                         help="relative noise band for --check "
                              "(default 0.25 = 25%%)")
    p_bench.add_argument("--dir", default=".",
                         help="directory holding BENCH_*.json (default: .)")
    p_bench.add_argument("--instructions", type=int, default=None,
                         help="instruction budget for the simulation "
                              "scenarios (default 400,000)")
    p_bench.add_argument("--update", action="store_true",
                         help="with --check: rewrite the baseline after a "
                              "passing comparison")
    p_bench.set_defaults(func=_cmd_bench)

    p_trace = sub.add_parser(
        "trace",
        help="re-run a workload with event tracing and export the trace")
    p_trace.add_argument("workload", choices=["specint", "apache"])
    p_trace.add_argument("--cpu", choices=["smt", "ss"], default="smt")
    p_trace.add_argument("--os-mode", choices=["full", "app", "omit"],
                         default="full", dest="os_mode")
    p_trace.add_argument("--instructions", type=int, default=100_000)
    p_trace.add_argument("--seed", type=int, default=11)
    p_trace.add_argument("--out", default="trace.json",
                         help="output path (default: trace.json)")
    p_trace.add_argument("--jsonl", action="store_true",
                         help="write raw JSONL events instead of Chrome "
                              "trace_event JSON")
    p_trace.add_argument("--capacity", type=int, default=200_000,
                         help="event ring size (oldest dropped beyond this)")
    p_trace.add_argument("--force", action="store_true",
                         help="overwrite an existing --out file")
    p_trace.set_defaults(func=_cmd_trace)

    p_prof = sub.add_parser(
        "profile",
        help="profile the simulator's own components on one run")
    p_prof.add_argument("workload", choices=["specint", "apache"])
    p_prof.add_argument("--cpu", choices=["smt", "ss"], default="smt")
    p_prof.add_argument("--os-mode", choices=["full", "app", "omit"],
                        default="full", dest="os_mode")
    p_prof.add_argument("--instructions", type=int, default=100_000)
    p_prof.add_argument("--seed", type=int, default=11)
    p_prof.add_argument("--out", default=None,
                        help="write the profile table here instead of stdout")
    p_prof.add_argument("--force", action="store_true",
                        help="overwrite an existing --out file")
    p_prof.set_defaults(func=_cmd_profile)

    p_cmp = sub.add_parser(
        "compare", help="paper-vs-measured shape comparison (EXPERIMENTS.md)")
    p_cmp.add_argument("--out", default=None)
    p_cmp.add_argument("--strict", action="store_true",
                       help="exit nonzero when a shape criterion fails")
    p_cmp.set_defaults(func=_cmd_compare)

    p_list = sub.add_parser("list", help="list runs and exhibits")
    p_list.set_defaults(func=_cmd_list)

    from repro.lint.cli import add_parser as _add_lint_parser

    _add_lint_parser(sub)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
