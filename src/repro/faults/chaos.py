"""Chaos harness: the end-to-end fault matrix behind ``repro chaos``.

Each scenario arms one :class:`~repro.faults.plan.FaultPlan`, runs a
small real sweep through the supervised engine
(:mod:`repro.analysis.supervisor`) or the resilient service
(:mod:`repro.analysis.service` -- torn journals, orphaned claims, lost
workers, breaker trips, graceful drains, and SIGKILL-then-resume), and
asserts the recovery contract: the sweep completes (with partial
results where the scenario demands it), retries are bounded, corrupt
data lands in quarantine, and -- checked after every scenario -- the
store still verifies clean, so no injected fault ever corrupts a
*stored* artifact.

Everything here is deterministic: fault plans are seeded and
counter-driven, run transcripts carry attempt numbers and configured
backoff delays but no wall-clock readings, and scenarios run in a fixed
order against per-scenario sub-stores.  Running the matrix twice with
the same seed produces the same transcript, which is what makes a chaos
failure in CI reproducible locally.

The harness arms and clears the process-wide fault plan (including the
``REPRO_FAULT_PLAN`` environment variable), so it should not run
concurrently with other supervised work in the same process.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any

from repro import faults
from repro.analysis import experiments
from repro.analysis.store import RunStore
from repro.analysis.supervisor import Supervisor, processes_available

#: Instruction budget per chaos run: big enough to exercise the real
#: pipeline and windowed execution, small enough that the whole matrix
#: (with its retries and one deliberate hang) stays interactive.
DEFAULT_INSTRUCTIONS = 1_500

DEFAULT_TIMEOUT = 20.0

#: Timeout for the hung-run scenario: the worker never returns, so the
#: sweep *must* wait this out once before the retry succeeds.
HANG_TIMEOUT = 3.0


@dataclass
class ScenarioResult:
    """One scenario's verdict: its checks, and the sweep transcript."""

    name: str
    survived: bool
    skipped: bool = False
    reason: str = ""
    checks: list = field(default_factory=list)
    transcript: list = field(default_factory=list)

    def to_json_dict(self) -> dict:
        return {"name": self.name, "survived": self.survived,
                "skipped": self.skipped, "reason": self.reason,
                "checks": self.checks, "transcript": self.transcript}


@dataclass
class ChaosReport:
    """The full matrix outcome (``repro chaos`` renders/serializes this)."""

    seed: int
    scenarios: list = field(default_factory=list)

    @property
    def survived(self) -> bool:
        return all(s.survived or s.skipped for s in self.scenarios)

    def to_json_dict(self) -> dict:
        return {"seed": self.seed, "survived": self.survived,
                "scenarios": [s.to_json_dict() for s in self.scenarios]}

    def render(self) -> str:
        ran = [s for s in self.scenarios if not s.skipped]
        lines = [f"chaos matrix (seed {self.seed}): "
                 f"{sum(1 for s in ran if s.survived)}/{len(ran)} scenarios "
                 f"survived, {len(self.scenarios) - len(ran)} skipped"]
        for s in self.scenarios:
            verdict = ("skipped" if s.skipped
                       else "survived" if s.survived else "FAILED")
            lines.append(f"  {s.name:22s} {verdict}"
                         + (f"  ({s.reason})" if s.reason else ""))
            for check in s.checks:
                mark = "+" if check["ok"] else "!"
                detail = f"  [{check['detail']}]" if check["detail"] else ""
                lines.append(f"    {mark} {check['name']}{detail}")
            if not s.survived and not s.skipped:
                for line in s.transcript:
                    lines.append(f"      {line}")
        return "\n".join(lines)


class _Ctx:
    """Per-scenario workbench: a private sub-store, a spec factory, and
    a supervised-sweep helper that arms/clears the fault plan."""

    def __init__(self, root: pathlib.Path, name: str, seed: int,
                 instructions: int, timeout: float, retries: int,
                 max_workers: int, backoff_base: float,
                 isolation: str) -> None:
        self.store = RunStore(root / name)
        self.seed = seed
        self.instructions = instructions
        self.timeout = timeout
        self.retries = retries
        self.max_workers = max_workers
        self.backoff_base = backoff_base
        self.isolation = isolation
        self.processes = (isolation == "process"
                          or (isolation == "auto" and processes_available()))
        self.checks: list = []
        self.lines: list = []
        self.skip_reason: str | None = None

    def spec(self, cpu: str = "smt", seed: int | None = None) -> dict:
        """A small canonical-shaped run spec (app-only: cheapest mode)."""
        return {"workload": "specint", "cpu": cpu, "os_mode": "app",
                "instructions": self.instructions,
                "seed": self.seed if seed is None else seed}

    def serve(self, specs: list[dict], plan: faults.FaultPlan | None,
              resume: bool = False, **overrides: Any) -> Any:
        """One service incarnation under *plan* (cleared afterwards).

        Service scenarios run inline regardless of the matrix isolation
        setting: a serial service settles jobs in a deterministic order,
        which is what keeps the scenario transcript byte-identical.
        """
        from repro.analysis.service import run_service

        experiments.clear_cache()
        if plan is not None:
            faults.install(plan)
        else:
            faults.clear()
        kwargs: dict[str, Any] = dict(
            store=self.store, retries=self.retries,
            backoff_base=self.backoff_base, isolation="inline")
        kwargs.update(overrides)
        try:
            report = run_service(specs, resume=resume, **kwargs)
        finally:
            faults.clear()
        for line in report.transcript:
            self.lines.append(line)
        return report

    def plan(self, *sites: faults.FaultSite) -> faults.FaultPlan:
        return faults.FaultPlan(sites=tuple(sites), seed=self.seed)

    def supervise(self, specs: list[dict], plan: faults.FaultPlan | None,
                  **overrides: Any) -> tuple[Supervisor, dict]:
        """One supervised sweep under *plan* (cleared afterwards)."""
        experiments.clear_cache()
        if plan is not None:
            faults.install(plan)
        else:
            faults.clear()
        kwargs = dict(retries=self.retries, timeout=self.timeout,
                      max_workers=self.max_workers,
                      backoff_base=self.backoff_base,
                      isolation=self.isolation)
        kwargs.update(overrides)
        supervisor = Supervisor(**kwargs)
        try:
            results = supervisor.run_specs(specs, store=self.store)
        finally:
            faults.clear()
        for label, result in results.items():
            for line in result.transcript:
                self.lines.append(f"{label}: {line}")
        for line in supervisor.transcript:
            self.lines.append(line)
        return supervisor, results

    def check(self, name: str, ok: bool, detail: str = "") -> bool:
        self.checks.append({"name": name, "ok": bool(ok), "detail": detail})
        return ok

    def check_store_clean(self) -> None:
        bad = [r for r in self.store.verify()
               if r["status"] not in ("ok", "SKIP")]
        self.check("store verifies clean after faults", not bad,
                   "; ".join(f"{r['status']}: {r['detail']}" for r in bad))

    def skip(self, reason: str) -> None:
        self.skip_reason = reason


# -- scenarios -------------------------------------------------------------


def _worker_crash(ctx: _Ctx) -> None:
    """A worker dies during startup; the retry succeeds."""
    plan = ctx.plan(faults.FaultSite("worker.crash", attempt=1))
    _, results = ctx.supervise([ctx.spec()], plan)
    (r,) = results.values()
    ctx.check("run recovered after crash", r.ok and not r.from_store)
    ctx.check("exactly one retry", r.attempts == 2, f"attempts={r.attempts}")
    ctx.check("transcript records backoff",
              any("retrying in" in line for line in r.transcript))


def _mid_sim_exception(ctx: _Ctx) -> None:
    """The simulation itself raises partway through; the retry succeeds."""
    plan = ctx.plan(faults.FaultSite("sim.exception", attempt=1, arg=1_000))
    _, results = ctx.supervise([ctx.spec()], plan)
    (r,) = results.values()
    ctx.check("run recovered after mid-sim exception", r.ok)
    ctx.check("exactly one retry", r.attempts == 2, f"attempts={r.attempts}")
    ctx.check("fault carried the injection site",
              any("mid-simulation" in line for line in r.transcript))


def _watchdog_stall(ctx: _Ctx) -> None:
    """The core stops retiring; the watchdog converts the silent spin
    into a diagnostic error and the retry succeeds."""
    plan = ctx.plan(faults.FaultSite("sim.stall", attempt=1, arg=4_000))
    _, results = ctx.supervise([ctx.spec()], plan)
    (r,) = results.values()
    ctx.check("run recovered after stall", r.ok)
    ctx.check("watchdog diagnosed the stall",
              any("NoProgressError" in line for line in r.transcript))
    ctx.check("exactly one retry", r.attempts == 2, f"attempts={r.attempts}")


def _hung_run(ctx: _Ctx) -> None:
    """The worker never returns; the supervisor times it out, terminates
    it, and the retry succeeds.  Needs real process isolation."""
    if not ctx.processes:
        ctx.skip("no process isolation: a hung in-process run "
                 "cannot be preempted")
        return
    plan = ctx.plan(faults.FaultSite("sim.hang", attempt=1))
    _, results = ctx.supervise([ctx.spec()], plan,
                               timeout=min(ctx.timeout, HANG_TIMEOUT))
    (r,) = results.values()
    ctx.check("run recovered after hang", r.ok)
    ctx.check("hang was timed out",
              any("timed out" in line for line in r.transcript))
    ctx.check("exactly one retry", r.attempts == 2, f"attempts={r.attempts}")


def _torn_write(ctx: _Ctx) -> None:
    """A worker dies between the temp write and the atomic rename: the
    store never sees a half-written artifact, the retry succeeds, and
    ``cache gc`` reclaims the stranded temp file."""
    plan = ctx.plan(faults.FaultSite("store.put.torn", attempt=1))
    _, results = ctx.supervise([ctx.spec()], plan)
    (r,) = results.values()
    ctx.check("run recovered after torn write", r.ok and r.attempts == 2,
              f"attempts={r.attempts}")
    # Demonstrate reclamation with a direct torn put: under inline
    # isolation both attempts share one pid, so the retry's own rename
    # would otherwise sweep the stranded temp file away.
    faults.install(ctx.plan(faults.FaultSite("store.put.torn")), env=False)
    try:
        ctx.store.put(r.artifact)
    except faults.InjectedFault:
        pass
    finally:
        faults.clear()
    stranded = ctx.store.collect_tmp(dry_run=True)
    ctx.check("stranded temp file found", len(stranded) >= 1,
              f"{len(stranded)} file(s)")
    ctx.store.collect_tmp()
    ctx.check("temp files reclaimed",
              not ctx.store.collect_tmp(dry_run=True))


def _disk_full(ctx: _Ctx) -> None:
    """The store write hits ENOSPC; classified transient and retried."""
    plan = ctx.plan(faults.FaultSite("store.put.disk_full", attempt=1))
    _, results = ctx.supervise([ctx.spec()], plan)
    (r,) = results.values()
    ctx.check("run recovered after ENOSPC", r.ok and r.attempts == 2,
              f"attempts={r.attempts}")
    ctx.check("error surfaced as ENOSPC",
              any("ENOSPC" in line for line in r.transcript))


def _corrupt_entry(ctx: _Ctx) -> None:
    """A stored artifact rots on disk: the checksum catches it on read,
    the file is quarantined (not served, not crashed on), and the run
    transparently re-executes."""
    _, warm = ctx.supervise([ctx.spec()], None)
    (w,) = warm.values()
    ctx.check("warm run stored", w.ok and w.attempts == 1)
    plan = ctx.plan(faults.FaultSite("store.get.corrupt", times=1))
    supervisor, results = ctx.supervise([ctx.spec()], plan)
    (r,) = results.values()
    ctx.check("corrupt entry re-executed, not served",
              r.ok and not r.from_store and r.attempts == 1,
              f"from_store={r.from_store} attempts={r.attempts}")
    entries = ctx.store.quarantine_entries()
    # Which layer catches the rot depends on where the bytes landed:
    # mid-structure garbling fails the JSON parse, value garbling that
    # stays syntactically valid fails the checksum.  Both must quarantine.
    ctx.check("corrupt file quarantined with reason",
              len(entries) == 1 and entries[0].reason in
              ("unparsable JSON", "content checksum mismatch"),
              entries[0].reason if entries else "no quarantine entry")
    ctx.check("sweep transcript notes the quarantine",
              any("quarantined" in line for line in supervisor.transcript))


def _quarantine_permanent(ctx: _Ctx) -> None:
    """One spec fails every attempt: it is quarantined after bounded
    retries while the healthy spec completes -- partial results, not a
    dead sweep."""
    plan = ctx.plan(faults.FaultSite("worker.crash", times=0, match="-ss-"))
    _, results = ctx.supervise([ctx.spec("smt"), ctx.spec("ss")], plan)
    ok = [r for r in results.values() if r.ok]
    bad = [r for r in results.values() if not r.ok]
    ctx.check("healthy spec completed", len(ok) == 1 and "smt" in ok[0].label)
    ctx.check("failing spec quarantined",
              len(bad) == 1 and bad[0].quarantined)
    ctx.check("retries bounded", bad[0].attempts == ctx.retries + 1,
              f"attempts={bad[0].attempts} retries={ctx.retries}")
    ctx.check("partial results returned", len(results) == 2)


def _torn_journal(ctx: _Ctx) -> None:
    """The service dies mid-append of a journal record (half a line on
    disk, no newline); the resumed incarnation truncates the torn tail,
    recovers the orphaned claim from the store, and finishes the sweep."""
    specs = [ctx.spec(seed=1), ctx.spec(seed=2)]
    plan = ctx.plan(faults.FaultSite("queue.journal.torn", match="complete"))
    died = False
    try:
        ctx.serve(specs, plan)
    except faults.InjectedFault:
        died = True
    ctx.check("service died mid-append of a completion record", died)
    report = ctx.serve(specs, None, resume=True)
    ctx.check("torn record dropped on replay",
              report.replay["torn_records"] == 1,
              f"torn_records={report.replay['torn_records']}")
    ctx.check("orphaned claim completed from the store, not re-run",
              any(j["state"] == "done" and j["from_store"]
                  for j in report.jobs))
    ctx.check("sweep completed after resume",
              report.counts["done"] == 2 and not report.counts["pending"],
              f"counts={report.counts}")
    followup = ctx.serve(specs, None, resume=True)
    ctx.check("rewritten journal replays clean",
              followup.replay["torn_records"] == 0
              and followup.replay["clean_shutdown"])


def _orphan_claim(ctx: _Ctx) -> None:
    """A worker vanishes between the journaled claim and the service
    tracking it; the claim is orphaned, and the next incarnation
    requeues and finishes it -- never lost, never duplicated."""
    specs = [ctx.spec(seed=1), ctx.spec(seed=2)]
    plan = ctx.plan(faults.FaultSite("queue.claim.orphan", match="-s1"))
    report = ctx.serve(specs, plan)
    ctx.check("claim orphaned, sweep continued",
              report.counts["claimed"] == 1 and report.counts["done"] == 1,
              f"counts={report.counts}")
    resumed = ctx.serve(specs, None, resume=True)
    ctx.check("orphan requeued on resume",
              any("requeued (no artifact stored)" in line
                  for line in resumed.transcript))
    ctx.check("orphan executed exactly once more",
              resumed.counts["done"] == 2
              and all(j["attempts"] <= 2 for j in resumed.jobs),
              f"counts={resumed.counts}")


def _service_worker_lost(ctx: _Ctx) -> None:
    """A launched service worker is lost (SIGKILL-shaped: no error
    record, no cleanup); the lease/exit machinery requeues the job and
    the retry succeeds."""
    plan = ctx.plan(faults.FaultSite("service.worker.lost", match="-s1"))
    report = ctx.serve([ctx.spec(seed=1)], plan)
    ctx.check("job recovered after worker loss",
              report.counts["done"] == 1, f"counts={report.counts}")
    ctx.check("exactly one retry",
              report.jobs[0]["attempts"] == 2,
              f"attempts={report.jobs[0]['attempts']}")
    ctx.check("transcript records the requeue",
              any("requeue" in line for line in report.transcript))


def _breaker_trip(ctx: _Ctx) -> None:
    """The store circuit breaker is forced open: launches are denied
    (read-only degraded mode), a half-open probe goes through after the
    cooldown, and its success closes the circuit -- the sweep still
    completes every job."""
    plan = ctx.plan(faults.FaultSite("store.breaker.trip"))
    report = ctx.serve([ctx.spec(seed=1), ctx.spec(seed=2)], plan,
                       breaker_cooldown=2)
    ctx.check("breaker tripped exactly once",
              report.breaker["trips"] == 1,
              f"trips={report.breaker['trips']}")
    ctx.check("half-open probe closed the circuit",
              report.breaker["state"] == "closed"
              and any("half-open -> closed" in line
                      for line in report.transcript))
    ctx.check("sweep completed despite the trip",
              report.counts["done"] == 2, f"counts={report.counts}")


def _graceful_drain(ctx: _Ctx) -> None:
    """A drain request lands after the first completion: no new claims,
    active legs finish, a clean shutdown marker is journaled, and the
    next incarnation completes the remainder."""
    from repro.analysis.runner import _resolve_item
    from repro.analysis.service import ReproService

    experiments.clear_cache()
    faults.clear()
    holder: dict[str, Any] = {}
    service = ReproService(
        ctx.store, isolation="inline", retries=ctx.retries,
        backoff_base=ctx.backoff_base,
        on_complete=lambda job: holder["service"].request_drain())
    holder["service"] = service
    specs = [ctx.spec(seed=1), ctx.spec(seed=2), ctx.spec(seed=3)]
    for spec in specs:
        service.submit(_resolve_item(spec))
    report = service.run()
    for line in report.transcript:
        ctx.lines.append(line)
    ctx.check("drain stopped new claims",
              report.counts["done"] == 1 and report.counts["pending"] == 2,
              f"counts={report.counts}")
    ctx.check("drained cleanly", report.drained)
    resumed = ctx.serve(specs, None, resume=True)
    ctx.check("journal recorded the clean drain",
              resumed.replay["clean_shutdown"] and resumed.replay["drained"])
    ctx.check("resume completed the drained sweep",
              resumed.counts["done"] == 3, f"counts={resumed.counts}")


def _kill_resume(ctx: _Ctx) -> None:
    """A live ``repro serve`` subprocess is SIGKILLed mid-sweep; a
    resumed incarnation must converge on exactly the artifact set of an
    uninterrupted run -- no lost work, no duplicates.

    Check details are timing-independent (the kill lands wherever the
    host schedules it), so the passing report stays byte-identical; the
    journal guarantees the *outcome* is identical regardless of where
    the kill hit.
    """
    if not ctx.processes:
        ctx.skip("no process isolation: cannot SIGKILL a service")
        return
    import json
    import os
    import subprocess
    import sys
    import time

    from repro.analysis.service import run_service

    specs = [ctx.spec(seed=s) for s in (1, 2, 3, 4)]
    baseline_store = RunStore(ctx.store.root.parent / "kill-resume-baseline")
    experiments.clear_cache()
    faults.clear()
    baseline = run_service(specs, store=baseline_store, isolation="inline",
                           retries=ctx.retries,
                           backoff_base=ctx.backoff_base)
    spec_file = ctx.store.root.parent / "kill-resume-sweep.json"
    spec_file.write_text(json.dumps(specs))
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(ctx.store.root)
    env.pop(faults.FAULT_PLAN_ENV, None)
    journal = ctx.store.root / "queue" / "journal.jsonl"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--spec-file",
         str(spec_file), "--isolation", "inline"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline and proc.poll() is None:
            try:
                if journal.read_text().count('"op": "complete"') >= 1:
                    break
            except OSError:
                pass
            time.sleep(0.005)
        if proc.poll() is None:
            proc.kill()
    finally:
        proc.wait()
    experiments.clear_cache()
    resumed = run_service(specs, store=ctx.store, isolation="inline",
                          resume=True, retries=ctx.retries,
                          backoff_base=ctx.backoff_base)
    ok = True
    ok &= ctx.check("resumed sweep completed every job",
                    resumed.counts["done"] == len(specs)
                    and not resumed.counts["pending"]
                    and not resumed.counts["claimed"])
    ok &= ctx.check("no lost or duplicated runs (ledger byte-identical "
                    "to the uninterrupted sweep)",
                    resumed.ledger == baseline.ledger)
    ok &= ctx.check("stored artifact fingerprints match the "
                    "uninterrupted run",
                    sorted(e.fingerprint for e in ctx.store.entries())
                    == sorted(e.fingerprint for e in
                              baseline_store.entries()))
    if not ok:  # keep the passing report timing-independent
        for line in resumed.transcript:
            ctx.lines.append(line)


#: The matrix, in execution order.  Names are the ``--scenario`` values.
SCENARIOS: tuple[tuple[str, object], ...] = (
    ("worker-crash", _worker_crash),
    ("mid-sim-exception", _mid_sim_exception),
    ("watchdog-stall", _watchdog_stall),
    ("hung-run", _hung_run),
    ("torn-write", _torn_write),
    ("disk-full", _disk_full),
    ("corrupt-entry", _corrupt_entry),
    ("quarantine-permanent", _quarantine_permanent),
    ("torn-journal", _torn_journal),
    ("orphan-claim", _orphan_claim),
    ("service-worker-lost", _service_worker_lost),
    ("breaker-trip", _breaker_trip),
    ("graceful-drain", _graceful_drain),
    ("kill-resume", _kill_resume),
)


def scenario_names() -> list[str]:
    return [name for name, _ in SCENARIOS]


def run_matrix(store_root: str | pathlib.Path, seed: int = 11,
               names: list[str] | None = None,
               timeout: float = DEFAULT_TIMEOUT, retries: int = 2,
               max_workers: int = 2,
               instructions: int = DEFAULT_INSTRUCTIONS,
               backoff_base: float = 0.05,
               isolation: str = "auto") -> ChaosReport:
    """Run the fault matrix against sub-stores of *store_root*.

    *names* restricts which scenarios run (default: all, in order).
    *backoff_base* defaults low so the matrix's deliberate retries cost
    milliseconds; the delays still appear, deterministically, in each
    transcript.
    """
    root = pathlib.Path(store_root)
    wanted = scenario_names() if names is None else list(names)
    unknown = [n for n in wanted if n not in scenario_names()]
    if unknown:
        raise ValueError(f"unknown scenario(s): {', '.join(unknown)} "
                         f"(known: {', '.join(scenario_names())})")
    report = ChaosReport(seed=seed)
    for name, fn in SCENARIOS:
        if name not in wanted:
            continue
        ctx = _Ctx(root, name, seed=seed, instructions=instructions,
                   timeout=timeout, retries=retries, max_workers=max_workers,
                   backoff_base=backoff_base, isolation=isolation)
        fn(ctx)
        if ctx.skip_reason is not None:
            report.scenarios.append(ScenarioResult(
                name=name, survived=True, skipped=True,
                reason=ctx.skip_reason))
            continue
        ctx.check_store_clean()
        report.scenarios.append(ScenarioResult(
            name=name,
            survived=all(c["ok"] for c in ctx.checks),
            checks=ctx.checks, transcript=ctx.lines))
    experiments.clear_cache()
    return report
