"""Deterministic fault plans (the configuration half of fault injection).

A :class:`FaultPlan` names which fault *sites* should fire, how often,
and under which conditions.  Sites are string identifiers compiled into
the hot paths (see :data:`KNOWN_SITES`); a site that is not armed costs
one ``None`` check.  Plans are plain data: they serialize to JSON so a
parent process can arm faults in pool workers through the
``REPRO_FAULT_PLAN`` environment variable, and they carry a seed so any
randomized corruption is a pure function of (plan, site) -- the same
plan always injects the same bytes, which is what makes chaos runs
reproducible and lets them pass the D-rule lint.

Nothing in this module touches the wall clock or global ``random``
state; firing decisions are pure counter arithmetic.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field

#: Environment variable carrying a serialized plan into worker processes.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Every fault site compiled into the tree.  Arming an unknown site is a
#: config error (caught at plan construction), not a silent no-op.
KNOWN_SITES: tuple[str, ...] = (
    "store.get.corrupt",    # flip bytes of a store file as it is read
    "store.put.torn",       # crash after the temp write, before the rename
    "store.put.disk_full",  # ENOSPC before any write
    "worker.crash",         # exception during worker startup
    "worker.exit",          # worker process hard-exits without a traceback
    "sim.exception",        # raise mid-simulation at cycle `arg`
    "sim.hang",             # worker never returns (exercises timeouts)
    "sim.stall",            # core retires nothing (exercises the watchdog)
    "heartbeat.stall",      # progress sink goes silent after `arg` beats
    "queue.journal.torn",   # crash mid-append of a journal record
    "queue.claim.orphan",   # worker vanishes between claim and tracking
    "service.worker.lost",  # SIGKILL a launched service worker
    "store.breaker.trip",   # force the store circuit breaker open
)


class InjectedFault(RuntimeError):
    """An injected failure, distinguishable from organic bugs.

    ``transient`` feeds the supervisor's error taxonomy (transient
    faults are retried, permanent ones are not); ``snapshot`` may carry
    a probe-tree snapshot for diagnostics.
    """

    def __init__(self, site: str, message: str, *, transient: bool = True,
                 snapshot: dict | None = None) -> None:
        super().__init__(message)
        self.site = site
        self.transient = transient
        self.snapshot = snapshot


@dataclass(frozen=True)
class FaultSite:
    """One armed site within a plan.

    ``times`` bounds how often the site fires (0 = unlimited); ``skip``
    lets the first N invocations pass; ``match`` restricts firing to
    invocations whose context string contains it (e.g. a run label);
    ``attempt`` restricts firing to one supervised attempt number, which
    is how a chaos scenario injects "fail once, then recover"; ``arg``
    is site-specific (a cycle for ``sim.exception``, a beat count for
    ``heartbeat.stall``).
    """

    site: str
    times: int = 1
    skip: int = 0
    match: str = ""
    attempt: int | None = None
    arg: int | None = None

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r} "
                f"(known: {', '.join(KNOWN_SITES)})")


@dataclass
class FaultPlan:
    """A seeded set of armed fault sites.

    Firing state (per-site invocation and fired counters) lives on the
    instance, not in the frozen sites, so one plan can be reused across
    supervised attempts by resetting it (:meth:`reset`).
    """

    sites: tuple[FaultSite, ...] = ()
    seed: int = 0
    _invoked: dict = field(default_factory=dict, repr=False, compare=False)
    _fired: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.sites = tuple(
            s if isinstance(s, FaultSite) else FaultSite(**s)
            for s in self.sites)

    # -- firing ------------------------------------------------------------

    def fire(self, site_name: str, context: str = "",
             attempt: int | None = None) -> FaultSite | None:
        """Should *site_name* fail now?  Returns the armed site, or None.

        Purely counter-driven: the Nth invocation of a site under the
        same plan always decides the same way, regardless of host timing.
        """
        for index, site in enumerate(self.sites):
            if site.site != site_name:
                continue
            if site.match and site.match not in context:
                continue
            if site.attempt is not None and attempt != site.attempt:
                continue
            self._invoked[index] = self._invoked.get(index, 0) + 1
            if self._invoked[index] <= site.skip:
                continue
            if site.times and self._fired.get(index, 0) >= site.times:
                continue
            self._fired[index] = self._fired.get(index, 0) + 1
            return site
        return None

    def reset(self) -> None:
        """Forget firing history (each supervised attempt starts fresh)."""
        self._invoked.clear()
        self._fired.clear()

    def rng(self, site_name: str) -> random.Random:
        """A seeded generator private to (plan seed, site)."""
        return random.Random(f"{self.seed}:{site_name}")

    # -- serialization (cross-process arming) ------------------------------

    def to_json_dict(self) -> dict:
        return {"seed": self.seed,
                "sites": [asdict(site) for site in self.sites]}

    def dumps(self) -> str:
        return json.dumps(self.to_json_dict(), sort_keys=True)

    @classmethod
    def from_json_dict(cls, payload: dict) -> "FaultPlan":
        return cls(sites=tuple(FaultSite(**s)
                               for s in payload.get("sites", ())),
                   seed=int(payload.get("seed", 0)))

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        return cls.from_json_dict(json.loads(text))


def corrupt_bytes(data: bytes, rng: random.Random) -> bytes:
    """Deterministically garble *data* (used by ``store.get.corrupt``).

    Overwrites a slice at a seeded position with seeded bytes; the
    result differs from the input (so checksums must mismatch) while
    remaining a pure function of (data, rng state).
    """
    if not data:
        return b"\x00"
    width = min(16, len(data))
    pos = rng.randrange(max(1, len(data) - width + 1))
    garble = bytes(rng.randrange(256) for _ in range(width))
    out = data[:pos] + garble + data[pos + width:]
    if out == data:  # pragma: no cover - 2^-128 per try
        out = data[:pos] + bytes((garble[0] ^ 0xFF,)) + data[pos + 1:]
    return out
