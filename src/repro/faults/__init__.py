"""Deterministic fault injection (the arming half).

Hot paths call :func:`fire` with a site name; with no plan armed (the
default, and the only state production runs ever see) that is a single
``is None`` check.  A plan is armed either in-process via
:func:`install` or across process boundaries via the
``REPRO_FAULT_PLAN`` environment variable, which forked/spawned pool
workers re-parse lazily on their first ``fire`` call.

The supervised runner tells workers which attempt they are via
:func:`set_attempt`, so a :class:`FaultSite` with ``attempt=1`` fires
on the first try and lets the retry succeed -- the basic shape of every
recovery scenario in :mod:`repro.faults.chaos`.
"""

from __future__ import annotations

import os

from repro.faults.plan import (FAULT_PLAN_ENV, KNOWN_SITES, FaultPlan,
                               FaultSite, InjectedFault, corrupt_bytes)

__all__ = [
    "FAULT_PLAN_ENV", "KNOWN_SITES", "FaultPlan", "FaultSite",
    "InjectedFault", "corrupt_bytes", "install", "clear", "active",
    "fire", "set_attempt", "current_attempt", "reset_fired",
]

_UNSET = object()

#: The armed plan: _UNSET = not yet resolved (check the environment),
#: None = explicitly disarmed, else a FaultPlan.
_PLAN: object = _UNSET

#: Attempt number the current process is executing (supervisor-set).
_ATTEMPT: int = 1


def active() -> FaultPlan | None:
    """The armed plan, resolving ``REPRO_FAULT_PLAN`` on first use."""
    global _PLAN
    if _PLAN is _UNSET:
        raw = os.environ.get(FAULT_PLAN_ENV)
        try:
            _PLAN = FaultPlan.loads(raw) if raw else None
        except (ValueError, TypeError):
            _PLAN = None
    return _PLAN  # type: ignore[return-value]


def install(plan: FaultPlan, env: bool = True) -> None:
    """Arm *plan* in this process (and, with *env*, in future children)."""
    global _PLAN
    _PLAN = plan
    if env:
        os.environ[FAULT_PLAN_ENV] = plan.dumps()


def clear() -> None:
    """Disarm: no site fires until the next install (env var removed)."""
    global _PLAN
    _PLAN = None
    os.environ.pop(FAULT_PLAN_ENV, None)


def fire(site_name: str, context: str = "") -> FaultSite | None:
    """Hot-path hook: the armed site if *site_name* should fail now."""
    plan = active()
    if plan is None:
        return None
    return plan.fire(site_name, context, attempt=_ATTEMPT)


def set_attempt(attempt: int) -> None:
    """Record which supervised attempt this process is executing."""
    global _ATTEMPT
    _ATTEMPT = attempt


def current_attempt() -> int:
    return _ATTEMPT


def reset_fired() -> None:
    """Reset firing counters (workers inherit the parent's under fork)."""
    plan = active()
    if plan is not None:
        plan.reset()
