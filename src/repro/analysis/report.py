"""Full-report builder: every exhibit, the shape comparison, and run
summaries in one structured object.

Used by ``python -m repro report`` and reusable programmatically::

    from repro.analysis.report import build_report

    report = build_report()
    print(report.text)
    report.write("report.txt", exhibits_dir="exhibits/")
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

from repro.analysis import figures, tables
from repro.analysis.experiments import get_run
from repro.analysis.paper import build_comparison, render_markdown


@dataclass
class Report:
    """A fully-rendered reproduction report."""

    exhibits: dict[str, dict] = field(default_factory=dict)
    comparison_markdown: str = ""
    shape_criteria_held: int = 0
    shape_criteria_total: int = 0

    @property
    def text(self) -> str:
        parts = [ex["text"] for _, ex in sorted(self.exhibits.items())]
        parts.append("Paper-vs-measured shape criteria "
                     f"({self.shape_criteria_held}/{self.shape_criteria_total} hold):")
        parts.append(self.comparison_markdown)
        return "\n\n\n".join(parts) + "\n"

    def write(self, path, exhibits_dir=None) -> pathlib.Path:
        """Write the combined report (and optionally one file per exhibit)."""
        path = pathlib.Path(path)
        path.write_text(self.text)
        if exhibits_dir is not None:
            directory = pathlib.Path(exhibits_dir)
            directory.mkdir(parents=True, exist_ok=True)
            for name, exhibit in self.exhibits.items():
                (directory / f"{name}.txt").write_text(exhibit["text"] + "\n")
        return path


def build_report(include_comparison: bool = True,
                 max_workers: int | None = None) -> Report:
    """Run (or reuse) the canonical simulations and build every exhibit.

    ``max_workers`` > 1 warms the run store concurrently (one process per
    worker) before the exhibits are built; the default resolves each run
    serially through memo -> store -> execute.
    """
    if max_workers is not None and max_workers > 1:
        from repro.analysis.runner import prefetch_all

        prefetch_all(max_workers=max_workers)
    spec = get_run("specint", "smt", "full")
    spec_app = get_run("specint", "smt", "app")
    spec_ss = get_run("specint", "ss", "full")
    spec_ss_app = get_run("specint", "ss", "app")
    apache = get_run("apache", "smt", "full")
    apache_ss = get_run("apache", "ss", "full")
    apache_omit = get_run("apache", "smt", "omit")
    apache_ss_omit = get_run("apache", "ss", "omit")

    report = Report()
    report.exhibits = {
        "fig1": figures.fig1(spec),
        "fig2": figures.fig2(spec),
        "fig3": figures.fig3(spec),
        "fig4": figures.fig4(spec),
        "fig5": figures.fig5(apache),
        "fig6": figures.fig6(apache, spec),
        "fig7": figures.fig7(apache),
        "tab2": tables.table2(spec),
        "tab3": tables.table3(spec),
        "tab4": tables.table4(spec_app, spec, spec_ss_app, spec_ss),
        "tab5": tables.table5(apache),
        "tab6": tables.table6(apache, spec, apache_ss),
        "tab7": tables.table7(apache),
        "tab8": tables.table8(apache, apache_ss),
        "tab9": tables.table9(apache_omit, apache, apache_ss_omit, apache_ss),
    }
    if include_comparison:
        rows = build_comparison({
            "specint-smt-full": spec,
            "specint-smt-app": spec_app,
            "specint-ss-full": spec_ss,
            "specint-ss-app": spec_ss_app,
            "apache-smt-full": apache,
            "apache-ss-full": apache_ss,
            "apache-smt-omit": apache_omit,
        })
        report.comparison_markdown = render_markdown(rows)
        report.shape_criteria_total = len(rows)
        report.shape_criteria_held = sum(r.holds for r in rows)
    return report
