"""Serializable run artifacts (layer 1 of the run engine).

A :class:`RunArtifact` is the plain-data record of one finished canonical
run: the full configuration fingerprint of the simulation that produced it,
the three counter windows (*startup*, *steady*, *total*) from
:mod:`repro.analysis.snapshot`, the mode-class timeline, and the workload
phase marks.  It carries everything the table/figure/metric builders
consume and nothing else -- no live handles to the machine -- so it can be
serialized to JSON, stored on disk (:mod:`repro.analysis.store`), produced
in a worker process (:mod:`repro.analysis.runner`), and compared for
equality across process boundaries.

The identity of an artifact is its *fingerprint*: a SHA-256 over the
schema version, a code-version tag, and the canonical JSON of the run
spec (workload, cpu, os_mode, instruction budget, seed, and every
simulator knob including the machine geometry).  Bumping
``SCHEMA_VERSION`` or ``CODE_VERSION`` therefore invalidates every stored
artifact, and two runs whose configurations differ in *any* knob can
never collide.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

#: Version of the artifact data layout.  Bump when the window/timeline/
#: marks structure changes; old stored artifacts then miss and re-run.
#: v2: counter windows carry the flattened probe-registry tree under
#: ``probes`` (see repro.obs.registry).
#: v3: histogram probe snapshots embed their bucket ``bounds`` so stored
#: windows are self-describing for percentile computation.
#: v4: artifacts carry a ``flags`` list marking degraded provenance
#: (e.g. ``"truncated"`` when a max-cycle budget cut the run short).
#: v5: artifacts carry the execution ``mode`` ("full" / "fast" /
#: "sampled") and, for tiered runs, a ``sampling`` record (leg records,
#: extrapolated probe estimates with error bars, checkpoint provenance).
#: v6: counter windows carry a call-path ``attribution`` section
#: (``;``-joined span chain -> context-cycles; see repro.obs.flame).
#: v7: artifacts carry a ``probe_timeline`` record (delta-encoded
#: per-interval probe columns; see repro.obs.timeline) and the
#: ``timeline_truncated`` flag when its sample cap was hit.
SCHEMA_VERSION = 7

#: Coarse code-version tag folded into every fingerprint.  Bump when the
#: *simulator's* behavior changes (new counters, different scheduling,
#: recalibrated workloads) so stale artifacts are not mistaken for current
#: measurements.
CODE_VERSION = "2026.08"


class ArtifactError(ValueError):
    """Raised when a payload does not parse as a current-schema artifact."""


def canonical_json(payload) -> str:
    """Deterministic JSON used for hashing (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def run_fingerprint(spec: dict) -> str:
    """Content hash identifying a run: schema + code version + full spec."""
    payload = {"schema": SCHEMA_VERSION, "code": CODE_VERSION, "spec": spec}
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def _plain(value):
    """Recursively normalize to JSON-native types (tuples become lists,
    dict keys become strings) so round-tripped artifacts compare equal."""
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


@dataclass
class RunArtifact:
    """One finished run as plain data.

    ``spec`` is the full run specification (labels plus the simulator's
    config fingerprint params); ``startup``/``steady``/``total`` are the
    counter windows; ``timeline`` is the mode-class time series behind
    Figures 1/5; ``marks`` is a list of ``[thread, label, cycle]`` phase
    marks.  ``flags`` marks degraded provenance (``"truncated"`` when a
    max-cycle budget cut the run short of its instruction budget); a
    normal run's flags are empty.  ``mode`` is the execution tier the
    run used (see :mod:`repro.core.engine`) and ``sampling`` records a
    tiered run's leg plan, extrapolated probe estimates, and checkpoint
    provenance; plain detailed runs carry ``mode="full"`` and no
    sampling record.

    Two distinct time series live on an artifact.  ``timeline`` (alias
    :attr:`class_timeline`) is the coarse *mode-class* series behind
    Figures 1/5 -- per-sample user/kernel/pal/idle context-cycle splits.
    ``probe_timeline`` is the v7 *interval probe* record: delta-encoded
    columns of headline probes captured every N simulated cycles by
    :mod:`repro.obs.timeline` (``repro timeline`` renders it).  ``None``
    when interval telemetry was disabled for the run.
    """

    spec: dict
    n_contexts: int
    cycles: int
    timeline: list
    marks: list
    startup: dict
    steady: dict
    total: dict
    flags: list = field(default_factory=list)
    mode: str = "full"
    sampling: dict | None = None
    probe_timeline: dict | None = None
    schema_version: int = SCHEMA_VERSION
    fingerprint: str = field(default="")

    def __post_init__(self) -> None:
        self.spec = _plain(self.spec)
        self.timeline = _plain(self.timeline)
        self.marks = _plain(self.marks)
        self.startup = _plain(self.startup)
        self.steady = _plain(self.steady)
        self.total = _plain(self.total)
        self.flags = _plain(self.flags)
        if self.sampling is not None:
            self.sampling = _plain(self.sampling)
        if self.probe_timeline is not None:
            self.probe_timeline = _plain(self.probe_timeline)
        if not self.fingerprint:
            self.fingerprint = run_fingerprint(self.spec)

    # -- identity ----------------------------------------------------------

    @property
    def key(self) -> str:
        """The store key (alias for the fingerprint)."""
        return self.fingerprint

    @property
    def label(self) -> str:
        """Human-readable run label, e.g. ``apache-smt-full``."""
        parts = [str(self.spec.get(k)) for k in ("workload", "cpu", "os_mode")
                 if self.spec.get(k) is not None]
        return "-".join(parts) or "run"

    # -- derived views -----------------------------------------------------

    @property
    def class_timeline(self) -> list:
        """The mode-class time series (Figures 1/5 data).

        Explicit alias for :attr:`timeline`, named to disambiguate it from
        the per-interval probe record in :attr:`probe_timeline`.
        """
        return self.timeline

    @property
    def steady_boundary(self) -> int | None:
        """Cycle at which the last workload thread reached steady state."""
        cycles = [cycle for _, label, cycle in self.marks if label == "steady"]
        return max(cycles) if cycles else None

    def window(self, phase: str) -> dict:
        """Fetch one counter window by name: startup / steady / total."""
        if phase not in ("startup", "steady", "total"):
            raise ValueError(f"unknown window {phase!r}")
        return getattr(self, phase)

    # -- serialization -----------------------------------------------------

    def to_json_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "fingerprint": self.fingerprint,
            "spec": self.spec,
            "n_contexts": self.n_contexts,
            "cycles": self.cycles,
            "timeline": self.timeline,
            "marks": self.marks,
            "startup": self.startup,
            "steady": self.steady,
            "total": self.total,
            "flags": self.flags,
            "mode": self.mode,
            "sampling": self.sampling,
            "probe_timeline": self.probe_timeline,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "RunArtifact":
        if not isinstance(payload, dict):
            raise ArtifactError("artifact payload is not an object")
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ArtifactError(
                f"artifact schema {version!r} != current {SCHEMA_VERSION}")
        try:
            return cls(
                spec=payload["spec"],
                n_contexts=payload["n_contexts"],
                cycles=payload["cycles"],
                timeline=payload["timeline"],
                marks=payload["marks"],
                startup=payload["startup"],
                steady=payload["steady"],
                total=payload["total"],
                flags=payload.get("flags") or [],
                mode=payload.get("mode") or "full",
                sampling=payload.get("sampling"),
                probe_timeline=payload.get("probe_timeline"),
                schema_version=version,
                fingerprint=payload["fingerprint"],
            )
        except KeyError as exc:  # missing field -> not a valid artifact
            raise ArtifactError(f"artifact payload missing {exc}") from exc

    def dumps(self) -> str:
        return json.dumps(self.to_json_dict(), sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "RunArtifact":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"artifact is not valid JSON: {exc}") from exc
        return cls.from_json_dict(payload)
