"""Canonical experiment runs.

Every table and figure of the paper is extracted from one of eight runs:

=========  ===========  =========================================
workload   cpu          os_mode
=========  ===========  =========================================
specint    smt / ss     full  (OS executed)
specint    smt / ss     app   (app-only simulator: instant traps)
apache     smt / ss     full
apache     smt / ss     omit  (OS refs omitted from hardware
                               structures -- Table 9's mode)
=========  ===========  =========================================

Runs are memoized per (workload, cpu, os_mode, instructions, seed).  Each
record carries three counter windows: *startup* (boot to workload warm-up),
*steady* (warm-up to end), and *total*.

Set the ``REPRO_BUDGET_MULT`` environment variable to scale every
instruction budget (e.g. ``0.25`` for a quick smoke pass, ``4`` for a long
calibration run).
"""

from __future__ import annotations

import os as _os
from dataclasses import dataclass

from repro.analysis.snapshot import capture, diff
from repro.core.config import MachineConfig
from repro.core.simulator import SimResult, Simulation
from repro.os_model.kernel import OSMode
from repro.workloads.apache import ApacheWorkload
from repro.workloads.specint import SpecIntWorkload

#: Default retired-instruction budgets per (workload, cpu).  Scaled runs;
#: the paper simulated 0.65-1G+ instructions, and -- like us -- ran its
#: superscalar experiments shorter than its SMT ones (Section 2.3).
DEFAULT_INSTRUCTIONS = {
    ("specint", "smt"): 1_000_000,
    ("specint", "ss"): 700_000,
    ("apache", "smt"): 2_400_000,
    ("apache", "ss"): 1_200_000,
}

#: Fraction of the budget the start-up leg may consume before the steady
#: window is opened regardless (safety valve for superscalar runs, whose
#: start-up covers more of the instruction budget).
STARTUP_BUDGET_CAP = 0.75

_WARMUP_CHUNK = 25_000

_CACHE: dict[tuple, "RunRecord"] = {}


@dataclass
class RunRecord:
    """One finished canonical run plus its counter windows."""

    key: tuple
    result: SimResult
    startup: dict
    steady: dict
    total: dict

    @property
    def n_contexts(self) -> int:
        return self.result.machine.cpu.n_contexts


def _budget_multiplier() -> float:
    raw = _os.environ.get("REPRO_BUDGET_MULT", "1")
    try:
        mult = float(raw)
    except ValueError:
        return 1.0
    return mult if mult > 0 else 1.0


def build_simulation(workload: str, cpu: str, os_mode: str, seed: int = 11) -> Simulation:
    """Assemble (but do not run) one canonical simulation."""
    if cpu == "smt":
        machine = MachineConfig.smt()
    elif cpu == "ss":
        machine = MachineConfig.superscalar()
    else:
        raise ValueError(f"unknown cpu {cpu!r} (want 'smt' or 'ss')")
    if workload == "specint":
        wl = SpecIntWorkload()
    elif workload == "apache":
        wl = ApacheWorkload()
    else:
        raise ValueError(f"unknown workload {workload!r}")
    if os_mode not in ("full", "app", "omit"):
        raise ValueError(f"unknown os_mode {os_mode!r}")
    return Simulation(
        wl,
        machine=machine,
        os_mode=OSMode.APP_ONLY if os_mode == "app" else OSMode.FULL,
        omit_kernel_refs=(os_mode == "omit"),
        seed=seed,
    )


def run_windowed(sim: Simulation, budget: int) -> tuple[dict, dict, dict]:
    """Run *sim* for *budget* instructions, splitting at workload warm-up."""
    boot = capture(sim)
    cap = int(budget * STARTUP_BUDGET_CAP)
    while not sim.workload.warmed_up(sim.os) and sim.stats.retired < cap:
        sim.run(max_instructions=min(cap, sim.stats.retired + _WARMUP_CHUNK))
    mid = capture(sim)
    sim.run(max_instructions=budget)
    end = capture(sim)
    return diff(mid, boot), diff(end, mid), diff(end, boot)


def get_run(
    workload: str,
    cpu: str,
    os_mode: str = "full",
    instructions: int | None = None,
    seed: int = 11,
) -> RunRecord:
    """Fetch (running and memoizing if necessary) a canonical run."""
    if instructions is None:
        instructions = int(DEFAULT_INSTRUCTIONS[(workload, cpu)] * _budget_multiplier())
    key = (workload, cpu, os_mode, instructions, seed)
    record = _CACHE.get(key)
    if record is not None:
        return record
    sim = build_simulation(workload, cpu, os_mode, seed=seed)
    startup, steady, total = run_windowed(sim, instructions)
    result = SimResult(
        machine=sim.machine,
        stats=sim.stats,
        hierarchy=sim.hierarchy,
        os=sim.os,
        processor=sim.processor,
        workload=sim.workload,
        os_mode=sim.os_mode,
        cycles=sim.stats.cycles,
    )
    record = RunRecord(key, result, startup, steady, total)
    _CACHE[key] = record
    return record


def clear_cache() -> None:
    """Drop all memoized runs (tests use this for isolation)."""
    _CACHE.clear()
