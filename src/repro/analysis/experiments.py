"""Canonical experiment runs.

Every table and figure of the paper is extracted from one of eight runs:

=========  ===========  =========================================
workload   cpu          os_mode
=========  ===========  =========================================
specint    smt / ss     full  (OS executed)
specint    smt / ss     app   (app-only simulator: instant traps)
apache     smt / ss     full
apache     smt / ss     omit  (OS refs omitted from hardware
                              structures -- Table 9's mode)
=========  ===========  =========================================

:func:`get_run` resolves a run through three layers:

1. an in-process memo (object identity within one process),
2. the content-addressed on-disk :class:`~repro.analysis.store.RunStore`
   (persistence across processes; see ``repro prefetch`` / ``repro cache``),
3. actual execution, after which the artifact is written back to the store.

The store key is the artifact fingerprint: schema version, code version,
and the *full* simulation config (workload, machine geometry, os mode,
instruction budget, seed, and every simulator knob), so non-default
simulations can never collide with canonical ones.  Each artifact carries
three counter windows: *startup* (boot to workload warm-up), *steady*
(warm-up to end), and *total*.

Set the ``REPRO_BUDGET_MULT`` environment variable to scale every
instruction budget (e.g. ``0.25`` for a quick smoke pass, ``4`` for a long
calibration run).
"""

from __future__ import annotations

import os as _os
import warnings

from repro.analysis.artifact import RunArtifact, run_fingerprint
from repro.analysis.snapshot import capture, diff
from repro.analysis.store import RunStore
from repro.core.config import MachineConfig
from repro.core.simulator import Simulation, sim_params
from repro.os_model.kernel import OSMode
from repro.workloads.apache import ApacheWorkload
from repro.workloads.specint import SpecIntWorkload

#: Backwards-compatible alias: analysis code that used to receive a
#: ``RunRecord`` (live handles) now receives a plain-data artifact.
RunRecord = RunArtifact

#: Default retired-instruction budgets per (workload, cpu).  Scaled runs;
#: the paper simulated 0.65-1G+ instructions, and -- like us -- ran its
#: superscalar experiments shorter than its SMT ones (Section 2.3).
DEFAULT_INSTRUCTIONS = {
    ("specint", "smt"): 1_000_000,
    ("specint", "ss"): 700_000,
    ("apache", "smt"): 2_400_000,
    ("apache", "ss"): 1_200_000,
}

#: Fraction of the budget the start-up leg may consume before the steady
#: window is opened regardless (safety valve for superscalar runs, whose
#: start-up covers more of the instruction budget).
STARTUP_BUDGET_CAP = 0.75

_WARMUP_CHUNK = 25_000

#: In-process memo: fingerprint -> artifact (layer above the disk store).
_MEMO: dict[str, RunArtifact] = {}

_WARNED_BUDGET_VALUES: set[str] = set()


def _budget_multiplier() -> float:
    raw = _os.environ.get("REPRO_BUDGET_MULT", "1")
    try:
        mult = float(raw)
    except ValueError:
        _warn_bad_budget(raw)
        return 1.0
    if mult <= 0:
        _warn_bad_budget(raw)
        return 1.0
    return mult


def _warn_bad_budget(raw: str) -> None:
    """Warn (once per distinct value) instead of silently using 1.0."""
    if raw in _WARNED_BUDGET_VALUES:
        return
    _WARNED_BUDGET_VALUES.add(raw)
    warnings.warn(
        f"ignoring invalid REPRO_BUDGET_MULT={raw!r} "
        "(expected a positive number); using 1.0",
        RuntimeWarning,
        stacklevel=3,
    )


def canonical_machine(cpu: str) -> MachineConfig:
    """The machine configuration behind a canonical cpu label."""
    if cpu == "smt":
        return MachineConfig.smt()
    if cpu == "ss":
        return MachineConfig.superscalar()
    raise ValueError(f"unknown cpu {cpu!r} (want 'smt' or 'ss')")


def resolve_instructions(workload: str, cpu: str,
                         instructions: int | None = None) -> int:
    """The effective instruction budget for one canonical run."""
    if instructions is not None:
        return instructions
    return int(DEFAULT_INSTRUCTIONS[(workload, cpu)] * _budget_multiplier())


def run_spec(
    workload: str,
    cpu: str,
    os_mode: str = "full",
    instructions: int | None = None,
    seed: int = 11,
    mode: str = "full",
    warmup: int = 0,
    sample: tuple[int, int] | None = None,
    stride: int | None = None,
) -> dict:
    """The full specification -- labels plus config fingerprint params --
    of one canonical run.  ``run_fingerprint(run_spec(...))`` is its store
    key; no simulation is constructed.

    *mode*, *warmup*, *sample* and *stride* select the execution tier
    (:mod:`repro.core.engine`).  They enter the spec -- and therefore
    the fingerprint -- only when non-default, so plain detailed specs
    are unchanged: ``mode`` when not ``"full"``, ``warmup`` when
    positive, ``sample=(N, M)`` for sampled runs, and the fast-forward
    ``stride`` whenever any fast leg exists.
    """
    from repro.core.engine import FF_STRIDE_DEFAULT, MODES, build_plan

    machine = canonical_machine(cpu)
    if workload not in ("specint", "apache"):
        raise ValueError(f"unknown workload {workload!r}")
    if os_mode not in ("full", "app", "omit"):
        raise ValueError(f"unknown os_mode {os_mode!r}")
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r} (want one of {MODES})")
    instructions = resolve_instructions(workload, cpu, instructions)
    params = sim_params(
        workload,
        machine,
        os_mode=OSMode.APP_ONLY if os_mode == "app" else OSMode.FULL,
        seed=seed,
        omit_kernel_refs=(os_mode == "omit"),
    )
    spec = {
        "workload": workload,
        "cpu": cpu,
        "os_mode": os_mode,
        "instructions": instructions,
        "seed": seed,
        "params": params,
    }
    if mode != "full":
        spec["mode"] = mode
    if warmup:
        spec["warmup"] = int(warmup)
    if mode == "sampled":
        if sample is None:
            raise ValueError("sampled mode requires sample=(N, M)")
        spec["sample"] = [int(sample[0]), int(sample[1])]
    if mode != "full" or warmup:
        spec["stride"] = int(stride) if stride is not None else FF_STRIDE_DEFAULT
    build_plan(mode, instructions, warmup=warmup, sample=sample)  # validate
    return spec


def spec_plan(spec: dict):
    """The leg plan and stride a spec executes (see
    :func:`repro.core.engine.build_plan`); derived purely from the spec,
    so equal specs always execute equal plans."""
    from repro.core.engine import FF_STRIDE_DEFAULT, build_plan

    sample = spec.get("sample")
    plan = build_plan(
        spec.get("mode", "full"),
        spec["instructions"],
        warmup=spec.get("warmup", 0),
        sample=tuple(sample) if sample is not None else None,
    )
    return plan, spec.get("stride", FF_STRIDE_DEFAULT)


def build_simulation(workload: str, cpu: str, os_mode: str, seed: int = 11) -> Simulation:
    """Assemble (but do not run) one canonical simulation."""
    machine = canonical_machine(cpu)
    if workload == "specint":
        wl = SpecIntWorkload()
    elif workload == "apache":
        wl = ApacheWorkload()
    else:
        raise ValueError(f"unknown workload {workload!r}")
    if os_mode not in ("full", "app", "omit"):
        raise ValueError(f"unknown os_mode {os_mode!r}")
    return Simulation(
        wl,
        machine=machine,
        os_mode=OSMode.APP_ONLY if os_mode == "app" else OSMode.FULL,
        omit_kernel_refs=(os_mode == "omit"),
        seed=seed,
    )


def run_windowed(sim: Simulation, budget: int,
                 max_cycles: int | None = None) -> tuple[dict, dict, dict]:
    """Run *sim* for *budget* instructions, splitting at workload warm-up.

    With *max_cycles* (an absolute cycle budget), the run is truncated
    gracefully once that many cycles elapse, whatever window it is in;
    the caller is responsible for flagging the resulting artifact.
    """
    boot = capture(sim)
    cap = int(budget * STARTUP_BUDGET_CAP)
    while not sim.workload.warmed_up(sim.os) and sim.stats.retired < cap:
        if max_cycles is not None and sim.now >= max_cycles:
            break
        sim.run(max_instructions=min(cap, sim.stats.retired + _WARMUP_CHUNK),
                max_cycles=max_cycles)
    mid = capture(sim)
    sim.run(max_instructions=budget, max_cycles=max_cycles)
    end = capture(sim)
    return diff(mid, boot), diff(end, mid), diff(end, boot)


def execute_spec(spec: dict, heartbeat=None, max_cycles: int | None = None,
                 watchdog_cycles: int | None = None,
                 checkpoint: bool = False) -> RunArtifact:
    """Execute one run spec and freeze it into an artifact (no caching).

    This is the unit of work the parallel runner ships to worker
    processes; :func:`get_run` calls it on a cache miss.  With
    *heartbeat* (a :class:`~repro.obs.live.Heartbeat`), the simulation
    emits live progress samples while it runs.  *max_cycles* /
    *watchdog_cycles* are supervision guardrails (see
    :mod:`repro.analysis.supervisor`): the former truncates gracefully
    at an absolute cycle budget and flags the artifact ``"truncated"``,
    the latter turns a zero-progress machine into a diagnostic
    :class:`~repro.core.simulator.NoProgressError`.  Neither enters the
    fingerprint: a truncated artifact is flagged, never mistaken for a
    full run by content.

    Specs carrying tier keys (``mode``/``warmup``/``sample``/``stride``,
    see :func:`run_spec`) execute their leg plan through
    :mod:`repro.core.engine` instead of the plain windowed run.  With
    *checkpoint* (an execution option, never part of the fingerprint),
    a run with a warm-up prefix saves the warmed state as a store-backed
    checkpoint on first execution and verify-restores it on later ones;
    restored runs are byte-identical to straight-through ones, with the
    provenance recorded under the artifact's ``sampling`` metadata.
    """
    from repro import faults

    label = f"{spec['workload']}-{spec['cpu']}-{spec['os_mode']}"
    if faults.fire("sim.hang", label) is not None:
        import time as _time
        while True:  # injected hang: only a supervisor timeout ends this
            _time.sleep(0.05)
    sim = build_simulation(spec["workload"], spec["cpu"], spec["os_mode"],
                           seed=spec["seed"])
    if heartbeat is not None:
        if heartbeat.target is None:
            heartbeat.target = spec["instructions"]
        sim.attach_heartbeat(heartbeat)
    if watchdog_cycles is not None:
        sim.attach_watchdog(watchdog_cycles)
    stall = faults.fire("sim.stall", label)
    if stall is not None:
        # Starve the core: cycles elapse, nothing retires.  Without a
        # watchdog this would spin to the cycle/instruction limit, so
        # arm a default one to make the scenario self-terminating.
        sim.processor.cycle = lambda now: None
        if sim.watchdog_cycles is None:
            sim.attach_watchdog(stall.arg or 20_000)
    boom = faults.fire("sim.exception", label)
    if boom is not None:
        sim.run(max_instructions=spec["instructions"],
                max_cycles=boom.arg or 2_000)
        raise faults.InjectedFault(
            "sim.exception",
            f"injected mid-simulation exception at cycle {sim.now:,} "
            f"({label})",
            snapshot=sim.obs.snapshot())
    tiered = spec.get("mode", "full") != "full" or spec.get("warmup")
    if tiered:
        startup, steady, total, sampling = _execute_tiered(
            sim, spec, max_cycles=max_cycles, use_checkpoint=checkpoint)
    else:
        cycle_cap = {} if max_cycles is None else {"max_cycles": max_cycles}
        startup, steady, total = run_windowed(sim, spec["instructions"],
                                              **cycle_cap)
        sampling = None
    if heartbeat is not None:
        heartbeat.close()
    flags = []
    if sim.stats.retired < spec["instructions"]:
        flags.append("truncated")
    artifact = sim.to_artifact(
        startup, steady, total,
        spec_extra={k: spec[k] for k in
                    ("workload", "cpu", "os_mode", "instructions", "seed",
                     "mode", "warmup", "sample", "stride") if k in spec},
        flags=flags,
        mode=spec.get("mode", "full"),
        sampling=sampling,
    )
    if artifact.fingerprint != run_fingerprint(spec):  # pragma: no cover
        raise RuntimeError(
            "config fingerprint drift: Simulation.params disagrees with "
            "run_spec() for the same arguments")
    return artifact


def _execute_tiered(sim: Simulation, spec: dict,
                    max_cycles: int | None = None,
                    use_checkpoint: bool = False):
    """Run a tiered spec's leg plan and assemble its counter windows.

    Window semantics for tiered runs: *startup* covers boot through the
    warm-up prefix (empty when the spec has no warm-up), *total* covers
    the whole run, and *steady* is the rest -- except for sampled runs,
    where it is the merged union of the detailed measurement legs (the
    only windows with real pipeline timing in them).

    Returns ``(startup, steady, total, sampling_meta)``; the metadata
    records the executed legs, the stride, the extrapolated whole-run
    probe estimates for sampled mode, and checkpoint provenance.
    """
    from repro.core import checkpoint as ckpt
    from repro.core.engine import extrapolate, run_plan
    from repro.analysis.snapshot import merge_windows

    plan, stride = spec_plan(spec)
    mode = spec.get("mode", "full")
    warmup = spec.get("warmup", 0)
    records: list[dict] = []
    samples: list[dict] = []
    ckpt_meta = None
    boot = capture(sim)
    rest = plan
    if warmup:
        prefix, rest = [plan[0]], plan[1:]
        if use_checkpoint:
            store = RunStore()
            fingerprint = ckpt.checkpoint_fingerprint(
                sim.params, prefix, stride)
            payload = store.get_checkpoint(fingerprint)
            if payload is not None:
                ckpt.restore(sim, payload, max_cycles=max_cycles)
                records.append({"mode": "fast", "target": warmup,
                                "retired": sim.stats.retired,
                                "cycles": sim.now})
                ckpt_meta = {"fingerprint": fingerprint, "restored": True,
                             "boundary": payload["boundary"]}
            else:
                leg_records, _ = run_plan(sim, prefix, max_cycles=max_cycles,
                                          stride=stride)
                records.extend(leg_records)
                saved = ckpt.take(sim, prefix, stride)
                store.put_checkpoint(saved)
                ckpt_meta = {"fingerprint": fingerprint, "restored": False,
                             "boundary": saved["boundary"]}
        else:
            leg_records, _ = run_plan(sim, prefix, max_cycles=max_cycles,
                                      stride=stride)
            records.extend(leg_records)
    mid = capture(sim)
    leg_records, samples = run_plan(sim, rest, max_cycles=max_cycles,
                                    stride=stride)
    records.extend(leg_records)
    end = capture(sim)
    startup = diff(mid, boot)
    total = diff(end, boot)
    if mode == "sampled" and samples:
        steady = merge_windows(samples)
    else:
        steady = diff(end, mid)
    meta: dict = {"mode": mode, "stride": stride, "plan": records}
    if mode == "sampled" and samples:
        meta["extrapolated"] = extrapolate(samples, spec["instructions"])
    if ckpt_meta is not None:
        meta["checkpoint"] = ckpt_meta
    return startup, steady, total, meta


def cached_artifact(fingerprint: str, store: RunStore | None = None) -> RunArtifact | None:
    """Look a fingerprint up in the memo, then the store (filling the
    memo on a store hit).  Returns None on a full miss."""
    artifact = _MEMO.get(fingerprint)
    if artifact is not None:
        return artifact
    store = store or RunStore()
    artifact = store.get(fingerprint)
    if artifact is not None:
        _MEMO[fingerprint] = artifact
    return artifact


def register_artifact(artifact: RunArtifact) -> None:
    """Install an artifact (e.g. computed by a worker) into the memo."""
    _MEMO[artifact.fingerprint] = artifact


def get_run(
    workload: str,
    cpu: str,
    os_mode: str = "full",
    instructions: int | None = None,
    seed: int = 11,
    mode: str = "full",
    warmup: int = 0,
    sample: tuple[int, int] | None = None,
    stride: int | None = None,
    checkpoint: bool = False,
) -> RunArtifact:
    """Fetch a canonical run artifact: memo, then store, then execute.

    *mode*/*warmup*/*sample*/*stride* select the execution tier (they
    are part of the spec and therefore the store key); *checkpoint* is
    an execution option only -- whether a cache-missing run may reuse a
    stored warm-up checkpoint -- and never changes the key.
    """
    spec = run_spec(workload, cpu, os_mode, instructions, seed,
                    mode=mode, warmup=warmup, sample=sample, stride=stride)
    fingerprint = run_fingerprint(spec)
    artifact = cached_artifact(fingerprint)
    if artifact is None:
        artifact = execute_spec(spec, checkpoint=checkpoint)
        RunStore().put(artifact)
        _MEMO[fingerprint] = artifact
    return artifact


def clear_cache() -> None:
    """Drop the in-process memo (tests use this for isolation).

    The on-disk store is unaffected; clear it with ``repro cache clear``
    or :meth:`repro.analysis.store.RunStore.clear`.
    """
    _MEMO.clear()
