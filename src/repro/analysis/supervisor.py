"""Supervised run execution: timeouts, retries, quarantine (robustness
layer of the run engine).

:func:`run_many_supervised` / :func:`prefetch_all_supervised` execute the
same specs as :func:`repro.analysis.runner.run_many`, but each run gets
its own worker **process** with

* a per-run **timeout** (a hung simulation is terminated, not waited on),
* **bounded retries** with deterministic exponential backoff
  (``base * 2^(attempt-2)``, capped -- no jitter, so a chaos transcript
  is reproducible),
* an **error taxonomy**: transient errors (worker death, timeouts,
  injected faults, I/O trouble) are retried; permanent ones (spec bugs:
  ``ValueError``/``TypeError``/...) fail immediately,
* per-spec **quarantine**: a spec that exhausts its retries is marked
  failed and the sweep continues (``keep_going``), returning partial
  results instead of one exception killing everything.

Results come back as :class:`RunResult` records -- ``ok``/``artifact``
on success, ``error``/``error_kind``/``attempts`` on failure -- keyed
exactly like ``run_many``.  Engine lifecycle events (start/retry/
timeout/quarantine) flow onto a :class:`repro.obs.events.EventBus` under
the ``engine`` kind, and counters register under ``core.engine.*`` when
a probe registry is supplied.

Workers hand their artifact to the parent through the on-disk
:class:`~repro.analysis.store.RunStore` (never a pipe), so a worker that
dies mid-run can never deliver a torn result: either the atomic store
write completed and the parent loads a checksummed artifact, or the
attempt is retried.  When process isolation is unavailable (restricted
sandboxes) execution falls back to in-process attempts with the same
retry/quarantine semantics; timeouts are then best-effort only (nothing
can preempt a hung in-process run), which the fallback records.

This module is host-side machinery (timeouts, backoff sleeps), so it is
on the D102 wall-clock allowlist; nothing here feeds simulation results.
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.connection
import os
import tempfile
import time
from dataclasses import dataclass, field

from repro import faults
from repro.analysis import experiments
from repro.analysis.artifact import RunArtifact, run_fingerprint
from repro.analysis.runner import (CANONICAL_SPECS, _resolve_item,
                                   _spec_label, default_workers, labels_for)
from repro.analysis.store import RunStore
from repro.core.simulator import NoProgressError

#: Error taxonomy: transient errors are retried, permanent ones are not.
TRANSIENT = "transient"
PERMANENT = "permanent"

#: Exception type names that retrying cannot fix (bugs in the spec or
#: the code, not in the environment).
PERMANENT_ERRORS = frozenset({
    "ValueError", "TypeError", "KeyError", "AttributeError",
    "AssertionError", "ArtifactError",
})

DEFAULT_RETRIES = 2
DEFAULT_BACKOFF_BASE = 0.25
BACKOFF_CAP = 8.0


def classify_error(type_name: str, transient_hint=None) -> str:
    """Transient or permanent?  An explicit hint (e.g. an
    :class:`~repro.faults.InjectedFault`'s ``transient`` flag) wins;
    otherwise the type name decides."""
    if transient_hint is not None:
        return TRANSIENT if transient_hint else PERMANENT
    return PERMANENT if type_name in PERMANENT_ERRORS else TRANSIENT


def backoff_delay(attempt: int, base: float = DEFAULT_BACKOFF_BASE,
                  cap: float = BACKOFF_CAP) -> float:
    """Seconds to wait before *attempt* (>= 2).  Pure exponential, no
    jitter: the delay sequence is part of the deterministic transcript."""
    return min(cap, base * (2 ** max(0, attempt - 2)))


@dataclass
class RunResult:
    """Outcome of one supervised spec: success, failure, or skip.

    ``attempts`` counts executions (0 when served from the store);
    ``quarantined`` marks a spec that failed for good; ``skipped`` marks
    specs never run because an earlier failure aborted the sweep
    (``keep_going=False``).  ``transcript`` is a deterministic
    per-attempt log (no wall-clock values) used by ``repro chaos``.
    """

    label: str
    spec: dict
    ok: bool
    artifact: RunArtifact | None = None
    error: str | None = None
    error_kind: str | None = None
    attempts: int = 0
    quarantined: bool = False
    from_store: bool = False
    skipped: bool = False
    transcript: list = field(default_factory=list)


class _Task:
    """Mutable in-flight state for one spec."""

    def __init__(self, index: int, label: str, spec: dict) -> None:
        self.index = index
        self.label = label
        self.spec = spec
        self.fingerprint = run_fingerprint(spec)
        self.attempts = 0
        self.not_before = 0.0  # monotonic deadline gating the next launch
        self.transcript: list = []


class _StallingSink:
    """Wraps a heartbeat sink and goes silent after N beats (the
    ``heartbeat.stall`` fault: a live worker whose telemetry died)."""

    def __init__(self, inner, after_beats: int) -> None:
        self.inner = inner
        self.after = after_beats
        self.beats = 0

    def __call__(self, sample: dict) -> None:
        if self.beats >= self.after:
            return
        self.beats += 1
        self.inner(sample)


def _run_attempt(spec: dict, store_root: str, attempt: int,
                 progress_path=None, max_cycles=None, watchdog_cycles=None,
                 allow_exit: bool = False) -> RunArtifact:
    """One attempt's body, shared by worker processes and the inline
    fallback: fire worker-level fault sites, execute, store."""
    faults.set_attempt(attempt)
    faults.reset_fired()
    label = _spec_label(spec)
    hit = faults.fire("worker.crash", label)
    if hit is not None:
        raise faults.InjectedFault(
            "worker.crash",
            f"injected worker startup crash ({label}, attempt {attempt})")
    if faults.fire("worker.exit", label) is not None:
        if allow_exit:
            os._exit(13)
        raise faults.InjectedFault(
            "worker.exit", f"injected worker hard-exit ({label})")
    heartbeat = None
    if progress_path is not None:
        from repro.obs.live import Heartbeat, StateFileSink

        sink = StateFileSink(progress_path)
        stall = faults.fire("heartbeat.stall", label)
        if stall is not None:
            sink = _StallingSink(sink, after_beats=stall.arg or 1)
        heartbeat = Heartbeat(sink, target_instructions=spec["instructions"],
                              label=label)
    artifact = experiments.execute_spec(spec, heartbeat=heartbeat,
                                        max_cycles=max_cycles,
                                        watchdog_cycles=watchdog_cycles)
    RunStore(store_root).put(artifact)
    return artifact


def _error_record(exc: BaseException) -> dict:
    record = {"type": type(exc).__name__, "message": str(exc),
              "transient": getattr(exc, "transient", None)}
    if isinstance(exc, NoProgressError):
        record["cycle"] = exc.cycle
        record["retired"] = exc.retired
    return record


def _supervised_worker(spec: dict, store_root: str, attempt: int,
                       err_path: str, progress_path=None,
                       max_cycles=None, watchdog_cycles=None) -> None:
    """Process target: run one attempt, report failure via *err_path*.

    Success is signalled by exit code 0 plus the artifact being present
    in the store; any failure writes a small JSON error record and exits
    nonzero (without the multiprocessing traceback noise).
    """
    try:
        _run_attempt(spec, store_root, attempt, progress_path=progress_path,
                     max_cycles=max_cycles, watchdog_cycles=watchdog_cycles,
                     allow_exit=True)
    except BaseException as exc:  # noqa: BLE001 - report, then die
        try:
            with open(err_path, "w") as f:
                json.dump(_error_record(exc), f)
        except OSError:  # pragma: no cover - scratch dir vanished
            pass
        raise SystemExit(1)


def _noop() -> None:  # pragma: no cover - runs in a probe child
    pass


_PROC_AVAILABLE: bool | None = None


def processes_available() -> bool:
    """Can this host run supervised worker processes?  Cached probe."""
    global _PROC_AVAILABLE
    if _PROC_AVAILABLE is None:
        try:
            p = multiprocessing.get_context().Process(target=_noop)
            p.start()
            p.join(10)
            _PROC_AVAILABLE = p.exitcode == 0
        except (OSError, PermissionError, NotImplementedError):
            _PROC_AVAILABLE = False
    return _PROC_AVAILABLE


class Supervisor:
    """Policy + state for one supervised sweep.

    Parameters mirror the CLI flags: *retries* extra attempts per spec,
    *timeout* seconds per attempt (None = unlimited), *keep_going*
    (return partial results instead of aborting on the first
    quarantine).  *isolation* is ``"auto"`` (processes when available),
    ``"process"``, or ``"inline"``.  *events* (an
    :class:`~repro.obs.events.EventBus`) receives engine lifecycle
    events; *registry* (a :class:`~repro.obs.registry.ProbeRegistry`)
    receives ``core.engine.*`` counters.  *max_cycles_per_run* /
    *watchdog_cycles* arm the simulator guardrails in every attempt.
    """

    def __init__(self, *, retries: int = DEFAULT_RETRIES,
                 timeout: float | None = None, keep_going: bool = True,
                 max_workers: int | None = None,
                 backoff_base: float = DEFAULT_BACKOFF_BASE,
                 poll_interval: float = 0.05, isolation: str = "auto",
                 events=None, registry=None,
                 max_cycles_per_run: int | None = None,
                 watchdog_cycles: int | None = None) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if isolation not in ("auto", "process", "inline"):
            raise ValueError(f"unknown isolation {isolation!r}")
        self.retries = retries
        self.timeout = timeout
        self.keep_going = keep_going
        self.max_workers = max_workers
        self.backoff_base = backoff_base
        self.poll_interval = poll_interval
        self.isolation = isolation
        self.events = events
        self.max_cycles_per_run = max_cycles_per_run
        self.watchdog_cycles = watchdog_cycles
        self.transcript: list = []  # sweep-level notes (deterministic)
        self._step = 0
        self._aborted = False
        if registry is not None:
            self.register_probes(registry)
        else:
            from repro.obs.registry import NULL_REGISTRY

            self.register_probes(NULL_REGISTRY)

    def register_probes(self, registry) -> None:
        """Engine counters under ``core.engine.*`` (probe hierarchy)."""
        self.c_from_store = registry.counter("core.engine.from_store")
        self.c_ok = registry.counter("core.engine.ok")
        self.c_failed = registry.counter("core.engine.failed")
        self.c_attempts = registry.counter("core.engine.attempts")
        self.c_retries = registry.counter("core.engine.retries")
        self.c_timeouts = registry.counter("core.engine.timeouts")
        self.c_quarantined = registry.counter("core.engine.quarantined")

    # -- events ------------------------------------------------------------

    def _emit(self, name: str, label: str, detail: str = "") -> None:
        if self.events is None:
            return
        from repro.obs.events import ENGINE

        self._step += 1
        self.events.emit(self._step, ENGINE, name, service=label,
                         args={"detail": detail} if detail else None)

    # -- public API --------------------------------------------------------

    def run_specs(self, specs=None, force: bool = False,
                  store: RunStore | None = None,
                  progress: bool = False) -> dict[str, RunResult]:
        """Resolve many runs with supervision; returns label -> RunResult
        in input order (same keying as ``run_many``)."""
        items = list(specs) if specs is not None else list(CANONICAL_SPECS)
        store = store or RunStore()
        resolved = [_resolve_item(item) for item in items]
        labels = labels_for(items, resolved)
        quarantined_before = {e.path.name for e in store.quarantine_entries()}

        results: dict[str, RunResult] = {}
        todo: list[_Task] = []
        for index, (label, spec) in enumerate(zip(labels, resolved)):
            artifact = None if force else experiments.cached_artifact(
                run_fingerprint(spec), store)
            if artifact is not None:
                self.c_from_store.add()
                self._emit("run.store_hit", label)
                results[label] = RunResult(
                    label, spec, ok=True, artifact=artifact, from_store=True,
                    transcript=["served from store"])
            else:
                todo.append(_Task(index, label, spec))

        if todo:
            use_processes = (self.isolation == "process"
                             or (self.isolation == "auto"
                                 and processes_available()))
            if use_processes:
                self._execute_pool(todo, results, store, progress)
            else:
                self._execute_inline(todo, results, store)

        # Surface entries the store quarantined during this sweep (a
        # corrupt file found on read is recovered below the retry layer:
        # the spec simply re-executes).
        for entry in store.quarantine_entries():
            if entry.path.name in quarantined_before:
                continue
            self._emit("store.quarantine", entry.path.name, entry.reason)
            self.transcript.append(
                f"store quarantined {entry.path.name}: {entry.reason}")
        return {label: results[label] for label in labels}

    # -- shared bookkeeping ------------------------------------------------

    def _sleep_for_backoff(self, task: _Task, error: str, kind: str) -> bool:
        """Record a failed attempt; True when the task should retry."""
        self.c_failed.add()
        if kind == TRANSIENT and task.attempts <= self.retries:
            delay = backoff_delay(task.attempts + 1, self.backoff_base)
            task.transcript.append(
                f"attempt {task.attempts}: [{kind}] {error}; "
                f"retrying in {delay:g}s")
            task.not_before = time.monotonic() + delay
            self.c_retries.add()
            self._emit("run.retry", task.label, error)
            return True
        task.transcript.append(
            f"attempt {task.attempts}: [{kind}] {error}; quarantined")
        return False

    def _finish_ok(self, task: _Task, artifact: RunArtifact,
                   results: dict) -> None:
        experiments.register_artifact(artifact)
        task.transcript.append(f"attempt {task.attempts}: ok")
        self.c_ok.add()
        self._emit("run.ok", task.label)
        results[task.label] = RunResult(
            task.label, task.spec, ok=True, artifact=artifact,
            attempts=task.attempts, transcript=task.transcript)

    def _finish_failed(self, task: _Task, error: str, kind: str,
                       results: dict) -> None:
        self.c_quarantined.add()
        self._emit("run.quarantine", task.label, error)
        results[task.label] = RunResult(
            task.label, task.spec, ok=False, error=error, error_kind=kind,
            attempts=task.attempts, quarantined=True,
            transcript=task.transcript)
        if not self.keep_going:
            self._aborted = True

    def _finish_skipped(self, task: _Task, results: dict) -> None:
        task.transcript.append("skipped: sweep aborted by an earlier "
                               "failure (keep_going off)")
        results[task.label] = RunResult(
            task.label, task.spec, ok=False, error="skipped", skipped=True,
            attempts=task.attempts, transcript=task.transcript)

    # -- process-pool execution --------------------------------------------

    def _execute_pool(self, todo: list[_Task], results: dict,
                      store: RunStore, progress: bool) -> None:
        ctx = multiprocessing.get_context()
        workers = self.max_workers or default_workers()
        aggregator = None
        with tempfile.TemporaryDirectory(prefix="repro-supervise-") as scratch:
            if progress:
                from repro.obs.live import ProgressAggregator

                aggregator = ProgressAggregator(
                    scratch, total_runs=len(todo),
                    total_instructions=sum(t.spec["instructions"]
                                           for t in todo))
            pending: list[_Task] = list(todo)
            active: dict[str, tuple] = {}  # label -> (proc, task, deadline, err)
            while pending or active:
                if self._aborted:
                    for proc, task, _, _ in active.values():
                        self._kill(proc)
                        self._finish_skipped(task, results)
                    for task in pending:
                        self._finish_skipped(task, results)
                    break
                now = time.monotonic()
                for task in [t for t in pending if t.not_before <= now]:
                    if len(active) >= workers:
                        break
                    pending.remove(task)
                    self._launch(task, ctx, store, scratch, active, aggregator)
                if active:
                    self._reap(active, pending, results, store)
                elif pending:
                    soonest = min(t.not_before for t in pending)
                    time.sleep(min(max(0.0, soonest - now),
                                   self.poll_interval * 4))
                if aggregator is not None:
                    aggregator.refresh(final=not (pending or active))

    def _launch(self, task: _Task, ctx, store: RunStore, scratch: str,
                active: dict, aggregator) -> None:
        task.attempts += 1
        self.c_attempts.add()
        err_path = os.path.join(scratch,
                                f"{task.index}-{task.attempts}.err.json")
        progress_path = (aggregator.path_for(task.index)
                         if aggregator is not None else None)
        proc = ctx.Process(
            target=_supervised_worker,
            args=(task.spec, str(store.root), task.attempts, err_path,
                  progress_path, self.max_cycles_per_run,
                  self.watchdog_cycles),
            daemon=True)
        proc.start()
        deadline = (time.monotonic() + self.timeout
                    if self.timeout else None)
        self._emit("run.start", task.label, f"attempt {task.attempts}")
        active[task.label] = (proc, task, deadline, err_path)

    def _reap(self, active: dict, pending: list, results: dict,
              store: RunStore) -> None:
        sentinels = {proc.sentinel: label
                     for label, (proc, _, _, _) in active.items()}
        try:
            ready = multiprocessing.connection.wait(
                list(sentinels), timeout=self.poll_interval)
        except OSError:  # pragma: no cover - sentinel raced closed
            ready = []
        for sentinel in ready:
            label = sentinels[sentinel]
            proc, task, _, err_path = active.pop(label)
            proc.join()
            self._settle(task, proc.exitcode, err_path, pending, results,
                         store)
        now = time.monotonic()
        for label, (proc, task, deadline, err_path) in list(active.items()):
            if deadline is None or now < deadline or not proc.is_alive():
                continue
            self._kill(proc)
            active.pop(label)
            self.c_timeouts.add()
            self._emit("run.timeout", task.label)
            error = (f"timed out after {self.timeout:g}s; "
                     "worker terminated")
            if self._sleep_for_backoff(task, error, TRANSIENT):
                pending.append(task)
            else:
                self._finish_failed(task, error, TRANSIENT, results)

    def _settle(self, task: _Task, exitcode, err_path: str, pending: list,
                results: dict, store: RunStore) -> None:
        """Classify one finished worker and route the task onward."""
        if exitcode == 0:
            artifact = store.get(task.fingerprint)
            if artifact is not None:
                self._finish_ok(task, artifact, results)
                return
            error = "worker exited cleanly but stored no artifact"
            kind = TRANSIENT
        else:
            record = self._read_error(err_path)
            if record is not None:
                error = f"{record.get('type')}: {record.get('message')}"
                kind = classify_error(record.get("type", ""),
                                      record.get("transient"))
            else:
                error = f"worker died with exit code {exitcode}"
                kind = TRANSIENT
        if self._sleep_for_backoff(task, error, kind):
            pending.append(task)
        else:
            self._finish_failed(task, error, kind, results)

    @staticmethod
    def _read_error(err_path: str) -> dict | None:
        try:
            with open(err_path) as f:
                record = json.load(f)
        except (OSError, ValueError):
            return None
        os.unlink(err_path)
        return record if isinstance(record, dict) else None

    @staticmethod
    def _kill(proc) -> None:
        proc.terminate()
        proc.join(1.0)
        if proc.is_alive():  # pragma: no cover - SIGTERM ignored
            proc.kill()
            proc.join(5.0)

    # -- inline fallback ---------------------------------------------------

    def _execute_inline(self, todo: list[_Task], results: dict,
                        store: RunStore) -> None:
        """Serial in-process attempts: same retry/quarantine semantics,
        but a timeout cannot preempt a hung run (recorded per task)."""
        if self.timeout is not None:
            self.transcript.append(
                "inline fallback: per-run timeouts are best-effort only "
                "(no process isolation available)")
        for task in todo:
            if self._aborted:
                self._finish_skipped(task, results)
                continue
            self._run_inline_task(task, results, store)
        faults.set_attempt(1)

    def _run_inline_task(self, task: _Task, results: dict,
                         store: RunStore) -> None:
        while True:
            task.attempts += 1
            self.c_attempts.add()
            self._emit("run.start", task.label, f"attempt {task.attempts}")
            try:
                artifact = _run_attempt(
                    task.spec, str(store.root), task.attempts,
                    max_cycles=self.max_cycles_per_run,
                    watchdog_cycles=self.watchdog_cycles)
            except Exception as exc:  # noqa: BLE001 - taxonomy below
                record = _error_record(exc)
                error = f"{record['type']}: {record['message']}"
                kind = classify_error(record["type"], record["transient"])
                if self._sleep_for_backoff(task, error, kind):
                    time.sleep(max(0.0, task.not_before - time.monotonic()))
                    continue
                self._finish_failed(task, error, kind, results)
                return
            self._finish_ok(task, artifact, results)
            return


def run_many_supervised(specs=None, *, retries: int = DEFAULT_RETRIES,
                        timeout: float | None = None, keep_going: bool = True,
                        max_workers: int | None = None, force: bool = False,
                        store: RunStore | None = None, progress: bool = False,
                        backoff_base: float = DEFAULT_BACKOFF_BASE,
                        isolation: str = "auto", events=None, registry=None,
                        max_cycles_per_run: int | None = None,
                        watchdog_cycles: int | None = None,
                        ) -> dict[str, RunResult]:
    """Supervised counterpart of :func:`repro.analysis.runner.run_many`:
    same specs and result keying, but failures yield per-spec
    :class:`RunResult` records instead of killing the sweep."""
    supervisor = Supervisor(
        retries=retries, timeout=timeout, keep_going=keep_going,
        max_workers=max_workers, backoff_base=backoff_base,
        isolation=isolation, events=events, registry=registry,
        max_cycles_per_run=max_cycles_per_run,
        watchdog_cycles=watchdog_cycles)
    return supervisor.run_specs(specs, force=force, store=store,
                                progress=progress)


def prefetch_all_supervised(**kwargs) -> dict[str, RunResult]:
    """Supervised warm-up of all eight canonical runs."""
    return run_many_supervised(CANONICAL_SPECS, **kwargs)


def prefetch_timed_supervised(**kwargs):
    """Supervised prefetch plus wall seconds, for CLI reporting."""
    start = time.perf_counter()
    results = prefetch_all_supervised(**kwargs)
    return results, time.perf_counter() - start
