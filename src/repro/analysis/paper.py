"""The paper's published numbers, and paper-vs-measured comparison.

``PAPER`` records the reference values from the paper's Tables 2-9 and
Figures 1-7 that this reproduction tracks.  ``build_comparison`` evaluates
the same quantities over canonical runs and reports, per row, the paper
value, the measured value, and whether the *shape* criterion holds.

Shape criteria are deliberately qualitative (ratios, orderings, dominance),
matching the reproduction contract in DESIGN.md: a scaled pure-Python
simulator cannot (and does not try to) hit the testbed's absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis import metrics as M
from repro.analysis.artifact import RunArtifact

#: Reference values transcribed from the paper.
PAPER = {
    # Figure 1 / Section 3.1.1
    "specint_startup_os_share": 0.18,
    "specint_steady_os_share": 0.05,
    # Table 4 (steady state)
    "smt_spec_only_ipc": 5.9,
    "smt_spec_os_ipc": 5.6,
    "ss_spec_only_ipc": 3.0,
    "ss_spec_os_ipc": 2.6,
    "smt_spec_os_l1i_pct": 2.0,
    "smt_spec_os_l1d_pct": 3.6,
    "smt_spec_os_l2_pct": 1.4,
    "smt_spec_os_dtlb_pct": 0.6,
    "smt_spec_os_mispredict_pct": 9.3,
    "smt_spec_os_squash_pct": 18.2,
    "smt_spec_os_fetchable": 7.1,
    # Section 3.2.1 / Figure 5-6
    "apache_os_share": 0.75,
    "apache_kernel_syscall_frac": 0.57,
    "apache_kernel_netintr_frac": 0.34,
    # Table 6
    "smt_apache_ipc": 4.6,
    "ss_apache_ipc": 1.1,
    "smt_apache_l1i_pct": 5.0,
    "smt_apache_l1d_pct": 8.4,
    "smt_apache_l2_pct": 2.1,
    "smt_apache_max_issue_pct": 58.2,
    "ss_apache_zero_fetch_pct": 65.0,
    "smt_over_ss_apache": 4.2,
    # Figure 7
    "apache_stat_share": 0.10,
    "apache_rw_share": 0.19,
    # Table 9
    "apache_os_icache_factor": 5.5,
    "apache_os_mispredict_factor": 2.1,
}


@dataclass(frozen=True)
class ComparisonRow:
    """One paper-vs-measured line of EXPERIMENTS.md."""

    exhibit: str
    quantity: str
    paper: float
    measured: float
    shape_criterion: str
    holds: bool

    def as_markdown(self) -> str:
        status = "yes" if self.holds else "NO"
        return (f"| {self.exhibit} | {self.quantity} | {self.paper:g} | "
                f"{self.measured:.3g} | {self.shape_criterion} | {status} |")


def _row(exhibit: str, quantity: str, paper: float, measured: float,
         criterion: str, predicate: Callable[[], bool]) -> ComparisonRow:
    return ComparisonRow(exhibit, quantity, paper, measured, criterion,
                         bool(predicate()))


def build_comparison(records: dict[str, RunArtifact]) -> list[ComparisonRow]:
    """Evaluate every tracked quantity over the canonical *records*.

    ``records`` maps run labels to records; the required labels are
    ``specint-smt-full``, ``specint-smt-app``, ``specint-ss-full``,
    ``specint-ss-app``, ``apache-smt-full``, ``apache-ss-full``,
    ``apache-smt-omit``.
    """
    rows: list[ComparisonRow] = []
    spec = records["specint-smt-full"]
    spec_app = records["specint-smt-app"]
    spec_ss = records["specint-ss-full"]
    spec_ss_app = records["specint-ss-app"]
    apache = records["apache-smt-full"]
    apache_ss = records["apache-ss-full"]
    apache_omit = records["apache-smt-omit"]

    startup_os = M.os_cycle_share(spec.startup)
    steady_os = M.os_cycle_share(spec.steady)
    rows.append(_row("Fig 1", "SPECInt start-up OS share",
                     PAPER["specint_startup_os_share"], startup_os,
                     "start-up >> steady and both in band",
                     lambda: startup_os > 1.5 * steady_os and startup_os > 0.08))
    rows.append(_row("Fig 1", "SPECInt steady OS share",
                     PAPER["specint_steady_os_share"], steady_os,
                     "small (<= 0.15)", lambda: steady_os <= 0.15))

    smt_ipc = M.ipc(spec.steady)
    smt_app_ipc = M.ipc(spec_app.steady)
    ss_ipc = M.ipc(spec_ss.steady)
    ss_app_ipc = M.ipc(spec_ss_app.steady)
    rows.append(_row("Tab 4", "SMT SPEC+OS IPC", PAPER["smt_spec_os_ipc"],
                     smt_ipc, "within 25% of paper",
                     lambda: abs(smt_ipc - 5.6) / 5.6 < 0.25))
    smt_os_cost = 1 - smt_ipc / max(1e-9, smt_app_ipc)
    rows.append(_row("Tab 4", "OS IPC cost, SMT (only->+OS)",
                     (5.9 - 5.6) / 5.9, smt_os_cost,
                     "small (< 0.15)", lambda: smt_os_cost < 0.15))
    rows.append(_row("Tab 4", "SS SPEC+OS IPC", PAPER["ss_spec_os_ipc"],
                     ss_ipc, "roughly half of SMT",
                     lambda: ss_ipc < 0.75 * smt_ipc))
    rows.append(_row("Tab 4", "SS squashes more than SMT",
                     32.3 / 18.2, M.squash_fraction(spec_ss.steady)
                     / max(1e-9, M.squash_fraction(spec.steady)),
                     "ratio > 1",
                     lambda: M.squash_fraction(spec_ss.steady)
                     > M.squash_fraction(spec.steady)))
    dtlb = M.miss_rate(spec.steady, "DTLB") * 100
    rows.append(_row("Tab 4", "SMT SPEC+OS DTLB miss %",
                     PAPER["smt_spec_os_dtlb_pct"], dtlb,
                     "sub-1% regime", lambda: dtlb < 1.0))
    mis = M.cond_mispredict_rate(spec.steady) * 100
    rows.append(_row("Tab 4", "SMT SPEC+OS mispredict %",
                     PAPER["smt_spec_os_mispredict_pct"], mis,
                     "single-digit regime", lambda: 3.0 <= mis <= 15.0))

    apache_os = M.os_cycle_share(apache.steady)
    rows.append(_row("Fig 5", "Apache OS share", PAPER["apache_os_share"],
                     apache_os, "> 0.6", lambda: apache_os > 0.6))

    cats = M.kernel_category_shares(apache.steady)
    ktotal = sum(cats.values()) or 1
    sys_frac = cats.get("system calls", 0) / ktotal
    net_frac = (cats.get("netisr", 0) + cats.get("interrupts", 0)) / ktotal
    rows.append(_row("Fig 6", "Apache kernel time in syscalls",
                     PAPER["apache_kernel_syscall_frac"], sys_frac,
                     "largest kernel class",
                     lambda: sys_frac >= max(net_frac,
                                             cats.get("tlb handling", 0) / ktotal)))
    rows.append(_row("Fig 6", "Apache kernel time in interrupts+netisr",
                     PAPER["apache_kernel_netintr_frac"], net_frac,
                     "substantial (> 0.08)", lambda: net_frac > 0.08))

    by_name = M.syscall_cycle_shares(apache.steady)
    stat_share = by_name.get("stat", 0.0)
    rw_share = sum(by_name.get(n, 0.0) for n in ("read", "write", "writev"))
    rows.append(_row("Fig 7", "Apache stat share of cycles",
                     PAPER["apache_stat_share"], stat_share,
                     "top-3 syscall", lambda: stat_share >= sorted(
                         by_name.values(), reverse=True)[min(2, len(by_name) - 1)]))
    rows.append(_row("Fig 7", "Apache read/write/writev share",
                     PAPER["apache_rw_share"], rw_share,
                     "leading consumer (> stat/2)",
                     lambda: rw_share > stat_share / 2))

    a_ipc = M.ipc(apache.steady)
    a_ss_ipc = M.ipc(apache_ss.steady)
    gain = a_ipc / a_ss_ipc if a_ss_ipc else 0.0
    rows.append(_row("Tab 6", "Apache SMT IPC", PAPER["smt_apache_ipc"],
                     a_ipc, "below SPECInt, above 3",
                     lambda: 3.0 < a_ipc < smt_ipc))
    rows.append(_row("Tab 6", "Apache superscalar IPC", PAPER["ss_apache_ipc"],
                     a_ss_ipc, "collapses (< 2.5)", lambda: a_ss_ipc < 2.5))
    rows.append(_row("Tab 6", "SMT/SS Apache throughput gain",
                     PAPER["smt_over_ss_apache"], gain, "> 2x",
                     lambda: gain > 2.0))
    rows.append(_row("Tab 6", "Apache stresses D-cache more than SPECInt",
                     8.4 / 3.6, M.miss_rate(apache.steady, "L1D")
                     / max(1e-9, M.miss_rate(spec.steady, "L1D")),
                     "ratio > 1",
                     lambda: M.miss_rate(apache.steady, "L1D")
                     > M.miss_rate(spec.steady, "L1D")))
    rows.append(_row("Tab 6", "SS Apache 0-fetch cycles %",
                     PAPER["ss_apache_zero_fetch_pct"],
                     M.zero_fetch_share(apache_ss.steady) * 100,
                     "far above SMT's",
                     lambda: M.zero_fetch_share(apache_ss.steady)
                     > 2 * M.zero_fetch_share(apache.steady)))

    icache_factor = (M.miss_rate(apache.steady, "L1I")
                     / max(1e-9, M.miss_rate(apache_omit.steady, "L1I")))
    rows.append(_row("Tab 9", "OS factor on Apache I-cache miss",
                     PAPER["apache_os_icache_factor"], icache_factor,
                     "multi-fold (> 1.5x)", lambda: icache_factor > 1.5))

    kk_l1d = M.avoided_distribution(apache.total, "L1D").get((1, 1), 0.0)
    kk_l1d_ss = M.avoided_distribution(apache_ss.total, "L1D").get((1, 1), 0.0)
    rows.append(_row("Tab 8", "Kernel-kernel L1D prefetch share (SMT)",
                     0.208, kk_l1d, "exceeds superscalar's",
                     lambda: kk_l1d > kk_l1d_ss))
    return rows


def render_markdown(rows: list[ComparisonRow]) -> str:
    """Render comparison rows as the EXPERIMENTS.md table body."""
    header = ("| Exhibit | Quantity | Paper | Measured | Shape criterion | "
              "Holds |\n|---|---|---|---|---|---|")
    return "\n".join([header] + [r.as_markdown() for r in rows])
