"""Builders for the paper's Tables 2-9.

Each function takes the plain-data
:class:`~repro.analysis.artifact.RunArtifact` objects it needs and returns
a dict with the structured data plus a ``"text"`` rendering.  The
benchmarks print the text; tests assert on the data.  Because artifacts
carry no live simulator handles, a table renders byte-identically whether
its run was just executed or loaded from the on-disk store.
"""

from __future__ import annotations

from repro.analysis import metrics as M
from repro.analysis.artifact import RunArtifact
from repro.analysis.render import change_str, format_table
from repro.isa.types import Mode
from repro.memory.classify import MissCause, ModeKind

_CAUSE_ROWS = (
    ("Intrathread conflicts", MissCause.INTRATHREAD),
    ("Interthread conflicts", MissCause.INTERTHREAD),
    ("User-kernel conflicts", MissCause.USER_KERNEL),
    ("Invalidation by the OS", MissCause.INVALIDATION),
    ("Compulsory", MissCause.COMPULSORY),
)

_MIX_ROWS = (
    ("Load", "load"),
    ("Store", "store"),
    ("Branch", "branch"),
    ("  Conditional", "conditional"),
    ("  Unconditional", "unconditional"),
    ("  Indirect Jump", "indirect"),
    ("  PAL call/return", "pal_call_return"),
    ("Remaining Integer", "remaining_integer"),
    ("Floating Point", "floating_point"),
)


def _mix_cell(mix: dict[str, float], key: str) -> str:
    if not mix:
        return "--"
    value = mix.get(key, 0.0)
    if key in ("load", "store"):
        return f"{value:.1f} ({mix['phys_mem_pct']:.0f}%)"
    if key == "conditional":
        return f"({mix['cond_taken_pct']:.0f}%) {value:.1f}"
    return f"{value:.1f}"


def _mix_table(title: str, columns: list[tuple[str, dict, Mode | None]], note: str) -> dict:
    headers = ["Instruction Type"] + [name for name, _, _ in columns]
    mixes = [(name, M.instruction_mix(window, mode)) for name, window, mode in columns]
    rows = []
    for label, key in _MIX_ROWS:
        row = [label]
        for _, mix in mixes:
            row.append(_mix_cell(mix, key))
        rows.append(row)
    data = dict(mixes)
    return {
        "title": title,
        "data": data,
        "text": format_table(title, headers, rows, note=note),
    }


def table2(specint_smt: RunArtifact) -> dict:
    """SPECInt dynamic instruction mix, start-up vs steady state (Table 2)."""
    cols = []
    for phase, window in (("Start-up", specint_smt.startup), ("Steady", specint_smt.steady)):
        for mode_name, mode in (("User", Mode.USER), ("Kernel", Mode.KERNEL), ("Overall", None)):
            cols.append((f"{phase} {mode_name}", window, mode))
    return _mix_table(
        "Table 2: SPECInt dynamic instruction mix (%)",
        cols,
        note=("Loads/stores show (physical-address share); the conditional "
              "row shows (taken share)."),
    )


def table5(apache_smt: RunArtifact) -> dict:
    """Apache dynamic instruction mix (Table 5)."""
    window = apache_smt.steady
    cols = [
        ("User", window, Mode.USER),
        ("Kernel", window, Mode.KERNEL),
        ("Overall", window, None),
    ]
    return _mix_table(
        "Table 5: Apache dynamic instruction mix (%)",
        cols,
        note="Same conventions as Table 2.",
    )


def _miss_distribution_table(title: str, window: dict, structures: list[str]) -> dict:
    headers = ["Cause of misses"]
    for s in structures:
        headers.extend([f"{s} User", f"{s} Kern"])
    total_row = ["Total miss rate (%)"]
    data: dict = {"miss_rates": {}, "causes": {}}
    for s in structures:
        for kind in (ModeKind.USER, ModeKind.KERNEL):
            rate = M.miss_rate(window, s, int(kind)) * 100
            total_row.append(f"{rate:.1f}")
            data["miss_rates"][(s, int(kind))] = rate
    rows = [total_row]
    cause_maps = {s: M.cause_distribution(window, s) for s in structures}
    for label, cause in _CAUSE_ROWS:
        row = [label]
        for s in structures:
            dist = cause_maps[s]
            for kind in (0, 1):
                share = dist.get((kind, int(cause)), 0.0) * 100
                row.append(f"{share:.1f}")
                data["causes"][(s, kind, int(cause))] = share
        rows.append(row)
    return {
        "title": title,
        "data": data,
        "text": format_table(
            title, headers, rows,
            note=("Cause rows are percentages of ALL misses in the structure "
                  "(user+kernel columns sum to ~100)."),
        ),
    }


def table3(specint_smt: RunArtifact) -> dict:
    """SPECInt miss rates and conflict causes (Table 3)."""
    return _miss_distribution_table(
        "Table 3: SPECInt+OS miss rates and miss-cause distribution",
        specint_smt.total,
        ["BTB", "L1I", "L1D", "L2", "DTLB"],
    )


def table7(apache_smt: RunArtifact) -> dict:
    """Apache miss rates and conflict causes (Table 7)."""
    return _miss_distribution_table(
        "Table 7: Apache+OS miss rates and miss-cause distribution",
        apache_smt.total,
        ["BTB", "L1I", "L1D", "L2", "DTLB", "ITLB"],
    )


_TABLE4_ROWS = (
    ("IPC", "ipc", 2),
    ("Average # fetchable contexts", "avg_fetchable_contexts", 1),
    ("Branch misprediction rate (%)", "branch_mispredict_pct", 1),
    ("Instructions squashed (% of fetched)", "squashed_pct", 1),
    ("L1 Icache miss rate (%)", "l1i_miss_pct", 1),
    ("L1 Dcache miss rate (%)", "l1d_miss_pct", 1),
    ("L2 miss rate (%)", "l2_miss_pct", 1),
    ("ITLB miss rate (%)", "itlb_miss_pct", 2),
    ("DTLB miss rate (%)", "dtlb_miss_pct", 2),
)


def table4(spec_smt_app: RunArtifact, spec_smt_full: RunArtifact,
           spec_ss_app: RunArtifact, spec_ss_full: RunArtifact) -> dict:
    """SPECInt with and without the OS, SMT vs superscalar (Table 4)."""
    windows = {
        "SMT SPEC only": (spec_smt_app.steady, spec_smt_app.n_contexts),
        "SMT SPEC+OS": (spec_smt_full.steady, spec_smt_full.n_contexts),
        "SS SPEC only": (spec_ss_app.steady, spec_ss_app.n_contexts),
        "SS SPEC+OS": (spec_ss_full.steady, spec_ss_full.n_contexts),
    }
    metrics = {name: M.table4_metrics(w, n) for name, (w, n) in windows.items()}
    headers = ["Metric", "SMT app", "SMT +OS", "Chg", "SS app", "SS +OS", "Chg"]
    rows = []
    for label, key, nd in _TABLE4_ROWS:
        smt_a = metrics["SMT SPEC only"][key]
        smt_f = metrics["SMT SPEC+OS"][key]
        ss_a = metrics["SS SPEC only"][key]
        ss_f = metrics["SS SPEC+OS"][key]
        rows.append([
            label,
            f"{smt_a:.{nd}f}", f"{smt_f:.{nd}f}", change_str(smt_a, smt_f),
            f"{ss_a:.{nd}f}", f"{ss_f:.{nd}f}", change_str(ss_a, ss_f),
        ])
    return {
        "title": "Table 4",
        "data": metrics,
        "text": format_table(
            "Table 4: SPECInt with/without the OS, SMT vs superscalar "
            "(steady state)", headers, rows,
            note="'app' = application-only simulator (instant traps).",
        ),
    }


_TABLE6_ROWS = _TABLE4_ROWS + (
    ("0-fetch cycles (%)", "zero_fetch_pct", 1),
    ("0-issue cycles (%)", "zero_issue_pct", 1),
    ("Max (6) issue cycles (%)", "max_issue_pct", 1),
    ("Avg outstanding I$ misses", "outstanding_l1i", 1),
    ("Avg outstanding D$ misses", "outstanding_l1d", 1),
    ("Avg outstanding L2 misses", "outstanding_l2", 1),
)


def table6(apache_smt: RunArtifact, specint_smt: RunArtifact, apache_ss: RunArtifact) -> dict:
    """Apache vs SPECInt on SMT, and Apache on the superscalar (Table 6)."""
    windows = {
        "SMT Apache": (apache_smt.steady, apache_smt.n_contexts),
        "SMT SPECInt": (specint_smt.steady, specint_smt.n_contexts),
        "SS Apache": (apache_ss.steady, apache_ss.n_contexts),
    }
    metrics = {name: M.table4_metrics(w, n) for name, (w, n) in windows.items()}
    headers = ["Metric", "SMT Apache", "SMT SPECInt", "SS Apache"]
    rows = []
    for label, key, nd in _TABLE6_ROWS:
        rows.append([label] + [f"{metrics[name][key]:.{nd}f}" for name in windows])
    return {
        "title": "Table 6",
        "data": metrics,
        "text": format_table(
            "Table 6: Architectural metrics, Apache vs SPECInt (with OS)",
            headers, rows,
            note="All runs execute the full operating system.",
        ),
    }


def table8(apache_smt: RunArtifact, apache_ss: RunArtifact) -> dict:
    """Misses avoided by interthread cooperation (Table 8)."""
    structures = ["L1I", "L1D", "L2", "DTLB"]
    headers = ["Mode that would have missed"]
    for s in structures:
        headers.extend([f"{s} by-usr", f"{s} by-krn"])
    data: dict = {}
    rows = []
    for cpu_label, rec in (("Apache - SMT", apache_smt), ("Apache - Superscalar", apache_ss)):
        rows.append([f"-- {cpu_label} --"] + [""] * (len(headers) - 1))
        dists = {s: M.avoided_distribution(rec.total, s) for s in structures}
        for kind_label, kind in (("User", 0), ("Kernel", 1)):
            row = [kind_label]
            for s in structures:
                for filler in (0, 1):
                    share = dists[s].get((kind, filler), 0.0) * 100
                    row.append(f"{share:.1f}")
                    data[(cpu_label, s, kind, filler)] = share
            rows.append(row)
    return {
        "title": "Table 8",
        "data": data,
        "text": format_table(
            "Table 8: Misses avoided by interthread prefetching "
            "(% of actual misses)", headers, rows,
            note=("Entry (mode M, by-K): hits by mode-M threads on entries "
                  "another thread running in mode K fetched first."),
        ),
    }


_TABLE9_ROWS = (
    ("Branch misprediction rate (%)", "branch_mispredict_pct"),
    ("BTB misprediction rate (%)", "btb_miss_pct"),
    ("L1 Icache miss rate (%)", "l1i_miss_pct"),
    ("L1 Dcache miss rate (%)", "l1d_miss_pct"),
    ("L2 miss rate (%)", "l2_miss_pct"),
)


def table9(apache_smt_omit: RunArtifact, apache_smt_full: RunArtifact,
           apache_ss_omit: RunArtifact, apache_ss_full: RunArtifact) -> dict:
    """OS impact on hardware structures for Apache (Table 9)."""
    metrics = {
        "SMT only": M.table4_metrics(apache_smt_omit.steady, apache_smt_omit.n_contexts),
        "SMT +OS": M.table4_metrics(apache_smt_full.steady, apache_smt_full.n_contexts),
        "SS only": M.table4_metrics(apache_ss_omit.steady, apache_ss_omit.n_contexts),
        "SS +OS": M.table4_metrics(apache_ss_full.steady, apache_ss_full.n_contexts),
    }
    headers = ["Metric", "SMT only", "SMT +OS", "Chg", "SS only", "SS +OS", "Chg"]
    rows = []
    for label, key in _TABLE9_ROWS:
        a, b = metrics["SMT only"][key], metrics["SMT +OS"][key]
        c, d = metrics["SS only"][key], metrics["SS +OS"][key]
        rows.append([label, f"{a:.1f}", f"{b:.1f}", change_str(a, b),
                     f"{c:.1f}", f"{d:.1f}", change_str(c, d)])
    return {
        "title": "Table 9",
        "data": metrics,
        "text": format_table(
            "Table 9: Impact of the OS on hardware structures (Apache)",
            headers, rows,
            note=("'only' = kernel references omitted from the hardware "
                  "structures, the paper's user-only measurement mode."),
        ),
    }
