"""Counter snapshots and window differencing.

``capture`` flattens every monotonically-increasing counter of a live
simulation into a nested dict of plain numbers; ``diff`` subtracts two
captures to yield the counters of the *window* between them.  All derived
metrics (rates, shares, averages) are computed from windows, which is how
the paper's start-up vs steady-state columns are produced from one run.
"""

from __future__ import annotations

from repro.core.simulator import Simulation


def _miss_stats(stats) -> dict:
    return {
        "accesses": list(stats.accesses),
        "misses": list(stats.misses),
        "causes": {f"{int(kind)}:{int(cause)}": v for (kind, cause), v in stats.causes.items()},
        "avoided": {f"{int(kind)}:{int(filler)}": v for (kind, filler), v in stats.avoided.items()},
    }


def capture(sim: Simulation) -> dict:
    """Snapshot every counter of *sim* into plain data."""
    stats = sim.stats
    hierarchy = sim.hierarchy
    unit = sim.processor.branch_unit
    os_ = sim.os
    now = sim._now
    snap = {
        "now": now,
        "cycles": stats.cycles,
        "retired": stats.retired,
        "fetched": stats.fetched,
        "squashed": stats.squashed,
        "zero_fetch_cycles": stats.zero_fetch_cycles,
        "zero_issue_cycles": stats.zero_issue_cycles,
        "max_issue_cycles": stats.max_issue_cycles,
        "fetchable_context_sum": stats.fetchable_context_sum,
        "class_cycles": list(stats.class_cycles),
        "service_cycles": dict(stats.service_cycles),
        "retired_by_mode": list(stats.retired_by_mode),
        "itype_by_mode": {
            f"{int(mode)}:{int(itype)}": v for (mode, itype), v in stats.itype_by_mode.items()
        },
        "mem_by_mode": list(stats.mem_by_mode),
        "phys_mem_by_mode": list(stats.phys_mem_by_mode),
        "cond_by_mode": list(stats.cond_by_mode),
        "cond_taken_by_mode": list(stats.cond_taken_by_mode),
        "retired_by_service": dict(stats.retired_by_service),
        "caches": {
            name: _miss_stats(cache.stats)
            for name, cache in (
                ("L1I", hierarchy.l1i), ("L1D", hierarchy.l1d), ("L2", hierarchy.l2))
        },
        "tlbs": {
            name: _miss_stats(tlb.stats)
            for name, tlb in (("ITLB", hierarchy.itlb), ("DTLB", hierarchy.dtlb))
        },
        "btb": _miss_stats(unit.btb.stats),
        "btb_target_mispredicts": list(unit.btb.target_mispredicts),
        "cond_predictions": list(unit.cond_predictions),
        "cond_mispredicts": list(unit.cond_mispredicts),
        "mshr_integrals": {
            "L1I": hierarchy.l1i_mshr.integral_at(now),
            "L1D": hierarchy.l1d_mshr.integral_at(now),
            "L2": hierarchy.l2_mshr.integral_at(now),
        },
        "syscall_counts": dict(os_.syscall_counts),
        "vm_incursions": dict(os_.vm.incursions),
        "os_counters": dict(os_.counters),
        "sched": {
            "switches": os_.scheduler.switches,
            "asn_recycles": os_.scheduler.asn_recycles,
        },
        "lock_contentions": dict(os_.locks.contentions),
        "lock_acquisitions": dict(os_.locks.acquisitions),
        "icache_flushes": hierarchy.l1i.flushes,
        "bus": {
            "l1l2_transactions": hierarchy.l1l2_bus.transactions,
            "l1l2_wait": hierarchy.l1l2_bus.total_wait,
            "mem_transactions": hierarchy.mem_bus.transactions,
            "mem_wait": hierarchy.mem_bus.total_wait,
        },
        # The full hierarchical probe tree (mem.* / branch.* / os.* /
        # core.*), flattened and sorted: every window of a stored artifact
        # carries full counter detail (see `repro counters`).
        "probes": sim.obs.snapshot(),
        # Call-path cycle attribution (schema v6): context-cycles per
        # ";"-joined span chain; ``diff`` windows it like any counter dict
        # and repro.obs.flame folds it into flamegraph output.
        "attribution": sim.attrib.snapshot(),
    }
    return snap


def merge_windows(windows: list[dict]) -> dict:
    """Sum a list of counter windows into one combined window.

    The sampled tier's steady window is the union of its detailed
    measurement legs: every counter adds, histogram ``bounds`` metadata
    is carried from the first window that has it.  Keys missing from
    some windows contribute zero.
    """
    if not windows:
        return {}
    out: dict = {}
    for window in windows:
        _merge_into(out, window)
    return out


def _merge_into(out: dict, window: dict) -> None:
    for key, value in window.items():
        if key == "bounds" and isinstance(value, list):
            out.setdefault(key, list(value))
        elif isinstance(value, dict):
            _merge_into(out.setdefault(key, {}), value)
        elif isinstance(value, list):
            prev = out.get(key)
            if isinstance(prev, list) and len(prev) == len(value):
                out[key] = [p + v for p, v in zip(prev, value)]
            else:
                out[key] = list(value)
        elif isinstance(value, (int, float)):
            prev = out.get(key)
            out[key] = (prev if isinstance(prev, (int, float)) else 0) + value
        else:  # pragma: no cover - no other types are captured
            out.setdefault(key, value)
    return


def diff(after: dict, before: dict) -> dict:
    """Recursively subtract *before* from *after* (window extraction).

    Keys present only in *after* are kept as-is (counters that first
    appeared inside the window); keys only in *before* are dropped.
    """
    out: dict = {}
    for key, a_val in after.items():
        b_val = before.get(key)
        if key == "bounds" and isinstance(a_val, list):
            # Histogram bucket bounds are metadata, not a counter: carry
            # them through so windows stay self-describing (percentiles
            # are computed from windows, see repro.obs.registry).
            out[key] = list(a_val)
        elif isinstance(a_val, dict):
            out[key] = diff(a_val, b_val if isinstance(b_val, dict) else {})
        elif isinstance(a_val, list):
            if isinstance(b_val, list) and len(b_val) == len(a_val):
                out[key] = [a - b for a, b in zip(a_val, b_val)]
            else:
                out[key] = list(a_val)
        elif isinstance(a_val, (int, float)):
            out[key] = a_val - (b_val if isinstance(b_val, (int, float)) else 0)
        else:  # pragma: no cover - no other types are captured
            out[key] = a_val
    return out
