"""Plain-text rendering helpers for paper-style tables and figures."""

from __future__ import annotations


def format_table(title: str, headers: list[str], rows: list[list], note: str = "") -> str:
    """Render an aligned text table.

    *rows* contain strings or numbers; numbers are formatted to a sensible
    precision.  The first column is left-aligned, the rest right-aligned.
    """
    def fmt(value) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0.0"
            if abs(value) >= 100:
                return f"{value:.0f}"
            if abs(value) >= 10:
                return f"{value:.1f}"
            return f"{value:.2f}"
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells, align_first_left=True):
        parts = []
        for i, cell in enumerate(cells):
            if i == 0 and align_first_left:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts)

    out = [title, "=" * len(title), line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in str_rows)
    if note:
        out.append("")
        out.append(note)
    return "\n".join(out)


def format_bars(title: str, items: list[tuple[str, float]], width: int = 42,
                unit: str = "%", note: str = "") -> str:
    """Render a horizontal ASCII bar chart."""
    out = [title, "=" * len(title)]
    if not items:
        out.append("(no data)")
        return "\n".join(out)
    peak = max(v for _, v in items) or 1.0
    label_w = max(len(label) for label, _ in items)
    for label, value in items:
        bar = "#" * max(0, round(value / peak * width))
        out.append(f"{label.ljust(label_w)}  {value:6.2f}{unit} |{bar}")
    if note:
        out.append("")
        out.append(note)
    return "\n".join(out)


def format_timeline(title: str, samples: list[tuple[int, tuple[float, ...]]],
                    class_names: tuple[str, ...], boundary: int | None = None,
                    max_rows: int = 40, note: str = "") -> str:
    """Render a time series of class shares, one row per sample.

    ``boundary`` (a cycle count) draws the paper's start-up / steady-state
    dotted line.
    """
    out = [title, "=" * len(title)]
    header = "cycle".rjust(10) + "  " + "  ".join(n.rjust(7) for n in class_names)
    out.append(header + "   (each row: share of context-cycles in window)")
    step = max(1, len(samples) // max_rows)
    boundary_drawn = False
    for idx in range(0, len(samples), step):
        cycle, shares = samples[idx]
        if boundary is not None and not boundary_drawn and cycle >= boundary:
            out.append("-" * len(header) + "  <- steady state")
            boundary_drawn = True
        cells = "  ".join(f"{s * 100:6.1f}%" for s in shares)
        out.append(f"{cycle:10d}  {cells}")
    if note:
        out.append("")
        out.append(note)
    return "\n".join(out)


#: Eight block glyphs from lowest to highest; index = value octile.
SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float], width: int = 64) -> str:
    """Render a numeric series as a unicode sparkline.

    Series longer than *width* are resampled by bucket means so the line
    still spans the full series; shorter ones map one glyph per value.
    A flat series renders at the lowest glyph.
    """
    points = [float(v) for v in values]
    if not points:
        return ""
    if len(points) > width:
        resampled = []
        for b in range(width):
            lo = b * len(points) // width
            hi = max(lo + 1, (b + 1) * len(points) // width)
            bucket = points[lo:hi]
            resampled.append(sum(bucket) / len(bucket))
        points = resampled
    low, high = min(points), max(points)
    span = high - low
    if span <= 0:
        return SPARK_GLYPHS[0] * len(points)
    top = len(SPARK_GLYPHS) - 1
    return "".join(SPARK_GLYPHS[round((v - low) / span * top)] for v in points)


def pct(x: float) -> float:
    """Fraction -> percentage."""
    return x * 100.0


def change_str(before: float, after: float) -> str:
    """The paper's "Change" column: percent change, or a multiplier for
    large increases (e.g. "5.5x")."""
    if before == 0:
        return "--" if after == 0 else "new"
    ratio = after / before
    if ratio >= 2.0:
        return f"{ratio:.1f}x"
    return f"{(ratio - 1.0) * 100:+.0f}%"
