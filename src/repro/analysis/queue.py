"""Durable job queue: an append-only write-ahead journal for sweeps.

A :class:`JobQueue` records every job-state transition -- submit, claim,
complete, fail, requeue, quarantine, shutdown -- as one checksummed JSON
line in ``<store_root>/queue/journal.jsonl`` *before* acting on it, so
the queue's state survives any crash of the service process: a new
incarnation replays the journal and resumes exactly where the dead one
stopped.  The journal is the source of truth; in-memory state is only a
replayable view of it.

Durability contract:

* **Append-only, checksummed records.**  Every record carries a ``seq``
  number and a ``check`` field (sha256 over the canonical JSON of the
  record body).  A record that fails its checksum -- a torn tail from a
  crash mid-append, or on-disk rot -- invalidates itself and everything
  after it: replay keeps the longest valid prefix and atomically
  rewrites the journal to it, so one torn byte can never poison
  recovery (the ``queue.journal.torn`` fault site exercises this).
* **Identity = artifact fingerprint.**  A job's id is its run spec's
  content fingerprint, so identical in-flight specs coalesce to one run
  (duplicate submits are journaled as ``coalesced`` and share the
  winner's outcome) and a resumed sweep can never execute -- or store --
  the same work twice.
* **Leases, not locks.**  A claim names a worker and a lease duration.
  Claims are *leases*: a claimed job whose worker the service no longer
  tracks (process died, service restarted, heartbeat expired) is
  requeued, never lost (``queue.claim.orphan`` injects exactly that).
* **Bounded admission.**  ``limit`` caps the pending backlog; a submit
  beyond it is *shed* (journaled, reported, never silently dropped).
  Priorities order claims (higher first, FIFO within a priority).

Nothing in a journal record reads the wall clock, so replaying the same
journal always rebuilds the same state and the queue's canonical
:meth:`ledger` is byte-comparable across incarnations -- the property
the kill-and-resume chaos scenarios assert.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field

from repro import faults
from repro.analysis.artifact import canonical_json, run_fingerprint

#: Subdirectory of the store root holding the journal and worker
#: heartbeat files.
QUEUE_DIR = "queue"

#: Journal filename inside the queue directory.
JOURNAL_NAME = "journal.jsonl"

#: Journal format version (bumped on incompatible record changes; a
#: stale journal refuses to replay rather than guessing).
JOURNAL_VERSION = 1

#: Default pending-backlog bound (admission control).
DEFAULT_LIMIT = 256

#: Default claim lease in seconds: a claimed worker whose heartbeat file
#: is older than this is presumed lost and its job is requeued.
DEFAULT_LEASE_S = 60.0

#: Hex digits of the record checksum kept in the journal.
_CHECK_LEN = 16

#: Job states (journal-visible).
PENDING = "pending"
CLAIMED = "claimed"
DONE = "done"
QUARANTINED = "quarantined"


class JournalError(RuntimeError):
    """The journal cannot be replayed (version drift, unreadable file)."""


def record_check(body: dict) -> str:
    """Checksum of one journal record body (without its ``check`` key)."""
    trimmed = {k: v for k, v in body.items() if k != "check"}
    digest = hashlib.sha256(canonical_json(trimmed).encode()).hexdigest()
    return digest[:_CHECK_LEN]


def job_label(spec: dict) -> str:
    """Deterministic display label for a spec: ``workload-cpu-os_mode-s<seed>``."""
    parts = [str(spec.get(k)) for k in ("workload", "cpu", "os_mode")
             if spec.get(k) is not None]
    label = "-".join(parts) or "run"
    seed = spec.get("seed")
    return f"{label}-s{seed}" if seed is not None else label


@dataclass
class Job:
    """One unit of queued work, keyed by its artifact fingerprint."""

    id: str
    label: str
    spec: dict
    fingerprint: str
    priority: int = 0
    deadline_s: float | None = None
    state: str = PENDING
    attempts: int = 0
    submit_seq: int = 0
    worker: str | None = None
    error: str | None = None
    from_store: bool = False
    #: How many duplicate submits coalesced onto this job.
    coalesced: int = 0

    def to_public_dict(self) -> dict:
        return {"id": self.id, "label": self.label, "state": self.state,
                "fingerprint": self.fingerprint, "priority": self.priority,
                "attempts": self.attempts, "error": self.error,
                "from_store": self.from_store, "coalesced": self.coalesced}


@dataclass
class ReplaySummary:
    """What :meth:`JobQueue.replay` found in the journal."""

    records: int = 0
    torn_records: int = 0
    orphans: list = field(default_factory=list)  # claimed job ids
    clean_shutdown: bool = False
    drained: bool = False

    def to_json_dict(self) -> dict:
        return {"records": self.records, "torn_records": self.torn_records,
                "orphans": sorted(self.orphans),
                "clean_shutdown": self.clean_shutdown,
                "drained": self.drained}


class JobQueue:
    """Write-ahead-journaled job queue rooted at one directory.

    Construction replays any existing journal (see :meth:`replay`); the
    result is available as :attr:`replayed`.  All mutating operations
    journal first, then update the in-memory view.
    """

    def __init__(self, root: str | os.PathLike, *,
                 limit: int = DEFAULT_LIMIT,
                 lease_s: float = DEFAULT_LEASE_S) -> None:
        if limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {limit}")
        self.root = pathlib.Path(root)
        self.journal_path = self.root / JOURNAL_NAME
        self.limit = limit
        self.lease_s = lease_s
        self.jobs: dict[str, Job] = {}
        self._seq = 0
        self.shed_count = 0
        self.replayed = self.replay()

    # -- journal I/O -------------------------------------------------------

    def _append(self, op: str, **fields) -> dict:
        """Durably journal one record; returns it.

        The ``queue.journal.torn`` fault site simulates a crash
        mid-append: half the encoded record reaches the disk, no
        newline, and the writing process "dies" (an
        :class:`~repro.faults.InjectedFault` unwinds the caller).  The
        next incarnation's replay must drop the torn tail.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        self._seq += 1
        body = {"seq": self._seq, "op": op, "v": JOURNAL_VERSION}
        body.update(fields)
        body["check"] = record_check(body)
        line = json.dumps(body, sort_keys=True)
        if faults.fire("queue.journal.torn", op) is not None:
            with open(self.journal_path, "a") as f:
                f.write(line[: max(1, len(line) // 2)])
                f.flush()
            raise faults.InjectedFault(
                "queue.journal.torn",
                f"injected crash mid-append of journal record #{self._seq} "
                f"({op})")
        with open(self.journal_path, "a") as f:
            f.write(line + "\n")
            f.flush()
            os.fsync(f.fileno())
        return body

    def _read_valid_prefix(self) -> tuple[list[dict], int, bool]:
        """(valid records, torn/corrupt record count, needs_rewrite)."""
        try:
            raw = self.journal_path.read_text()
        except FileNotFoundError:
            return [], 0, False
        except OSError as exc:
            raise JournalError(f"cannot read journal: {exc}")
        records: list[dict] = []
        lines = raw.split("\n")
        total_nonempty = sum(1 for line in lines if line)
        for line in lines:
            if not line:
                continue
            try:
                body = json.loads(line)
            except ValueError:
                break
            if not isinstance(body, dict) \
                    or body.get("check") != record_check(body):
                break
            if body.get("v") != JOURNAL_VERSION:
                raise JournalError(
                    f"journal record #{body.get('seq')} has version "
                    f"{body.get('v')!r}, this code expects "
                    f"{JOURNAL_VERSION} (refusing to guess)")
            records.append(body)
        torn = total_nonempty - len(records)
        return records, torn, torn > 0

    def _rewrite(self, records: list[dict]) -> None:
        """Atomically rewrite the journal to exactly *records*."""
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.journal_path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w") as f:
            for body in records:
                f.write(json.dumps(body, sort_keys=True) + "\n")
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self.journal_path)

    # -- replay ------------------------------------------------------------

    def replay(self) -> ReplaySummary:
        """Rebuild queue state from the journal (longest valid prefix).

        Torn or corrupt records invalidate themselves and everything
        after them; the journal is rewritten to the valid prefix so the
        next append cannot concatenate onto garbage.  Jobs left in the
        ``claimed`` state belong to workers of a dead incarnation --
        they are reported as orphans for the service to requeue (the
        artifact may still have landed in the store; requeueing is
        dedup-safe either way).
        """
        records, torn, needs_rewrite = self._read_valid_prefix()
        if needs_rewrite:
            self._rewrite(records)
        summary = ReplaySummary(records=len(records), torn_records=torn)
        self.jobs.clear()
        self.shed_count = 0
        self._seq = records[-1]["seq"] if records else 0
        for body in records:
            self._apply(body, summary)
        summary.orphans = [job.id for job in self.jobs.values()
                           if job.state == CLAIMED]
        return summary

    def _apply(self, body: dict, summary: ReplaySummary) -> None:
        op = body["op"]
        job = self.jobs.get(body.get("job", ""))
        if op == "submit":
            outcome = body.get("outcome", "queued")
            if outcome == "queued":
                self.jobs[body["job"]] = Job(
                    id=body["job"], label=body["label"], spec=body["spec"],
                    fingerprint=body["fingerprint"],
                    priority=body.get("priority", 0),
                    deadline_s=body.get("deadline_s"),
                    submit_seq=body["seq"])
            elif outcome == "coalesced" and job is not None:
                job.coalesced += 1
            elif outcome == "shed":
                self.shed_count += 1
        elif job is None:
            pass  # transition for an unknown job: tolerated, not trusted
        elif op == "claim":
            job.state = CLAIMED
            job.worker = body.get("worker")
            job.attempts = body.get("attempt", job.attempts + 1)
        elif op == "requeue":
            job.state = PENDING
            job.worker = None
            if body.get("reason") == "resubmit":
                # The live resubmit path (submit of a quarantined job)
                # clears the stale quarantine error; replay must too or
                # a resumed incarnation diverges from the live state.
                job.error = None
        elif op == "complete":
            job.state = DONE
            job.worker = None
            job.from_store = bool(body.get("from_store"))
            job.error = None
        elif op == "fail":
            job.error = body.get("error")
        elif op == "quarantine":
            job.state = QUARANTINED
            job.worker = None
            job.error = body.get("error")
        if op == "shutdown":
            summary.clean_shutdown = bool(body.get("clean"))
            summary.drained = bool(body.get("drained"))

    # -- submission (admission control) ------------------------------------

    def submit(self, spec: dict, *, priority: int = 0,
               deadline_s: float | None = None) -> tuple[Job | None, str]:
        """Admit one run spec; returns ``(job, outcome)``.

        Outcomes: ``queued`` (new job), ``coalesced`` (identical spec
        already pending/claimed -- the submit rides the in-flight run),
        ``done`` (identical spec already completed this journal),
        ``shed`` (backlog at ``limit``; job refused, ``job is None``).
        """
        fingerprint = run_fingerprint(spec)
        job_id = fingerprint[:16]
        label = job_label(spec)
        existing = self.jobs.get(job_id)
        if existing is not None:
            if existing.state in (PENDING, CLAIMED):
                self._append("submit", job=job_id, label=label,
                             outcome="coalesced")
                existing.coalesced += 1
                return existing, "coalesced"
            if existing.state == DONE:
                return existing, "done"
            # Quarantined: an explicit resubmit re-opens the job.
            self._append("requeue", job=job_id, reason="resubmit")
            existing.state = PENDING
            existing.error = None
            return existing, "queued"
        if self.pending_count() >= self.limit:
            self._append("submit", job=job_id, label=label, outcome="shed")
            self.shed_count += 1
            return None, "shed"
        body = self._append("submit", job=job_id, label=label, spec=spec,
                            fingerprint=fingerprint, priority=priority,
                            deadline_s=deadline_s, outcome="queued")
        job = Job(id=job_id, label=label, spec=spec, fingerprint=fingerprint,
                  priority=priority, deadline_s=deadline_s,
                  submit_seq=body["seq"])
        self.jobs[job_id] = job
        return job, "queued"

    # -- claims / transitions ----------------------------------------------

    def pending_jobs(self) -> list[Job]:
        """Pending jobs in claim order: priority desc, then submit order."""
        pending = [j for j in self.jobs.values() if j.state == PENDING]
        return sorted(pending, key=lambda j: (-j.priority, j.submit_seq))

    def pending_count(self) -> int:
        return sum(1 for j in self.jobs.values() if j.state == PENDING)

    def claimed_jobs(self) -> list[Job]:
        claimed = [j for j in self.jobs.values() if j.state == CLAIMED]
        return sorted(claimed, key=lambda j: j.submit_seq)

    def claim(self, worker: str) -> Job | None:
        """Lease the next pending job to *worker* (None when empty).

        The ``queue.claim.orphan`` fault site models a worker that
        vanishes between the journaled claim and the service tracking
        it: the claim is durably recorded, but the caller receives
        ``None`` -- exactly what a crash at that instant leaves behind.
        The job must be recovered by orphan reaping, not lost.
        """
        for job in self.pending_jobs():
            job.attempts += 1
            self._append("claim", job=job.id, worker=worker,
                         attempt=job.attempts, lease_s=self.lease_s)
            job.state = CLAIMED
            job.worker = worker
            if faults.fire("queue.claim.orphan", job.label) is not None:
                return None
            return job
        return None

    def requeue(self, job_id: str, reason: str) -> None:
        job = self.jobs[job_id]
        self._append("requeue", job=job_id, reason=reason)
        job.state = PENDING
        job.worker = None

    def complete(self, job_id: str, *, from_store: bool = False) -> None:
        job = self.jobs[job_id]
        self._append("complete", job=job_id, fingerprint=job.fingerprint,
                     from_store=from_store)
        job.state = DONE
        job.worker = None
        job.from_store = from_store
        job.error = None

    def fail(self, job_id: str, error: str, kind: str) -> None:
        """Record a failed attempt (the job stays claimed; the service
        decides whether to requeue or quarantine next)."""
        job = self.jobs[job_id]
        self._append("fail", job=job_id, error=error, kind=kind,
                     attempt=job.attempts)
        job.error = error

    def quarantine(self, job_id: str, error: str) -> None:
        job = self.jobs[job_id]
        self._append("quarantine", job=job_id, error=error)
        job.state = QUARANTINED
        job.worker = None
        job.error = error

    def mark_shutdown(self, *, clean: bool, drained: bool) -> None:
        """Journal a shutdown marker (the graceful-drain receipt)."""
        self._append("shutdown", clean=clean, drained=drained)

    # -- reporting ---------------------------------------------------------

    def done_jobs(self) -> list[Job]:
        done = [j for j in self.jobs.values() if j.state == DONE]
        return sorted(done, key=lambda j: j.submit_seq)

    def counts(self) -> dict:
        out = {PENDING: 0, CLAIMED: 0, DONE: 0, QUARANTINED: 0}
        for job in self.jobs.values():
            out[job.state] += 1
        out["shed"] = self.shed_count
        return out

    def ledger(self) -> str:
        """Canonical byte-comparable queue outcome.

        One JSON document of ``(label, fingerprint, state)`` sorted by
        fingerprint -- deliberately free of sequence numbers, attempt
        counts, worker names, and wall-clock values, so an interrupted-
        then-resumed sweep and an uninterrupted one produce *identical
        bytes* when they did the same work.  The kill-and-resume chaos
        scenario and CI both compare this string directly.
        """
        rows = sorted(
            [[j.label, j.fingerprint, j.state] for j in self.jobs.values()],
            key=lambda r: r[1])
        return canonical_json({"jobs": rows})


def queue_root(store_root: str | os.PathLike) -> pathlib.Path:
    """The queue directory under one store root."""
    return pathlib.Path(store_root) / QUEUE_DIR
