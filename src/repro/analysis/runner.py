"""Parallel experiment runner (layer 3 of the run engine).

The eight canonical runs -- and the points of a parameter sweep -- are
independent simulations, so a cold cache can be warmed with one process
per core instead of serially.  :func:`prefetch_all` / :func:`run_many`
execute missing runs in a :class:`~concurrent.futures.ProcessPoolExecutor`;
each worker writes its finished artifact to the shared on-disk store, so a
crash mid-prefetch loses at most the in-flight runs.  When a process pool
cannot be created (restricted sandboxes, ``fork`` unavailable) execution
falls back to serial in-process runs with identical results: artifacts are
deterministic functions of their spec, so the executor never changes what
is computed, only when and where.

``repro prefetch`` and the benchmark session fixture are the main entry
points; ``repro cache ls`` shows what has been warmed.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

from repro.analysis import experiments
from repro.analysis.artifact import RunArtifact, run_fingerprint
from repro.analysis.snapshot import capture
from repro.analysis.store import RunStore

#: The eight canonical (workload, cpu, os_mode) combinations behind the
#: paper's Tables 2-9 and Figures 1-7.
CANONICAL_SPECS: tuple[tuple[str, str, str], ...] = (
    ("specint", "smt", "full"),
    ("specint", "smt", "app"),
    ("specint", "ss", "full"),
    ("specint", "ss", "app"),
    ("apache", "smt", "full"),
    ("apache", "smt", "omit"),
    ("apache", "ss", "full"),
    ("apache", "ss", "omit"),
)


def default_workers() -> int:
    """Pool size: one worker per core, capped at the canonical run count."""
    return max(1, min(len(CANONICAL_SPECS), os.cpu_count() or 1))


def _worker_run(spec: dict, store_root: str) -> dict:
    """Execute one run spec in a worker process; returns the artifact as a
    JSON dict (plain data crosses the process boundary, never handles)."""
    artifact = experiments.execute_spec(spec)
    RunStore(store_root).put(artifact)
    return artifact.to_json_dict()


def _run_specs(specs: list[dict], max_workers: int,
               store: RunStore) -> list[RunArtifact]:
    """Execute specs, in parallel when possible, preserving order."""
    if max_workers > 1 and len(specs) > 1:
        try:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures = [pool.submit(_worker_run, spec, str(store.root))
                           for spec in specs]
                return [RunArtifact.from_json_dict(f.result())
                        for f in futures]
        except (OSError, PermissionError, NotImplementedError, BrokenExecutor):
            # No usable process pool here (sandbox, missing semaphores,
            # killed workers): fall through to the serial path.
            pass
    out = []
    for spec in specs:
        artifact = experiments.execute_spec(spec)
        store.put(artifact)
        out.append(artifact)
    return out


def run_many(
    specs=None,
    max_workers: int | None = None,
    force: bool = False,
    store: RunStore | None = None,
) -> dict[str, RunArtifact]:
    """Resolve many canonical runs at once, executing misses concurrently.

    ``specs`` is an iterable of ``(workload, cpu, os_mode)`` triples
    (default: all eight canonical runs).  Returns a dict keyed by the
    ``workload-cpu-os_mode`` label.  Already-stored runs are loaded, not
    re-run, unless ``force`` is set.
    """
    triples = list(specs) if specs is not None else list(CANONICAL_SPECS)
    store = store or RunStore()
    resolved = [experiments.run_spec(wl, cpu, mode) for wl, cpu, mode in triples]
    results: dict[str, RunArtifact] = {}
    todo: list[dict] = []
    for spec in resolved:
        label = f"{spec['workload']}-{spec['cpu']}-{spec['os_mode']}"
        artifact = None if force else experiments.cached_artifact(
            run_fingerprint(spec), store)
        if artifact is not None:
            results[label] = artifact
        else:
            todo.append(spec)
    if todo:
        workers = max_workers if max_workers is not None else default_workers()
        for spec, artifact in zip(todo, _run_specs(todo, workers, store)):
            experiments.register_artifact(artifact)
            results[f"{spec['workload']}-{spec['cpu']}-{spec['os_mode']}"] = artifact
    return results


def prefetch_all(
    max_workers: int | None = None,
    force: bool = False,
    store: RunStore | None = None,
) -> dict[str, RunArtifact]:
    """Warm the store with all eight canonical runs (the ``repro
    prefetch`` entry point)."""
    return run_many(CANONICAL_SPECS, max_workers=max_workers, force=force,
                    store=store)


def prefetch_timed(max_workers: int | None = None, force: bool = False):
    """Prefetch and report (artifacts, wall_seconds) for CLI output."""
    start = time.perf_counter()
    artifacts = prefetch_all(max_workers=max_workers, force=force)
    return artifacts, time.perf_counter() - start


# -- parallel sweeps -------------------------------------------------------


def _sweep_worker(kind: str, workload: str, value, instructions: int,
                  seed: int) -> dict[str, float]:
    """Run one sweep point in a worker process; returns plain metrics."""
    from repro.analysis import sweeps

    sim = sweeps.SWEEP_BUILDERS[kind](workload, value, seed)
    sim.run(max_instructions=instructions)
    window = capture(sim)
    return {name: fn(window) for name, fn in sweeps.DEFAULT_METRICS.items()}


def run_sweep_points(
    kind: str,
    workload: str,
    values,
    instructions: int,
    seed: int,
    max_workers: int | None = None,
) -> list[tuple[object, dict[str, float]]]:
    """Evaluate the named sweep's points concurrently (serial fallback).

    ``kind`` names an entry of :data:`repro.analysis.sweeps.SWEEP_BUILDERS`;
    point order is preserved.
    """
    values = list(values)
    workers = max_workers if max_workers is not None else default_workers()
    if workers > 1 and len(values) > 1:
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_sweep_worker, kind, workload, value,
                                instructions, seed)
                    for value in values
                ]
                return [(v, f.result()) for v, f in zip(values, futures)]
        except (OSError, PermissionError, NotImplementedError, BrokenExecutor):
            pass
    return [(v, _sweep_worker(kind, workload, v, instructions, seed))
            for v in values]
