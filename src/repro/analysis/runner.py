"""Parallel experiment runner (layer 3 of the run engine).

The eight canonical runs -- and the points of a parameter sweep -- are
independent simulations, so a cold cache can be warmed with one process
per core instead of serially.  :func:`prefetch_all` / :func:`run_many`
execute missing runs in a :class:`~concurrent.futures.ProcessPoolExecutor`;
each worker writes its finished artifact to the shared on-disk store, so a
crash mid-prefetch loses at most the in-flight runs.  When a process pool
cannot be created (restricted sandboxes, ``fork`` unavailable) execution
falls back to serial in-process runs with identical results: artifacts are
deterministic functions of their spec, so the executor never changes what
is computed, only when and where.

``repro prefetch`` and the benchmark session fixture are the main entry
points; ``repro cache ls`` shows what has been warmed.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

from repro.analysis import experiments
from repro.analysis.artifact import RunArtifact, run_fingerprint
from repro.analysis.snapshot import capture
from repro.analysis.store import RunStore

#: The eight canonical (workload, cpu, os_mode) combinations behind the
#: paper's Tables 2-9 and Figures 1-7.
CANONICAL_SPECS: tuple[tuple[str, str, str], ...] = (
    ("specint", "smt", "full"),
    ("specint", "smt", "app"),
    ("specint", "ss", "full"),
    ("specint", "ss", "app"),
    ("apache", "smt", "full"),
    ("apache", "smt", "omit"),
    ("apache", "ss", "full"),
    ("apache", "ss", "omit"),
)


def default_workers() -> int:
    """Pool size: one worker per core, capped at the canonical run count."""
    return max(1, min(len(CANONICAL_SPECS), os.cpu_count() or 1))


def _worker_run(spec: dict, store_root: str,
                progress_path: str | None = None,
                checkpoint: bool = False) -> dict:
    """Execute one run spec in a worker process; returns the artifact as a
    JSON dict (plain data crosses the process boundary, never handles).

    With *progress_path*, a heartbeat periodically overwrites that file
    with the worker's latest progress sample so the parent process can
    aggregate live telemetry across the pool (see repro.obs.live).
    With *checkpoint*, tiered specs reuse/save warm-up checkpoints in
    the shared store (see repro.core.checkpoint).
    """
    heartbeat = None
    if progress_path is not None:
        from repro.obs.live import Heartbeat, StateFileSink

        heartbeat = Heartbeat(StateFileSink(progress_path),
                              target_instructions=spec["instructions"],
                              label=_spec_label(spec))
    artifact = experiments.execute_spec(spec, heartbeat=heartbeat,
                                        checkpoint=checkpoint)
    RunStore(store_root).put(artifact)
    return artifact.to_json_dict()


def _spec_label(spec: dict) -> str:
    return f"{spec['workload']}-{spec['cpu']}-{spec['os_mode']}"


def _run_specs(specs: list[dict], max_workers: int, store: RunStore,
               progress: bool = False,
               checkpoint: bool = False) -> list[RunArtifact]:
    """Execute specs, in parallel when possible, preserving order.

    With *progress*, parallel workers write per-run state files into a
    temporary directory and the parent renders one aggregate live line
    (see :class:`repro.obs.live.ProgressAggregator`) while it waits; the
    serial fallback beats through the same aggregator directly.
    """
    if not progress:
        return _run_specs_quiet(specs, max_workers, store,
                                checkpoint=checkpoint)
    import tempfile

    from repro.obs.live import ProgressAggregator

    with tempfile.TemporaryDirectory(prefix="repro-progress-") as tmp:
        aggregator = ProgressAggregator(
            tmp, total_runs=len(specs),
            total_instructions=sum(s["instructions"] for s in specs))
        return _run_specs_quiet(specs, max_workers, store,
                                aggregator=aggregator,
                                checkpoint=checkpoint)


def _run_specs_quiet(specs: list[dict], max_workers: int, store: RunStore,
                     aggregator=None,
                     checkpoint: bool = False) -> list[RunArtifact]:
    if max_workers > 1 and len(specs) > 1:
        try:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures = [
                    pool.submit(
                        _worker_run, spec, str(store.root),
                        aggregator.path_for(i) if aggregator is not None
                        else None, checkpoint)
                    for i, spec in enumerate(specs)
                ]
                if aggregator is not None:
                    _watch_progress(futures, aggregator)
                return [RunArtifact.from_json_dict(f.result())
                        for f in futures]
        except (OSError, PermissionError, NotImplementedError, BrokenExecutor):
            # No usable process pool here (sandbox, missing semaphores,
            # killed workers): fall through to the serial path.
            pass
    out = []
    for i, spec in enumerate(specs):
        heartbeat = None
        if aggregator is not None:
            from repro.obs.live import Heartbeat, StateFileSink

            heartbeat = Heartbeat(
                StateFileSink(aggregator.path_for(i),
                              on_write=aggregator.refresh),
                target_instructions=spec["instructions"],
                label=_spec_label(spec))
        artifact = experiments.execute_spec(spec, heartbeat=heartbeat,
                                            checkpoint=checkpoint)
        store.put(artifact)
        out.append(artifact)
    if aggregator is not None:
        aggregator.refresh(final=True)
    return out


def _watch_progress(futures, progress, poll_s: float = 0.5) -> None:
    """Render aggregate pool progress until every future settles."""
    from concurrent.futures import wait

    pending = set(futures)
    while pending:
        done, pending = wait(pending, timeout=poll_s)
        progress.refresh(final=not pending)


def _resolve_item(item) -> dict:
    """One run_many item -- a (workload, cpu, os_mode) triple or a dict
    with optional ``instructions``/``seed`` and execution-tier overrides
    (``mode``/``warmup``/``sample``/``stride``, see
    :mod:`repro.core.engine`) -- as a full resolved spec."""
    if isinstance(item, dict):
        return experiments.run_spec(
            item["workload"], item["cpu"], item.get("os_mode", "full"),
            item.get("instructions"), item.get("seed", 11),
            mode=item.get("mode", "full"),
            warmup=item.get("warmup", 0),
            sample=item.get("sample"),
            stride=item.get("stride"))
    wl, cpu, mode = item
    return experiments.run_spec(wl, cpu, mode)


def labels_for(items: list, resolved: list[dict]) -> list[str]:
    """Result-dict keys for run_many items: ``workload-cpu-os_mode``,
    plus ``-s<seed>`` for dict-form items and ``#n`` on collisions.
    Shared with the supervised runner so both key results identically."""
    labels: list[str] = []
    for item, spec in zip(items, resolved):
        label = _spec_label(spec)
        if isinstance(item, dict):
            label += f"-s{spec['seed']}"
        n = 2
        while label in labels:
            label = f"{label}#{n}"
            n += 1
        labels.append(label)
    return labels


def run_many(
    specs=None,
    max_workers: int | None = None,
    force: bool = False,
    store: RunStore | None = None,
    progress: bool = False,
    checkpoint: bool = False,
) -> dict[str, RunArtifact]:
    """Resolve many canonical runs at once, executing misses concurrently.

    ``specs`` is an iterable of ``(workload, cpu, os_mode)`` triples or
    dicts carrying ``instructions``/``seed`` overrides (the diff engine's
    seed fan-out uses the dict form).  Returns a dict keyed by the
    ``workload-cpu-os_mode`` label -- dict-form specs append ``-s<seed>``,
    and colliding labels gain a ``#n`` suffix -- in input order.
    Already-stored runs are loaded, not re-run, unless ``force`` is set.
    With ``progress``, executing misses renders a live aggregate line.
    With ``checkpoint``, tiered specs reuse/save warm-up checkpoints
    (an execution option only -- it never changes results or keys).
    """
    items = list(specs) if specs is not None else list(CANONICAL_SPECS)
    store = store or RunStore()
    resolved = [_resolve_item(item) for item in items]
    labels = labels_for(items, resolved)
    results: dict[str, RunArtifact] = {}
    todo: list[tuple[str, dict]] = []
    for label, spec in zip(labels, resolved):
        artifact = None if force else experiments.cached_artifact(
            run_fingerprint(spec), store)
        if artifact is not None:
            results[label] = artifact
        else:
            todo.append((label, spec))
    if todo:
        workers = max_workers if max_workers is not None else default_workers()
        executed = _run_specs([spec for _, spec in todo], workers, store,
                              progress=progress, checkpoint=checkpoint)
        for (label, _), artifact in zip(todo, executed):
            experiments.register_artifact(artifact)
            results[label] = artifact
    return {label: results[label] for label in labels}


def prefetch_all(
    max_workers: int | None = None,
    force: bool = False,
    store: RunStore | None = None,
    progress: bool = False,
) -> dict[str, RunArtifact]:
    """Warm the store with all eight canonical runs (the ``repro
    prefetch`` entry point)."""
    return run_many(CANONICAL_SPECS, max_workers=max_workers, force=force,
                    store=store, progress=progress)


def prefetch_timed(max_workers: int | None = None, force: bool = False,
                   progress: bool = False):
    """Prefetch and report (artifacts, wall_seconds) for CLI output."""
    start = time.perf_counter()
    artifacts = prefetch_all(max_workers=max_workers, force=force,
                             progress=progress)
    return artifacts, time.perf_counter() - start


# -- parallel sweeps -------------------------------------------------------


def _sweep_worker(kind: str, workload: str, value, instructions: int,
                  seed: int) -> dict[str, float]:
    """Run one sweep point in a worker process; returns plain metrics."""
    from repro.analysis import sweeps

    sim = sweeps.SWEEP_BUILDERS[kind](workload, value, seed)
    sim.run(max_instructions=instructions)
    window = capture(sim)
    return {name: fn(window) for name, fn in sweeps.DEFAULT_METRICS.items()}


def run_sweep_points(
    kind: str,
    workload: str,
    values,
    instructions: int,
    seed: int,
    max_workers: int | None = None,
) -> list[tuple[object, dict[str, float]]]:
    """Evaluate the named sweep's points concurrently (serial fallback).

    ``kind`` names an entry of :data:`repro.analysis.sweeps.SWEEP_BUILDERS`;
    point order is preserved.
    """
    values = list(values)
    workers = max_workers if max_workers is not None else default_workers()
    if workers > 1 and len(values) > 1:
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_sweep_worker, kind, workload, value,
                                instructions, seed)
                    for value in values
                ]
                return [(v, f.result()) for v, f in zip(values, futures)]
        except (OSError, PermissionError, NotImplementedError, BrokenExecutor):
            pass
    return [(v, _sweep_worker(kind, workload, v, instructions, seed))
            for v in values]
