"""Content-addressed on-disk run store (layer 2 of the run engine).

A :class:`RunStore` persists :class:`~repro.analysis.artifact.RunArtifact`
objects as JSON files named by their content fingerprint, so canonical
runs survive across processes: the first ``repro report``, pytest session,
or benchmark pass pays the simulation cost and every later one loads the
stored artifact instead.  Invalidation is automatic -- the fingerprint
covers the artifact schema version, a code-version tag, and the full
simulation config -- so changing any knob, the counter layout, or the
simulator itself simply produces a different key and a cache miss.

The store root defaults to ``.repro_cache/`` in the current directory and
can be redirected with the ``REPRO_CACHE_DIR`` environment variable
(tests point it at a temporary directory).  Files are written atomically
(temp file + rename) and carry a whole-payload ``content_hash``; on read
that checksum is re-verified, and a corrupt entry is moved aside into
``<root>/quarantine/`` (with a ``.why`` sidecar naming the reason) and
treated as a miss -- never as an error.  Schema-stale entries stay in
place as plain misses (``cache gc`` collects them), and interrupted
atomic writes leave ``*.tmp.<pid>`` files that :meth:`RunStore.collect_tmp`
(``repro cache gc``) reclaims.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import os
import pathlib
import re
from dataclasses import dataclass

from repro import faults
from repro.analysis.artifact import (SCHEMA_VERSION, ArtifactError,
                                     RunArtifact, canonical_json,
                                     run_fingerprint)

#: Default store directory, relative to the working directory.
DEFAULT_STORE_DIR = ".repro_cache"

#: Environment variable overriding the store location.
STORE_DIR_ENV = "REPRO_CACHE_DIR"

#: Subdirectory corrupt entries are moved into (never deleted: a corrupt
#: file is evidence worth keeping for diagnosis).
QUARANTINE_DIR = "quarantine"

#: Hex digits of the fingerprint embedded in each filename.
_NAME_HASH_LEN = 20


def content_hash(payload: dict) -> str:
    """Whole-payload checksum stored under ``content_hash`` on put and
    re-verified on get (the payload is hashed without that key)."""
    body = {k: v for k, v in payload.items() if k != "content_hash"}
    return hashlib.sha256(canonical_json(body).encode()).hexdigest()


def store_root() -> pathlib.Path:
    """The configured store directory (env override or the default)."""
    return pathlib.Path(os.environ.get(STORE_DIR_ENV) or DEFAULT_STORE_DIR)


def _slug(spec: dict) -> str:
    """Readable filename prefix: labels if present, else just 'run'."""
    parts = []
    for key in ("workload", "cpu", "os_mode", "seed", "instructions"):
        value = spec.get(key)
        if value is not None:
            parts.append(str(value))
    text = "-".join(parts) or "run"
    return re.sub(r"[^A-Za-z0-9._-]+", "_", text)


def _spec_label(spec) -> str:
    """Label from a raw spec dict (mirrors RunArtifact.label, but usable
    for stale-schema payloads that no longer parse as artifacts)."""
    if not isinstance(spec, dict):
        return "run"
    parts = [str(spec.get(k)) for k in ("workload", "cpu", "os_mode")
             if spec.get(k) is not None]
    return "-".join(parts) or "run"


def _checkpoint_label(payload: dict) -> str:
    """Listing label for a checkpoint payload, e.g.
    ``ckpt:specint-full@100002``."""
    params = payload.get("params")
    if not isinstance(params, dict):
        return "ckpt"
    parts = [str(params.get(k)) for k in ("workload", "os_mode")
             if params.get(k) is not None]
    base = "-".join(parts) or "ckpt"
    return f"ckpt:{base}@{payload.get('boundary', '?')}"


@dataclass(frozen=True)
class StoreEntry:
    """One stored artifact or checkpoint, as listed by ``repro cache ls``.

    ``kind`` is ``"run"`` for artifacts and ``"checkpoint"`` for
    checkpoint recipes (:mod:`repro.core.checkpoint`); ``schema_version``
    is whatever the payload recorded -- the artifact schema for runs,
    the checkpoint schema for checkpoints -- so stale entries can show
    why they miss.  ``created`` is the file's mtime as an ISO-8601
    timestamp.
    """

    path: pathlib.Path
    fingerprint: str
    label: str
    size: int
    schema_version: int | None = None
    created: str = ""
    flags: tuple = ()
    kind: str = "run"


@dataclass(frozen=True)
class QuarantineEntry:
    """One corrupt file moved aside by the store, with its reason."""

    path: pathlib.Path
    size: int
    reason: str


class RunStore:
    """Content-addressed artifact store rooted at one directory."""

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = pathlib.Path(root) if root is not None else store_root()

    def _path_for(self, artifact: RunArtifact) -> pathlib.Path:
        name = f"{_slug(artifact.spec)}-{artifact.fingerprint[:_NAME_HASH_LEN]}.json"
        return self.root / name

    # -- read --------------------------------------------------------------

    def get(self, fingerprint: str) -> RunArtifact | None:
        """Load the artifact with this fingerprint, or None on any miss.

        Misses are never errors: an absent or schema-stale file is a
        plain miss, while an unparsable or checksum-failing file is
        *quarantined* (moved to ``<root>/quarantine/`` with a ``.why``
        sidecar) and then treated as a miss, so one corrupt entry can
        never crash a sweep or be silently served as data.
        """
        if not self.root.is_dir():
            return None
        suffix = f"-{fingerprint[:_NAME_HASH_LEN]}.json"
        for path in sorted(self.root.glob(f"*{suffix}")):
            try:
                data = path.read_bytes()
            except OSError:
                continue
            hit = faults.fire("store.get.corrupt", path.name)
            if hit is not None:
                plan = faults.active()
                data = faults.corrupt_bytes(data, plan.rng("store.get.corrupt"))
                try:
                    path.write_bytes(data)
                except OSError:  # pragma: no cover - read-only store
                    pass
            try:
                payload = json.loads(data)
            except ValueError:
                self._quarantine(path, "unparsable JSON")
                continue
            if not isinstance(payload, dict):
                self._quarantine(path, "payload is not an object")
                continue
            if payload.get("kind") == "checkpoint":
                continue  # checkpoint namespace: never served as a run
            if payload.get("schema_version") != SCHEMA_VERSION:
                continue  # stale schema: a plain miss, collected by gc
            stored_hash = payload.get("content_hash")
            if stored_hash != content_hash(payload):
                self._quarantine(path, "content checksum mismatch")
                continue
            try:
                artifact = RunArtifact.from_json_dict(payload)
            except ArtifactError as exc:
                self._quarantine(path, f"invalid artifact payload: {exc}")
                continue
            if artifact.fingerprint == fingerprint:
                return artifact
        return None

    def __contains__(self, fingerprint: str) -> bool:
        return self.get(fingerprint) is not None

    # -- write -------------------------------------------------------------

    def put(self, artifact: RunArtifact) -> pathlib.Path:
        """Persist one artifact atomically; returns its path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path_for(artifact)
        if faults.fire("store.put.disk_full", path.name) is not None:
            raise OSError(28, f"injected ENOSPC writing {path.name}")
        payload = artifact.to_json_dict()
        payload["content_hash"] = content_hash(payload)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
        if faults.fire("store.put.torn", path.name) is not None:
            raise faults.InjectedFault(
                "store.put.torn",
                f"injected crash between temp write and rename of {path.name}")
        os.replace(tmp, path)
        return path

    # -- checkpoints -------------------------------------------------------

    def get_checkpoint(self, fingerprint: str) -> dict | None:
        """Load the checkpoint payload with this fingerprint, or None.

        Same miss/quarantine discipline as :meth:`get`: absent or
        schema-stale checkpoints are plain misses, corrupt ones are
        quarantined.  Returns the raw payload dict for
        :func:`repro.core.checkpoint.restore`.
        """
        from repro.core.checkpoint import CHECKPOINT_SCHEMA

        if not self.root.is_dir():
            return None
        suffix = f"-{fingerprint[:_NAME_HASH_LEN]}.json"
        for path in sorted(self.root.glob(f"ckpt-*{suffix}")):
            try:
                payload = json.loads(path.read_bytes())
            except (OSError, ValueError):
                self._quarantine(path, "unparsable checkpoint JSON")
                continue
            if not isinstance(payload, dict) or payload.get("kind") != "checkpoint":
                self._quarantine(path, "not a checkpoint payload")
                continue
            if payload.get("checkpoint_schema") != CHECKPOINT_SCHEMA:
                continue  # stale checkpoint schema: a miss, gc collects it
            if payload.get("content_hash") != content_hash(payload):
                self._quarantine(path, "checkpoint checksum mismatch")
                continue
            if payload.get("fingerprint") == fingerprint:
                payload.pop("content_hash", None)  # storage detail
                return payload
        return None

    def put_checkpoint(self, payload: dict) -> pathlib.Path:
        """Persist one checkpoint payload atomically; returns its path.

        Files are named ``ckpt-<slug>@<boundary>-<fp>.json`` so the
        namespace is disjoint from run artifacts and the boundary is
        visible in listings.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        params = payload.get("params") or {}
        slug = _slug({
            "workload": params.get("workload"),
            "os_mode": params.get("os_mode"),
            "seed": params.get("seed"),
        })
        fingerprint = payload["fingerprint"]
        name = (f"ckpt-{slug}@{payload.get('boundary', 0)}"
                f"-{fingerprint[:_NAME_HASH_LEN]}.json")
        path = self.root / name
        if faults.fire("store.put.disk_full", path.name) is not None:
            raise OSError(28, f"injected ENOSPC writing {path.name}")
        body = dict(payload)
        body["content_hash"] = content_hash(body)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(body, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path

    # -- quarantine --------------------------------------------------------

    def _quarantine(self, path: pathlib.Path, reason: str) -> pathlib.Path | None:
        """Move a corrupt file into ``quarantine/`` (best effort: any
        filesystem trouble degrades to leaving the file where it is,
        which the caller already treats as a miss)."""
        qdir = self.root / QUARANTINE_DIR
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            target = qdir / path.name
            n = 2
            while target.exists():
                target = qdir / f"{path.stem}.{n}{path.suffix}"
                n += 1
            os.replace(path, target)
            pathlib.Path(f"{target}.why").write_text(reason + "\n")
            return target
        except OSError:  # pragma: no cover - quarantine must never raise
            return None

    def quarantine_entries(self) -> list[QuarantineEntry]:
        """Everything in ``quarantine/``, with recorded reasons."""
        qdir = self.root / QUARANTINE_DIR
        if not qdir.is_dir():
            return []
        out = []
        for path in sorted(qdir.glob("*.json")):
            try:
                size = path.stat().st_size
            except OSError:  # pragma: no cover - racing deletion
                continue
            try:
                reason = pathlib.Path(f"{path}.why").read_text().strip()
            except OSError:
                reason = "?"
            out.append(QuarantineEntry(path=path, size=size, reason=reason))
        return out

    # -- integrity audit ---------------------------------------------------

    def verify(self) -> list[dict]:
        """Re-check every stored file: identity, schema, and checksum.

        Returns one record per file -- ``{"label", "status", "detail",
        "path"}`` with status ``ok`` / ``SKIP`` (stale schema) /
        ``UNREADABLE`` / ``MISMATCH`` (identity drift) / ``CHECKSUM``
        (bit rot) -- sorted by path.  ``repro cache ls --verify`` renders
        these; the chaos harness asserts none are bad after a fault run.
        """
        records = []
        if not self.root.is_dir():
            return records
        for path in sorted(self.root.glob("*.json")):
            records.append(self._verify_one(path))
        return records

    def _verify_one(self, path: pathlib.Path) -> dict:
        def record(label, status, detail=""):
            return {"label": label, "status": status, "detail": detail,
                    "path": path}

        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            return record("?", "UNREADABLE",
                          f"not parseable as an artifact ({exc})")
        if not isinstance(payload, dict):
            return record("?", "UNREADABLE", "payload is not an object")
        if payload.get("kind") == "checkpoint":
            return self._verify_checkpoint(path, payload)
        label = _spec_label(payload.get("spec"))
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            return record(label, "SKIP", f"stale schema v{version}")
        try:
            artifact = RunArtifact.from_json_dict(payload)
        except ArtifactError as exc:
            return record(label, "UNREADABLE", str(exc))
        expected = run_fingerprint(artifact.spec)
        if artifact.fingerprint != expected:
            return record(label, "MISMATCH",
                          f"stored {artifact.fingerprint[:16]} != spec "
                          f"{expected[:16]}")
        name_hash = path.stem.rsplit("-", 1)[-1]
        if name_hash != artifact.fingerprint[:_NAME_HASH_LEN]:
            return record(label, "MISMATCH",
                          "filename/payload fingerprint disagree")
        if payload.get("content_hash") != content_hash(payload):
            return record(label, "CHECKSUM", "content checksum mismatch")
        return record(label, "ok", artifact.fingerprint[:16])

    def _verify_checkpoint(self, path: pathlib.Path, payload: dict) -> dict:
        """Checkpoint leg of :meth:`verify`: schema, checksum, and
        fingerprint recomputation from the recorded plan."""
        from repro.core.checkpoint import (CHECKPOINT_SCHEMA,
                                           checkpoint_fingerprint)
        from repro.core.engine import Leg

        label = _checkpoint_label(payload)

        def record(status, detail=""):
            return {"label": label, "status": status, "detail": detail,
                    "path": path}

        version = payload.get("checkpoint_schema")
        if version != CHECKPOINT_SCHEMA:
            return record("SKIP", f"stale checkpoint schema v{version}")
        fingerprint = payload.get("fingerprint")
        try:
            plan = [Leg(mode, instructions)
                    for mode, instructions in payload["plan"]]
            expected = checkpoint_fingerprint(
                payload["params"], plan, payload["stride"])
        except (KeyError, TypeError, ValueError) as exc:
            return record("UNREADABLE", f"invalid checkpoint payload: {exc}")
        if fingerprint != expected:
            return record("MISMATCH",
                          f"stored {str(fingerprint)[:16]} != plan "
                          f"{expected[:16]}")
        name_hash = path.stem.rsplit("-", 1)[-1]
        if name_hash != fingerprint[:_NAME_HASH_LEN]:
            return record("MISMATCH", "filename/payload fingerprint disagree")
        if payload.get("content_hash") != content_hash(payload):
            return record("CHECKSUM", "content checksum mismatch")
        return record("ok", fingerprint[:16])

    # -- maintenance -------------------------------------------------------

    def entries(self) -> list[StoreEntry]:
        """All parseable artifacts in the store, sorted by filename.

        Stale-schema entries are still listed (with their recorded
        ``schema_version``) so ``repro cache ls`` can explain why a run
        re-simulated instead of hitting; only unreadable files are
        skipped.
        """
        if not self.root.is_dir():
            return []
        out = []
        for path in sorted(self.root.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
                fingerprint = payload["fingerprint"]
                stat = path.stat()
            except (OSError, ValueError, KeyError, TypeError):
                continue
            if not isinstance(payload, dict) or not isinstance(fingerprint, str):
                continue
            kind = "checkpoint" if payload.get("kind") == "checkpoint" else "run"
            if kind == "checkpoint":
                version = payload.get("checkpoint_schema")
                label = _checkpoint_label(payload)
            else:
                version = payload.get("schema_version")
                label = _spec_label(payload.get("spec"))
            created = datetime.datetime.fromtimestamp(
                stat.st_mtime).isoformat(timespec="seconds")
            flags = payload.get("flags")
            out.append(StoreEntry(
                path=path, fingerprint=fingerprint,
                label=label, size=stat.st_size,
                schema_version=version if isinstance(version, int) else None,
                created=created,
                flags=tuple(flags) if isinstance(flags, list) else (),
                kind=kind))
        return out

    def gc(self, dry_run: bool = False) -> list[StoreEntry]:
        """Delete stale-schema entries (the ones ``cache ls`` flags).

        A schema bump turns every stored artifact into a permanent miss;
        without collection those files leak disk forever.  Returns the
        stale entries (removed, or merely found with *dry_run*).  Current
        -schema entries are never touched.  Checkpoints are judged
        against *their* schema (:data:`repro.core.checkpoint
        .CHECKPOINT_SCHEMA`), so an artifact schema bump does not sweep
        away still-valid checkpoints or vice versa.
        """
        from repro.core.checkpoint import CHECKPOINT_SCHEMA

        current = {"run": SCHEMA_VERSION, "checkpoint": CHECKPOINT_SCHEMA}
        stale = [entry for entry in self.entries()
                 if entry.schema_version != current[entry.kind]]
        if not dry_run:
            for entry in stale:
                try:
                    entry.path.unlink()
                except OSError:  # pragma: no cover - racing deletion
                    pass
        return stale

    def collect_tmp(self, dry_run: bool = False) -> list[tuple[pathlib.Path, int]]:
        """Reclaim ``*.tmp.<pid>`` files stranded by interrupted writes.

        :meth:`put` stages each artifact in a temp file before the
        atomic rename; a worker killed in that window leaves the temp
        file behind forever.  Returns ``(path, size)`` pairs (removed,
        or merely found with *dry_run*).

        The listing sorts on (base name, numeric pid), not the raw
        filename: lexicographic order ranks ``.tmp.100`` before
        ``.tmp.99``, so a retried sweep whose workers got different
        pids would reorder the ``cache gc`` transcript.
        """
        if not self.root.is_dir():
            return []

        def order(path: pathlib.Path) -> tuple[str, int]:
            base, _, pid = path.name.rpartition(".")
            return (base, int(pid) if pid.isdigit() else -1)

        found = []
        for path in sorted(self.root.glob("*.tmp.*"), key=order):
            try:
                size = path.stat().st_size
            except OSError:  # pragma: no cover - racing deletion
                continue
            found.append((path, size))
            if not dry_run:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing deletion
                    pass
        return found

    def clear(self) -> int:
        """Delete every stored artifact; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in sorted(self.root.glob("*.json")):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing deletion
                pass
        return removed
