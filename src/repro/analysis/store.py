"""Content-addressed on-disk run store (layer 2 of the run engine).

A :class:`RunStore` persists :class:`~repro.analysis.artifact.RunArtifact`
objects as JSON files named by their content fingerprint, so canonical
runs survive across processes: the first ``repro report``, pytest session,
or benchmark pass pays the simulation cost and every later one loads the
stored artifact instead.  Invalidation is automatic -- the fingerprint
covers the artifact schema version, a code-version tag, and the full
simulation config -- so changing any knob, the counter layout, or the
simulator itself simply produces a different key and a cache miss.

The store root defaults to ``.repro_cache/`` in the current directory and
can be redirected with the ``REPRO_CACHE_DIR`` environment variable
(tests point it at a temporary directory).  Files are written atomically
(temp file + rename), and unreadable or schema-stale entries are treated
as misses, never as errors.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import re
from dataclasses import dataclass

from repro.analysis.artifact import SCHEMA_VERSION, ArtifactError, RunArtifact

#: Default store directory, relative to the working directory.
DEFAULT_STORE_DIR = ".repro_cache"

#: Environment variable overriding the store location.
STORE_DIR_ENV = "REPRO_CACHE_DIR"

#: Hex digits of the fingerprint embedded in each filename.
_NAME_HASH_LEN = 20


def store_root() -> pathlib.Path:
    """The configured store directory (env override or the default)."""
    return pathlib.Path(os.environ.get(STORE_DIR_ENV) or DEFAULT_STORE_DIR)


def _slug(spec: dict) -> str:
    """Readable filename prefix: labels if present, else just 'run'."""
    parts = []
    for key in ("workload", "cpu", "os_mode", "seed", "instructions"):
        value = spec.get(key)
        if value is not None:
            parts.append(str(value))
    text = "-".join(parts) or "run"
    return re.sub(r"[^A-Za-z0-9._-]+", "_", text)


def _spec_label(spec) -> str:
    """Label from a raw spec dict (mirrors RunArtifact.label, but usable
    for stale-schema payloads that no longer parse as artifacts)."""
    if not isinstance(spec, dict):
        return "run"
    parts = [str(spec.get(k)) for k in ("workload", "cpu", "os_mode")
             if spec.get(k) is not None]
    return "-".join(parts) or "run"


@dataclass(frozen=True)
class StoreEntry:
    """One stored artifact, as listed by ``repro cache ls``.

    ``schema_version`` is whatever the payload recorded (stale entries
    keep their old version so ``cache ls`` can show why they miss);
    ``created`` is the file's mtime as an ISO-8601 timestamp.
    """

    path: pathlib.Path
    fingerprint: str
    label: str
    size: int
    schema_version: int | None = None
    created: str = ""


class RunStore:
    """Content-addressed artifact store rooted at one directory."""

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = pathlib.Path(root) if root is not None else store_root()

    def _path_for(self, artifact: RunArtifact) -> pathlib.Path:
        name = f"{_slug(artifact.spec)}-{artifact.fingerprint[:_NAME_HASH_LEN]}.json"
        return self.root / name

    # -- read --------------------------------------------------------------

    def get(self, fingerprint: str) -> RunArtifact | None:
        """Load the artifact with this fingerprint, or None on any miss
        (absent, unparsable, stale schema, or hash mismatch)."""
        if not self.root.is_dir():
            return None
        suffix = f"-{fingerprint[:_NAME_HASH_LEN]}.json"
        for path in sorted(self.root.glob(f"*{suffix}")):
            try:
                artifact = RunArtifact.loads(path.read_text())
            except (ArtifactError, OSError):
                continue
            if artifact.fingerprint == fingerprint:
                return artifact
        return None

    def __contains__(self, fingerprint: str) -> bool:
        return self.get(fingerprint) is not None

    # -- write -------------------------------------------------------------

    def put(self, artifact: RunArtifact) -> pathlib.Path:
        """Persist one artifact atomically; returns its path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path_for(artifact)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(artifact.dumps() + "\n")
        os.replace(tmp, path)
        return path

    # -- maintenance -------------------------------------------------------

    def entries(self) -> list[StoreEntry]:
        """All parseable artifacts in the store, sorted by filename.

        Stale-schema entries are still listed (with their recorded
        ``schema_version``) so ``repro cache ls`` can explain why a run
        re-simulated instead of hitting; only unreadable files are
        skipped.
        """
        if not self.root.is_dir():
            return []
        out = []
        for path in sorted(self.root.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
                fingerprint = payload["fingerprint"]
                stat = path.stat()
            except (OSError, ValueError, KeyError, TypeError):
                continue
            if not isinstance(payload, dict) or not isinstance(fingerprint, str):
                continue
            version = payload.get("schema_version")
            created = datetime.datetime.fromtimestamp(
                stat.st_mtime).isoformat(timespec="seconds")
            out.append(StoreEntry(
                path=path, fingerprint=fingerprint,
                label=_spec_label(payload.get("spec")), size=stat.st_size,
                schema_version=version if isinstance(version, int) else None,
                created=created))
        return out

    def gc(self, dry_run: bool = False) -> list[StoreEntry]:
        """Delete stale-schema entries (the ones ``cache ls`` flags).

        A schema bump turns every stored artifact into a permanent miss;
        without collection those files leak disk forever.  Returns the
        stale entries (removed, or merely found with *dry_run*).  Current
        -schema entries are never touched.
        """
        stale = [entry for entry in self.entries()
                 if entry.schema_version != SCHEMA_VERSION]
        if not dry_run:
            for entry in stale:
                try:
                    entry.path.unlink()
                except OSError:  # pragma: no cover - racing deletion
                    pass
        return stale

    def clear(self) -> int:
        """Delete every stored artifact; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in sorted(self.root.glob("*.json")):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing deletion
                pass
        return removed
