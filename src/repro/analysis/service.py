"""Resilient simulation service: queue-fed supervised execution with
admission control, circuit breaking, and crash-recoverable sweeps.

:class:`ReproService` (behind ``repro serve``) turns the one-shot
supervised sweep of :mod:`repro.analysis.supervisor` into a long-running
job engine fed by the durable :class:`~repro.analysis.queue.JobQueue`:

* **Submit** admits run specs through the queue's write-ahead journal
  (dedup by artifact fingerprint, priority ordering, bounded backlog
  with load-shedding); specs whose artifact is already in the store are
  served warm without consuming a worker.
* **Claim/lease** hands pending jobs to supervised worker processes
  (the same process-isolated attempt bodies as the supervisor, results
  via the store only).  A worker that dies, hangs past its timeout, or
  stops heartbeating past its lease is killed and its job requeued with
  the supervisor's deterministic backoff; retry exhaustion quarantines
  the job, never the sweep.
* **Circuit breaker**: repeated store-write failures (ENOSPC, torn
  writes, checksum rot) trip the breaker from CLOSED to OPEN -- the
  service degrades to read-only (warm hits still served, no new
  launches).  Cooldown is counted in *denied operations*, not seconds,
  so breaker transcripts are deterministic; every ``cooldown`` denials
  one HALF_OPEN probe launch is allowed, and its outcome closes or
  re-opens the circuit.
* **Drain**: :meth:`ReproService.request_drain` (wired to SIGTERM by
  the CLI) stops new claims, finishes the active legs, journals a clean
  shutdown marker, and exits 0.  A SIGKILLed service loses nothing: the
  next ``repro serve --resume`` replays the journal, completes orphaned
  claims whose artifact already landed, requeues the rest, and the
  final :meth:`~repro.analysis.queue.JobQueue.ledger` is byte-identical
  to an uninterrupted run.

The service emits ``core.service.*`` counters when given a probe
registry and ``service.*`` engine events on an event bus.  Like the
supervisor, this is host-side machinery (timeouts, leases, backoff
sleeps) and sits on the D102 wall-clock allowlist; its *transcript* and
report are wall-clock-free so chaos reports stay byte-identical.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import signal
import time
from dataclasses import dataclass, field

from repro import faults
from repro.analysis import experiments
from repro.analysis import queue as jobqueue
from repro.analysis.queue import Job, JobQueue, queue_root
from repro.analysis.runner import CANONICAL_SPECS, _resolve_item
from repro.analysis.store import RunStore
from repro.analysis.supervisor import (DEFAULT_BACKOFF_BASE, DEFAULT_RETRIES,
                                       TRANSIENT, Supervisor, _run_attempt,
                                       _supervised_worker, backoff_delay,
                                       classify_error, processes_available)

#: Circuit breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Consecutive store failures that trip the breaker.
DEFAULT_BREAKER_THRESHOLD = 3

#: Denied operations between half-open probes while the breaker is open.
DEFAULT_BREAKER_COOLDOWN = 8

#: Substrings identifying a worker failure as store trouble (feeding the
#: breaker rather than only the per-job retry budget).
_STORE_FAILURE_MARKERS = (
    "store.put.disk_full", "store.put.torn", "disk full", "no space left",
    "enospc", "checksum",
)


class ServiceError(RuntimeError):
    """Service-level misuse (e.g. unfinished journal without --resume)."""


class CircuitBreaker:
    """Deterministic store circuit breaker (CLOSED / OPEN / HALF_OPEN).

    ``threshold`` consecutive failures open the circuit.  While OPEN,
    :meth:`allow` denies; every ``cooldown`` denials it lets one probe
    through and moves to HALF_OPEN.  The probe's outcome closes the
    circuit (success) or re-opens it (failure).  All state changes are
    pure counter arithmetic -- no wall clock -- so a chaos transcript of
    breaker activity is byte-identical run over run.
    """

    def __init__(self, threshold: int = DEFAULT_BREAKER_THRESHOLD,
                 cooldown: int = DEFAULT_BREAKER_COOLDOWN,
                 on_transition=None) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown < 1:
            raise ValueError(f"cooldown must be >= 1, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self.on_transition = on_transition
        self.state = CLOSED
        self.failures = 0  # consecutive
        self.trips = 0
        self._denied = 0

    def _move(self, state: str, why: str) -> None:
        if state == self.state:
            return
        old, self.state = self.state, state
        if state == OPEN:
            self.trips += 1
        if self.on_transition is not None:
            self.on_transition(old, state, why)

    def allow(self) -> bool:
        """May a store-writing operation proceed right now?"""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            self._denied += 1
            if self._denied >= self.cooldown:
                self._denied = 0
                self._move(HALF_OPEN, "cooldown elapsed; probing")
                return True
            return False
        # HALF_OPEN: one probe is already in flight; hold the rest back.
        return False

    def record_success(self) -> None:
        self.failures = 0
        if self.state != CLOSED:
            self._move(CLOSED, "probe succeeded")

    def record_failure(self, why: str) -> None:
        self.failures += 1
        if self.state == HALF_OPEN:
            self._move(OPEN, f"probe failed: {why}")
        elif self.state == CLOSED and self.failures >= self.threshold:
            self._move(OPEN, f"{self.failures} consecutive store "
                             f"failures; last: {why}")

    def trip(self, why: str) -> None:
        """Force the circuit open (the ``store.breaker.trip`` fault)."""
        self.failures = max(self.failures, self.threshold)
        self._denied = 0
        self._move(OPEN, why)

    def to_json_dict(self) -> dict:
        return {"state": self.state, "trips": self.trips,
                "threshold": self.threshold, "cooldown": self.cooldown}


@dataclass
class ServiceReport:
    """Outcome of one service incarnation (deterministic, JSON-safe)."""

    jobs: list = field(default_factory=list)
    counts: dict = field(default_factory=dict)
    replay: dict = field(default_factory=dict)
    breaker: dict = field(default_factory=dict)
    transcript: list = field(default_factory=list)
    warm_hits: int = 0
    drained: bool = False
    clean: bool = False
    ledger: str = ""

    @property
    def ok(self) -> bool:
        return self.counts.get(jobqueue.QUARANTINED, 0) == 0

    def to_json_dict(self) -> dict:
        return {"jobs": self.jobs, "counts": self.counts,
                "replay": self.replay, "breaker": self.breaker,
                "transcript": self.transcript, "warm_hits": self.warm_hits,
                "drained": self.drained, "clean": self.clean,
                "ledger": self.ledger}

    def render(self) -> str:
        lines = ["service report", "=" * 14]
        for job in self.jobs:
            mark = {jobqueue.DONE: "ok", jobqueue.QUARANTINED: "QUAR",
                    jobqueue.PENDING: "pend",
                    jobqueue.CLAIMED: "orph"}.get(job["state"], "?")
            note = " (store)" if job.get("from_store") else ""
            if job.get("coalesced"):
                note += f" (+{job['coalesced']} coalesced)"
            err = f" -- {job['error']}" if job.get("error") else ""
            lines.append(f"  [{mark:>4}] {job['label']}"
                         f" x{job['attempts']}{note}{err}")
        counted = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items())
                            if v)
        lines.append(f"counts: {counted or 'empty'}")
        lines.append(f"breaker: {self.breaker.get('state')} "
                     f"(trips={self.breaker.get('trips', 0)})")
        if self.replay.get("records"):
            lines.append(
                f"journal: {self.replay['records']} records replayed, "
                f"{self.replay.get('torn_records', 0)} torn, "
                f"{len(self.replay.get('orphans', []))} orphans")
        if self.drained:
            lines.append("drained: clean shutdown (journal marker written)")
        return "\n".join(lines)


class _Leg:
    """One in-flight claimed job inside this incarnation."""

    def __init__(self, job: Job, slot: int, proc=None, deadline=None,
                 err_path: str | None = None,
                 progress_path: str | None = None) -> None:
        self.job = job
        self.slot = slot
        self.proc = proc
        self.deadline = deadline
        self.err_path = err_path
        self.progress_path = progress_path


class ReproService:
    """Queue-fed supervised run engine (one incarnation).

    Construction opens (and replays) the durable queue under
    *store*'s root; :meth:`submit` admits work; :meth:`run` executes
    until the queue is empty or a drain completes.  Parameters mirror
    the supervisor where they overlap (*retries*, *timeout*,
    *isolation*, *backoff_base*, fault-site-aware attempt bodies);
    *lease_s* bounds how long a claimed worker may go without a
    heartbeat before its lease is revoked.  *on_complete* is called
    with each finished :class:`~repro.analysis.queue.Job` (used by
    chaos scenarios to trigger drains mid-sweep).
    """

    def __init__(self, store: RunStore | None = None, *,
                 workers: int = 1, retries: int = DEFAULT_RETRIES,
                 timeout: float | None = None,
                 lease_s: float = jobqueue.DEFAULT_LEASE_S,
                 queue_limit: int = jobqueue.DEFAULT_LIMIT,
                 backoff_base: float = DEFAULT_BACKOFF_BASE,
                 poll_interval: float = 0.05, isolation: str = "auto",
                 breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
                 breaker_cooldown: int = DEFAULT_BREAKER_COOLDOWN,
                 events=None, registry=None, on_complete=None,
                 progress: bool = False,
                 max_cycles_per_run: int | None = None,
                 watchdog_cycles: int | None = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if isolation not in ("auto", "process", "inline"):
            raise ValueError(f"unknown isolation {isolation!r}")
        self.store = store or RunStore()
        self.queue = JobQueue(queue_root(self.store.root),
                              limit=queue_limit, lease_s=lease_s)
        self.workers = workers
        self.retries = retries
        self.timeout = timeout
        self.lease_s = lease_s
        self.backoff_base = backoff_base
        self.poll_interval = poll_interval
        self.isolation = isolation
        self.events = events
        self.on_complete = on_complete
        self.progress = progress
        self.max_cycles_per_run = max_cycles_per_run
        self.watchdog_cycles = watchdog_cycles
        self.breaker = CircuitBreaker(breaker_threshold, breaker_cooldown,
                                      on_transition=self._breaker_moved)
        self._breaker_fault_seen = False
        self.draining = False
        self.warm_hits = 0
        self.transcript: list = []
        self._step = 0
        self._started_at = time.monotonic()
        self._submitted_at: dict[str, float] = {}
        self._not_before: dict[str, float] = {}
        self._active: dict[str, _Leg] = {}  # job id -> leg
        self._free_slots = list(range(workers))
        self._aggregator = None
        self._init_progress_dir()
        if registry is not None:
            self.register_probes(registry)
        else:
            from repro.obs.registry import NULL_REGISTRY

            self.register_probes(NULL_REGISTRY)
        if self.queue.replayed.records:
            self.transcript.append(
                f"journal replayed: {self.queue.replayed.records} records, "
                f"{self.queue.replayed.torn_records} torn, "
                f"{len(self.queue.replayed.orphans)} orphaned claims")
            self._emit("service.resume", "journal",
                       f"{self.queue.replayed.records} records")

    # -- wiring ------------------------------------------------------------

    def _init_progress_dir(self) -> None:
        """Persistent per-worker heartbeat files under the queue root.

        Unlike the supervisor's per-sweep temp dir, the service's
        progress dir survives incarnations -- so stale ``worker-*.json``
        from a dead service must be pruned at startup or the aggregator
        would report them as stalled forever.
        """
        from repro.obs.live import ProgressAggregator

        directory = self.queue.root / "progress"
        directory.mkdir(parents=True, exist_ok=True)
        self._aggregator = ProgressAggregator(
            directory, total_runs=self.workers, stale_after=self.lease_s)
        pruned = self._aggregator.prune()
        if pruned:
            self.transcript.append(
                f"pruned {len(pruned)} stale worker state files "
                f"from a previous incarnation")

    def register_probes(self, registry) -> None:
        """Service counters under ``core.service.*`` (probe hierarchy)."""
        self.c_submitted = registry.counter("core.service.submitted")
        self.c_coalesced = registry.counter("core.service.coalesced")
        self.c_shed = registry.counter("core.service.shed")
        self.c_warm_hits = registry.counter("core.service.warm_hits")
        self.c_claims = registry.counter("core.service.claims")
        self.c_completed = registry.counter("core.service.completed")
        self.c_requeued = registry.counter("core.service.requeued")
        self.c_quarantined = registry.counter("core.service.quarantined")
        self.c_orphans = registry.counter("core.service.orphans")
        self.c_breaker_trips = registry.counter("core.service.breaker_trips")
        self.c_drains = registry.counter("core.service.drains")

    def _emit(self, name: str, label: str, detail: str = "") -> None:
        if self.events is None:
            return
        from repro.obs.events import ENGINE

        self._step += 1
        self.events.emit(self._step, ENGINE, name, service=label,
                         args={"detail": detail} if detail else None)

    def _breaker_moved(self, old: str, new: str, why: str) -> None:
        self.transcript.append(f"breaker {old} -> {new}: {why}")
        if new == OPEN:
            self.c_breaker_trips.add()
            self._emit("service.breaker.open", "store", why)
        elif new == CLOSED:
            self._emit("service.breaker.close", "store", why)

    # -- admission ---------------------------------------------------------

    def submit(self, spec: dict, *, priority: int = 0,
               deadline_s: float | None = None,
               force: bool = False) -> tuple[Job | None, str]:
        """Admit one resolved run spec.

        Returns ``(job, outcome)`` where outcome extends the queue's
        (``queued``/``coalesced``/``done``/``shed``) with ``warm``: the
        artifact already sits in the store, so the job is journaled and
        completed immediately without consuming a worker (load-shedding
        of duplicate work).  Store *reads* stay allowed even when the
        breaker is open -- degraded mode is read-only, not dead.
        """
        job, outcome = self.queue.submit(spec, priority=priority,
                                         deadline_s=deadline_s)
        if outcome == "shed":
            self.c_shed.add()
            self._emit("service.shed", jobqueue.job_label(spec),
                       f"backlog at limit {self.queue.limit}")
            self.transcript.append(
                f"shed {jobqueue.job_label(spec)}: backlog at "
                f"limit {self.queue.limit}")
            return job, outcome
        assert job is not None
        if outcome == "coalesced":
            self.c_coalesced.add()
            self._emit("service.submit", job.label, "coalesced")
            return job, outcome
        if outcome == "done":
            return job, outcome
        self.c_submitted.add()
        self._submitted_at[job.id] = time.monotonic()
        self._emit("service.submit", job.label, f"priority {priority}")
        if not force:
            artifact = self._store_get(job.fingerprint)
            if artifact is not None:
                self.queue.complete(job.id, from_store=True)
                self.warm_hits += 1
                self.c_warm_hits.add()
                self._emit("service.complete", job.label, "warm store hit")
                self.transcript.append(f"warm hit {job.label}")
                return job, "warm"
        return job, outcome

    def _store_get(self, fingerprint: str):
        """Breaker-guarded store read (read path never blocks on OPEN,
        but its failures feed the breaker)."""
        try:
            artifact = self.store.get(fingerprint)
        except OSError as exc:
            self.breaker.record_failure(f"store read: {exc}")
            return None
        return artifact

    # -- drain / recovery --------------------------------------------------

    def request_drain(self) -> None:
        """Stop claiming; finish active legs; journal a clean shutdown."""
        if self.draining:
            return
        self.draining = True
        self.c_drains.add()
        self._emit("service.drain", "service",
                   f"{len(self._active)} active legs")
        self.transcript.append(
            f"drain requested: finishing {len(self._active)} active legs, "
            f"{self.queue.pending_count()} jobs stay queued")

    def _reconcile_orphans(self) -> None:
        """Startup recovery: claims journaled by a dead incarnation.

        An orphaned claim's worker may have finished the run before
        dying -- the store, not the journal, is the source of truth for
        the artifact -- so each orphan is either completed from the
        store or requeued.  Requeueing is dedup-safe: identity is the
        artifact fingerprint.
        """
        orphans = [self.queue.jobs[jid] for jid in self.queue.replayed.orphans
                   if jid in self.queue.jobs]
        for job in sorted(orphans, key=lambda j: j.submit_seq):
            if job.state != jobqueue.CLAIMED:
                continue
            self.c_orphans.add()
            artifact = self._store_get(job.fingerprint)
            if artifact is not None:
                experiments.register_artifact(artifact)
                self.queue.complete(job.id, from_store=True)
                self._emit("service.complete", job.label,
                           "orphan: artifact already stored")
                self.transcript.append(
                    f"orphan {job.label}: dead worker had stored the "
                    f"artifact; completed")
                self.c_completed.add()
            else:
                self.queue.requeue(job.id, "orphan")
                self.c_requeued.add()
                self._emit("service.requeue", job.label, "orphaned claim")
                self.transcript.append(
                    f"orphan {job.label}: requeued (no artifact stored)")

    # -- main loop ---------------------------------------------------------

    def run(self) -> ServiceReport:
        """Execute until the queue is empty or a drain completes."""
        self._reconcile_orphans()
        use_processes = (self.isolation == "process"
                         or (self.isolation == "auto"
                             and processes_available()))
        if not use_processes and self.timeout is not None:
            self.transcript.append(
                "inline fallback: per-run timeouts and leases are "
                "best-effort only (no process isolation available)")
        while True:
            # One-shot guard: inline attempts reset fault counters
            # (workers normally re-arm in their own process), so without
            # it a times=1 trip would re-fire after every inline run.
            if not self._breaker_fault_seen \
                    and faults.fire("store.breaker.trip", "service") is not None:
                self._breaker_fault_seen = True
                self.breaker.trip("injected store failure storm")
            launched = self._launch_phase(use_processes)
            if self._active:
                self._reap()
            elif not launched:
                runnable, soonest = self._runnable()
                if self.draining or not runnable:
                    break
                if soonest is not None:
                    time.sleep(min(max(0.0, soonest - time.monotonic()),
                                   self.poll_interval * 4))
                else:
                    # Breaker open: denials are counted per pass, and
                    # every `cooldown` of them admits a half-open probe.
                    time.sleep(self.poll_interval)
            if self._aggregator is not None and self.progress:
                self._aggregator.refresh(
                    final=not self._active and self.draining)
        clean_drain = self.draining
        self.queue.mark_shutdown(clean=True, drained=clean_drain)
        if clean_drain:
            self.transcript.append("clean shutdown marker journaled "
                                   "(drained)")
        return self.report(drained=clean_drain)

    def _runnable(self) -> tuple[bool, float | None]:
        """(any pending job left, soonest backoff deadline or None)."""
        pending = self.queue.pending_jobs()
        if not pending:
            return False, None
        deadlines = [self._not_before[j.id] for j in pending
                     if j.id in self._not_before]
        if len(deadlines) == len(pending):
            return True, min(deadlines)
        return True, None

    def _launch_phase(self, use_processes: bool) -> bool:
        """Claim and start as many pending jobs as slots/policy allow."""
        launched = False
        now = time.monotonic()
        # Re-check draining inside the loop: an inline leg settles
        # synchronously, and its on_complete hook may request a drain
        # that must stop the very next claim.
        while self._free_slots and not self.draining:
            ready = [j for j in self.queue.pending_jobs()
                     if self._not_before.get(j.id, 0.0) <= now]
            if not ready:
                break
            if not self.breaker.allow():
                break
            job = self.queue.claim(f"w{self._free_slots[0]}")
            if job is None:
                # queue.claim.orphan fired: the claim is journaled but
                # this incarnation lost track of it -- exactly a worker
                # vanishing post-claim.  Recovery happens on resume.
                self._probe_lost("claimed job orphaned before tracking")
                self.transcript.append(
                    "claimed job lost before tracking (orphaned; "
                    "a resume will recover it)")
                break
            self.c_claims.add()
            self._not_before.pop(job.id, None)
            leg = self._start_leg(job, use_processes)
            launched = True
            if leg is None:
                continue  # inline mode settles synchronously
        return launched

    def _effective_timeout(self, job: Job) -> tuple[float | None, bool]:
        """Per-attempt timeout with the job's deadline folded in.

        A ``deadline_s`` is a total latency budget from submit; the
        remaining budget caps the attempt timeout, and an expired
        deadline quarantines the job without wasting a worker on it.
        """
        limit = self.timeout
        if job.deadline_s is not None:
            submitted = self._submitted_at.get(job.id, self._started_at)
            remaining = job.deadline_s - (time.monotonic() - submitted)
            if remaining <= 0:
                return None, True
            limit = remaining if limit is None else min(limit, remaining)
        return limit, False

    def _start_leg(self, job: Job, use_processes: bool) -> _Leg | None:
        slot = self._free_slots.pop(0)
        limit, expired = self._effective_timeout(job)
        if expired:
            self._free_slots.insert(0, slot)
            self._probe_lost("deadline expired before execution")
            self._quarantine(job, "deadline expired before execution",
                             TRANSIENT)
            return None
        self._emit("service.claim", job.label,
                   f"worker w{slot}, attempt {job.attempts}")
        self.transcript.append(
            f"claim w{slot} {job.label} attempt {job.attempts}")
        if not use_processes:
            self._free_slots.insert(0, slot)
            self._run_inline(job)
            return None
        ctx = multiprocessing.get_context()
        err_path = str(self.queue.root / f"err-{slot}.json")
        try:
            os.unlink(err_path)  # a dead incarnation's stale error record
        except OSError:
            pass
        progress_path = (self._aggregator.path_for(slot)
                         if self._aggregator is not None else None)
        proc = ctx.Process(
            target=_supervised_worker,
            args=(job.spec, str(self.store.root), job.attempts, err_path,
                  progress_path, self.max_cycles_per_run,
                  self.watchdog_cycles),
            daemon=True)
        proc.start()
        if faults.fire("service.worker.lost", job.label) is not None:
            # The host running this worker vanished: SIGKILL, no
            # cleanup, no error record.  The reap path must classify
            # the bare nonzero exit as transient and retry.
            proc.kill()
        deadline = time.monotonic() + limit if limit else None
        leg = _Leg(job, slot, proc=proc, deadline=deadline,
                   err_path=err_path, progress_path=progress_path)
        self._active[job.id] = leg
        return leg

    # -- settling ----------------------------------------------------------

    def _reap(self) -> None:
        sentinels = {leg.proc.sentinel: jid
                     for jid, leg in self._active.items()}
        try:
            ready = multiprocessing.connection.wait(
                list(sentinels), timeout=self.poll_interval)
        except OSError:  # pragma: no cover - sentinel raced closed
            ready = []
        for sentinel in ready:
            leg = self._active.pop(sentinels[sentinel])
            leg.proc.join()
            self._free_slots.append(leg.slot)
            self._free_slots.sort()
            self._settle_exit(leg)
        now = time.monotonic()
        for jid, leg in list(self._active.items()):
            if not leg.proc.is_alive():
                continue
            if leg.deadline is not None and now >= leg.deadline:
                if self.timeout is not None:
                    error = (f"timed out after {self.timeout:g}s; "
                             f"worker terminated")
                else:
                    error = "deadline exhausted; worker terminated"
                self._revoke(leg, error)
            elif self._lease_expired(leg):
                self._revoke(leg, f"lease expired: no heartbeat for "
                                  f"{self.lease_s:g}s; worker terminated")

    def _lease_expired(self, leg: _Leg) -> bool:
        if leg.progress_path is None:
            return False
        try:
            # Heartbeat mtimes are wall-clock epoch seconds (the clock
            # ProgressAggregator.samples() reads), so the age must be
            # measured against time.time(), not the monotonic clock the
            # deadline checks use.
            age = time.time() - os.stat(leg.progress_path).st_mtime
        except OSError:
            return False  # no heartbeat written yet: the timeout governs
        return age > self.lease_s

    def _revoke(self, leg: _Leg, error: str) -> None:
        Supervisor._kill(leg.proc)
        self._active.pop(leg.job.id, None)
        self._free_slots.append(leg.slot)
        self._free_slots.sort()
        self._probe_lost(error)
        self._retry_or_quarantine(leg.job, error, TRANSIENT)

    def _settle_exit(self, leg: _Leg) -> None:
        job = leg.job
        if leg.proc.exitcode == 0:
            artifact = self._store_get(job.fingerprint)
            if artifact is not None:
                self._complete(job, artifact)
                return
            error, kind = ("worker exited cleanly but stored no artifact",
                           TRANSIENT)
        else:
            record = Supervisor._read_error(leg.err_path)
            if record is not None:
                error = f"{record.get('type')}: {record.get('message')}"
                kind = classify_error(record.get("type", ""),
                                      record.get("transient"))
            else:
                error = f"worker lost (exit code {leg.proc.exitcode})"
                kind = TRANSIENT
        self._note_store_failure(error)
        self._probe_lost(error)
        self._retry_or_quarantine(job, error, kind)

    def _run_inline(self, job: Job) -> None:
        """Serial in-process attempt (no isolation available)."""
        try:
            if faults.fire("service.worker.lost", job.label) is not None:
                raise faults.InjectedFault(
                    "service.worker.lost",
                    f"injected worker loss ({job.label})")
            artifact = _run_attempt(
                job.spec, str(self.store.root), job.attempts,
                max_cycles=self.max_cycles_per_run,
                watchdog_cycles=self.watchdog_cycles)
        except Exception as exc:  # noqa: BLE001 - taxonomy below
            error = f"{type(exc).__name__}: {exc}"
            kind = classify_error(type(exc).__name__,
                                  getattr(exc, "transient", None))
            self._note_store_failure(error)
            self._probe_lost(error)
            self._retry_or_quarantine(job, error, kind)
            return
        finally:
            faults.set_attempt(1)
        self._complete(job, artifact)

    def _probe_lost(self, why: str) -> None:
        """A half-open probe ended without a store verdict.

        The only exits from HALF_OPEN are an explicit success or
        failure, but a probe can also be revoked (timeout/lease),
        quarantined before running (expired deadline), orphaned at
        claim time, or fail with a non-store-shaped error.  Any of
        those must re-open the circuit -- leaving it HALF_OPEN would
        deny every later :meth:`CircuitBreaker.allow` and livelock the
        service while pending jobs remain.
        """
        if self.breaker.state == HALF_OPEN:
            self.breaker.record_failure(f"probe lost: {why}")

    def _note_store_failure(self, error: str) -> None:
        lowered = error.lower()
        if any(marker in lowered for marker in _STORE_FAILURE_MARKERS):
            self.breaker.record_failure(error)
        else:
            # A healthy store served this failure's bookkeeping; only
            # store-shaped errors accumulate toward the trip threshold.
            return

    def _complete(self, job: Job, artifact) -> None:
        experiments.register_artifact(artifact)
        self.queue.complete(job.id)
        self.breaker.record_success()
        self.c_completed.add()
        self._emit("service.complete", job.label,
                   f"attempt {job.attempts}")
        self.transcript.append(f"complete {job.label} "
                               f"attempt {job.attempts}")
        if self.on_complete is not None:
            self.on_complete(job)

    def _retry_or_quarantine(self, job: Job, error: str, kind: str) -> None:
        if kind == TRANSIENT and job.attempts <= self.retries:
            delay = backoff_delay(job.attempts + 1, self.backoff_base)
            self.queue.requeue(job.id, "retry")
            self._not_before[job.id] = time.monotonic() + delay
            self.c_requeued.add()
            self._emit("service.requeue", job.label, error)
            self.transcript.append(
                f"requeue {job.label} attempt {job.attempts}: "
                f"[{kind}] {error}; retrying in {delay:g}s")
        else:
            self._quarantine(job, error, kind)

    def _quarantine(self, job: Job, error: str, kind: str) -> None:
        self.queue.quarantine(job.id, error)
        self.c_quarantined.add()
        self._emit("service.quarantine", job.label, error)
        self.transcript.append(
            f"quarantine {job.label} attempt {job.attempts}: "
            f"[{kind}] {error}")

    # -- reporting ---------------------------------------------------------

    def report(self, drained: bool = False) -> ServiceReport:
        jobs = sorted(self.queue.jobs.values(), key=lambda j: j.submit_seq)
        return ServiceReport(
            jobs=[j.to_public_dict() for j in jobs],
            counts=self.queue.counts(),
            replay=self.queue.replayed.to_json_dict(),
            breaker=self.breaker.to_json_dict(),
            transcript=list(self.transcript),
            warm_hits=self.warm_hits,
            drained=drained,
            clean=True,
            ledger=self.queue.ledger())


def run_service(specs=None, *, store: RunStore | None = None,
                resume: bool = False, workers: int = 1,
                retries: int = DEFAULT_RETRIES,
                timeout: float | None = None,
                lease_s: float = jobqueue.DEFAULT_LEASE_S,
                queue_limit: int = jobqueue.DEFAULT_LIMIT,
                priority: int = 0, deadline_s: float | None = None,
                backoff_base: float = DEFAULT_BACKOFF_BASE,
                isolation: str = "auto", force: bool = False,
                events=None, registry=None, on_complete=None,
                progress: bool = False, sigterm_drain: bool = False,
                breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
                breaker_cooldown: int = DEFAULT_BREAKER_COOLDOWN,
                max_cycles_per_run: int | None = None,
                watchdog_cycles: int | None = None) -> ServiceReport:
    """One ``repro serve`` incarnation: admit *specs*, run to empty/drain.

    Without *resume*, an existing journal with unfinished jobs is an
    error -- it means a previous incarnation died (or was killed) and
    its work would be silently re-judged; ``--resume`` makes recovery
    explicit.  Submitting the same specs again under resume is
    harmless: fingerprint identity coalesces them onto the journaled
    jobs.  *sigterm_drain* wires SIGTERM to a graceful drain.
    """
    store = store or RunStore()
    service = ReproService(
        store, workers=workers, retries=retries, timeout=timeout,
        lease_s=lease_s, queue_limit=queue_limit,
        backoff_base=backoff_base, isolation=isolation,
        breaker_threshold=breaker_threshold,
        breaker_cooldown=breaker_cooldown, events=events, registry=registry,
        on_complete=on_complete, progress=progress,
        max_cycles_per_run=max_cycles_per_run,
        watchdog_cycles=watchdog_cycles)
    unfinished = (service.queue.counts()[jobqueue.PENDING]
                  + service.queue.counts()[jobqueue.CLAIMED])
    if unfinished and not resume:
        raise ServiceError(
            f"journal at {service.queue.journal_path} has {unfinished} "
            f"unfinished jobs from a previous incarnation; "
            f"rerun with --resume to recover them")
    if sigterm_drain:
        try:
            signal.signal(signal.SIGTERM,
                          lambda signum, frame: service.request_drain())
        except ValueError:  # pragma: no cover - non-main thread
            pass
    items = list(specs) if specs is not None else list(CANONICAL_SPECS)
    for item in items:
        service.submit(_resolve_item(item), priority=priority,
                       deadline_s=deadline_s, force=force)
    return service.run()
