"""Derived metrics over counter windows.

All functions take a *window* -- the dict produced by
:func:`repro.analysis.snapshot.diff` (or a full capture, which is the
window from machine boot) -- and return the quantities the paper reports.
Windows are plain data, so these metrics apply equally to a live capture
and to the ``startup``/``steady``/``total`` windows of a stored
:class:`~repro.analysis.artifact.RunArtifact`.
"""

from __future__ import annotations

from repro.isa.types import InstrType, Mode
from repro.os_model.syscalls import SYSCALL_CATALOG

# -- utilization -----------------------------------------------------------


def ipc(window: dict) -> float:
    """Retired instructions per cycle."""
    return window["retired"] / window["cycles"] if window["cycles"] else 0.0


def squash_fraction(window: dict) -> float:
    """Squashed instructions as a fraction of instructions fetched."""
    return window["squashed"] / window["fetched"] if window["fetched"] else 0.0


def avg_fetchable_contexts(window: dict) -> float:
    return (
        window["fetchable_context_sum"] / window["cycles"]
        if window["cycles"]
        else 0.0
    )


def zero_fetch_share(window: dict) -> float:
    return window["zero_fetch_cycles"] / window["cycles"] if window["cycles"] else 0.0


def zero_issue_share(window: dict) -> float:
    return window["zero_issue_cycles"] / window["cycles"] if window["cycles"] else 0.0


def max_issue_share(window: dict) -> float:
    return window["max_issue_cycles"] / window["cycles"] if window["cycles"] else 0.0


def avg_outstanding_misses(window: dict, level: str) -> float:
    """Time-averaged outstanding misses for 'L1I' / 'L1D' / 'L2'."""
    cycles = window["now"] if window.get("now") else window["cycles"]
    if not cycles:
        return 0.0
    return window["mshr_integrals"][level] / cycles


# -- memory structures ----------------------------------------------------------


def _structure(window: dict, name: str) -> dict:
    if name == "BTB":
        return window["btb"]
    if name in ("ITLB", "DTLB"):
        return window["tlbs"][name]
    return window["caches"][name]


def miss_rate(window: dict, name: str, kind: int | None = None) -> float:
    """Miss rate of a structure, overall or for one accessor kind."""
    st = _structure(window, name)
    extra = [0, 0]
    if name == "BTB":
        extra = window["btb_target_mispredicts"]
    if kind is None:
        acc = sum(st["accesses"])
        mis = sum(st["misses"]) + sum(extra)
    else:
        acc = st["accesses"][kind]
        mis = st["misses"][kind] + extra[kind]
    return mis / acc if acc else 0.0


def itlb_miss_per_instruction(window: dict, kind: int | None = None) -> float:
    """ITLB misses per retired instruction (the comparable denominator --
    the simulator only probes the ITLB on PC page changes)."""
    st = window["tlbs"]["ITLB"]
    misses = sum(st["misses"]) if kind is None else st["misses"][kind]
    return misses / window["retired"] if window["retired"] else 0.0


def cause_distribution(window: dict, name: str) -> dict[tuple[int, int], float]:
    """(accessor kind, cause) -> share of all misses (the lower halves of
    the paper's Tables 3 and 7; sums to 1)."""
    st = _structure(window, name)
    total = sum(st["misses"])
    if not total:
        return {}
    out = {}
    for key, v in st["causes"].items():
        kind_s, cause_s = key.split(":")
        out[(int(kind_s), int(cause_s))] = v / total
    return out


def avoided_distribution(window: dict, name: str) -> dict[tuple[int, int], float]:
    """(misser kind, prefetcher kind) -> avoided misses as a share of all
    actual misses (the paper's Table 8)."""
    st = _structure(window, name)
    total = sum(st["misses"])
    if not total:
        return {}
    out = {}
    for key, v in st["avoided"].items():
        kind_s, filler_s = key.split(":")
        out[(int(kind_s), int(filler_s))] = v / total
    return out


# -- branches -------------------------------------------------------------------


def cond_mispredict_rate(window: dict, kind: int | None = None) -> float:
    if kind is None:
        preds = sum(window["cond_predictions"])
        bad = sum(window["cond_mispredicts"])
    else:
        preds = window["cond_predictions"][kind]
        bad = window["cond_mispredicts"][kind]
    return bad / preds if preds else 0.0


# -- time attribution --------------------------------------------------------------


def class_shares(window: dict) -> dict[str, float]:
    """user/kernel/pal/idle shares of context-cycles."""
    total = sum(window["class_cycles"])
    names = ("user", "kernel", "pal", "idle")
    if not total:
        return {n: 0.0 for n in names}
    return {n: window["class_cycles"][i] / total for i, n in enumerate(names)}


def os_cycle_share(window: dict) -> float:
    """The OS (kernel + PAL) share of context-cycles -- the quantity behind
    Figures 1 and 5 and the paper's '% of cycles in the OS' claims."""
    shares = class_shares(window)
    return shares["kernel"] + shares["pal"]


def service_shares(window: dict) -> dict[str, float]:
    """Every attribution label's share of context-cycles."""
    total = sum(window["service_cycles"].values())
    if not total:
        return {}
    return {k: v / total for k, v in window["service_cycles"].items()}


#: Kernel-activity grouping used for the paper's Figures 2 and 6.
KERNEL_CATEGORIES = {
    "tlb handling": ("tlb:refill", "pal:dtlb", "pal:itlb"),
    "memory management": ("vm:",),
    "system calls": ("syscall:", "pal:callsys"),
    "interrupts": ("intr:", "pal:intr"),
    "netisr": ("netisr",),
    "scheduler": ("sched", "pal:swpctx"),
    "synchronization": ("spinlock",),
    "other pal": ("pal:rti", "pal:setipl", "pal"),
}


def kernel_category_shares(window: dict) -> dict[str, float]:
    """Kernel-time categories as shares of *all* context-cycles (Figure 2/6
    style: the bars are percentages of total execution cycles)."""
    shares = service_shares(window)
    out = {cat: 0.0 for cat in KERNEL_CATEGORIES}
    for service, share in shares.items():
        if service in ("user", "idle"):
            continue
        for cat, prefixes in KERNEL_CATEGORIES.items():
            if any(service == p or service.startswith(p) for p in prefixes):
                out[cat] += share
                break
        else:
            out.setdefault("other", 0.0)
            out["other"] += share
    return out


def syscall_cycle_shares(window: dict) -> dict[str, float]:
    """Per-syscall share of all context-cycles, by display name (Figure 7
    left).  The kernel preamble is reported as its own entry."""
    shares = service_shares(window)
    out: dict[str, float] = {}
    for service, share in shares.items():
        if not service.startswith("syscall:"):
            continue
        name = service.split(":", 1)[1]
        if name == "preamble":
            out["kernel preamble"] = out.get("kernel preamble", 0.0) + share
            continue
        spec = SYSCALL_CATALOG.get(name)
        display = spec.display_name if spec is not None else name
        out[display] = out.get(display, 0.0) + share
    return out


def syscall_category_shares(window: dict) -> dict[str, float]:
    """Per-resource-category share of all context-cycles (Figure 7 right)."""
    shares = service_shares(window)
    out: dict[str, float] = {}
    for service, share in shares.items():
        if not service.startswith("syscall:"):
            continue
        name = service.split(":", 1)[1]
        if name == "preamble":
            out["kernel preamble"] = out.get("kernel preamble", 0.0) + share
            continue
        spec = SYSCALL_CATALOG.get(name)
        cat = spec.category.value if spec is not None else "other"
        out[cat] = out.get(cat, 0.0) + share
    return out


# -- instruction mix ----------------------------------------------------------------


def instruction_mix(window: dict, mode: Mode | None = None) -> dict[str, float]:
    """The paper's Table 2/5 rows for one mode (or overall when None).

    Returns percentages: load, store, branch (plus branch-subtype shares of
    all branches), remaining integer, floating point, and the parenthetical
    qualifiers: physical-address share of memory ops and conditional-taken
    share.
    """
    # The paper's mix tables fold PAL code into the kernel column (PAL
    # call/return appears among the kernel's branch subtypes).
    if mode is None:
        wanted = None
    elif mode is Mode.KERNEL:
        wanted = {int(Mode.KERNEL), int(Mode.PAL)}
    else:
        wanted = {int(mode)}
    counts: dict[int, int] = {}
    total = 0
    for key, v in window["itype_by_mode"].items():
        mode_s, itype_s = key.split(":")
        if wanted is not None and int(mode_s) not in wanted:
            continue
        itype = int(itype_s)
        counts[itype] = counts.get(itype, 0) + v
        total += v
    if not total:
        return {}

    def share(*itypes: InstrType) -> float:
        return sum(counts.get(int(t), 0) for t in itypes) / total

    branches = (
        InstrType.COND_BRANCH, InstrType.UNCOND_BRANCH, InstrType.INDIRECT_JUMP,
        InstrType.CALL, InstrType.RETURN, InstrType.PAL_CALL, InstrType.PAL_RETURN,
    )
    branch_total = sum(counts.get(int(t), 0) for t in branches)

    def branch_share(*itypes: InstrType) -> float:
        if not branch_total:
            return 0.0
        return sum(counts.get(int(t), 0) for t in itypes) / branch_total

    if wanted is None:
        mem = sum(window["mem_by_mode"])
        phys = sum(window["phys_mem_by_mode"])
        cond = sum(window["cond_by_mode"])
        taken = sum(window["cond_taken_by_mode"])
    else:
        mem = sum(window["mem_by_mode"][m] for m in wanted)
        phys = sum(window["phys_mem_by_mode"][m] for m in wanted)
        cond = sum(window["cond_by_mode"][m] for m in wanted)
        taken = sum(window["cond_taken_by_mode"][m] for m in wanted)

    return {
        "load": share(InstrType.LOAD) * 100,
        "store": share(InstrType.STORE, InstrType.SYNC) * 100,
        "branch": share(*branches) * 100,
        "conditional": branch_share(InstrType.COND_BRANCH) * 100,
        "unconditional": branch_share(InstrType.UNCOND_BRANCH, InstrType.CALL) * 100,
        "indirect": branch_share(InstrType.INDIRECT_JUMP, InstrType.RETURN) * 100,
        "pal_call_return": branch_share(InstrType.PAL_CALL, InstrType.PAL_RETURN) * 100,
        "remaining_integer": share(InstrType.INT_ALU) * 100,
        "floating_point": share(InstrType.FP_ALU) * 100,
        "phys_mem_pct": (phys / mem * 100) if mem else 0.0,
        "cond_taken_pct": (taken / cond * 100) if cond else 0.0,
    }


# -- convenience groups ------------------------------------------------------------


def table4_metrics(window: dict, n_contexts: int) -> dict[str, float]:
    """The metric rows of the paper's Tables 4 and 6 for one run window."""
    return {
        "ipc": ipc(window),
        "avg_fetchable_contexts": avg_fetchable_contexts(window),
        "branch_mispredict_pct": cond_mispredict_rate(window) * 100,
        "squashed_pct": squash_fraction(window) * 100,
        "l1i_miss_pct": miss_rate(window, "L1I") * 100,
        "l1d_miss_pct": miss_rate(window, "L1D") * 100,
        "l2_miss_pct": miss_rate(window, "L2") * 100,
        "itlb_miss_pct": itlb_miss_per_instruction(window) * 100,
        "dtlb_miss_pct": miss_rate(window, "DTLB") * 100,
        "btb_miss_pct": miss_rate(window, "BTB") * 100,
        "zero_fetch_pct": zero_fetch_share(window) * 100,
        "zero_issue_pct": zero_issue_share(window) * 100,
        "max_issue_pct": max_issue_share(window) * 100,
        "outstanding_l1i": avg_outstanding_misses(window, "L1I"),
        "outstanding_l1d": avg_outstanding_misses(window, "L1D"),
        "outstanding_l2": avg_outstanding_misses(window, "L2"),
    }
