"""Export measured windows and metrics to JSON / CSV.

The table and figure builders render the paper's exhibits as text; this
module serializes the underlying numbers so they can be plotted or diffed
across runs:

::

    from repro.analysis.experiments import get_run
    from repro.analysis.export import window_to_json, timeline_to_csv

    rec = get_run("apache", "smt", "full")
    window_to_json(rec.steady, "apache_steady.json")
    timeline_to_csv(rec, "apache_timeline.csv")

Two timeline exporters exist because artifacts carry two time series:
:func:`timeline_to_csv` writes the coarse mode-class share series behind
Figures 1/5, while :func:`probe_timeline_to_csv` writes the v7 interval
probe record captured by :mod:`repro.obs.timeline`.
"""

from __future__ import annotations

import csv
import json
import pathlib

from repro.analysis import metrics as M
from repro.analysis.artifact import RunArtifact
from repro.core.stats import CLASS_NAMES


def summarize_window(window: dict, n_contexts: int = 8) -> dict:
    """Flatten one counter window into a plain metrics dict."""
    summary = {
        "instructions": window["retired"],
        "cycles": window["cycles"],
        "ipc": M.ipc(window),
        "squash_fraction": M.squash_fraction(window),
        "avg_fetchable_contexts": M.avg_fetchable_contexts(window),
        "zero_fetch_share": M.zero_fetch_share(window),
        "zero_issue_share": M.zero_issue_share(window),
        "max_issue_share": M.max_issue_share(window),
        "cond_mispredict_rate": M.cond_mispredict_rate(window),
        "class_shares": M.class_shares(window),
        "kernel_categories": M.kernel_category_shares(window),
        "syscall_cycle_shares": M.syscall_cycle_shares(window),
        "miss_rates": {
            name: M.miss_rate(window, name)
            for name in ("L1I", "L1D", "L2", "DTLB", "ITLB", "BTB")
        },
        "miss_causes": {
            name: {f"{kind}:{cause}": share
                   for (kind, cause), share in
                   M.cause_distribution(window, name).items()}
            for name in ("L1I", "L1D", "L2", "DTLB", "BTB")
        },
        "avoided_shares": {
            name: {f"{kind}:{filler}": share
                   for (kind, filler), share in
                   M.avoided_distribution(window, name).items()}
            for name in ("L1I", "L1D", "L2", "DTLB")
        },
    }
    return summary


def window_to_json(window: dict, path, n_contexts: int = 8) -> pathlib.Path:
    """Write a window's summarized metrics as JSON; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(summarize_window(window, n_contexts),
                               indent=2, sort_keys=True) + "\n")
    return path


def record_to_json(record: RunArtifact, path) -> pathlib.Path:
    """Write a run artifact's start-up/steady/total summaries as JSON."""
    n = record.n_contexts
    payload = {
        "spec": record.spec,
        "fingerprint": record.fingerprint,
        "startup": summarize_window(record.startup, n),
        "steady": summarize_window(record.steady, n),
        "total": summarize_window(record.total, n),
    }
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def timeline_to_csv(record: RunArtifact, path) -> pathlib.Path:
    """Write the run's *mode-class* timeline (Figures 1/5 data) as CSV.

    This is the coarse user/kernel/pal/idle share series
    (``RunArtifact.class_timeline``), not the per-interval probe record;
    for the latter use :func:`probe_timeline_to_csv`.
    """
    path = pathlib.Path(path)
    with path.open("w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["cycle"] + list(CLASS_NAMES))
        for cycle, shares in record.timeline:
            writer.writerow([cycle] + [f"{s:.6f}" for s in shares])
    return path


def probe_timeline_to_csv(record, path) -> pathlib.Path:
    """Write the *interval probe* timeline as CSV (one row per sample).

    ``record`` is a :class:`RunArtifact` or a raw probe-timeline record
    dict (see :func:`repro.obs.timeline.timeline_record`).  Rows carry the
    end-of-interval cycle stamp plus the raw per-interval delta for every
    column, in sorted column order.  Raises :class:`ValueError` when the
    run carries no probe timeline (pre-v7 artifact or telemetry disabled).
    """
    from repro.obs.timeline import sample_cycles, timeline_record

    rec = timeline_record(record) if isinstance(record, RunArtifact) else record
    if not rec or not rec.get("columns"):
        raise ValueError("run has no probe timeline "
                         "(telemetry disabled or pre-v7 artifact)")
    names = sorted(rec["columns"])
    cycles = sample_cycles(rec)
    path = pathlib.Path(path)
    with path.open("w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["cycle"] + names)
        for i, cycle in enumerate(cycles):
            writer.writerow([cycle] + [rec["columns"][n][i] for n in names])
    return path


def sweep_to_csv(sweep, path) -> pathlib.Path:
    """Write a :class:`~repro.analysis.sweeps.Sweep` as CSV."""
    path = pathlib.Path(path)
    if not sweep.points:
        raise ValueError("sweep has no points")
    metric_names = sorted(sweep.points[0].metrics)
    with path.open("w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow([sweep.parameter] + metric_names)
        for point in sweep.points:
            writer.writerow([point.value]
                            + [f"{point.metrics[m]:.6f}" for m in metric_names])
    return path
