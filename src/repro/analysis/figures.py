"""Builders for the paper's Figures 1-7 (text renderings + data).

Each builder takes the plain-data :class:`~repro.analysis.artifact.RunArtifact`
objects it needs -- timelines, phase marks, and counter windows all travel
inside the artifact, so a stored run renders identically to a live one.
"""

from __future__ import annotations

from repro.analysis import metrics as M
from repro.analysis.artifact import RunArtifact
from repro.analysis.render import format_bars, format_timeline
from repro.core.stats import CLASS_NAMES


def fig1(specint_smt: RunArtifact) -> dict:
    """SPECInt execution-cycle breakdown over time (Figure 1)."""
    samples = specint_smt.timeline
    boundary = specint_smt.steady_boundary
    startup_kernel = M.os_cycle_share(specint_smt.startup)
    steady_kernel = M.os_cycle_share(specint_smt.steady)
    data = {
        "samples": samples,
        "boundary": boundary,
        "startup_os_share": startup_kernel,
        "steady_os_share": steady_kernel,
    }
    text = format_timeline(
        "Figure 1: SPECInt cycles by mode class over time (SMT)",
        samples, CLASS_NAMES, boundary=boundary,
        note=(f"OS (kernel+PAL) share: start-up {startup_kernel * 100:.1f}%, "
              f"steady state {steady_kernel * 100:.1f}% "
              "(paper: ~18% falling to ~5%)."),
    )
    return {"title": "Figure 1", "data": data, "text": text}


def fig2(specint_smt: RunArtifact) -> dict:
    """Kernel-time breakdown for SPECInt, start-up vs steady (Figure 2)."""
    startup = M.kernel_category_shares(specint_smt.startup)
    steady = M.kernel_category_shares(specint_smt.steady)
    items = []
    for cat in sorted(set(startup) | set(steady),
                      key=lambda c: -(startup.get(c, 0) + steady.get(c, 0))):
        items.append((f"start-up  {cat}", startup.get(cat, 0.0) * 100))
        items.append((f"steady    {cat}", steady.get(cat, 0.0) * 100))
    text = format_bars(
        "Figure 2: SPECInt kernel-activity breakdown (% of all cycles)",
        items,
        note=("Paper shape: start-up OS time dominated by TLB handling and "
              "file reads; steady state keeps the TLB-dominated proportions "
              "at a far lower level."),
    )
    return {"title": "Figure 2", "data": {"startup": startup, "steady": steady}, "text": text}


def fig3(specint_smt: RunArtifact) -> dict:
    """Incursions into kernel memory-management code (Figure 3)."""
    def counts(window):
        inc = window["vm_incursions"]
        total = sum(inc.values()) or 1
        return {k: v / total for k, v in inc.items() if v}

    startup = counts(specint_smt.startup)
    steady = counts(specint_smt.steady)
    items = [(f"start-up  {k}", v * 100) for k, v in sorted(startup.items(), key=lambda x: -x[1])]
    items += [(f"steady    {k}", v * 100) for k, v in sorted(steady.items(), key=lambda x: -x[1])]
    text = format_bars(
        "Figure 3: Kernel memory-management incursions by type (% of entries)",
        items,
        note="Paper: page allocation is the majority of MM entries.",
    )
    return {
        "title": "Figure 3",
        "data": {"startup": startup, "steady": steady,
                 "raw": specint_smt.total["vm_incursions"]},
        "text": text,
    }


def fig4(specint_smt: RunArtifact) -> dict:
    """System calls as a percentage of execution cycles (Figure 4)."""
    startup = M.syscall_cycle_shares(specint_smt.startup)
    steady = M.syscall_cycle_shares(specint_smt.steady)
    items = [(f"start-up  {k}", v * 100)
             for k, v in sorted(startup.items(), key=lambda x: -x[1])[:10]]
    items += [(f"steady    {k}", v * 100)
              for k, v in sorted(steady.items(), key=lambda x: -x[1])[:6]]
    text = format_bars(
        "Figure 4: SPECInt system calls (% of all execution cycles)",
        items,
        note=("Paper: file reads dominate start-up syscall time (~3.5% of "
              "cycles); steady-state syscall time is small."),
    )
    return {"title": "Figure 4", "data": {"startup": startup, "steady": steady}, "text": text}


def fig5(apache_smt: RunArtifact) -> dict:
    """Apache kernel/user cycles over time (Figure 5)."""
    samples = apache_smt.timeline
    shares = M.class_shares(apache_smt.steady)
    kernel_share = shares["kernel"] + shares["pal"]
    text = format_timeline(
        "Figure 5: Apache cycles by mode class over time (SMT)",
        samples, CLASS_NAMES,
        note=(f"Steady-state OS share {kernel_share * 100:.1f}% of cycles "
              "(paper: >75%); essentially no start-up phase."),
    )
    return {
        "title": "Figure 5",
        "data": {"samples": samples, "kernel_share": kernel_share, "shares": shares},
        "text": text,
    }


def fig6(apache_smt: RunArtifact, specint_smt: RunArtifact) -> dict:
    """Apache kernel-activity breakdown vs SPECInt (Figure 6)."""
    apache = M.kernel_category_shares(apache_smt.steady)
    spec_start = M.kernel_category_shares(specint_smt.startup)
    spec_steady = M.kernel_category_shares(specint_smt.steady)
    items = []
    for cat in sorted(set(apache) | set(spec_start),
                      key=lambda c: -apache.get(c, 0)):
        items.append((f"Apache       {cat}", apache.get(cat, 0.0) * 100))
        items.append((f"SPEC startup {cat}", spec_start.get(cat, 0.0) * 100))
        items.append((f"SPEC steady  {cat}", spec_steady.get(cat, 0.0) * 100))
    kernel_total = sum(apache.values()) or 1
    syscall_frac = apache.get("system calls", 0) / kernel_total
    netintr_frac = (apache.get("netisr", 0) + apache.get("interrupts", 0)) / kernel_total
    tlb_frac = (apache.get("tlb handling", 0) + apache.get("memory management", 0)) / kernel_total
    text = format_bars(
        "Figure 6: Kernel-activity breakdown, Apache vs SPECInt "
        "(% of all cycles)",
        items,
        note=(f"Of Apache kernel time: syscalls {syscall_frac * 100:.0f}% "
              f"(paper 57%), interrupts+netisr {netintr_frac * 100:.0f}% "
              f"(paper 34%), TLB+VM {tlb_frac * 100:.0f}% (paper ~13%)."),
    )
    return {
        "title": "Figure 6",
        "data": {"apache": apache, "spec_startup": spec_start,
                 "spec_steady": spec_steady,
                 "apache_kernel_fracs": {
                     "syscalls": syscall_frac,
                     "interrupts+netisr": netintr_frac,
                     "tlb+vm": tlb_frac,
                 }},
        "text": text,
    }


def fig7(apache_smt: RunArtifact) -> dict:
    """Apache system calls by name and by resource category (Figure 7)."""
    by_name = M.syscall_cycle_shares(apache_smt.steady)
    by_cat = M.syscall_category_shares(apache_smt.steady)
    items = [(f"{k}", v * 100) for k, v in sorted(by_name.items(), key=lambda x: -x[1])]
    text_left = format_bars(
        "Figure 7 (left): Apache system calls by name (% of all cycles)",
        items,
        note="Paper: stat ~10%, read/write/writev ~19%, open/close ~10%.",
    )
    items_cat = [(k, v * 100) for k, v in sorted(by_cat.items(), key=lambda x: -x[1])]
    text_right = format_bars(
        "Figure 7 (right): Apache system calls by activity (% of all cycles)",
        items_cat,
        note=("Paper: network read/write largest (~17% of cycles); network "
              "and file services roughly balanced overall."),
    )
    return {
        "title": "Figure 7",
        "data": {"by_name": by_name, "by_category": by_cat},
        "text": text_left + "\n\n" + text_right,
    }
