"""Measurement and reporting layer.

The paper extracts every table and figure from a handful of long
simulations.  This package does the same, as three explicit layers:

* **artifact** -- :class:`~repro.analysis.artifact.RunArtifact`, the
  versioned plain-data record of one finished run (config fingerprint,
  counter windows, timeline, phase marks);
* **store** -- :class:`~repro.analysis.store.RunStore`, a content-addressed
  on-disk cache (default ``.repro_cache/``) that persists the eight
  canonical runs across processes and invalidates on any config, schema,
  or code-version change;
* **runner** -- a process-pool executor that warms the store concurrently
  (``repro prefetch``) and parallelizes sweep points.

:mod:`repro.analysis.experiments` resolves runs through memo -> store ->
execute; the table/figure modules compute the paper's exact rows from an
artifact's windowed counters.
"""

from repro.analysis.artifact import RunArtifact
from repro.analysis.experiments import RunRecord, clear_cache, get_run
from repro.analysis.snapshot import capture, diff
from repro.analysis.store import RunStore
from repro.analysis import export, figures, metrics, paper, report, runner, sweeps, tables

__all__ = [
    "capture",
    "diff",
    "RunArtifact",
    "RunRecord",
    "RunStore",
    "get_run",
    "clear_cache",
    "export",
    "figures",
    "metrics",
    "paper",
    "report",
    "runner",
    "sweeps",
    "tables",
]
