"""Measurement and reporting layer.

The paper extracts every table and figure from a handful of long
simulations.  This package does the same: :mod:`repro.analysis.experiments`
memoizes eight canonical runs (SPECInt/Apache x SMT/superscalar x
full-OS/app-only), captures counter snapshots at workload phase boundaries,
and the table/figure modules compute the paper's exact rows from windowed
counter differences.
"""

from repro.analysis.snapshot import capture, diff
from repro.analysis.experiments import RunRecord, get_run, clear_cache
from repro.analysis import export, figures, metrics, paper, report, sweeps, tables

__all__ = [
    "capture",
    "diff",
    "RunRecord",
    "get_run",
    "clear_cache",
    "export",
    "figures",
    "metrics",
    "paper",
    "report",
    "sweeps",
    "tables",
]
