"""Parameter sweeps over simulations.

A :class:`Sweep` runs one simulation per parameter point and collects a
chosen set of metrics, producing the series behind scaling studies like the
context-count ablation (how Apache throughput grows from the superscalar's
one context to the paper's eight).

::

    from repro.analysis.sweeps import Sweep, context_sweep

    sweep = context_sweep("apache", (1, 2, 4, 8), instructions=200_000)
    for point in sweep.points:
        print(point.value, point.metrics["ipc"])

The named sweeps (:func:`context_sweep`, :func:`quantum_sweep`,
:func:`cache_scale_sweep`) accept ``max_workers`` to evaluate their points
concurrently through :mod:`repro.analysis.runner` -- their builders live in
:data:`SWEEP_BUILDERS` as module-level functions so worker processes can
reconstruct each point from plain arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis import metrics as M
from repro.analysis.snapshot import capture
from repro.core.config import CPUConfig, MachineConfig
from repro.core.simulator import Simulation
from repro.workloads.apache import ApacheWorkload
from repro.workloads.specint import SpecIntWorkload

#: Metrics collected at every sweep point: name -> fn(window).
DEFAULT_METRICS: dict[str, Callable[[dict], float]] = {
    "ipc": M.ipc,
    "l1i_miss": lambda w: M.miss_rate(w, "L1I"),
    "l1d_miss": lambda w: M.miss_rate(w, "L1D"),
    "l2_miss": lambda w: M.miss_rate(w, "L2"),
    "dtlb_miss": lambda w: M.miss_rate(w, "DTLB"),
    "mispredict": M.cond_mispredict_rate,
    "squash": M.squash_fraction,
    "zero_fetch": M.zero_fetch_share,
}


@dataclass(frozen=True)
class SweepPoint:
    """One parameter value and its measured metrics."""

    value: object
    metrics: dict[str, float]


@dataclass
class Sweep:
    """A completed sweep: label, parameter name, and its points."""

    label: str
    parameter: str
    points: list[SweepPoint] = field(default_factory=list)

    def series(self, metric: str) -> list[tuple[object, float]]:
        """(value, metric) pairs across the sweep."""
        return [(p.value, p.metrics[metric]) for p in self.points]

    def render(self, metric: str = "ipc") -> str:
        """Simple text rendering of one metric's series."""
        lines = [f"{self.label}: {metric} vs {self.parameter}",
                 "-" * 40]
        for value, m in self.series(metric):
            lines.append(f"  {self.parameter}={value}: {m:.3f}")
        return "\n".join(lines)


def run_sweep(
    label: str,
    parameter: str,
    values,
    build: Callable[[object], Simulation],
    instructions: int = 150_000,
    metric_fns: dict[str, Callable[[dict], float]] | None = None,
) -> Sweep:
    """Run ``build(value)`` for every value and collect metrics.

    ``build`` must return a fresh, un-run :class:`Simulation`.
    """
    fns = metric_fns or DEFAULT_METRICS
    sweep = Sweep(label, parameter)
    for value in values:
        sim = build(value)
        sim.run(max_instructions=instructions)
        window = capture(sim)
        sweep.points.append(
            SweepPoint(value, {name: fn(window) for name, fn in fns.items()}))
    return sweep


def _workload(name: str):
    if name == "specint":
        return SpecIntWorkload()
    if name == "apache":
        return ApacheWorkload()
    raise ValueError(f"unknown workload {name!r}")


def build_context_sim(workload: str, n, seed: int = 11) -> Simulation:
    """One context-scaling sweep point (picklable by reference)."""
    cpu = CPUConfig(
        n_contexts=n,
        fetch_contexts=min(2, n),
        pipeline_stages=7 if n == 1 else 9,
    )
    return Simulation(_workload(workload), machine=MachineConfig(cpu=cpu),
                      seed=seed)


def build_quantum_sim(workload: str, q, seed: int = 11) -> Simulation:
    """One scheduler-quantum sweep point."""
    return Simulation(_workload(workload), seed=seed, quantum=q)


def build_cache_scale_sim(workload: str, scale, seed: int = 11) -> Simulation:
    """One L1/L2-capacity sweep point."""
    from repro.memory.hierarchy import MemoryConfig

    base = MemoryConfig()
    memory = MemoryConfig(
        l1i_size=int(base.l1i_size * scale),
        l1d_size=int(base.l1d_size * scale),
        l2_size=int(base.l2_size * scale),
    )
    return Simulation(_workload(workload),
                      machine=MachineConfig(memory=memory), seed=seed)


#: Named point builders the parallel runner can ship to worker processes.
SWEEP_BUILDERS: dict[str, Callable] = {
    "contexts": build_context_sim,
    "quantum": build_quantum_sim,
    "scale": build_cache_scale_sim,
}


def _named_sweep(kind: str, label: str, workload: str, values,
                 instructions: int, seed: int,
                 max_workers: int | None) -> Sweep:
    """Run one of the named sweeps, concurrently when requested."""
    if max_workers is not None and max_workers > 1:
        from repro.analysis.runner import run_sweep_points

        sweep = Sweep(label, kind)
        for value, point_metrics in run_sweep_points(
                kind, workload, values, instructions, seed,
                max_workers=max_workers):
            sweep.points.append(SweepPoint(value, point_metrics))
        return sweep
    builder = SWEEP_BUILDERS[kind]
    return run_sweep(label, kind, values,
                     lambda v: builder(workload, v, seed), instructions)


def context_sweep(workload: str, contexts=(1, 2, 4, 8),
                  instructions: int = 150_000, seed: int = 11,
                  max_workers: int | None = None) -> Sweep:
    """Throughput and miss rates vs hardware context count."""
    return _named_sweep("contexts", f"{workload} context scaling", workload,
                        contexts, instructions, seed, max_workers)


def quantum_sweep(workload: str, quanta=(5_000, 20_000, 80_000),
                  instructions: int = 150_000, seed: int = 11,
                  max_workers: int | None = None) -> Sweep:
    """Scheduler time-slice sensitivity."""
    return _named_sweep("quantum", f"{workload} quantum", workload, quanta,
                        instructions, seed, max_workers)


def cache_scale_sweep(workload: str, scales=(0.5, 1.0, 2.0),
                      instructions: int = 150_000, seed: int = 11,
                      max_workers: int | None = None) -> Sweep:
    """L1 capacity sensitivity (scales the default scaled geometry)."""
    return _named_sweep("scale", f"{workload} cache scale", workload, scales,
                        instructions, seed, max_workers)
