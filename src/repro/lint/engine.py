"""The lint engine: file walking, rule protocol, findings, suppression.

The engine parses every Python file under the scan roots exactly once
and hands the trees to a set of *rules*.  A rule sees each file via
``visit_file`` (accumulating whatever cross-file state it needs) and
reports at the end via ``finalize`` -- whole-program rules (the probe
manifest, the fingerprint-coverage check) fall out naturally, and
per-file rules simply report as they go.

Findings carry a *stable identity key* (rule + path + detail token,
deliberately excluding line numbers) so a committed baseline keeps
matching after unrelated edits shift code around.  An inline comment
``# lint: ignore[D103]`` (or a bare ``# lint: ignore``) on the offending
line suppresses a finding at the source instead.
"""

from __future__ import annotations

import ast
import json
import pathlib
import re
from dataclasses import dataclass, field

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Z0-9, ]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one site."""

    rule: str           #: rule id, e.g. ``D101``
    path: str           #: path relative to the scan root, posix separators
    line: int           #: 1-based line number (0 = whole-file finding)
    message: str        #: human-readable description
    ident: str = ""     #: stable detail token (symbol / probe / call name)

    @property
    def key(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.rule}|{self.path}|{self.ident or self.message}"

    def to_json_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message, "key": self.key}

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


class FileContext:
    """One parsed source file as rules see it."""

    def __init__(self, path: pathlib.Path, relpath: str, source: str,
                 tree: ast.AST) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree

    def suppressed(self, rule: str, line: int) -> bool:
        """True when *line* carries a ``# lint: ignore`` for *rule*."""
        if not 1 <= line <= len(self.lines):
            return False
        m = _IGNORE_RE.search(self.lines[line - 1])
        if not m:
            return False
        rules = m.group(1)
        if rules is None:
            return True
        return rule in {r.strip() for r in rules.split(",")}


class Rule:
    """Base class for lint rules.

    ``id`` and ``title`` identify the rule in reports and the catalogue;
    subclasses override :meth:`visit_file` (called once per parsed file)
    and :meth:`finalize` (called once, after every file has been seen).
    """

    id = "X000"
    title = "untitled rule"

    def visit_file(self, ctx: FileContext) -> None:  # pragma: no cover
        pass

    def finalize(self, engine: "LintEngine") -> list[Finding]:
        return []

    # -- helpers for subclasses -------------------------------------------

    def finding(self, ctx: FileContext, node: ast.AST | None,
                message: str, ident: str = "") -> Finding | None:
        """Build a finding unless the site carries a suppression comment."""
        line = getattr(node, "lineno", 0) if node is not None else 0
        if ctx.suppressed(self.id, line):
            return None
        return Finding(rule=self.id, path=ctx.relpath, line=line,
                       message=message, ident=ident)


@dataclass
class ParseFailure:
    """A file the engine could not parse (reported as its own finding)."""

    relpath: str
    line: int
    error: str


@dataclass
class LintEngine:
    """Walk a source tree and run every rule over it.

    *root* is the directory the scan is anchored at (paths in findings
    are relative to it); *rules* defaults to the full built-in set.
    Rule state lives in the rule instances, so an engine (and its rules)
    is single-use: construct, :meth:`run`, read the findings.
    """

    root: pathlib.Path
    rules: list[Rule] = field(default_factory=list)
    files: list[FileContext] = field(default_factory=list, init=False)
    parse_failures: list[ParseFailure] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        self.root = pathlib.Path(self.root)
        if not self.rules:
            self.rules = default_rules()

    def select(self, rule_ids: list[str]) -> None:
        """Restrict the run to the given rule ids (exact or prefix, so
        ``--rule D`` selects the whole determinism family)."""
        wanted = []
        for rule in self.rules:
            if any(rule.id == r or rule.id.startswith(r) for r in rule_ids):
                wanted.append(rule)
        if not wanted:
            known = ", ".join(r.id for r in self.rules)
            raise ValueError(f"no rule matches {rule_ids!r} (known: {known})")
        self.rules = wanted

    def _collect_files(self) -> list[pathlib.Path]:
        if self.root.is_file():
            return [self.root]
        return sorted(p for p in self.root.rglob("*.py") if p.is_file())

    def run(self) -> list[Finding]:
        """Parse the tree, run every rule, return sorted findings."""
        for path in self._collect_files():
            relpath = path.relative_to(self.root).as_posix() \
                if path != self.root else path.name
            try:
                source = path.read_text()
                tree = ast.parse(source, filename=str(path))
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                line = getattr(exc, "lineno", 0) or 0
                self.parse_failures.append(
                    ParseFailure(relpath, line, str(exc).splitlines()[0]))
                continue
            ctx = FileContext(path, relpath, source, tree)
            self.files.append(ctx)
            for rule in self.rules:
                rule.visit_file(ctx)
        findings: list[Finding] = []
        for failure in self.parse_failures:
            findings.append(Finding(
                rule="E000", path=failure.relpath, line=failure.line,
                message=f"file does not parse: {failure.error}",
                ident="parse-error"))
        for rule in self.rules:
            findings.extend(f for f in rule.finalize(self) if f is not None)
        return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.key))

    # -- shared tree access for whole-program rules -----------------------

    def context_for(self, name: str) -> FileContext | None:
        """The file whose relpath ends with *name* (e.g. ``core/config.py``)."""
        for ctx in self.files:
            if ctx.relpath == name or ctx.relpath.endswith("/" + name):
                return ctx
        return None


#: Family prefix -> human name, used to group ``--list-rules`` output.
FAMILIES = {
    "D": "determinism",
    "E": "span/event/timeline discipline",
    "F": "process-boundary / fault discipline",
    "H": "hot-path performance",
    "P": "probe hygiene",
    "S": "schema / fingerprint drift",
}


def default_rules() -> list[Rule]:
    """A fresh instance of every built-in rule, ordered by id."""
    from repro.lint import (rules_determinism, rules_events, rules_faults,
                            rules_hotpath, rules_probes, rules_schema)

    rules: list[Rule] = []
    for module in (rules_determinism, rules_events, rules_faults,
                   rules_hotpath, rules_probes, rules_schema):
        rules.extend(module.rules())
    return sorted(rules, key=lambda r: r.id)


def render_report(findings: list[Finding], new_keys: set[str] | None = None,
                  baselined: int = 0) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = []
    for f in findings:
        marker = ""
        if new_keys is not None and f.key not in new_keys:
            marker = "  [baselined]"
        lines.append(f.render() + marker)
    total = len(findings)
    fresh = total - baselined
    summary = f"{total} finding(s)"
    if baselined:
        summary += f" ({baselined} baselined, {fresh} new)"
    lines.append(summary)
    return "\n".join(lines)


def findings_to_json(findings: list[Finding], new_keys: set[str]) -> str:
    payload = {
        "findings": [dict(f.to_json_dict(), new=(f.key in new_keys))
                     for f in findings],
        "total": len(findings),
        "new": sum(1 for f in findings if f.key in new_keys),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
