"""Per-function control-flow graphs with exception edges.

A deliberately small statement-level CFG, built for path queries of the
form "does every path from statement A to a function exit pass through
one of statements B?" -- which is exactly what the span-pairing rule
(E101) needs to prove that a ``_span_begin`` is always answered by a
``_span_end``.

Modeled control flow:

* sequential statement order, ``if``/``elif``/``else`` branching,
  ``for``/``while`` loops (with ``else`` clauses, ``break``,
  ``continue``),
* ``return`` edges to the normal exit,
* exception edges: an explicit ``raise`` jumps to the innermost
  matching construct -- ``except`` handlers, then ``finally`` blocks,
  then the *raise exit* of the function; statements inside a ``try``
  body additionally edge to their handlers/``finally`` (any statement
  in a ``try`` may raise -- that is why it is in a ``try``),
* ``finally`` blocks are on every path out of their ``try``.

Implicit exceptions *outside* any ``try`` are not modeled: treating
every call as a potential raise would make every lexical pairing a
violation.  The runtime span asserts cover that residue; the static
rule proves the structured control flow.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Node ids for the two synthetic exits.
EXIT = -1        #: normal exit: return or falling off the end
RAISE_EXIT = -2  #: exception exit: an uncaught raise leaves the function


@dataclass
class CFG:
    """Statement-level control-flow graph of one function body."""

    #: node id -> AST statement (ids are insertion-ordered ints).
    nodes: dict[int, ast.stmt] = field(default_factory=dict)
    #: node id -> successor node ids (EXIT / RAISE_EXIT are virtual).
    edges: dict[int, list[int]] = field(default_factory=dict)
    entry: list[int] = field(default_factory=list)

    def successors(self, nid: int) -> list[int]:
        return self.edges.get(nid, [])

    def node_for(self, stmt: ast.stmt) -> int | None:
        for nid, node in self.nodes.items():
            if node is stmt:
                return nid
        return None

    def paths_escape(self, start: int, barriers: set[int]) -> int | None:
        """First exit reachable from *start* without crossing a barrier.

        Returns EXIT or RAISE_EXIT when some path from *start* reaches
        that exit without passing through any node in *barriers*, else
        None (every path is cut by a barrier).  *start* itself is not a
        barrier; exploration starts at its successors.
        """
        seen: set[int] = set()
        stack = list(self.successors(start))
        while stack:
            nid = stack.pop()
            if nid in seen or nid in barriers:
                continue
            if nid in (EXIT, RAISE_EXIT):
                return nid
            seen.add(nid)
            stack.extend(self.successors(nid))
        return None


class _Builder:
    """Builds a :class:`CFG` from a function body."""

    def __init__(self) -> None:
        self.cfg = CFG()
        self._next = 0
        #: innermost-first (break targets, continue targets) for loops.
        self._loops: list[tuple[list[int], int]] = []
        #: innermost-first exception landing pads: node lists a raise
        #: inside the region jumps to (handler heads + finally head).
        self._pads: list[list[int]] = []

    def build(self, body: list[ast.stmt]) -> CFG:
        entry, exits = self._block(body)
        self.cfg.entry = entry
        for nid in exits:
            self._edge(nid, EXIT)
        return self.cfg

    # -- plumbing ----------------------------------------------------------

    def _new(self, stmt: ast.stmt) -> int:
        nid = self._next
        self._next += 1
        self.cfg.nodes[nid] = stmt
        self.cfg.edges.setdefault(nid, [])
        return nid

    def _edge(self, src: int, dst: int) -> None:
        self.cfg.edges.setdefault(src, [])
        if dst not in self.cfg.edges[src]:
            self.cfg.edges[src].append(dst)

    def _raise_targets(self) -> list[int]:
        """Where control lands when the current statement raises."""
        if self._pads:
            return self._pads[-1]
        return [RAISE_EXIT]

    # -- recursive block construction --------------------------------------

    def _block(self, body: list[ast.stmt]) -> tuple[list[int], list[int]]:
        """Wire one statement list; returns (entry ids, open exits)."""
        entry: list[int] = []
        open_exits: list[int] = []
        first = True
        for stmt in body:
            heads, tails = self._stmt(stmt)
            if first:
                entry = heads
                first = False
            else:
                for t in open_exits:
                    for h in heads:
                        self._edge(t, h)
            open_exits = tails
            if not heads:  # unreachable continuation (e.g. after return)
                break
        return entry, open_exits

    def _stmt(self, stmt: ast.stmt) -> tuple[list[int], list[int]]:
        """Wire one statement; returns (entry ids, fallthrough exits)."""
        nid = self._new(stmt)
        if isinstance(stmt, ast.Return):
            self._edge(nid, EXIT)
            return [nid], []
        if isinstance(stmt, ast.Raise):
            for target in self._raise_targets():
                self._edge(nid, target)
            return [nid], []
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._loops[-1][0].append(nid)
            return [nid], []
        if isinstance(stmt, ast.Continue):
            if self._loops:
                self._edge(nid, self._loops[-1][1])
            return [nid], []
        if isinstance(stmt, ast.If):
            then_entry, then_exits = self._block(stmt.body)
            for h in then_entry:
                self._edge(nid, h)
            exits = list(then_exits)
            if stmt.orelse:
                else_entry, else_exits = self._block(stmt.orelse)
                for h in else_entry:
                    self._edge(nid, h)
                exits.extend(else_exits)
            else:
                exits.append(nid)
            return [nid], exits
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            breaks: list[int] = []
            self._loops.append((breaks, nid))
            body_entry, body_exits = self._block(stmt.body)
            self._loops.pop()
            for h in body_entry:
                self._edge(nid, h)
            for t in body_exits:
                self._edge(t, nid)  # back edge
            exits = list(breaks)
            if stmt.orelse:
                else_entry, else_exits = self._block(stmt.orelse)
                for h in else_entry:
                    self._edge(nid, h)
                exits.extend(else_exits)
            else:
                exits.append(nid)  # loop condition goes false / iter ends
            return [nid], exits
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            body_entry, body_exits = self._block(stmt.body)
            for h in body_entry:
                self._edge(nid, h)
            return [nid], body_exits
        if isinstance(stmt, ast.Try):
            return self._try(nid, stmt)
        # Plain statement: if inside a try, it may raise into the pads.
        if self._pads:
            for target in self._pads[-1]:
                self._edge(nid, target)
        return [nid], [nid]

    def _try(self, nid: int, stmt: ast.Try) -> tuple[list[int], list[int]]:
        # Build handler and finally blocks first so the body's pad edges
        # have landing nodes to point at.
        handler_blocks = [self._block(h.body) for h in stmt.handlers]
        final_entry: list[int] = []
        final_exits: list[int] = []
        if stmt.finalbody:
            final_entry, final_exits = self._block(stmt.finalbody)

        pads = [h for entry, _ in handler_blocks for h in entry]
        if not pads:
            pads = final_entry or [RAISE_EXIT]
        self._pads.append(pads)
        body_entry, body_exits = self._block(stmt.body)
        self._pads.pop()
        for h in body_entry:
            self._edge(nid, h)

        exits: list[int] = list(body_exits)
        if stmt.orelse:
            else_entry, else_exits = self._block(stmt.orelse)
            for t in body_exits:
                for h in else_entry:
                    self._edge(t, h)
            exits = list(else_exits)
        # A handler that does not re-raise falls through.
        for _, h_exits in handler_blocks:
            exits.extend(h_exits)
        if stmt.finalbody:
            for t in exits:
                for h in final_entry:
                    self._edge(t, h)
            # The finally also runs on the exception path out of a
            # handler-less try (already wired via pads) and re-raises.
            return [nid], final_exits
        return [nid], exits


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """The CFG of *func*'s own body (nested defs are opaque statements)."""
    return _Builder().build(func.body)


def all_paths_hit(func: ast.FunctionDef | ast.AsyncFunctionDef,
                  start_stmt: ast.stmt,
                  barrier_stmts: list[ast.stmt]) -> int | None:
    """Check that every path from *start_stmt* to any function exit
    passes through one of *barrier_stmts*.

    Returns None when the property holds, else the exit kind that is
    reachable barrier-free (EXIT or RAISE_EXIT).
    """
    cfg = build_cfg(func)
    start = cfg.node_for(start_stmt)
    if start is None:
        return EXIT
    barriers = set()
    for stmt in barrier_stmts:
        nid = cfg.node_for(stmt)
        if nid is not None:
            barriers.add(nid)
    return cfg.paths_escape(start, barriers)
