"""F rules: process-boundary and fault-injection discipline.

The run engine crosses a real process boundary (supervised workers,
sweep pools) and carries a fault-injection plan across it through the
environment; three conventions keep that machinery honest:

* **F101** -- every fault-site string literal (``faults.fire("...")``
  and ``FaultSite(site=...)``) must name one of the sites registered in
  ``KNOWN_SITES`` (``src/repro/faults/plan.py``); and conversely every
  registered site must be fired somewhere, or it is dead surface a
  chaos suite believes it is exercising.
* **F102** -- callables handed across the process boundary
  (``pool.submit(fn, ...)``, ``Process(target=fn, args=...)``) must be
  module-level functions with plain-data arguments: lambdas, nested
  functions, and bound methods don't pickle (or drag a live object
  graph across the fork), and the repo's contract is that results come
  back through the on-disk RunStore, never through return pipes.
* **F103** -- worker-side code (the transitive callees of process
  targets) must not read environment variables outside the allowlisted
  ``REPRO_*`` namespace: the supervisor only forwards that namespace,
  so anything else silently reads the *pool host's* environment.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.lint.callgraph import CallGraph, FuncKey
from repro.lint.engine import Finding, Rule

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.engine import FileContext, LintEngine

_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Environment-variable prefix workers may read (F103).
ENV_ALLOWED_PREFIX = "REPRO_"


def _module_str_constants(tree: ast.Module) -> dict[str, str]:
    out: dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            out[node.targets[0].id] = node.value.value
    return out


def _known_sites(engine: LintEngine) -> tuple[set[str], FileContext | None]:
    """The ``KNOWN_SITES`` registry, wherever the scanned tree defines it."""
    for ctx in engine.files:
        assert isinstance(ctx.tree, ast.Module)
        for node in ctx.tree.body:
            value = _assigned_value(node, "KNOWN_SITES")
            if isinstance(value, (ast.Tuple, ast.List)):
                sites = {elt.value for elt in value.elts
                         if isinstance(elt, ast.Constant)
                         and isinstance(elt.value, str)}
                return sites, ctx
    return set(), None


def _assigned_value(node: ast.stmt, name: str) -> ast.expr | None:
    """The value of a module-level ``name = ...`` / ``name: T = ...``."""
    if isinstance(node, ast.Assign) and len(node.targets) == 1 \
            and isinstance(node.targets[0], ast.Name) \
            and node.targets[0].id == name:
        return node.value
    if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name) \
            and node.target.id == name:
        return node.value
    return None


def _site_literals(ctx: FileContext) -> list[tuple[ast.AST, str]]:
    """Fault-site string literals used in this file."""
    out: list[tuple[ast.AST, str]] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if name == "fire" and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                out.append((arg, arg.value))
        elif name == "FaultSite":
            site: ast.expr | None = node.args[0] if node.args else None
            for kw in node.keywords:
                if kw.arg == "site":
                    site = kw.value
            if isinstance(site, ast.Constant) \
                    and isinstance(site.value, str):
                out.append((site, site.value))
    return out


class FaultSiteRule(Rule):
    """F101: fault-site literals vs. the registered site set."""

    id = "F101"
    title = "fault-site literals match the registered KNOWN_SITES"

    def finalize(self, engine: LintEngine) -> list[Finding]:
        sites, registry_ctx = _known_sites(engine)
        if registry_ctx is None:
            return []  # no fault registry in this tree
        findings: list[Finding] = []
        used: set[str] = set()
        for ctx in engine.files:
            for node, value in _site_literals(ctx):
                used.add(value)
                if value in sites:
                    continue
                f = self.finding(
                    ctx, node,
                    f"fault site {value!r} is not registered in "
                    "KNOWN_SITES (the injector would reject the plan)",
                    ident=value)
                if f is not None:
                    findings.append(f)
        for site in sorted(sites - used):
            f = self.finding(
                registry_ctx, None,
                f"registered fault site {site!r} has no fire() or "
                "FaultSite() reference in the tree (dead site)",
                ident=f"dead:{site}")
            if f is not None:
                findings.append(f)
        return findings


class ProcessBoundaryRule(Rule):
    """F102: process-boundary callables must be module-level and
    their arguments plain data."""

    id = "F102"
    title = "process-boundary callables are module-level, args picklable"

    def finalize(self, engine: LintEngine) -> list[Finding]:
        findings: list[Finding] = []
        for ctx in engine.files:
            nested = _nested_function_names(ctx.tree)
            module_funcs = {n.name for n in ctx.tree.body
                            if isinstance(n, _FUNC_DEFS)}
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                target, where = self._boundary_target(node)
                if target is None:
                    continue
                findings.extend(self._check_target(
                    ctx, node, target, where, nested, module_funcs))
                findings.extend(self._check_args(ctx, node, where))
        return findings

    @staticmethod
    def _boundary_target(node: ast.Call) \
            -> tuple[ast.expr | None, str | None]:
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if name == "submit" and node.args:
            return node.args[0], "submit"
        if name == "Process":
            for kw in node.keywords:
                if kw.arg == "target":
                    return kw.value, "Process"
        return None, None

    def _check_target(self, ctx: FileContext, call: ast.Call,
                      target: ast.expr, where: str | None,
                      nested: set[str],
                      module_funcs: set[str]) -> list[Finding]:
        bad: str | None = None
        ident = where or "boundary"
        if isinstance(target, ast.Lambda):
            bad = "a lambda"
        elif isinstance(target, ast.Attribute):
            bad = f"a bound method (`{ast.unparse(target)}`)"
            ident = f"{ident}:{target.attr}"
        elif isinstance(target, ast.Name):
            ident = f"{ident}:{target.id}"
            if target.id in nested and target.id not in module_funcs:
                bad = f"a nested function (`{target.id}`)"
        if bad is None:
            return []
        f = self.finding(
            ctx, call,
            f"process-boundary callable passed to {where} is {bad}; "
            "hand a module-level function (results come back via the "
            "store, not pickled state)",
            ident=ident)
        return [f] if f is not None else []

    def _check_args(self, ctx: FileContext, call: ast.Call,
                    where: str | None) -> list[Finding]:
        arg_exprs: list[ast.expr] = list(call.args[1:]) \
            if where == "submit" else []
        for kw in call.keywords:
            if kw.arg == "args" and isinstance(kw.value, (ast.Tuple,
                                                          ast.List)):
                arg_exprs.extend(kw.value.elts)
        out: list[Finding] = []
        for expr in arg_exprs:
            if isinstance(expr, ast.Lambda) \
                    or isinstance(expr, _FUNC_DEFS):
                f = self.finding(
                    ctx, expr,
                    f"unpicklable argument (lambda) crosses the process "
                    f"boundary via {where}",
                    ident=f"{where}:arg-lambda")
                if f is not None:
                    out.append(f)
        return out


class WorkerEnvRule(Rule):
    """F103: worker-side env reads restricted to ``REPRO_*``."""

    id = "F103"
    title = "worker-side code reads only REPRO_* environment variables"

    def finalize(self, engine: LintEngine) -> list[Finding]:
        graph = CallGraph.for_engine(engine)
        worker_funcs = self._worker_closure(engine, graph)
        if not worker_funcs:
            return []
        findings: list[Finding] = []
        for ctx in engine.files:
            consts = _module_str_constants(ctx.tree)
            for node, name_expr, enclosing in _env_reads(ctx):
                if enclosing is None or \
                        (ctx.relpath, *enclosing) not in worker_funcs:
                    continue
                name = self._env_name(name_expr, consts, engine)
                if name is None or name.startswith(ENV_ALLOWED_PREFIX):
                    continue
                qual = ".".join(p for p in enclosing if p)
                f = self.finding(
                    ctx, node,
                    f"worker-side code (`{qual}`) reads env var "
                    f"{name!r} outside the forwarded "
                    f"{ENV_ALLOWED_PREFIX}* namespace",
                    ident=name)
                if f is not None:
                    findings.append(f)
        return findings

    @staticmethod
    def _env_name(expr: ast.expr | None, consts: dict[str, str],
                  engine: LintEngine) -> str | None:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value
        if isinstance(expr, ast.Name):
            if expr.id in consts:
                return consts[expr.id]
            # Imported constant: resolve by unique module-level name.
            hits = set()
            for other in engine.files:
                assert isinstance(other.tree, ast.Module)
                value = _module_str_constants(other.tree).get(expr.id)
                if value is not None:
                    hits.add(value)
            if len(hits) == 1:
                return hits.pop()
        return None

    @staticmethod
    def _worker_closure(engine: LintEngine,
                        graph: CallGraph) -> set[FuncKey]:
        """Transitive callees of every process-boundary target."""
        roots: list[FuncKey] = []
        for ctx in engine.files:
            module_funcs = {n.name for n in ctx.tree.body
                            if isinstance(n, _FUNC_DEFS)}
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                target, _ = ProcessBoundaryRule._boundary_target(node)
                if isinstance(target, ast.Name) \
                        and target.id in module_funcs:
                    roots.append((ctx.relpath, "", target.id))
        closure: set[FuncKey] = set()
        queue = [k for k in roots if k in graph.functions]
        while queue:
            key = queue.pop()
            if key in closure:
                continue
            closure.add(key)
            for site in graph.functions[key].calls:
                if site.callee not in closure:
                    queue.append(site.callee)
        return closure


def _nested_function_names(tree: ast.Module) -> set[str]:
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, _FUNC_DEFS):
            for inner in ast.walk(node):
                if inner is not node and isinstance(inner, _FUNC_DEFS):
                    out.add(inner.name)
    return out


def _env_reads(ctx: FileContext) \
        -> list[tuple[ast.AST, ast.expr | None,
                      tuple[str, str] | None]]:
    """(node, env-name expression, enclosing (class, func)) per read.

    Matches ``os.environ.get/pop``, ``os.environ[...]``, and
    ``os.getenv`` through any ``import os as X`` alias, plus bare
    ``environ``/``getenv`` member imports.
    """
    os_aliases = {"os"}
    member_aliases = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "os":
                    os_aliases.add(alias.asname or "os")
        elif isinstance(node, ast.ImportFrom) and node.module == "os":
            for alias in node.names:
                if alias.name in ("environ", "getenv"):
                    member_aliases.add(alias.asname or alias.name)

    def is_environ(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Attribute) and expr.attr == "environ" \
                and isinstance(expr.value, ast.Name) \
                and expr.value.id in os_aliases:
            return True
        return isinstance(expr, ast.Name) and expr.id in member_aliases

    out: list[tuple[ast.AST, ast.expr | None,
                    tuple[str, str] | None]] = []

    def scan(node: ast.AST, cls: str, func: str) -> None:
        for child in ast.iter_child_nodes(node):
            c_cls, c_func = cls, func
            if isinstance(child, ast.ClassDef):
                c_cls, c_func = child.name, ""
            elif isinstance(child, _FUNC_DEFS) and not func:
                c_func = child.name
            enclosing = (cls, func) if func else None
            if isinstance(child, ast.Call):
                f = child.func
                if isinstance(f, ast.Attribute) \
                        and f.attr in ("get", "pop") \
                        and is_environ(f.value) and child.args:
                    out.append((child, child.args[0], enclosing))
                elif isinstance(f, ast.Attribute) and f.attr == "getenv" \
                        and isinstance(f.value, ast.Name) \
                        and f.value.id in os_aliases and child.args:
                    out.append((child, child.args[0], enclosing))
                elif isinstance(f, ast.Name) and f.id in member_aliases \
                        and f.id.startswith("getenv") and child.args:
                    out.append((child, child.args[0], enclosing))
            elif isinstance(child, ast.Subscript) \
                    and is_environ(child.value) \
                    and isinstance(child.ctx, ast.Load):
                out.append((child, child.slice, enclosing))
            scan(child, c_cls, c_func)

    scan(ctx.tree, "", "")
    return out


def rules() -> list[Rule]:
    return [FaultSiteRule(), ProcessBoundaryRule(), WorkerEnvRule()]
