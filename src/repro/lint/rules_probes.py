"""P-rules: probe-name hygiene for the registry tree.

The probe registry (:mod:`repro.obs.registry`) is addressed by string
literals, and ``registry.counter(name)`` is register-or-fetch: a typo'd
name does not fail, it silently creates a fresh zero counter.  These
rules reconstruct the full probe manifest *statically* -- following
``register_probes`` hooks across files, binding ``prefix`` parameters at
their call sites, and expanding loop variables over literal tuples -- and
then check every probe-name literal in the tree against it.

============  =========================================================
P101          probe-name literal read somewhere in the tree that no
              registration site can produce (a typo'd read)
P102          ``counter()``/``histogram()`` registration whose handle is
              discarded: nothing can ever bump it (dead probe)
P103          registered name outside the ``mem.* / branch.* / os.* /
              core.*`` dotted hierarchy
P104          extracted manifest disagrees with the committed
              ``lint/probe_manifest.json`` (catches typos introduced at
              any registration call site; regenerate with
              ``repro lint --update``)
============  =========================================================

Name *templates* track what is statically known: a literal f-string part
stays literal, a ``prefix`` parameter becomes a placeholder bound at the
call site, a loop variable over a literal tuple is expanded, and
anything else becomes a ``*`` wildcard that matches one or more dotted
segments (e.g. ``mem.l1d.miss.*.user``).
"""

from __future__ import annotations

import ast
import json
import pathlib
import re
from typing import TYPE_CHECKING, Any

from repro.lint.engine import FileContext, Finding, Rule

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.engine import LintEngine

#: Registry method names that register a probe.
_REG_METHODS = ("counter", "histogram", "derive", "derive_map")

#: Top-level segments the probe tree allows.
HIERARCHY_ROOTS = ("mem", "branch", "os", "core")

#: Committed manifest location, relative to the scan root.
MANIFEST_RELPATH = "lint/probe_manifest.json"

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_:-]+)*$")
_READ_RE = re.compile(r"^(mem|branch|os|core)\.[a-z0-9_.:-]+$")

# -- name templates --------------------------------------------------------

LIT, WILD, PREFIX = "lit", "wild", "prefix"


def _merge(parts: list) -> tuple:
    """Normalize a part list: merge adjacent literals, collapse wilds."""
    out: list = []
    for part in parts:
        if part[0] == LIT and out and out[-1][0] == LIT:
            out[-1] = (LIT, out[-1][1] + part[1])
        elif part[0] == WILD and out and out[-1][0] == WILD:
            continue
        else:
            out.append(part)
    return tuple(out)


def render(template: tuple) -> str:
    """Template as a manifest string: literals verbatim, ``*`` wildcards."""
    return "".join("*" if p[0] != LIT else p[1] for p in template)


def is_concrete(template: tuple) -> bool:
    return all(p[0] == LIT for p in template)


def substitute(template: tuple, prefix_parts: tuple | None) -> tuple:
    """Replace PREFIX placeholders with the given bound parts."""
    out: list = []
    for part in template:
        if part[0] == PREFIX:
            out.extend(prefix_parts if prefix_parts is not None else [(WILD,)])
        else:
            out.append(part)
    return _merge(out)


def pattern_to_regex(pattern: str) -> re.Pattern:
    parts = [re.escape(p) for p in pattern.split("*")]
    return re.compile("^" + "[a-z0-9_.:-]+".join(parts) + "$")


class Manifest:
    """The statically reconstructed probe name set."""

    def __init__(self, names: set[str], patterns: set[str]) -> None:
        self.names = names
        self.patterns = patterns
        self._regexes = [pattern_to_regex(p) for p in sorted(patterns)]

    def matches(self, name: str) -> bool:
        if name in self.names:
            return True
        return any(r.match(name) for r in self._regexes)

    def to_json_dict(self) -> dict:
        return {"version": 1, "names": sorted(self.names),
                "patterns": sorted(self.patterns)}


# -- extraction ------------------------------------------------------------


def _literal_strings(node: ast.AST) -> tuple[str, ...] | None:
    """A tuple/list of string constants, or None when not statically known."""
    if isinstance(node, (ast.Tuple, ast.List)):
        out = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append(elt.value)
            else:
                return None
        return tuple(out)
    return None


def _local_env(func: ast.FunctionDef) -> dict[str, tuple[str, ...]]:
    """Loop/assignment bindings of names to literal string tuples.

    Understands ``names = ("a", "b")``, ``for n in ("a", "b")``, and
    ``for i, n in enumerate(names)`` -- the idioms ``register_probes``
    hooks actually use.  Anything else stays unresolved (-> wildcard).
    """
    env: dict[str, tuple[str, ...]] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            values = _literal_strings(node.value)
            if values is not None:
                env[node.targets[0].id] = values
    # Two passes so a loop over an env-bound name resolves regardless of
    # the order ast.walk discovers nodes in.
    for _ in range(2):
        for node in ast.walk(func):
            if not isinstance(node, ast.For):
                continue
            iter_node, target = node.iter, node.target
            if isinstance(iter_node, ast.Call) \
                    and isinstance(iter_node.func, ast.Name) \
                    and iter_node.func.id == "enumerate" and iter_node.args:
                iter_node = iter_node.args[0]
                if isinstance(target, ast.Tuple) and len(target.elts) == 2 \
                        and isinstance(target.elts[1], ast.Name):
                    target = target.elts[1]
                else:
                    continue
            if not isinstance(target, ast.Name):
                continue
            values = _literal_strings(iter_node)
            if values is None and isinstance(iter_node, ast.Name):
                values = env.get(iter_node.id)
            if values is not None:
                env[target.id] = values
    return env


def _name_templates(node: ast.AST, prefix_param: str | None,
                    env: dict[str, tuple[str, ...]]) -> list[tuple]:
    """Every template a name expression can statically produce."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [((LIT, node.value),)]
    if not isinstance(node, ast.JoinedStr):
        if isinstance(node, ast.Name) and node.id == prefix_param:
            return [((PREFIX,),)]
        return [((WILD,),)]
    variants: list[list] = [[]]
    for value in node.values:
        if isinstance(value, ast.Constant):
            for v in variants:
                v.append((LIT, str(value.value)))
        elif isinstance(value, ast.FormattedValue):
            inner = value.value
            if isinstance(inner, ast.Name) and inner.id == prefix_param:
                for v in variants:
                    v.append((PREFIX,))
            elif isinstance(inner, ast.Name) and inner.id in env:
                expansions = env[inner.id]
                variants = [v + [(LIT, text)]
                            for v in variants for text in expansions]
            else:
                for v in variants:
                    v.append((WILD,))
    return [_merge(v) for v in variants]


class _Hook:
    """One function that registers probes (templates + nested hook calls)."""

    def __init__(self, key: tuple, prefix_param: str | None) -> None:
        self.key = key                      # (class_name or None, func_name)
        self.prefix_param = prefix_param
        self.templates: list[tuple] = []    # direct registrations
        self.calls: list[tuple] = []        # (callee_key, binding_template)


class _FileScan(ast.NodeVisitor):
    """Per-file collection pass feeding the whole-program P rules."""

    def __init__(self, ctx: FileContext, collector: "ProbeRules") -> None:
        self.ctx = ctx
        self.c = collector
        self.class_stack: list[str] = []
        self.func_stack: list[ast.FunctionDef] = []

    # -- structure ---------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    def _visit_func(self, node: Any) -> None:
        self.func_stack.append(node)
        self.generic_visit(node)
        self.func_stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    # -- hook identification ----------------------------------------------

    def _current_hook(self) -> _Hook | None:
        if not self.func_stack:
            return None
        func = self.func_stack[0]
        cls = self.class_stack[-1] if self.class_stack else None
        if cls == "CounterGroup":
            return None  # modeled at its call sites instead
        key = (cls, func.name)
        hook = self.c.hooks.get(key)
        if hook is None:
            params = [a.arg for a in func.args.args]
            prefix = "prefix" if "prefix" in params else None
            hook = self.c.hooks[key] = _Hook(key, prefix)
        return hook

    def _env(self) -> dict:
        if not self.func_stack:
            return {}
        key = id(self.func_stack[0])
        env = self.c._env_cache.get(key)
        if env is None:
            env = self.c._env_cache[key] = _local_env(self.func_stack[0])
        return env

    # -- assignments: self.attr = ClassName(...) ---------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if (self.class_stack and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)
                and isinstance(node.targets[0].value, ast.Name)
                and node.targets[0].value.id == "self"
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)):
            key = (self.class_stack[-1], node.targets[0].attr)
            self.c.attr_classes[key] = node.value.func.id
        self.generic_visit(node)

    # -- calls -------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _REG_METHODS:
            self._registration(node, func.attr)
        elif isinstance(func, ast.Attribute) and func.attr == "register_probes":
            self._hook_call(node, func)
        elif isinstance(func, ast.Name) and func.id == "register_miss_stats":
            self._miss_stats_call(node)
        elif isinstance(func, ast.Name) and func.id == "CounterGroup":
            self._counter_group_call(node)
        elif isinstance(func, ast.Attribute) and func.attr in ("get", "raw") \
                and node.args:
            self._read_literal(node.args[0])
        self.generic_visit(node)

    def _registration(self, node: ast.Call, method: str) -> None:
        if not node.args:
            return
        hook = self._current_hook()
        prefix_param = hook.prefix_param if hook else None
        templates = _name_templates(node.args[0], prefix_param, self._env())
        if method == "derive_map":
            templates = [_merge(list(t) + [(LIT, "."), (WILD,)])
                         for t in templates]
        record = self.c.registrations
        for t in templates:
            record.append((self.ctx, node, method, t,
                           hook.key if hook else None))
        if hook is not None:
            hook.templates.extend(templates)

    def _hook_call(self, node: ast.Call, func: ast.Attribute) -> None:
        callee = self._resolve_receiver(func.value)
        hook = self._current_hook()
        prefix_param = hook.prefix_param if hook else None
        if len(node.args) >= 2:
            binding = _name_templates(node.args[1], prefix_param,
                                      self._env())[0]
        else:
            binding = None
        if hook is not None:
            hook.calls.append(((callee, "register_probes"), binding))
        else:
            self.c.root_calls.append(((callee, "register_probes"), binding))

    def _miss_stats_call(self, node: ast.Call) -> None:
        if len(node.args) < 2:
            return
        hook = self._current_hook()
        prefix_param = hook.prefix_param if hook else None
        binding = _name_templates(node.args[1], prefix_param, self._env())[0]
        edge = ((None, "register_miss_stats"), binding)
        if hook is not None:
            hook.calls.append(edge)
        else:
            self.c.root_calls.append(edge)

    def _counter_group_call(self, node: ast.Call) -> None:
        if len(node.args) < 3:
            return
        hook = self._current_hook()
        prefix_param = hook.prefix_param if hook else None
        prefix = _name_templates(node.args[1], prefix_param, self._env())[0]
        names = _literal_strings(node.args[2])
        if names is None:
            templates = [_merge(list(prefix) + [(LIT, "."), (WILD,)])]
        else:
            templates = [_merge(list(prefix) + [(LIT, f".{n}")])
                         for n in names]
        for t in templates:
            self.c.registrations.append((self.ctx, node, "counter", t,
                                         hook.key if hook else None))
        if hook is not None:
            hook.templates.extend(templates)
        else:
            self.c.absolute_templates.extend(templates)

    def _resolve_receiver(self, value: ast.AST) -> str | None:
        """Class owning the called ``register_probes``, when resolvable."""
        if isinstance(value, ast.Name) and value.id == "self" \
                and self.class_stack:
            return self.class_stack[-1]
        if isinstance(value, ast.Attribute) \
                and isinstance(value.value, ast.Name) \
                and value.value.id == "self" and self.class_stack:
            return self.c.attr_classes.get(
                (self.class_stack[-1], value.attr))
        return None

    # -- reads -------------------------------------------------------------

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, ast.Load):
            self._read_literal(node.slice)
        self.generic_visit(node)

    def _read_literal(self, node: ast.AST) -> None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str) \
                and _READ_RE.match(node.value):
            self.c.reads.append((self.ctx, node, node.value))

    def visit_Module(self, node: ast.Module) -> None:
        for stmt in node.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) \
                    else [stmt.target]
                if any(isinstance(t, ast.Name) and "PROBE" in t.id.upper()
                       for t in targets):
                    values = _literal_strings(stmt.value) or ()
                    for text in values:
                        if _READ_RE.match(text):
                            self.c.reads.append((self.ctx, stmt, text))
        self.generic_visit(node)


class ProbeRules(Rule):
    """Whole-program probe analysis feeding P101-P104.

    One collector instance runs the shared extraction; the public rule
    objects (below) pull their findings out of it.
    """

    id = "P100"
    title = "probe collection (internal)"

    def __init__(self) -> None:
        self.hooks: dict[tuple, _Hook] = {}
        self.attr_classes: dict[tuple, str] = {}
        self.registrations: list[tuple] = []
        self.reads: list[tuple] = []
        self.root_calls: list[tuple] = []
        self.absolute_templates: list[tuple] = []
        self.discarded: list[tuple] = []
        self._env_cache: dict = {}
        self._manifest: Manifest | None = None

    def visit_file(self, ctx: FileContext) -> None:
        _FileScan(ctx, self).visit(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                call = node.value
                if isinstance(call.func, ast.Attribute) \
                        and call.func.attr in ("counter", "histogram") \
                        and call.args:
                    self.discarded.append((ctx, call))

    # -- manifest assembly -------------------------------------------------

    def _hook_for(self, key: tuple) -> _Hook | None:
        if key in self.hooks:
            return self.hooks[key]
        cls, name = key
        if cls is None:  # plain function: match any class-less def
            for (c, n), hook in self.hooks.items():
                if n == name and c is None:
                    return hook
        return None

    def _instantiate(self, key: tuple, prefix: tuple | None,
                     out: set[tuple], seen: frozenset) -> None:
        hook = self._hook_for(key)
        if hook is None or key in seen:
            return
        seen = seen | {key}
        for t in hook.templates:
            out.add(substitute(t, prefix))
        for callee_key, binding in hook.calls:
            bound = substitute(binding, prefix) if binding is not None \
                else None
            self._instantiate(callee_key, bound, out, seen)

    def manifest(self) -> Manifest:
        if self._manifest is not None:
            return self._manifest
        out: set[tuple] = set(self.absolute_templates)
        for key, hook in self.hooks.items():
            if hook.prefix_param is None:
                self._instantiate(key, None, out, frozenset())
        for callee_key, binding in self.root_calls:
            self._instantiate(callee_key, binding, out, frozenset())
        # Call edges inside prefix hooks with *literal* bindings also
        # stand alone (the callee's subtree exists wherever the caller
        # is mounted, and literal mounts are exact).
        for hook in self.hooks.values():
            for callee_key, binding in hook.calls:
                if binding is not None and is_concrete(binding):
                    self._instantiate(callee_key, binding, out, frozenset())
        names = {render(t) for t in out if is_concrete(t)}
        patterns = {render(t) for t in out if not is_concrete(t)}
        self._manifest = Manifest(names, patterns)
        return self._manifest


class UnknownProbeRule(Rule):
    """P101: probe-name reads no registration site can produce."""

    id = "P101"
    title = "unknown probe name"

    def __init__(self, collector: ProbeRules) -> None:
        self.c = collector

    def finalize(self, engine: LintEngine) -> list[Finding]:
        manifest = self.c.manifest()
        out = []
        for ctx, node, name in self.c.reads:
            base = name
            # Aggregate suffixes computed from histogram snapshots
            # (".p50"/".p95"/".p99") read the underlying probe.
            if re.search(r"\.p\d{2}$", base):
                base = base.rsplit(".", 1)[0]
            if not manifest.matches(base):
                out.append(self.finding(
                    ctx, node,
                    f"probe name {name!r} is read here but no registration "
                    "site produces it (typo'd reads silently create new "
                    "counters)", ident=name))
        return out


class DeadProbeRule(Rule):
    """P102: registered counters whose handle is discarded."""

    id = "P102"
    title = "dead probe"

    def __init__(self, collector: ProbeRules) -> None:
        self.c = collector

    def finalize(self, engine: LintEngine) -> list[Finding]:
        read_names = {name for _, _, name in self.c.reads}
        out = []
        for ctx, call in self.c.discarded:
            templates = _name_templates(call.args[0], None, {})
            for t in templates:
                if not is_concrete(t):
                    continue
                name = render(t)
                if name in read_names:
                    continue
                out.append(self.finding(
                    ctx, call,
                    f"{call.func.attr}({name!r}) discards its handle and "
                    "the name is never read elsewhere: the probe can never "
                    "be bumped (dead)", ident=name))
        return out


class HierarchyRule(Rule):
    """P103: registered names must live under the four dotted roots."""

    id = "P103"
    title = "probe outside the dotted hierarchy"

    def __init__(self, collector: ProbeRules) -> None:
        self.c = collector

    def finalize(self, engine: LintEngine) -> list[Finding]:
        out = []
        seen: set[tuple] = set()
        for ctx, node, method, template, _hook in self.c.registrations:
            head = template[0]
            if head[0] != LIT:
                continue  # mounted under a prefix checked at its own site
            text = render(template)
            site = (ctx.relpath, text)
            if site in seen:
                continue
            seen.add(site)
            root = head[1].split(".", 1)[0]
            concrete = is_concrete(template)
            bad_root = root not in HIERARCHY_ROOTS
            bad_name = concrete and not _NAME_RE.match(text)
            if bad_root or bad_name:
                why = ("first segment must be one of "
                       + "/".join(HIERARCHY_ROOTS) if bad_root
                       else "lowercase dotted segments required")
                out.append(self.finding(
                    ctx, node,
                    f"probe {text!r} violates the naming hierarchy ({why})",
                    ident=text))
        return out


class ManifestDriftRule(Rule):
    """P104: extracted manifest vs the committed one."""

    id = "P104"
    title = "probe manifest drift"

    def __init__(self, collector: ProbeRules) -> None:
        self.c = collector

    def finalize(self, engine: LintEngine) -> list[Finding]:
        path = engine.root / MANIFEST_RELPATH
        if not path.is_file():
            return []
        ctx = engine.context_for(MANIFEST_RELPATH.replace(".json", ".py"))
        try:
            committed = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            return [Finding(self.id, MANIFEST_RELPATH, 0,
                            f"committed probe manifest unreadable: {exc}",
                            ident="manifest-unreadable")]
        manifest = self.c.manifest()
        current = manifest.to_json_dict()
        out = []
        for kind in ("names", "patterns"):
            have = set(current[kind])
            want = set(committed.get(kind, []))
            for name in sorted(have - want):
                out.append(Finding(
                    self.id, MANIFEST_RELPATH, 0,
                    f"registered probe {kind[:-1]} {name!r} missing from the "
                    "committed manifest (new probe or typo at a registration "
                    "site; regenerate with `repro lint --update`)",
                    ident=f"+{name}"))
            for name in sorted(want - have):
                out.append(Finding(
                    self.id, MANIFEST_RELPATH, 0,
                    f"manifest {kind[:-1]} {name!r} is no longer registered "
                    "anywhere (removed probe or typo at a registration site; "
                    "regenerate with `repro lint --update`)",
                    ident=f"-{name}"))
        del ctx
        return out


def write_manifest(engine_root: pathlib.Path, manifest: Manifest) -> pathlib.Path:
    path = pathlib.Path(engine_root) / MANIFEST_RELPATH
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest.to_json_dict(), indent=2,
                               sort_keys=True) + "\n")
    return path


def manifest_for(engine: LintEngine) -> Manifest:
    """The static probe manifest of an engine's scanned tree.

    Built on demand from the engine's parsed files and memoized on the
    engine, so rules outside the P family (e.g. the timeline-column
    check E103) can validate names against the same manifest the
    P rules reconstruct -- independent of which rules were selected.
    """
    cached = getattr(engine, "_probe_manifest_cache", None)
    if isinstance(cached, Manifest):
        return cached
    collector = ProbeRules()
    for ctx in engine.files:
        collector.visit_file(ctx)
    manifest = collector.manifest()
    engine._probe_manifest_cache = manifest  # type: ignore[attr-defined]
    return manifest


def rules() -> list[Rule]:
    collector = ProbeRules()
    return [collector, UnknownProbeRule(collector), DeadProbeRule(collector),
            HierarchyRule(collector), ManifestDriftRule(collector)]
