"""Finding baselines: grandfather existing findings, fail on new ones.

A baseline is a committed JSON file mapping finding *keys* (rule + path
+ stable detail token -- no line numbers, so unrelated edits don't
invalidate it) to occurrence counts.  ``repro lint`` subtracts the
baseline from the current findings and exits nonzero only when
something *new* appears; fixing a baselined finding, then regenerating,
shrinks the file (ratchet semantics).
"""

from __future__ import annotations

import json
import pathlib
from collections import Counter
from dataclasses import dataclass, field

from repro.lint.engine import Finding

#: Default baseline filename, looked up in the lint invocation's cwd.
DEFAULT_BASELINE = "lint-baseline.json"


@dataclass
class Baseline:
    """Occurrence counts of grandfathered finding keys."""

    counts: Counter = field(default_factory=Counter)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(Counter(f.key for f in findings))

    def split(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding]]:
        """Partition findings into (new, baselined).

        Multiset semantics: a key baselined N times silences the first N
        occurrences and lets the (N+1)-th through as new.
        """
        budget = Counter(self.counts)
        new: list[Finding] = []
        old: list[Finding] = []
        for finding in findings:
            if budget[finding.key] > 0:
                budget[finding.key] -= 1
                old.append(finding)
            else:
                new.append(finding)
        return new, old

    def to_json_dict(self) -> dict:
        return {"version": 1,
                "findings": dict(sorted(self.counts.items()))}


def load_baseline(path: str | pathlib.Path) -> Baseline:
    """Load a baseline file; a missing file is an empty baseline."""
    path = pathlib.Path(path)
    if not path.is_file():
        return Baseline()
    try:
        payload = json.loads(path.read_text())
        raw = payload.get("findings", {})
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read baseline {path}: {exc}")
    if isinstance(raw, list):  # tolerate a bare list of keys
        return Baseline(Counter(raw))
    return Baseline(Counter({str(k): int(v) for k, v in raw.items()}))


def write_baseline(path: str | pathlib.Path, findings: list[Finding]) -> pathlib.Path:
    path = pathlib.Path(path)
    baseline = Baseline.from_findings(findings)
    path.write_text(json.dumps(baseline.to_json_dict(), indent=2,
                               sort_keys=True) + "\n")
    return path
