"""Cross-module call graph with receiver-type binding.

The P-rules already resolve ``self.attr = Class(...)`` assignments to
follow probe registration across files; this module generalizes that
idea into a whole-program call graph the H/E/F rule families share:

* every class, method, and module-level function in the scan tree is
  indexed (including nested ``def``s, attributed to their enclosing
  function -- a closure runs where its owner runs);
* instance-attribute types are inferred from ``self.attr = Class(...)``
  and annotated assignments/dataclass fields, so ``self.os.tick()``
  binds to ``MiniDUX.tick``;
* local aliases of bound methods (``cycle = self.processor.cycle``)
  resolve calls through the alias -- the idiom both hot loops use;
* parameter types flow through call sites for a few rounds, so
  ``_fast_once(sim, ...)`` learns that ``sim`` is a ``Simulation``
  from ``fast_forward(self, ...)``.

Resolution is deliberately name-based (classes are global by name,
ambiguous names resolve to nothing) so the same machinery works on the
live tree and on small lint fixtures without import plumbing.  A last
resort resolves a method call on an unknown receiver when exactly one
scanned class defines that method name and the name is not a common
container/stdlib verb.

The graph is built once per engine run and memoized on the engine, so
the H, E, and F families share one construction.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.lint.engine import FileContext, LintEngine

#: (relpath, class name or "", function name) -- the node identity.
FuncKey = tuple[str, str, str]

#: Inferred static types, as small tagged tuples:
#: ``("inst", C)`` instance of class C, ``("list", C)`` list of C,
#: ``("bound", C, m)`` bound method C.m, ``("func", path, f)`` module
#: function, ``("class", C)`` the class object itself, ``("mod", name)``
#: a module alias.
TypeRef = tuple[str, ...]

#: Method names never resolved by the unique-owner fallback: they are
#: too likely to collide with builtin container / stdlib protocols.
_COMMON_METHOD_NAMES = frozenset({
    "add", "append", "clear", "close", "copy", "count", "decode", "dump",
    "dumps", "emit", "encode", "endswith", "exists", "extend", "findall",
    "flush", "format", "get", "group", "index", "insert", "items", "join",
    "keys", "load", "loads", "match", "mkdir", "name", "open", "pop",
    "popleft", "put", "read", "remove", "run", "search", "sort", "split",
    "startswith", "strip", "sub", "tick", "update", "values", "write",
})


@dataclass(frozen=True)
class CallSite:
    """One static call from a function to another program function."""

    callee: FuncKey
    line: int
    #: ``for``/``while`` nesting depth of the call site within its
    #: enclosing (outermost) function; 0 = straight-line code.
    depth: int


@dataclass
class FuncInfo:
    """One function or method node in the graph."""

    key: FuncKey
    node: ast.FunctionDef | ast.AsyncFunctionDef
    relpath: str
    class_name: str  # "" for module-level functions
    name: str
    param_types: dict[str, TypeRef] = field(default_factory=dict)
    calls: list[CallSite] = field(default_factory=list)

    @property
    def qualname(self) -> str:
        if self.class_name:
            return f"{self.class_name}.{self.name}"
        return self.name

    @property
    def label(self) -> str:
        return f"{self.relpath}::{self.qualname}"


@dataclass
class ClassInfo:
    """One class definition (first wins when a name is duplicated)."""

    name: str
    relpath: str
    bases: list[str]
    methods: dict[str, FuncKey] = field(default_factory=dict)


class CallGraph:
    """The whole-program call graph (see module docstring)."""

    #: Rounds of attr-type / param-type propagation before edges are
    #: collected.  Chains in the tree are short (Simulation -> Processor
    #: -> _HWContext is the deepest); four rounds reaches a fixpoint.
    ROUNDS = 4

    def __init__(self) -> None:
        self.classes: dict[str, ClassInfo] = {}
        self.ambiguous_classes: set[str] = set()
        self.functions: dict[FuncKey, FuncInfo] = {}
        #: (class, attribute) -> inferred type of the instance attribute.
        self.attr_types: dict[tuple[str, str], TypeRef] = {}
        self._attr_conflicts: set[tuple[str, str]] = set()
        #: method name -> owning class names (for the unique fallback).
        self._method_owners: dict[str, set[str]] = {}
        #: module-level function name -> keys (unique name -> resolvable).
        self._module_funcs: dict[str, list[FuncKey]] = {}
        #: per-file import aliases: relpath -> names bound by imports.
        self._imported_names: dict[str, set[str]] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, files: list[FileContext]) -> CallGraph:
        graph = cls()
        for ctx in files:
            graph._index_file(ctx)
        for _ in range(cls.ROUNDS):
            for info in graph.functions.values():
                graph._infer_types(info, propagate=True)
        for info in graph.functions.values():
            graph._collect_calls(info)
        return graph

    @staticmethod
    def for_engine(engine: LintEngine) -> CallGraph:
        """Build (or reuse) the graph for an engine run."""
        cached = getattr(engine, "_callgraph_cache", None)
        if isinstance(cached, CallGraph):
            return cached
        graph = CallGraph.build(engine.files)
        engine._callgraph_cache = graph  # type: ignore[attr-defined]
        return graph

    def _index_file(self, ctx: FileContext) -> None:
        relpath = ctx.relpath
        imported: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imported.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    imported.add(alias.asname or alias.name)
        self._imported_names[relpath] = imported
        assert isinstance(ctx.tree, ast.Module)
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                key = (relpath, "", node.name)
                self.functions[key] = FuncInfo(key, node, relpath, "",
                                               node.name)
                self._module_funcs.setdefault(node.name, []).append(key)
            elif isinstance(node, ast.ClassDef):
                self._index_class(relpath, node)

    def _index_class(self, relpath: str, node: ast.ClassDef) -> None:
        name = node.name
        if name in self.classes:
            self.ambiguous_classes.add(name)
        bases = [b.id for b in node.bases if isinstance(b, ast.Name)]
        info = ClassInfo(name, relpath, bases)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                key = (relpath, name, item.name)
                info.methods[item.name] = key
                self.functions[key] = FuncInfo(key, item, relpath, name,
                                               item.name)
                self._method_owners.setdefault(item.name, set()).add(name)
            elif isinstance(item, ast.AnnAssign) and \
                    isinstance(item.target, ast.Name):
                # Dataclass-style field annotation.
                ref = self._annotation_type(item.annotation)
                if ref is not None:
                    self._record_attr(name, item.target.id, ref)
        if name not in self.classes:
            self.classes[name] = info
        else:  # duplicate name: keep the first, but merge method owners
            pass

    # -- type inference ----------------------------------------------------

    def _class_ref(self, name: str) -> str | None:
        if name in self.classes and name not in self.ambiguous_classes:
            return name
        return None

    def _record_attr(self, cls: str, attr: str, ref: TypeRef) -> None:
        key = (cls, attr)
        if key in self._attr_conflicts:
            return
        known = self.attr_types.get(key)
        if known is None:
            self.attr_types[key] = ref
        elif known != ref:
            del self.attr_types[key]
            self._attr_conflicts.add(key)

    def _annotation_type(self, node: ast.expr | None) -> TypeRef | None:
        if node is None:
            return None
        if isinstance(node, ast.Name):
            cls = self._class_ref(node.id)
            return ("inst", cls) if cls else None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            cls = self._class_ref(node.value)
            return ("inst", cls) if cls else None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return (self._annotation_type(node.left)
                    or self._annotation_type(node.right))
        if isinstance(node, ast.Subscript) and \
                isinstance(node.value, ast.Name) and \
                node.value.id in ("list", "List"):
            inner = self._annotation_type(node.slice)
            if inner is not None and inner[0] == "inst":
                return ("list", inner[1])
        return None

    def method_lookup(self, cls: str, name: str,
                      _seen: frozenset[str] = frozenset()) -> FuncKey | None:
        """Find *name* on class *cls* or (depth-first) its bases."""
        info = self.classes.get(cls)
        if info is None or cls in _seen:
            return None
        key = info.methods.get(name)
        if key is not None:
            return key
        seen = _seen | {cls}
        for base in info.bases:
            found = self.method_lookup(base, name, seen)
            if found is not None:
                return found
        return None

    def _build_env(self, info: FuncInfo) -> dict[str, TypeRef]:
        """Local name -> type environment for one function."""
        env: dict[str, TypeRef] = {}
        node = info.node
        if info.class_name and node.args.args:
            env[node.args.args[0].arg] = ("inst", info.class_name)
        params = node.args.args + node.args.kwonlyargs
        for arg in params:
            if arg.arg in env:
                continue
            ref = self._annotation_type(arg.annotation)
            if ref is None:
                ref_p = info.param_types.get(arg.arg)
                if ref_p is not None:
                    ref = ref_p
            if ref is not None:
                env[arg.arg] = ref
        # Two passes so a name assigned after first use still resolves.
        for _ in range(2):
            for stmt in ast.walk(node):
                self._bind_stmt(stmt, env, info)
        return env

    def _bind_stmt(self, stmt: ast.AST, env: dict[str, TypeRef],
                   info: FuncInfo) -> None:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            ref = self._resolve_expr(stmt.value, env, info)
            if isinstance(target, ast.Name):
                if ref is not None:
                    env[target.id] = ref
            elif self._is_self_attr(target, info) and ref is not None:
                assert isinstance(target, ast.Attribute)
                self._record_attr(info.class_name, target.attr, ref)
        elif isinstance(stmt, ast.AnnAssign):
            ref = self._annotation_type(stmt.annotation)
            if ref is None and stmt.value is not None:
                ref = self._resolve_expr(stmt.value, env, info)
            if ref is None:
                return
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = ref
            elif self._is_self_attr(stmt.target, info):
                assert isinstance(stmt.target, ast.Attribute)
                self._record_attr(info.class_name, stmt.target.attr, ref)
        elif isinstance(stmt, ast.For):
            self._bind_loop_target(stmt.target, stmt.iter, env, info)
        elif isinstance(stmt, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                               ast.DictComp)):
            for gen in stmt.generators:
                self._bind_loop_target(gen.target, gen.iter, env, info)

    def _bind_loop_target(self, target: ast.expr, iter_: ast.expr,
                          env: dict[str, TypeRef], info: FuncInfo) -> None:
        # `for x in <list of C>` and `for i, x in enumerate(<list of C>)`.
        if isinstance(iter_, ast.Call) and \
                isinstance(iter_.func, ast.Name) and \
                iter_.func.id == "enumerate" and iter_.args:
            ref = self._resolve_expr(iter_.args[0], env, info)
            if ref is not None and ref[0] == "list" and \
                    isinstance(target, ast.Tuple) and \
                    len(target.elts) == 2 and \
                    isinstance(target.elts[1], ast.Name):
                env[target.elts[1].id] = ("inst", ref[1])
            return
        ref = self._resolve_expr(iter_, env, info)
        if ref is not None and ref[0] == "list" and \
                isinstance(target, ast.Name):
            env[target.id] = ("inst", ref[1])

    def _is_self_attr(self, node: ast.expr, info: FuncInfo) -> bool:
        return (bool(info.class_name)
                and isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self")

    def _resolve_expr(self, node: ast.expr, env: dict[str, TypeRef],
                      info: FuncInfo) -> TypeRef | None:
        if isinstance(node, ast.Name):
            ref = env.get(node.id)
            if ref is not None:
                return ref
            cls = self._class_ref(node.id)
            if cls is not None:
                return ("class", cls)
            if node.id in self._imported_names.get(info.relpath, set()):
                return ("mod", node.id)
            return None
        if isinstance(node, ast.Attribute):
            base = self._resolve_expr(node.value, env, info)
            if base is None:
                return None
            if base[0] == "inst":
                attr_ref = self.attr_types.get((base[1], node.attr))
                if attr_ref is not None:
                    return attr_ref
                key = self.method_lookup(base[1], node.attr)
                if key is not None:
                    return ("bound", base[1], node.attr)
            return None
        if isinstance(node, ast.Call):
            func_ref = self._resolve_expr(node.func, env, info)
            if func_ref is not None and func_ref[0] == "class":
                return ("inst", func_ref[1])
            return None
        if isinstance(node, ast.Subscript):
            base = self._resolve_expr(node.value, env, info)
            if base is not None and base[0] == "list":
                return ("inst", base[1])
            return None
        if isinstance(node, ast.IfExp):
            return (self._resolve_expr(node.body, env, info)
                    or self._resolve_expr(node.orelse, env, info))
        if isinstance(node, (ast.List, ast.ListComp)):
            elts = node.elts if isinstance(node, ast.List) \
                else [node.elt]
            classes = set()
            for elt in elts:
                ref = self._resolve_expr(elt, env, info)
                if ref is None or ref[0] != "inst":
                    return None
                classes.add(ref[1])
            if len(classes) == 1:
                return ("list", classes.pop())
            return None
        return None

    def _infer_types(self, info: FuncInfo, propagate: bool) -> None:
        """One round: rebuild the env (recording ``self.x`` attr types)
        and push argument types into resolvable callees' parameters."""
        env = self._build_env(info)
        if not propagate:
            return
        for call in ast.walk(info.node):
            if not isinstance(call, ast.Call):
                continue
            callee, skip_self = self._resolve_callee(call, env, info)
            if callee is None:
                continue
            target = self.functions.get(callee)
            if target is None:
                continue
            params = [a.arg for a in target.node.args.args]
            if skip_self and params:
                params = params[1:]
            for i, arg in enumerate(call.args):
                if i >= len(params):
                    break
                self._propose_param(target, params[i], arg, env, info)
            for kw in call.keywords:
                if kw.arg is not None and kw.arg in params:
                    self._propose_param(target, kw.arg, kw.value, env, info)

    def _propose_param(self, target: FuncInfo, param: str,
                       value: ast.expr, env: dict[str, TypeRef],
                       info: FuncInfo) -> None:
        ref = self._resolve_expr(value, env, info)
        if ref is None or ref[0] not in ("inst", "list"):
            return
        known = target.param_types.get(param)
        if known is None:
            target.param_types[param] = ref
        elif known != ref:  # conflicting call sites: forget the guess
            target.param_types[param] = ("conflict",)

    # -- call collection ---------------------------------------------------

    def _resolve_callee(self, call: ast.Call, env: dict[str, TypeRef],
                        info: FuncInfo) -> tuple[FuncKey | None, bool]:
        """Resolve a call node to (callee key, receiver-call flag)."""
        func = call.func
        if isinstance(func, ast.Name):
            ref = env.get(func.id)
            if ref is not None:
                if ref[0] == "bound":
                    return self.method_lookup(ref[1], ref[2]), True
                if ref[0] == "func":
                    return (ref[1], "", ref[2]), False
            cls = self._class_ref(func.id)
            if cls is not None:
                return self.method_lookup(cls, "__init__"), True
            local = (info.relpath, "", func.id)
            if local in self.functions:
                return local, False
            keys = self._module_funcs.get(func.id, [])
            if len(keys) == 1:
                return keys[0], False
            return None, False
        if isinstance(func, ast.Attribute):
            base = self._resolve_expr(func.value, env, info)
            if base is not None and base[0] == "inst":
                key = self.method_lookup(base[1], func.attr)
                if key is not None:
                    return key, True
                return self._unique_method(func.attr), True
            if base is not None and base[0] == "class":
                return self.method_lookup(base[1], func.attr), True
            if base is not None and base[0] == "mod":
                keys = self._module_funcs.get(func.attr, [])
                if len(keys) == 1:
                    return keys[0], False
                return None, False
            return self._unique_method(func.attr), True
        return None, False

    def _unique_method(self, name: str) -> FuncKey | None:
        """Last-resort by-name binding: exactly one owner, uncommon name."""
        if name.startswith("__") or name in _COMMON_METHOD_NAMES:
            return None
        owners = self._method_owners.get(name, set())
        if len(owners) != 1:
            return None
        return self.method_lookup(next(iter(owners)), name)

    def _collect_calls(self, info: FuncInfo) -> None:
        env = self._build_env(info)
        sites: list[CallSite] = []

        def walk(node: ast.AST, depth: int) -> None:
            for child in ast.iter_child_nodes(node):
                child_depth = depth
                if isinstance(child, (ast.For, ast.While)):
                    child_depth = depth + 1
                if isinstance(child, ast.Call):
                    callee, _ = self._resolve_callee(child, env, info)
                    if callee is not None and callee in self.functions:
                        sites.append(CallSite(callee, child.lineno, depth))
                walk(child, child_depth)

        walk(info.node, 0)
        info.calls = sites

    # -- queries -----------------------------------------------------------

    def resolve_spec(self, spec: str) -> list[FuncKey]:
        """Resolve ``Class.method`` or a bare module-function name."""
        if "." in spec:
            cls, _, meth = spec.partition(".")
            key = self.method_lookup(cls, meth)
            return [key] if key is not None else []
        return list(self._module_funcs.get(spec, []))

    def hot_set(self, loop_roots: tuple[str, ...],
                func_roots: tuple[str, ...]) -> dict[FuncKey, str]:
        """Transitive per-cycle hot set from the named roots.

        Returns ``key -> "full" | "loops"``: a ``loops`` entry is hot
        only inside its own ``for``/``while`` bodies (the per-cycle loop
        of a tier driver); a ``full`` entry is hot throughout (it is
        *called* per cycle).  Edges out of a ``loops`` function only
        propagate from call sites inside a loop.
        """
        hot: dict[FuncKey, str] = {}
        queue: list[FuncKey] = []
        for spec in loop_roots:
            for key in self.resolve_spec(spec):
                hot[key] = "loops"
                queue.append(key)
        for spec in func_roots:
            for key in self.resolve_spec(spec):
                hot[key] = "full"
                queue.append(key)
        while queue:
            key = queue.pop()
            info = self.functions.get(key)
            if info is None:
                continue
            mode = hot[key]
            for site in info.calls:
                if mode == "loops" and site.depth == 0:
                    continue
                if hot.get(site.callee) == "full":
                    continue
                hot[site.callee] = "full"
                queue.append(site.callee)
        return hot

    def to_json_dict(self) -> dict[str, object]:
        """Serializable dump for ``repro lint --dump-callgraph``."""
        functions: dict[str, dict[str, object]] = {}
        for key in sorted(self.functions):
            info = self.functions[key]
            functions[info.label] = {
                "line": info.node.lineno,
                "calls": sorted({
                    self.functions[s.callee].label
                    for s in info.calls if s.callee in self.functions}),
            }
        return {
            "classes": sorted(self.classes),
            "functions": functions,
        }
