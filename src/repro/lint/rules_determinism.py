"""D-rules: host nondeterminism in simulation code paths.

The determinism contract (tests/test_determinism.py) is that one
config+seed produces byte-identical probe snapshots.  Anything that lets
host state leak into simulated state -- the process-global ``random``
module, wall-clock reads, hash-randomized set iteration order, unsorted
directory listings, ``id()``-based orderings -- breaks that contract in
ways that only surface as flaky diffs much later.  These rules flag the
idioms at the source.

============  =========================================================
D101          call into the process-global ``random`` module (unseeded;
              simulation code must draw from a per-run
              ``random.Random(seed)`` instance)
D102          wall-clock read (``time.time``/``perf_counter``/
              ``datetime.now``/...) outside the allowlisted host-side
              modules (profiling, benchmarking, live telemetry, the
              process-pool runner)
D103          iteration over a ``set``/``frozenset`` value (string-hash
              randomization makes the order vary per process)
D104          iteration over ``os.listdir``/``glob``/``iterdir``
              results without sorting (filesystem order is arbitrary)
D105          ``id()`` used as a sort key (CPython addresses vary
              per process)
============  =========================================================
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Any

from repro.lint.engine import FileContext, Finding, Rule

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.engine import LintEngine

#: Host-side modules where wall-clock reads are the whole point:
#: self-profiling, perf baselining, live progress, and worker timing.
WALLCLOCK_ALLOWLIST = (
    "obs/profile.py",
    "obs/baseline.py",
    "obs/live.py",
    "analysis/runner.py",
    "analysis/supervisor.py",
    # analysis/queue.py is deliberately NOT allowlisted: journal records
    # must stay wall-clock-free so replay is byte-deterministic.
    "analysis/service.py",
    # The chaos harness polls real subprocesses against a kill deadline;
    # its transcripts and reports carry no wall-clock values.
    "faults/chaos.py",
)

#: time-module functions that read host clocks.
_TIME_FNS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
})

#: datetime class methods that read host clocks.
_DATETIME_FNS = frozenset({"now", "utcnow", "today"})

#: Builtins whose consumption of an iterable is order-insensitive, so a
#: set/glob feeding them directly is deterministic.
_ORDER_INSENSITIVE = frozenset({
    "sorted", "set", "frozenset", "len", "sum", "any", "all",
    "min", "max",
})


def _import_aliases(tree: ast.AST) \
        -> tuple[dict[str, str], dict[str, tuple[str, str]]]:
    """Module aliases in a file.

    Returns ``(modules, members)``: ``modules`` maps a local name to the
    module it denotes (``import random as r`` -> ``{"r": "random"}``);
    ``members`` maps a local name to ``(module, attr)`` for
    ``from X import Y as Z``.
    """
    modules: dict[str, str] = {}
    members: dict[str, tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                top = alias.name.split(".")[0]
                modules[alias.asname or top] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                members[alias.asname or alias.name] = (node.module, alias.name)
    return modules, members


def _call_target(node: ast.Call, modules: dict[str, str],
                 members: dict[str, tuple[str, str]]) \
        -> tuple[str, str] | None:
    """Resolve a call to ``(module, attr)`` when statically possible.

    Handles ``mod.fn()``, ``mod.cls.fn()`` (returned as
    ``(module.cls, fn)``), and from-imported ``fn()`` /
    ``Cls.fn()``.
    """
    func = node.func
    if isinstance(func, ast.Name):
        if func.id in members:
            return members[func.id]
        return None
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Name):
        if value.id in modules:
            return modules[value.id], func.attr
        if value.id in members:
            mod, attr = members[value.id]
            return f"{mod}.{attr}", func.attr
        return None
    if (isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name)
            and value.value.id in modules):
        return f"{modules[value.value.id]}.{value.attr}", func.attr
    return None


class UnseededRandomRule(Rule):
    """D101: calls into the process-global ``random`` module."""

    id = "D101"
    title = "unseeded global random"

    def __init__(self) -> None:
        self.findings: list[Finding] = []

    def visit_file(self, ctx: FileContext) -> None:
        modules, members = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node, modules, members)
            if target is None:
                continue
            module, attr = target
            if module == "random" and attr not in ("Random", "SystemRandom"):
                self.findings.append(self.finding(
                    ctx, node,
                    f"random.{attr}() draws from the process-global RNG; "
                    "use the per-run random.Random(seed) instance",
                    ident=f"random.{attr}"))

    def finalize(self, engine: LintEngine) -> list[Finding]:
        return self.findings


class WallClockRule(Rule):
    """D102: host clock reads outside the allowlisted host-side modules."""

    id = "D102"
    title = "wall-clock read in simulation path"

    def __init__(self, allowlist: tuple[str, ...] = WALLCLOCK_ALLOWLIST) -> None:
        self.allowlist = allowlist
        self.findings: list[Finding] = []

    def visit_file(self, ctx: FileContext) -> None:
        if any(ctx.relpath == a or ctx.relpath.endswith("/" + a)
               for a in self.allowlist):
            return
        modules, members = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node, modules, members)
            if target is None:
                continue
            module, attr = target
            hit = (
                (module == "time" and attr in _TIME_FNS)
                or (module in ("datetime.datetime", "datetime.date")
                    and attr in _DATETIME_FNS)
            )
            if hit:
                self.findings.append(self.finding(
                    ctx, node,
                    f"{module}.{attr}() reads the host clock in a "
                    "simulation code path (allowlisted host-side modules: "
                    + ", ".join(self.allowlist) + ")",
                    ident=f"{module}.{attr}"))

    def finalize(self, engine: LintEngine) -> list[Finding]:
        return self.findings


def _is_set_expr(node: ast.AST) -> bool:
    """Is this expression statically a set/frozenset value?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _is_listing_call(node: ast.AST, modules: dict, members: dict) -> bool:
    """Is this a filesystem-listing call with arbitrary result order?"""
    if not isinstance(node, ast.Call):
        return False
    target = _call_target(node, modules, members)
    if target is not None:
        module, attr = target
        if module == "os" and attr in ("listdir", "scandir"):
            return True
        if module == "glob" and attr in ("glob", "iglob"):
            return True
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in (
            "glob", "rglob", "iterdir"):
        # pathlib-style listing on any receiver.
        return not (isinstance(func.value, ast.Name)
                    and func.value.id in modules)
    return False


class _IterationRule(Rule):
    """Shared scaffolding: flag ``for``/comprehension iteration over
    expressions matched by :meth:`matches`, unless the loop feeds an
    order-insensitive consumer (``sorted(...)``, ``len(...)``, ...)."""

    def __init__(self) -> None:
        self.findings: list[Finding] = []

    def matches(self, node: ast.AST, ctx_state: Any) -> bool:  # pragma: no cover
        raise NotImplementedError

    def describe(self, node: ast.AST) -> tuple[str, str]:  # pragma: no cover
        raise NotImplementedError

    def _state(self, ctx: FileContext) -> Any:
        return None

    def visit_file(self, ctx: FileContext) -> None:
        state = self._state(ctx)
        shielded: set[int] = set()
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_INSENSITIVE):
                for arg in node.args:
                    shielded.add(id(arg))
        iter_sites: list[tuple[ast.AST, ast.AST]] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_sites.append((node.iter, node))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                if id(node) in shielded:
                    continue
                for gen in node.generators:
                    iter_sites.append((gen.iter, node))
        for expr, site in iter_sites:
            if id(expr) in shielded:
                continue
            if self.matches(expr, state):
                message, ident = self.describe(expr)
                self.findings.append(self.finding(ctx, site, message, ident))

    def finalize(self, engine: LintEngine) -> list[Finding]:
        return self.findings


class SetIterationRule(_IterationRule):
    """D103: iterating a set orders elements by randomized hash."""

    id = "D103"
    title = "iteration over unordered set"

    def matches(self, node: Any, state: Any) -> bool:
        return _is_set_expr(node)

    def describe(self, node: Any) -> tuple[str, str]:
        return ("iterating a set/frozenset value: element order varies "
                "with hash randomization; wrap in sorted(...)",
                "set-iteration")


class FsOrderRule(_IterationRule):
    """D104: filesystem listings come back in arbitrary order."""

    id = "D104"
    title = "unsorted filesystem listing"

    def _state(self, ctx: FileContext) -> Any:
        return _import_aliases(ctx.tree)

    def matches(self, node: Any, state: Any) -> bool:
        modules, members = state
        return _is_listing_call(node, modules, members)

    def describe(self, node: Any) -> tuple[str, str]:
        name = node.func.attr if isinstance(node.func, ast.Attribute) \
            else getattr(node.func, "id", "listing")
        return (f"iterating {name}(...) results directly: filesystem "
                "order is arbitrary; wrap in sorted(...)",
                f"fs-{name}")


class IdSortRule(Rule):
    """D105: ``id()`` as an ordering key varies per process."""

    id = "D105"
    title = "id()-based sort key"

    def __init__(self) -> None:
        self.findings: list[Finding] = []

    @staticmethod
    def _key_uses_id(value: ast.AST) -> bool:
        if isinstance(value, ast.Name) and value.id == "id":
            return True
        if isinstance(value, ast.Lambda):
            return any(
                isinstance(n, ast.Call) and isinstance(n.func, ast.Name)
                and n.func.id == "id"
                for n in ast.walk(value.body))
        return False

    def visit_file(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            is_sorter = (
                (isinstance(node.func, ast.Name)
                 and node.func.id in ("sorted", "min", "max"))
                or (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "sort"))
            if not is_sorter:
                continue
            for kw in node.keywords:
                if kw.arg == "key" and self._key_uses_id(kw.value):
                    self.findings.append(self.finding(
                        ctx, node,
                        "id()-based sort key: CPython object addresses "
                        "vary per process; key on stable data instead",
                        ident="id-sort-key"))

    def finalize(self, engine: LintEngine) -> list[Finding]:
        return self.findings


def rules() -> list[Rule]:
    return [UnseededRandomRule(), WallClockRule(), SetIterationRule(),
            FsOrderRule(), IdSortRule()]
