"""H rules: hot-path performance lint.

The simulator's throughput lives in a handful of per-cycle functions
(ROADMAP item 2).  These rules compute the *transitive hot set* from
the per-cycle roots -- the detailed loop (``Simulation._run_once``),
the fast-functional loop (``engine._fast_once``), the processor
fetch/issue/retire path, the interval-timeline tick, and the
attribution charge points -- over the shared call graph
(:mod:`repro.lint.callgraph`), then flag allocation and dispatch churn
inside it:

=====  =====================================================
H101   comprehension / generator expression per cycle
H102   string formatting (f-string, ``%``, ``.format``) per cycle
H103   dict/list/set literal per cycle
H104   closure or ``lambda`` creation per cycle
H105   ``try`` entered per cycle
H106   deep ``a.b.c.d`` attribute chain re-resolved per cycle
=====  =====================================================

Severity is weighted by loop depth: every finding carries an ``xN``
weight, where N counts how many per-cycle loop levels enclose the
construct (a full hot function's straight-line body is x1; each
``for``/``while`` inside it adds one).  The two tier-driver roots are
*loop roots*: only code inside their cycle loops is hot, so their
prologues (run once per leg) stay clean.

These rules are expected to carry debt on a real tree -- that is what
the ``--baseline`` ratchet is for: existing findings are frozen in
``lint-baseline.json`` and only *new* churn fails CI.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.lint.callgraph import CallGraph, FuncKey
from repro.lint.engine import Finding, Rule

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.engine import FileContext, LintEngine

#: Tier-driver roots: hot only inside their own cycle loops.
LOOP_ROOTS = ("Simulation._run_once", "_fast_once")

#: Per-cycle roots: called once (or more) per simulated cycle, hot
#: throughout their bodies.
FUNC_ROOTS = (
    "Processor.cycle",
    "ProbeTimeline.tick",
    "Attribution.switch",
    "Attribution.path_of",
    "SimStats.charge_cycle",
    "SimStats.charge_cycles",
    "SimStats.retire",
    "SimStats.retire_bulk",
)


class _HotScan:
    """Shared per-engine-run scan: hot set + flagged constructs."""

    def __init__(self) -> None:
        self.done = False
        self.graph: CallGraph | None = None
        self.hot: dict[FuncKey, str] = {}
        #: rule id -> list of (ctx, node, message, ident)
        self.sites: dict[str, list[tuple[FileContext, ast.AST, str, str]]] \
            = {}

    def ensure(self, engine: LintEngine) -> None:
        if self.done:
            return
        self.done = True
        self.graph = CallGraph.for_engine(engine)
        self.hot = self.graph.hot_set(LOOP_ROOTS, FUNC_ROOTS)
        by_path = {ctx.relpath: ctx for ctx in engine.files}
        for key, mode in sorted(self.hot.items()):
            info = self.graph.functions.get(key)
            ctx = by_path.get(key[0])
            if info is None or ctx is None:
                continue
            self._scan_function(ctx, info.node, info.qualname, mode)

    def _flag(self, rule: str, ctx: FileContext, node: ast.AST,
              what: str, qualname: str, weight: int) -> None:
        message = (f"{what} on the per-cycle hot path "
                   f"in `{qualname}` (weight x{weight})")
        ident = f"{qualname}:x{weight}"
        self.sites.setdefault(rule, []).append((ctx, node, message, ident))

    def _scan_function(self, ctx: FileContext, func: ast.AST,
                       qualname: str, mode: str) -> None:
        """Walk one hot function, flagging churn constructs.

        *mode* ``"full"``: the whole body runs per cycle (weight =
        1 + loop depth).  *mode* ``"loops"``: only loop bodies are hot
        (weight = loop depth; depth-0 constructs are skipped).
        """
        base = 1 if mode == "full" else 0

        def walk(node: ast.AST, depth: int) -> None:
            # Chains are flagged whole at their outermost Attribute.
            in_chain = isinstance(node, ast.Attribute)
            for child in ast.iter_child_nodes(node):
                child_depth = depth
                if isinstance(child, (ast.For, ast.While)):
                    child_depth = depth + 1
                weight = base + depth
                if weight > 0 and not (in_chain
                                       and isinstance(child, ast.Attribute)):
                    self._check(ctx, child, qualname, weight, depth)
                walk(child, child_depth)

        walk(func, 0)

    def _check(self, ctx: FileContext, node: ast.AST, qualname: str,
               weight: int, depth: int) -> None:
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            kind = {"ListComp": "list comprehension",
                    "SetComp": "set comprehension",
                    "DictComp": "dict comprehension",
                    "GeneratorExp": "generator expression"}[
                        type(node).__name__]
            self._flag("H101", ctx, node, f"{kind} allocated", qualname,
                       weight)
        elif isinstance(node, ast.JoinedStr):
            if any(isinstance(v, ast.FormattedValue) for v in node.values):
                self._flag("H102", ctx, node, "f-string formatted",
                           qualname, weight)
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod) \
                and isinstance(node.left, ast.Constant) \
                and isinstance(node.left.value, str):
            self._flag("H102", ctx, node, "%-formatting", qualname, weight)
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "format" \
                and isinstance(node.func.value, ast.Constant) \
                and isinstance(node.func.value.value, str):
            self._flag("H102", ctx, node, "str.format call", qualname,
                       weight)
        elif isinstance(node, ast.Dict):
            self._flag("H103", ctx, node, "dict literal allocated",
                       qualname, weight)
        elif isinstance(node, ast.List) \
                and isinstance(node.ctx, ast.Load):
            self._flag("H103", ctx, node, "list literal allocated",
                       qualname, weight)
        elif isinstance(node, ast.Set):
            self._flag("H103", ctx, node, "set literal allocated",
                       qualname, weight)
        elif isinstance(node, ast.Lambda):
            self._flag("H104", ctx, node, "lambda created", qualname,
                       weight)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._flag("H104", ctx, node,
                       f"closure `{node.name}` created", qualname, weight)
        elif isinstance(node, ast.Try):
            self._flag("H105", ctx, node, "`try` entered", qualname,
                       weight)
        elif isinstance(node, ast.Attribute) and depth >= 1 \
                and isinstance(node.ctx, ast.Load):
            links, base_node = 1, node.value
            while isinstance(base_node, ast.Attribute):
                links += 1
                base_node = base_node.value
            if links >= 3 and isinstance(base_node, ast.Name):
                chain = ast.unparse(node)
                self._flag("H106", ctx, node,
                           f"attribute chain `{chain}` re-resolved",
                           qualname, weight)


class _HotRule(Rule):
    """One H rule family member, reading from the shared scan."""

    def __init__(self, scan: _HotScan, rule_id: str, title: str) -> None:
        self.scan = scan
        self.id = rule_id
        self.title = title

    def finalize(self, engine: LintEngine) -> list[Finding]:
        self.scan.ensure(engine)
        findings = []
        for ctx, node, message, ident in self.scan.sites.get(self.id, []):
            f = self.finding(ctx, node, message, ident=ident)
            if f is not None:
                findings.append(f)
        return findings


def rules() -> list[Rule]:
    scan = _HotScan()
    return [
        _HotRule(scan, "H101",
                 "per-cycle comprehension / generator expression"),
        _HotRule(scan, "H102",
                 "per-cycle string formatting (f-string / % / .format)"),
        _HotRule(scan, "H103", "per-cycle dict/list/set literal"),
        _HotRule(scan, "H104", "per-cycle closure or lambda creation"),
        _HotRule(scan, "H105", "try statement on the per-cycle path"),
        _HotRule(scan, "H106",
                 "deep attribute chain re-resolved per cycle"),
    ]
