"""``repro lint`` command implementation.

Kept out of :mod:`repro.cli` so the engine stays importable without
argparse plumbing, and the top-level CLI stays a thin dispatcher.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any

from repro.lint.baseline import (DEFAULT_BASELINE, load_baseline,
                                 write_baseline)
from repro.lint.callgraph import CallGraph
from repro.lint.engine import (FAMILIES, LintEngine, findings_to_json,
                               render_report)
from repro.lint.rules_probes import ProbeRules, write_manifest
from repro.lint.rules_schema import SchemaRules, write_shapes
from repro.lint.sarif import write_sarif

#: Default scan root, relative to the invocation directory.
DEFAULT_ROOT = "src/repro"


def add_parser(sub: Any) -> None:
    p = sub.add_parser(
        "lint",
        help="static invariant checks: determinism, probe hygiene, "
             "schema/fingerprint drift")
    p.add_argument("root", nargs="?", default=None,
                   help=f"directory (or file) to scan (default: "
                        f"{DEFAULT_ROOT}, falling back to the package "
                        "source when run elsewhere)")
    p.add_argument("--rule", action="append", default=None, metavar="IDS",
                   help="run only these rules: exact ids or family "
                        "prefixes, comma-separated (e.g. --rule D,H or "
                        "--rule H101,E102); repeatable")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="baseline file of grandfathered findings "
                        f"(default: {DEFAULT_BASELINE} next to the scan "
                        "root, when present)")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline from the current findings "
                        "and exit 0")
    p.add_argument("--update", action="store_true",
                   help="regenerate the committed probe manifest and "
                        "schema shape digests from the current tree")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write a machine-readable findings report "
                        "('-' for stdout)")
    p.add_argument("--sarif", default=None, metavar="FILE",
                   help="write a SARIF 2.1.0 report (for GitHub code "
                        "scanning / PR annotations)")
    p.add_argument("--dump-callgraph", default=None, metavar="FILE",
                   help="write the resolved whole-program call graph "
                        "as JSON ('-' for stdout)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.set_defaults(func=run_lint)


def _selected_rules(args: argparse.Namespace) -> list[str] | None:
    """Flatten repeatable, comma-separated ``--rule`` arguments."""
    if not args.rule:
        return None
    ids = [part.strip() for arg in args.rule for part in arg.split(",")
           if part.strip()]
    return ids or None


def _resolve_root(arg: str | None) -> pathlib.Path:
    if arg is not None:
        root = pathlib.Path(arg)
        if not root.exists():
            raise SystemExit(f"lint root {arg!r} does not exist")
        return root
    root = pathlib.Path(DEFAULT_ROOT)
    if root.is_dir():
        return root
    # Running from outside a checkout: lint the installed package tree.
    return pathlib.Path(__file__).resolve().parent.parent


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        groups: dict[str, list] = {}
        for rule in LintEngine(pathlib.Path(".")).rules:
            if rule.id.endswith("00"):  # internal collectors
                continue
            groups.setdefault(rule.id[0], []).append(rule)
        for family in sorted(groups):
            title = FAMILIES.get(family, "other")
            print(f"{family}: {title}")
            for rule in sorted(groups[family], key=lambda r: r.id):
                print(f"  {rule.id}  {rule.title}")
        return 0

    selected = _selected_rules(args)
    root = _resolve_root(args.root)
    engine = LintEngine(root)
    if selected:
        engine.select(selected)
    findings = engine.run()

    if args.update:
        for rule in engine.rules:
            if isinstance(rule, ProbeRules):
                print(f"wrote {write_manifest(root, rule.manifest())}")
            if isinstance(rule, SchemaRules):
                print(f"wrote {write_shapes(root, rule)}")
        # Re-run: drift findings must now be gone, the rest still count.
        engine = LintEngine(root)
        if selected:
            engine.select(selected)
        findings = engine.run()

    if args.dump_callgraph:
        graph = CallGraph.for_engine(engine)
        text = json.dumps(graph.to_json_dict(), indent=2, sort_keys=True)
        if args.dump_callgraph == "-":
            print(text)
        else:
            pathlib.Path(args.dump_callgraph).write_text(text + "\n")
            print(f"wrote {args.dump_callgraph}", file=sys.stderr)

    baseline_path = pathlib.Path(
        args.baseline if args.baseline else DEFAULT_BASELINE)
    if args.update_baseline:
        path = write_baseline(baseline_path, findings)
        print(f"baselined {len(findings)} finding(s) -> {path}")
        return 0

    baseline = load_baseline(baseline_path)
    new, old = baseline.split(findings)
    new_keys = {f.key for f in new}
    if args.sarif:
        path = write_sarif(pathlib.Path(args.sarif), findings,
                           engine.rules, root, new_keys)
        print(f"wrote {path}", file=sys.stderr)
    if args.json:
        text = findings_to_json(findings, new_keys)
        if args.json == "-":
            # Pure JSON on stdout; the human report moves to stderr.
            print(text)
            if findings:
                print(render_report(findings, new_keys,
                                    baselined=len(old)), file=sys.stderr)
            return 1 if new else 0
        pathlib.Path(args.json).write_text(text + "\n")
        print(f"wrote {args.json}", file=sys.stderr)
    # Keep stdout pure when the call graph was dumped there.
    report_out = sys.stderr if args.dump_callgraph == "-" else sys.stdout
    if findings:
        print(render_report(findings, new_keys, baselined=len(old)),
              file=report_out)
    else:
        scanned = len(engine.files)
        print(f"repro lint: clean ({scanned} files, "
              f"{len(engine.rules)} rules)", file=report_out)
    stale = sum(baseline.counts.values()) - len(old)
    if stale > 0:
        print(f"note: {stale} baselined finding(s) no longer occur; "
              "shrink the baseline with --update-baseline", file=report_out)
    return 1 if new else 0
