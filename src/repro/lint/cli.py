"""``repro lint`` command implementation.

Kept out of :mod:`repro.cli` so the engine stays importable without
argparse plumbing, and the top-level CLI stays a thin dispatcher.
"""

from __future__ import annotations

import pathlib
import sys

from repro.lint.baseline import (DEFAULT_BASELINE, load_baseline,
                                 write_baseline)
from repro.lint.engine import LintEngine, findings_to_json, render_report
from repro.lint.rules_probes import ProbeRules, write_manifest
from repro.lint.rules_schema import SchemaRules, write_shapes

#: Default scan root, relative to the invocation directory.
DEFAULT_ROOT = "src/repro"


def add_parser(sub) -> None:
    p = sub.add_parser(
        "lint",
        help="static invariant checks: determinism, probe hygiene, "
             "schema/fingerprint drift")
    p.add_argument("root", nargs="?", default=None,
                   help=f"directory (or file) to scan (default: "
                        f"{DEFAULT_ROOT}, falling back to the package "
                        "source when run elsewhere)")
    p.add_argument("--rule", action="append", default=None, metavar="ID",
                   help="run only these rules (exact id or family prefix, "
                        "e.g. --rule D --rule S101); repeatable")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="baseline file of grandfathered findings "
                        f"(default: {DEFAULT_BASELINE} next to the scan "
                        "root, when present)")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline from the current findings "
                        "and exit 0")
    p.add_argument("--update", action="store_true",
                   help="regenerate the committed probe manifest and "
                        "schema shape digests from the current tree")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write a machine-readable findings report "
                        "('-' for stdout)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.set_defaults(func=run_lint)


def _resolve_root(arg: str | None) -> pathlib.Path:
    if arg is not None:
        root = pathlib.Path(arg)
        if not root.exists():
            raise SystemExit(f"lint root {arg!r} does not exist")
        return root
    root = pathlib.Path(DEFAULT_ROOT)
    if root.is_dir():
        return root
    # Running from outside a checkout: lint the installed package tree.
    return pathlib.Path(__file__).resolve().parent.parent


def run_lint(args) -> int:
    if args.list_rules:
        for rule in LintEngine(pathlib.Path(".")).rules:
            if rule.id.endswith("00"):  # internal collectors
                continue
            print(f"  {rule.id}  {rule.title}")
        return 0

    root = _resolve_root(args.root)
    engine = LintEngine(root)
    if args.rule:
        engine.select(args.rule)
    findings = engine.run()

    if args.update:
        for rule in engine.rules:
            if isinstance(rule, ProbeRules):
                print(f"wrote {write_manifest(root, rule.manifest())}")
            if isinstance(rule, SchemaRules):
                print(f"wrote {write_shapes(root, rule)}")
        # Re-run: drift findings must now be gone, the rest still count.
        engine = LintEngine(root)
        if args.rule:
            engine.select(args.rule)
        findings = engine.run()

    baseline_path = pathlib.Path(
        args.baseline if args.baseline else DEFAULT_BASELINE)
    if args.update_baseline:
        path = write_baseline(baseline_path, findings)
        print(f"baselined {len(findings)} finding(s) -> {path}")
        return 0

    baseline = load_baseline(baseline_path)
    new, old = baseline.split(findings)
    new_keys = {f.key for f in new}
    if args.json:
        text = findings_to_json(findings, new_keys)
        if args.json == "-":
            # Pure JSON on stdout; the human report moves to stderr.
            print(text)
            if findings:
                print(render_report(findings, new_keys,
                                    baselined=len(old)), file=sys.stderr)
            return 1 if new else 0
        pathlib.Path(args.json).write_text(text + "\n")
        print(f"wrote {args.json}", file=sys.stderr)
    if findings:
        print(render_report(findings, new_keys, baselined=len(old)))
    else:
        scanned = len(engine.files)
        print(f"repro lint: clean ({scanned} files, "
              f"{len(engine.rules)} rules)")
    stale = sum(baseline.counts.values()) - len(old)
    if stale > 0:
        print(f"note: {stale} baselined finding(s) no longer occur; "
              "shrink the baseline with --update-baseline")
    return 1 if new else 0
