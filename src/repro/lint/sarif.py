"""SARIF 2.1.0 export for ``repro lint`` findings.

Minimal but valid: one run, one driver, a rule catalogue built from
the engine's rule set, and one result per finding.  GitHub's
``codeql-action/upload-sarif`` turns this into PR annotations, so the
``uri`` is emitted relative to the repository root (the scan root is
prefixed back on).
"""

from __future__ import annotations

import json
import pathlib

from repro.lint.engine import Finding, Rule


def findings_to_sarif(findings: list[Finding], rules: list[Rule],
                      scan_root: pathlib.Path,
                      new_keys: set[str] | None = None) -> dict[str, object]:
    """Build the SARIF payload dict.

    Baselined findings (keys absent from *new_keys*) are exported at
    ``note`` level so the ratchet's frozen debt does not page anyone;
    new findings are ``warning``.
    """
    try:
        prefix = scan_root.resolve().relative_to(pathlib.Path.cwd())
    except ValueError:
        prefix = pathlib.Path(scan_root)
    rule_descs = [
        {"id": rule.id,
         "shortDescription": {"text": rule.title}}
        for rule in sorted(rules, key=lambda r: r.id)
        if not rule.id.endswith("00")
    ]
    rule_ids = {r["id"] for r in rule_descs}
    results: list[dict[str, object]] = []
    for f in findings:
        level = "warning"
        if new_keys is not None and f.key not in new_keys:
            level = "note"
        result: dict[str, object] = {
            "ruleId": f.rule,
            "level": level,
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": (prefix / f.path).as_posix(),
                    },
                    "region": {"startLine": max(f.line, 1)},
                },
            }],
            "partialFingerprints": {"reproLintKey": f.key},
        }
        if f.rule not in rule_ids:  # e.g. E000 parse failures
            rule_descs.append({
                "id": f.rule,
                "shortDescription": {"text": "lint engine finding"}})
            rule_ids.add(f.rule)
        results.append(result)
    return {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://example.invalid/repro/docs/"
                        "static-analysis.md",
                    "rules": sorted(rule_descs,
                                    key=lambda r: str(r["id"])),
                },
            },
            "results": results,
        }],
    }


def write_sarif(path: pathlib.Path, findings: list[Finding],
                rules: list[Rule], scan_root: pathlib.Path,
                new_keys: set[str] | None = None) -> pathlib.Path:
    payload = findings_to_sarif(findings, rules, scan_root, new_keys)
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
