"""S-rules: schema and fingerprint drift.

The run store is content-addressed: an artifact's identity is a hash
over ``SCHEMA_VERSION``, ``CODE_VERSION``, and the full simulation
config.  Two silent failure modes poison it:

* a configuration knob that never reaches the fingerprint -- two runs
  with different behavior collide on one store key, and stale artifacts
  masquerade as current measurements;
* snapshot- or config-shaping code that changes without a version bump
  -- stored artifacts parse but no longer mean what readers assume.

============  =========================================================
S101          a config field / simulator knob is not statically
              reachable from the fingerprint computation
              (``sim_params`` must cover every ``*Config`` dataclass
              field and every ``Simulation.__init__`` knob)
S102          config shape (dataclass fields, knob defaults) changed
              while ``CODE_VERSION`` and the committed shape digest
              stayed put (regenerate with ``repro lint --update``)
S103          snapshot-producing code changed while ``SCHEMA_VERSION``
              and the committed shape digest stayed put
============  =========================================================

Digests are computed from a version-stable AST dump (docstrings and
comments excluded), so they are identical across the Python versions CI
runs, and only *structural* edits trip them.
"""

from __future__ import annotations

import ast
import hashlib
import json
import pathlib
from typing import TYPE_CHECKING, Any

from repro.lint.engine import FileContext, Finding, Rule

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.engine import LintEngine

#: Committed shape digest location, relative to the scan root.
SHAPE_RELPATH = "lint/schema_shape.json"

#: ``Simulation.__init__`` parameters that are identity, not knobs.
NON_KNOB_PARAMS = frozenset({"self", "workload", "machine", "os_mode", "seed"})

#: AST fields that differ across Python versions (or carry positions).
_UNSTABLE_FIELDS = frozenset({"type_comment", "type_params", "type_ignores"})


def _strip_docstring(body: list) -> list:
    if (body and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)):
        return body[1:]
    return body


def stable_dump(node: Any) -> str:
    """A Python-version-stable structural dump of an AST subtree."""
    if isinstance(node, ast.AST):
        parts = []
        for name in node._fields:
            if name in _UNSTABLE_FIELDS:
                continue
            value = getattr(node, name, None)
            if name == "body" and isinstance(value, list):
                value = _strip_docstring(value)
            parts.append(f"{name}={stable_dump(value)}")
        return f"{type(node).__name__}({','.join(parts)})"
    if isinstance(node, list):
        return "[" + ",".join(stable_dump(v) for v in node) + "]"
    return repr(node)


def _segment(ctx: FileContext, node: ast.AST) -> str:
    """Whitespace-normalized source text of one node."""
    text = ast.get_source_segment(ctx.source, node) or ""
    return " ".join(text.split())


def _is_dataclass(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        name = dec
        if isinstance(name, ast.Call):
            name = name.func
        if isinstance(name, ast.Name) and name.id == "dataclass":
            return True
        if isinstance(name, ast.Attribute) and name.attr == "dataclass":
            return True
    return False


def _dataclass_fields(ctx: FileContext, node: ast.ClassDef) -> list[list]:
    """``[name, annotation-text, default-text]`` per declared field."""
    fields = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            annot = _segment(ctx, stmt.annotation)
            if "ClassVar" in annot:
                continue
            default = _segment(ctx, stmt.value) if stmt.value is not None else ""
            fields.append([stmt.target.id, annot, default])
    return fields


class SchemaRules(Rule):
    """Whole-program S-rule analysis (collection + all three checks)."""

    id = "S101"
    title = "fingerprint coverage and shape drift"

    def __init__(self) -> None:
        #: class name -> (ctx, node, fields)
        self.config_classes: dict[str, tuple] = {}
        self.knob_defaults: tuple | None = None   # (ctx, node, keys)
        self.sim_params_fn: tuple | None = None   # (ctx, node)
        self.sim_init: tuple | None = None        # (ctx, node)
        self.artifact_mod: tuple | None = None    # (ctx, schema, code)
        self.snapshot_nodes: list[tuple] = []     # (label, ctx, node)

    # -- collection --------------------------------------------------------

    def visit_file(self, ctx: FileContext) -> None:
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                self._visit_class(ctx, node)
            elif isinstance(node, ast.FunctionDef):
                if node.name == "sim_params":
                    self.sim_params_fn = (ctx, node)
                if node.name in ("capture", "diff") \
                        and "snapshot" in ctx.relpath:
                    self.snapshot_nodes.append((node.name, ctx, node))
            elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                self._visit_assign(ctx, node, node.targets[0].id, node.value)
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name) \
                    and node.value is not None:
                self._visit_assign(ctx, node, node.target.id, node.value)

    def _visit_class(self, ctx: FileContext, node: ast.ClassDef) -> None:
        if node.name.endswith("Config") and _is_dataclass(node):
            self.config_classes[node.name] = (
                ctx, node, _dataclass_fields(ctx, node))
        if node.name == "Simulation":
            for stmt in node.body:
                if isinstance(stmt, ast.FunctionDef) \
                        and stmt.name == "__init__":
                    self.sim_init = (ctx, stmt)
        if node.name == "RunArtifact":
            self.snapshot_nodes.append(("RunArtifact", ctx, node))
        if node.name in ("Histogram", "ProbeRegistry"):
            for stmt in node.body:
                if isinstance(stmt, ast.FunctionDef) \
                        and stmt.name == "snapshot":
                    self.snapshot_nodes.append(
                        (f"{node.name}.snapshot", ctx, stmt))

    def _visit_assign(self, ctx: FileContext, node: ast.stmt,
                      name: str, value_node: ast.AST) -> None:
        if name == "SIM_KNOB_DEFAULTS" and isinstance(value_node, ast.Dict):
            keys = tuple(
                k.value for k in value_node.keys
                if isinstance(k, ast.Constant) and isinstance(k.value, str))
            self.knob_defaults = (ctx, node, keys)
        elif name in ("SCHEMA_VERSION", "CODE_VERSION"):
            if self.artifact_mod is None or self.artifact_mod[0] is not ctx:
                self.artifact_mod = (ctx, None, None)
            _, schema, code = self.artifact_mod
            value = value_node.value if isinstance(value_node, ast.Constant) \
                else None
            if name == "SCHEMA_VERSION":
                schema = value
            else:
                code = value
            self.artifact_mod = (ctx, schema, code)

    # -- checks ------------------------------------------------------------

    def finalize(self, engine: LintEngine) -> list[Finding]:
        out: list[Finding] = []
        out.extend(self._check_coverage())
        out.extend(self._check_shapes(engine))
        return out

    # S101 ----------------------------------------------------------------

    def _check_coverage(self) -> list[Finding]:
        out: list[Finding] = []
        if self.sim_params_fn is not None:
            out.extend(self._check_machine_fields())
        if self.sim_init is not None:
            out.extend(self._check_init_knobs())
        return out

    def _check_machine_fields(self) -> list[Finding]:
        """Every ``*Config`` field must flow into the params dict --
        either wholesale via ``asdict(machine)`` or field by field."""
        ctx, fn = self.sim_params_fn
        uses_asdict = any(
            isinstance(n, ast.Call) and isinstance(n.func, ast.Name)
            and n.func.id == "asdict"
            for n in ast.walk(fn))
        if uses_asdict:
            return []
        mentioned = set()
        for n in ast.walk(fn):
            if isinstance(n, ast.Attribute):
                mentioned.add(n.attr)
            elif isinstance(n, ast.Constant) and isinstance(n.value, str):
                mentioned.add(n.value)
        out = []
        for cls_name, (cctx, cnode, fields) in sorted(
                self.config_classes.items()):
            for field_name, _annot, _default in fields:
                if field_name not in mentioned:
                    out.append(self.finding(
                        ctx, fn,
                        f"config field {cls_name}.{field_name} is not "
                        "reachable from the fingerprint params (sim_params "
                        "neither calls asdict(machine) nor references it); "
                        "runs differing only in this field collide in the "
                        "run store",
                        ident=f"{cls_name}.{field_name}"))
        return out

    def _check_init_knobs(self) -> list[Finding]:
        """Every Simulation.__init__ knob must be declared in
        SIM_KNOB_DEFAULTS *and* forwarded into the sim_params call."""
        ctx, init = self.sim_init
        args = init.args
        params = [a.arg for a in args.args + args.kwonlyargs
                  if a.arg not in NON_KNOB_PARAMS]
        declared = set(self.knob_defaults[2]) if self.knob_defaults else set()
        forwarded: set[str] = set()
        for n in ast.walk(init):
            if isinstance(n, ast.Call) and (
                    (isinstance(n.func, ast.Name)
                     and n.func.id == "sim_params")
                    or (isinstance(n.func, ast.Attribute)
                        and n.func.attr == "sim_params")):
                forwarded.update(kw.arg for kw in n.keywords
                                 if kw.arg is not None)
        out = []
        for name in params:
            problems = []
            if self.knob_defaults is not None and name not in declared:
                problems.append("missing from SIM_KNOB_DEFAULTS")
            if name not in forwarded:
                problems.append("not forwarded to sim_params() in __init__")
            if problems:
                out.append(self.finding(
                    ctx, init,
                    f"simulator knob {name!r} skips the fingerprint: "
                    + " and ".join(problems)
                    + "; runs differing only in this knob collide in the "
                    "run store", ident=f"knob.{name}"))
        if self.knob_defaults is not None:
            kctx, knode, keys = self.knob_defaults
            for name in keys:
                if name not in {a.arg for a in args.args + args.kwonlyargs}:
                    out.append(self.finding(
                        kctx, knode,
                        f"SIM_KNOB_DEFAULTS declares {name!r} but "
                        "Simulation.__init__ has no such parameter "
                        "(dead knob)", ident=f"dead-knob.{name}"))
        return out

    # S102 / S103 ----------------------------------------------------------

    def config_digest(self) -> str:
        payload = {
            "classes": {
                name: fields
                for name, (_ctx, _node, fields)
                in sorted(self.config_classes.items())
            },
            "knobs": (_segment(self.knob_defaults[0], self.knob_defaults[1])
                      if self.knob_defaults else ""),
            "init": self._init_signature(),
        }
        text = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(text.encode()).hexdigest()

    def _init_signature(self) -> list[list]:
        if self.sim_init is None:
            return []
        ctx, init = self.sim_init
        args = init.args
        defaults = [None] * (len(args.args) - len(args.defaults)) \
            + list(args.defaults)
        out = []
        for a, d in zip(args.args, defaults):
            out.append([a.arg, _segment(ctx, d) if d is not None else ""])
        return out

    def snapshot_digest(self) -> str:
        parts = [f"{label}:{stable_dump(node)}"
                 for label, _ctx, node in sorted(
                     self.snapshot_nodes, key=lambda item: item[0])]
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()

    def shape_payload(self) -> dict:
        schema = code = None
        if self.artifact_mod is not None:
            _, schema, code = self.artifact_mod
        return {
            "version": 1,
            "code_version": code,
            "schema_version": schema,
            "config_digest": self.config_digest(),
            "snapshot_digest": self.snapshot_digest(),
        }

    def _check_shapes(self, engine: LintEngine) -> list[Finding]:
        path = pathlib.Path(engine.root) / SHAPE_RELPATH
        if not path.is_file():
            return []
        try:
            committed = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            return [Finding("S102", SHAPE_RELPATH, 0,
                            f"committed shape file unreadable: {exc}",
                            ident="shape-unreadable")]
        current = self.shape_payload()
        out = []
        checks = (
            ("S102", "config_digest", "code_version", "CODE_VERSION",
             "config shape (dataclass fields / simulator knobs)"),
            ("S103", "snapshot_digest", "schema_version", "SCHEMA_VERSION",
             "snapshot-producing code"),
        )
        for rule_id, digest_key, version_key, version_name, what in checks:
            same_digest = current[digest_key] == committed.get(digest_key)
            same_version = (current[version_key]
                            == committed.get(version_key))
            if same_digest and same_version:
                continue
            if same_version:
                message = (
                    f"{what} changed but {version_name} did not: stored "
                    "artifacts from before this change are "
                    "indistinguishable from current ones.  Bump "
                    f"{version_name}, then regenerate the shape file with "
                    "`repro lint --update`")
            elif same_digest:
                message = (f"{version_name} changed but the committed shape "
                           "file was not regenerated; run "
                           "`repro lint --update`")
            else:
                message = (f"{version_name} was bumped for this change -- "
                           "finish the bookkeeping by regenerating the "
                           "shape file with `repro lint --update`")
            out.append(Finding(
                rule_id, SHAPE_RELPATH, 0, message,
                ident=f"{digest_key}-drift"))
        return out


def write_shapes(engine_root: pathlib.Path, rule: SchemaRules) -> pathlib.Path:
    path = pathlib.Path(engine_root) / SHAPE_RELPATH
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(rule.shape_payload(), indent=2,
                               sort_keys=True) + "\n")
    return path


def rules() -> list[Rule]:
    return [SchemaRules()]
