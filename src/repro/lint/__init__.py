"""``repro lint``: AST-based invariant checking for the reproduction.

Generic linters keep Python honest; this package keeps the *simulator*
honest.  Three rule families guard the guarantees the run engine and the
observability layer rely on:

* **D-rules** (:mod:`repro.lint.rules_determinism`) -- no host
  nondeterminism in simulation code paths, so the same config+seed keeps
  producing byte-identical probe snapshots.
* **P-rules** (:mod:`repro.lint.rules_probes`) -- probe-name hygiene for
  the ~165-probe registry tree, where a typo'd name silently creates a
  fresh zero counter instead of failing.
* **S-rules** (:mod:`repro.lint.rules_schema`) -- the artifact
  fingerprint must cover every configuration knob, and snapshot-shaping
  code must not drift without a ``SCHEMA_VERSION`` / ``CODE_VERSION``
  bump (a silent change poisons the content-addressed run store).

Everything is pure :mod:`ast` analysis over the source tree; no
simulator code is imported or executed.  See ``docs/static-analysis.md``
for the rule catalogue and workflow.
"""

from repro.lint.baseline import Baseline, load_baseline, write_baseline
from repro.lint.engine import Finding, LintEngine, default_rules

__all__ = [
    "Baseline",
    "Finding",
    "LintEngine",
    "default_rules",
    "load_baseline",
    "write_baseline",
]
