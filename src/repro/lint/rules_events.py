"""E rules: span, event-kind, and timeline-column discipline.

The observability layers added in PRs 5-8 rest on three conventions
that were previously enforced only by runtime asserts:

* **E101** -- every ``_span_begin`` must be answered by a matching
  ``_span_end`` on *all* exits.  Two shapes satisfy the contract: a
  lexical end that every CFG path (including exception edges, see
  :mod:`repro.lint.cfg`) from the begin passes through, or an end
  inside a nested function of the same scope -- the deferred
  completion-callback discipline the kernel uses (``_span_end`` fires
  in the ``on_complete`` closure when the frame retires).  A
  ``_span_end`` with no begin in scope is flagged too.
* **E102** -- every event kind passed to ``*.emit(ts, kind, ...)``
  must exist in the ``KINDS`` registry of ``obs/events.py``; a literal
  outside the registry would silently vanish from kind filters and
  exported traces.
* **E103** -- every default :class:`ProbeTimeline` column
  (``DEFAULT_TIMELINE_PROBES``) must resolve against the static probe
  manifest the P rules reconstruct; a stale default column would read
  0.0 forever.

Spans are matched by their constant ``(kind, name)`` prefix: a begin
and an end agree when their leading string-constant arguments agree
(a non-constant tail, e.g. a computed syscall name, matches any).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.lint import cfg as cfg_mod
from repro.lint.engine import Finding, Rule
from repro.lint.rules_probes import manifest_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.engine import FileContext, LintEngine

_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _span_key(call: ast.Call) -> tuple[str, ...]:
    """The constant-string prefix identifying a span call site."""
    out: list[str] = []
    for arg in call.args[:4]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            out.append(arg.value)
        elif out:
            break
    return tuple(out[:2])


def _keys_match(a: tuple[str, ...], b: tuple[str, ...]) -> bool:
    if not a or not b:
        return False
    short, long = (a, b) if len(a) <= len(b) else (b, a)
    return long[:len(short)] == short


def _span_calls(func: ast.FunctionDef | ast.AsyncFunctionDef) \
        -> list[tuple[ast.Call, ast.stmt, str]]:
    """(call, enclosing statement, begin/end) in *func*'s own body."""
    out: list[tuple[ast.Call, ast.stmt, str]] = []

    def scan_expr(node: ast.AST, stmt: ast.stmt) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNC_DEFS + (ast.Lambda,)):
                continue
            if isinstance(child, ast.Call):
                name = None
                if isinstance(child.func, ast.Attribute):
                    name = child.func.attr
                elif isinstance(child.func, ast.Name):
                    name = child.func.id
                if name in ("_span_begin", "_span_end"):
                    out.append((child, stmt,
                                "begin" if name == "_span_begin" else "end"))
            scan_expr(child, stmt)

    def scan_block(body: list[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, _FUNC_DEFS):
                continue
            scan_expr(stmt, stmt)
            for attr in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, attr, None)
                if isinstance(sub, list):
                    scan_block([s for s in sub if isinstance(s, ast.stmt)])
            for handler in getattr(stmt, "handlers", []):
                scan_block(handler.body)

    scan_block(func.body)
    # scan_expr dives into compound statements' condition/iter
    # expressions via the statement itself, and scan_block re-visits
    # nested bodies with the right statement anchor -- dedup keeps the
    # innermost anchor (last write wins below).
    dedup: dict[int, tuple[ast.Call, ast.stmt, str]] = {}
    for call, stmt, role in out:
        dedup[id(call)] = (call, stmt, role)
    return list(dedup.values())


class SpanPairRule(Rule):
    """E101: ``_span_begin`` without a provable ``_span_end``."""

    id = "E101"
    title = "span begin/end pairing on all exits"

    def finalize(self, engine: LintEngine) -> list[Finding]:
        findings: list[Finding] = []
        for ctx in engine.files:
            # Visit every function scope, carrying the chain of
            # enclosing scopes so a closure end can find its begin in
            # the function that deferred it.
            def visit(node: ast.AST,
                      ancestors: tuple[ast.AST, ...]) -> None:
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, _FUNC_DEFS):
                        findings.extend(
                            self._check_scope(ctx, child, ancestors))
                        visit(child, ancestors + (child,))
                    else:
                        visit(child, ancestors)

            visit(ctx.tree, ())
        return findings

    def _check_scope(self, ctx: FileContext,
                     func: ast.FunctionDef | ast.AsyncFunctionDef,
                     ancestors: tuple[ast.AST, ...]) -> list[Finding]:
        calls = _span_calls(func)
        begins = [(c, s) for c, s, role in calls if role == "begin"]
        ends = [(c, s) for c, s, role in calls if role == "end"]
        closure_ends = []
        for nested in ast.walk(func):
            if nested is func or not isinstance(nested, _FUNC_DEFS):
                continue
            for c, _, role in _span_calls(nested):
                if role == "end":
                    closure_ends.append(c)
        out: list[Finding] = []
        for call, stmt in begins:
            key = _span_key(call)
            label = ":".join(key) or "<dynamic>"
            if any(_keys_match(key, _span_key(e)) for e in closure_ends):
                continue  # deferred completion-callback discipline
            barriers = [s for e, s in ends
                        if _keys_match(key, _span_key(e))]
            if not barriers:
                f = self.finding(
                    ctx, call,
                    f"`_span_begin` for `{label}` has no matching "
                    f"`_span_end` in `{func.name}` (neither lexical nor "
                    "in a completion closure)",
                    ident=f"{func.name}:{label}:missing")
                if f is not None:
                    out.append(f)
                continue
            escape = cfg_mod.all_paths_hit(func, stmt, barriers)
            if escape is not None:
                how = "an exception edge" if escape == cfg_mod.RAISE_EXIT \
                    else "a normal exit"
                f = self.finding(
                    ctx, call,
                    f"`_span_begin` for `{label}` can leave "
                    f"`{func.name}` via {how} without passing "
                    "`_span_end`",
                    ident=f"{func.name}:{label}:escape")
                if f is not None:
                    out.append(f)
        # Ends with no begin anywhere in scope (the begin for a closure
        # end legitimately lives in the *enclosing* function).
        enclosing_begins = [_span_key(c) for c, _ in begins]
        for anc in ancestors:
            if isinstance(anc, _FUNC_DEFS):
                enclosing_begins.extend(
                    _span_key(c) for c, _, role in _span_calls(anc)
                    if role == "begin")
        for call, _stmt in ends:
            key = _span_key(call)
            label = ":".join(key) or "<dynamic>"
            if not any(_keys_match(key, b) for b in enclosing_begins):
                f = self.finding(
                    ctx, call,
                    f"`_span_end` for `{label}` in `{func.name}` has no "
                    "matching `_span_begin` in scope",
                    ident=f"{func.name}:{label}:orphan")
                if f is not None:
                    out.append(f)
        return out


class EventKindRule(Rule):
    """E102: emitted event kinds must exist in the kind registry."""

    id = "E102"
    title = "event kinds restricted to the obs/events.py registry"

    def finalize(self, engine: LintEngine) -> list[Finding]:
        kinds, consts = self._registry(engine)
        if kinds is None:
            return []  # tree has no kind registry (e.g. a fixture)
        findings: list[Finding] = []
        for ctx in engine.files:
            local = dict(consts)
            local.update(_module_str_constants(ctx.tree))
            for node in ast.walk(ctx.tree):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "emit"
                        and self._receiver_is_bus(node.func.value)
                        and len(node.args) >= 2):
                    continue
                kind = self._kind_value(node.args[1], local)
                if kind is None or kind in kinds:
                    continue
                f = self.finding(
                    ctx, node,
                    f"event kind {kind!r} is not in the KINDS registry "
                    f"(known: {', '.join(sorted(kinds))})",
                    ident=kind)
                if f is not None:
                    findings.append(f)
        return findings

    @staticmethod
    def _receiver_is_bus(node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in ("events", "bus", "event_bus")
        if isinstance(node, ast.Attribute):
            return node.attr in ("events", "bus", "event_bus")
        return False

    @staticmethod
    def _kind_value(node: ast.expr,
                    consts: dict[str, str]) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return consts.get(node.id)
        return None

    def _registry(self, engine: LintEngine) \
            -> tuple[set[str] | None, dict[str, str]]:
        """(registered kinds, constant name -> kind) from events.py."""
        from repro.lint.rules_faults import _assigned_value
        for ctx in engine.files:
            assert isinstance(ctx.tree, ast.Module)
            consts = _module_str_constants(ctx.tree)
            for node in ctx.tree.body:
                value = _assigned_value(node, "KINDS")
                if isinstance(value, (ast.Tuple, ast.List)):
                    kinds: set[str] = set()
                    for elt in value.elts:
                        if isinstance(elt, ast.Constant) \
                                and isinstance(elt.value, str):
                            kinds.add(elt.value)
                        elif isinstance(elt, ast.Name) \
                                and elt.id in consts:
                            kinds.add(consts[elt.id])
                    return kinds, consts
        return None, {}


class TimelineColumnRule(Rule):
    """E103: default timeline columns must resolve against the probe
    manifest."""

    id = "E103"
    title = "default ProbeTimeline columns resolve in the probe manifest"

    def finalize(self, engine: LintEngine) -> list[Finding]:
        from repro.lint.rules_faults import _assigned_value
        findings: list[Finding] = []
        manifest = None
        for ctx in engine.files:
            assert isinstance(ctx.tree, ast.Module)
            for node in ctx.tree.body:
                value = _assigned_value(node, "DEFAULT_TIMELINE_PROBES")
                if not isinstance(value, (ast.Tuple, ast.List)):
                    continue
                if manifest is None:
                    manifest = manifest_for(engine)
                for elt in value.elts:
                    if not (isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)):
                        continue
                    if manifest.matches(elt.value):
                        continue
                    f = self.finding(
                        ctx, elt,
                        f"default timeline column {elt.value!r} does not "
                        "resolve against the probe manifest (it would "
                        "read 0.0 forever)",
                        ident=elt.value)
                    if f is not None:
                        findings.append(f)
        return findings


def _module_str_constants(tree: ast.Module) -> dict[str, str]:
    out: dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            out[node.targets[0].id] = node.value.value
    return out


def rules() -> list[Rule]:
    return [SpanPairRule(), EventKindRule(), TimelineColumnRule()]
