"""repro: a reproduction of "An Analysis of Operating System Behavior on a
Simultaneous Multithreaded Architecture" (Redstone, Eggers, Levy -- ASPLOS
2000).

The package implements, in pure Python, every system the paper's
measurements depend on:

* :mod:`repro.core` -- the 8-context SMT / out-of-order superscalar core;
* :mod:`repro.memory` -- caches, TLBs, MSHRs, buses, with per-structure
  miss-cause classification and constructive-sharing accounting;
* :mod:`repro.branch` -- McFarling hybrid predictor, BTB, return stacks;
* :mod:`repro.os_model` -- MiniDUX, the synthetic Digital-Unix-4.0d stand-in
  (PAL code, syscalls, VM, scheduler, interrupts, netisr threads);
* :mod:`repro.net` -- simulated NIC and protocol-stack substrate;
* :mod:`repro.workloads` -- the SPECInt95 multiprogram and Apache/SPECWeb96
  workload models;
* :mod:`repro.analysis` -- the canonical experiment runs plus builders for
  every table and figure in the paper's evaluation.

Quickstart::

    from repro.core import Simulation
    from repro.workloads import SpecIntWorkload

    result = Simulation(SpecIntWorkload(), seed=7).run(max_instructions=300_000)
    print(result.ipc)

or, from a shell: ``python -m repro table 6``.
"""

from repro.core import MachineConfig, Simulation
from repro.workloads import ApacheWorkload, SpecIntWorkload

__version__ = "1.0.0"

__all__ = ["MachineConfig", "Simulation", "ApacheWorkload", "SpecIntWorkload",
           "__version__"]
