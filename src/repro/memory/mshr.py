"""Miss status holding registers (MSHRs).

An MSHR file bounds the number of outstanding misses a cache can sustain.
The model tracks entry release times; when the file is full, a new miss must
wait for the earliest release.  The time-weighted occupancy integral yields
the "average number of outstanding misses" rows of the paper's Table 6 --
the direct evidence of SMT's memory-level parallelism.
"""

from __future__ import annotations

import heapq


class MSHRFile:
    """A bounded set of outstanding-miss registers.

    Parameters
    ----------
    name:
        Diagnostic label.
    entries:
        Number of simultaneous outstanding misses supported.
    """

    def __init__(self, name: str, entries: int) -> None:
        if entries < 1:
            raise ValueError(f"{name}: need at least one MSHR entry")
        self.name = name
        self.capacity = entries
        self._releases: list[int] = []  # min-heap of completion times
        # Occupancy integral bookkeeping.
        self._last_time = 0
        self._occupancy_integral = 0.0
        self.allocations = 0
        self.full_stalls = 0

    def acquire(self, now: int, latency: int) -> int:
        """Allocate an entry for a miss issued at *now* lasting *latency*.

        Returns the cycle at which the miss actually starts (equal to *now*
        unless the file was full, in which case the miss waits for the
        earliest release).  The entry is held until start + latency.
        """
        self._advance(now)
        releases = self._releases
        start = now
        if len(releases) >= self.capacity:
            start = releases[0]
            self._advance(start)
            self.full_stalls += 1
        heapq.heappush(releases, start + latency)
        self.allocations += 1
        return start

    def _advance(self, t: int) -> None:
        """Advance the occupancy integral to time *t*, draining entries at
        their release times so occupancy is integrated piecewise."""
        releases = self._releases
        while releases and releases[0] <= t:
            release = releases[0]
            if release > self._last_time:
                self._occupancy_integral += len(releases) * (release - self._last_time)
                self._last_time = release
            heapq.heappop(releases)
        if t > self._last_time:
            self._occupancy_integral += len(releases) * (t - self._last_time)
            self._last_time = t

    def register_probes(self, registry, prefix: str) -> None:
        """Expose allocation/stall counters as derived registry probes."""
        registry.derive(f"{prefix}.allocations", lambda: self.allocations)
        registry.derive(f"{prefix}.full_stalls", lambda: self.full_stalls)

    def outstanding(self, now: int) -> int:
        """Number of misses in flight at *now* (drains completed entries)."""
        self._advance(now)
        return len(self._releases)

    def integral_at(self, now: int) -> float:
        """Occupancy integral advanced to *now* (for windowed averages)."""
        self._advance(now)
        return self._occupancy_integral

    def average_outstanding(self, now: int) -> float:
        """Time-averaged outstanding-miss count over [0, now]."""
        if now <= 0:
            return 0.0
        self._advance(now)
        return self._occupancy_integral / now


class StoreBuffer:
    """A bounded store buffer draining one entry per cycle.

    Stores normally complete immediately into the buffer; when it is full the
    store stalls until the drain frees a slot.  The drain itself is modeled
    as a fixed per-entry interval rather than individual cache writebacks.
    """

    def __init__(self, entries: int, drain_interval: int = 1) -> None:
        if entries < 1:
            raise ValueError("store buffer needs at least one entry")
        self.capacity = entries
        self.drain_interval = drain_interval
        self._releases: list[int] = []
        self.full_stalls = 0

    def push(self, now: int) -> int:
        """Insert a store at *now*; return the cycle the store can complete."""
        releases = self._releases
        while releases and releases[0] <= now:
            heapq.heappop(releases)
        start = now
        if len(releases) >= self.capacity:
            start = releases[0]
            heapq.heappop(releases)
            self.full_stalls += 1
        heapq.heappush(releases, start + self.drain_interval)
        return start

    @property
    def occupancy(self) -> int:
        """Entries currently buffered (may include already-drained ones
        pending lazy cleanup)."""
        return len(self._releases)
