"""The full cache/memory hierarchy of Table 1, glued together.

Latency composition for a data access::

    L1 hit:            l1_hit_latency
    L1 miss, L2 hit:   l1 fill penalty + L1-L2 bus + L2 latency
    L2 miss:           ... + memory bus + memory latency

MSHR files bound the number of outstanding misses per level (a full file
stalls the new miss until the earliest completion), the store buffer bounds
outstanding stores, and the buses add queueing delay under load.  All
structures classify misses and record sharing as described in
:mod:`repro.memory.classify`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.bus import Bus
from repro.memory.cache import Cache
from repro.memory.mshr import MSHRFile, StoreBuffer
from repro.memory.tlb import TLB


@dataclass(frozen=True)
class MemoryConfig:
    """Geometry and latencies of the memory system.

    Defaults are the paper's Table 1 scaled by ``1/8`` in cache capacity
    (see DESIGN.md): workload footprints are scaled down by the same factor
    so that the *pressure regimes* -- and therefore miss-rate ratios,
    conflict shares and sharing effects -- match the paper's, while runs
    stay tractable in pure Python.  Use :meth:`paper_scale` for the
    unscaled geometry.
    """

    line_size: int = 64
    l1i_size: int = 16 * 1024
    l1i_assoc: int = 2
    l1d_size: int = 16 * 1024
    l1d_assoc: int = 2
    l1_hit_latency: int = 1
    l1_fill_penalty: int = 2
    l2_size: int = 2 * 1024 * 1024
    l2_assoc: int = 1
    l2_latency: int = 20
    mem_latency: int = 90
    l1_mshrs: int = 32
    l2_mshrs: int = 32
    store_buffer_entries: int = 32
    l1l2_bus_latency: int = 2
    mem_bus_latency: int = 4
    itlb_entries: int = 128
    dtlb_entries: int = 128
    dcache_ports: int = 2

    @classmethod
    def paper_scale(cls) -> "MemoryConfig":
        """The literal Table 1 geometry (128KB L1s, 16MB L2)."""
        return cls(
            l1i_size=128 * 1024,
            l1d_size=128 * 1024,
            l2_size=16 * 1024 * 1024,
        )


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one hierarchy access."""

    latency: int
    l1_hit: bool
    l2_hit: bool


class MemoryHierarchy:
    """L1 I/D + unified L2 + memory, with TLBs, MSHRs and buses.

    ``registry`` (a :class:`~repro.obs.registry.ProbeRegistry`) exposes
    every structure's counters under ``mem.*`` as snapshot-time derived
    probes; ``events`` (an :class:`~repro.obs.events.EventBus`, default
    ``None``) receives one ``cache`` event per L1/L2 miss.
    """

    def __init__(self, config: MemoryConfig | None = None,
                 registry=None) -> None:
        cfg = config or MemoryConfig()
        self.config = cfg
        self.l1i = Cache("L1I", cfg.l1i_size, cfg.l1i_assoc, cfg.line_size)
        self.l1d = Cache("L1D", cfg.l1d_size, cfg.l1d_assoc, cfg.line_size)
        self.l2 = Cache("L2", cfg.l2_size, cfg.l2_assoc, cfg.line_size)
        self.itlb = TLB("ITLB", cfg.itlb_entries)
        self.dtlb = TLB("DTLB", cfg.dtlb_entries)
        self.l1i_mshr = MSHRFile("L1I-MSHR", cfg.l1_mshrs)
        self.l1d_mshr = MSHRFile("L1D-MSHR", cfg.l1_mshrs)
        self.l2_mshr = MSHRFile("L2-MSHR", cfg.l2_mshrs)
        self.store_buffer = StoreBuffer(cfg.store_buffer_entries)
        self.l1l2_bus = Bus("L1-L2", cfg.l1l2_bus_latency)
        self.mem_bus = Bus("MEM", cfg.mem_bus_latency)
        # D-cache port gate: at most `dcache_ports` accesses per cycle.
        self._port_cycle = -1
        self._port_used = 0
        #: When True, kernel/PAL references bypass (and do not perturb) the
        #: caches -- the paper's Table 9 "Apache only" measurement mode.
        self.omit_kernel_refs = False
        #: Optional EventBus receiving cache-miss events; None = no events.
        self.events = None
        if registry is not None:
            self.register_probes(registry)

    def register_probes(self, registry) -> None:
        """Register the memory layer's probe subtree (``mem.*``)."""
        self.l1i.register_probes(registry, "mem.l1i")
        self.l1d.register_probes(registry, "mem.l1d")
        self.l2.register_probes(registry, "mem.l2")
        self.itlb.register_probes(registry, "mem.itlb")
        self.dtlb.register_probes(registry, "mem.dtlb")
        self.l1i_mshr.register_probes(registry, "mem.mshr.l1i")
        self.l1d_mshr.register_probes(registry, "mem.mshr.l1d")
        self.l2_mshr.register_probes(registry, "mem.mshr.l2")
        self.l1l2_bus.register_probes(registry, "mem.bus.l1l2")
        self.mem_bus.register_probes(registry, "mem.bus.mem")
        registry.derive("mem.store_buffer.full_stalls",
                        lambda: self.store_buffer.full_stalls)

    # -- data side -----------------------------------------------------------

    def _port_start(self, now: int) -> int:
        """Earliest cycle >= now with a free D-cache port."""
        if now > self._port_cycle:
            self._port_cycle = now
            self._port_used = 1
            return now
        # Same (or earlier due to out-of-order issue bookkeeping) cycle.
        if self._port_used < self.config.dcache_ports:
            self._port_used += 1
            return self._port_cycle
        self._port_cycle += 1
        self._port_used = 1
        return self._port_cycle

    def data_access(self, now: int, addr: int, tid: int, kind: int,
                    write: bool = False) -> AccessResult:
        """Access the data side; returns total latency from *now*."""
        cfg = self.config
        if self.omit_kernel_refs and kind:  # ModeKind.KERNEL
            return AccessResult(cfg.l1_hit_latency, True, True)
        start = self._port_start(now)
        queue_delay = start - now
        if self.l1d.access(addr, tid, kind, write):
            return AccessResult(queue_delay + cfg.l1_hit_latency, True, True)
        if self.events is not None:
            self.events.emit(now, "cache", "l1d_miss", tid=tid)
        miss_start = self.l1d_mshr.acquire(start, cfg.l2_latency + cfg.l1l2_bus_latency)
        latency = (miss_start - now) + cfg.l1_fill_penalty
        latency += self.l1l2_bus.request(miss_start)
        if self.l2.access(addr, tid, kind, write):
            return AccessResult(latency + cfg.l2_latency, False, True)
        if self.events is not None:
            self.events.emit(now, "cache", "l2_miss", tid=tid)
        l2_start = self.l2_mshr.acquire(miss_start, cfg.mem_latency + cfg.mem_bus_latency)
        latency += (l2_start - miss_start) + cfg.l2_latency
        latency += self.mem_bus.request(l2_start)
        latency += cfg.mem_latency
        return AccessResult(latency, False, False)

    def store_complete(self, now: int) -> int:
        """Cycle at which a store issued at *now* can retire (buffer gate)."""
        return self.store_buffer.push(now) + 1

    # -- instruction side ---------------------------------------------------

    def inst_access(self, now: int, addr: int, tid: int, kind: int) -> AccessResult:
        """Fetch the line containing *addr*; returns fill latency on miss."""
        cfg = self.config
        if self.omit_kernel_refs and kind:
            return AccessResult(0, True, True)
        if self.l1i.access(addr, tid, kind):
            return AccessResult(0, True, True)
        if self.events is not None:
            self.events.emit(now, "cache", "l1i_miss", tid=tid)
        miss_start = self.l1i_mshr.acquire(now, cfg.l2_latency + cfg.l1l2_bus_latency)
        latency = (miss_start - now) + cfg.l1_fill_penalty
        latency += self.l1l2_bus.request(miss_start)
        if self.l2.access(addr, tid, kind):
            return AccessResult(latency + cfg.l2_latency, False, True)
        l2_start = self.l2_mshr.acquire(miss_start, cfg.mem_latency + cfg.mem_bus_latency)
        latency += (l2_start - miss_start) + cfg.l2_latency
        latency += self.mem_bus.request(l2_start)
        latency += cfg.mem_latency
        return AccessResult(latency, False, False)

    # -- warm-only path (fast-functional tier) -------------------------------

    def warm_inst(self, addr: int, tid: int, kind: int) -> None:
        """Instruction-side reference with state and miss accounting but no
        timing: fills L1I (and L2 on an L1 miss) without MSHR, bus, or
        latency modeling.  The fast-functional tier's I-side access."""
        if self.omit_kernel_refs and kind:
            return
        if not self.l1i.access(addr, tid, kind):
            self.l2.access(addr, tid, kind)

    def warm_data(self, addr: int, tid: int, kind: int,
                  write: bool = False) -> None:
        """Data-side reference with state and miss accounting but no
        timing (no port gate, MSHRs, buses, or store buffer)."""
        if self.omit_kernel_refs and kind:
            return
        if not self.l1d.access(addr, tid, kind, write):
            self.l2.access(addr, tid, kind, write)

    def content_state(self) -> dict:
        """Deterministic summary of every stateful structure's contents,
        hashed into checkpoint state digests (see
        :mod:`repro.core.checkpoint`)."""
        return {
            "l1i": self.l1i.content_state(),
            "l1d": self.l1d.content_state(),
            "l2": self.l2.content_state(),
            "itlb": self.itlb.content_state(),
            "dtlb": self.dtlb.content_state(),
        }

    # -- OS operations -------------------------------------------------------

    def icache_flush(self) -> int:
        """OS instruction-cache flush (issued after instruction-page remaps).

        The paper identifies these flushes -- not index conflicts -- as the
        main source of the OS-induced I-cache miss increase for SPECInt.
        """
        return self.l1i.flush_all()

    def dma_write(self, addr: int, nbytes: int) -> None:
        """Model a device DMA write: invalidate overlapping cache lines.

        Matching the paper, network-interface DMA is *not* routed through
        the memory bus model; only its coherence effect on the caches is
        applied.
        """
        line = self.config.line_size
        for a in range(addr, addr + nbytes, line):
            self.l1d.flush_address(a)
            self.l2.flush_address(a)
