"""Memory-system substrate: caches, TLBs, MSHRs, buses, and the hierarchy.

Every structure classifies its misses by cause the way the paper's Tables 3
and 7 do (compulsory, intrathread conflict, interthread conflict, user/kernel
conflict, OS invalidation) and tracks constructive interthread sharing --
misses *avoided* because another thread prefetched the line -- for Table 8.
"""

from repro.memory.classify import MissCause, ModeKind, mode_kind
from repro.memory.cache import Cache
from repro.memory.tlb import TLB
from repro.memory.mshr import MSHRFile
from repro.memory.bus import Bus
from repro.memory.hierarchy import MemoryHierarchy, AccessResult

__all__ = [
    "MissCause",
    "ModeKind",
    "mode_kind",
    "Cache",
    "TLB",
    "MSHRFile",
    "Bus",
    "MemoryHierarchy",
    "AccessResult",
]
