"""Simple occupancy-based bus model.

Each transfer occupies the bus for a fixed number of cycles; a request
issued while the bus is busy queues behind it.  The paper notes that bus
contention is insignificant for its workloads (~0.25 cycles mean delay per
transaction) -- the model exists so that claim is *measured* rather than
assumed.
"""

from __future__ import annotations


class Bus:
    """A single shared bus with fixed per-transfer occupancy and latency."""

    def __init__(self, name: str, latency: int, occupancy: int = 1) -> None:
        if latency < 0 or occupancy < 1:
            raise ValueError(f"{name}: invalid bus parameters")
        self.name = name
        self.latency = latency
        self.occupancy = occupancy
        self._busy_until = 0
        self.transactions = 0
        self.total_wait = 0

    def request(self, now: int) -> int:
        """Issue a transfer at *now*; return its total added delay.

        The delay is queueing wait (if the bus is busy) plus transfer
        latency.
        """
        wait = max(0, self._busy_until - now)
        start = now + wait
        self._busy_until = start + self.occupancy
        self.transactions += 1
        self.total_wait += wait
        return wait + self.latency

    def register_probes(self, registry, prefix: str) -> None:
        """Expose transaction/wait counters as derived registry probes."""
        registry.derive(f"{prefix}.transactions", lambda: self.transactions)
        registry.derive(f"{prefix}.wait_cycles", lambda: self.total_wait)

    @property
    def mean_wait(self) -> float:
        """Average queueing delay per transaction, in cycles."""
        return self.total_wait / self.transactions if self.transactions else 0.0
