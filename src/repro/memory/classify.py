"""Miss-cause taxonomy shared by caches, TLBs, and the BTB.

The paper distinguishes, for each hardware structure and separately for user
and kernel accesses, misses caused by:

* **intrathread conflicts** -- the accessor itself evicted the entry earlier;
* **interthread conflicts** -- a *different* thread running in the *same*
  mode class evicted it (user/user or kernel/kernel);
* **user-kernel conflicts** -- the evictor ran in the other mode class;
* **invalidation by the OS** -- explicit flushes (I-cache flush on page
  remap, TLB shootdown-style ASN recycling);
* **compulsory** -- first-ever reference to the entry.

PAL-mode activity counts as kernel for these tables, matching the paper's
two-column (user/kernel) presentation.
"""

from __future__ import annotations

import enum

from repro.isa.types import Mode


class MissCause(enum.IntEnum):
    """Why an access missed (see module docstring)."""

    COMPULSORY = 0
    INTRATHREAD = 1
    INTERTHREAD = 2
    USER_KERNEL = 3
    INVALIDATION = 4


class ModeKind(enum.IntEnum):
    """Two-way user/kernel classification used by the miss tables."""

    USER = 0
    KERNEL = 1


def mode_kind(mode: Mode) -> ModeKind:
    """Collapse the three execution modes into the paper's user/kernel split."""
    return ModeKind.USER if mode is Mode.USER else ModeKind.KERNEL


def classify_conflict(
    accessor_tid: int,
    accessor_kind: ModeKind,
    evictor_tid: int,
    evictor_kind: ModeKind,
) -> MissCause:
    """Classify a conflict miss from the identities of accessor and evictor."""
    if accessor_kind != evictor_kind:
        return MissCause.USER_KERNEL
    if accessor_tid == evictor_tid:
        return MissCause.INTRATHREAD
    return MissCause.INTERTHREAD


class MissStats:
    """Per-structure miss accounting, split by user/kernel accessor.

    ``avoided[(misser_kind, filler_kind)]`` counts hits that would have been
    misses but for another thread's earlier fill (constructive sharing).
    """

    __slots__ = ("accesses", "misses", "causes", "avoided")

    def __init__(self) -> None:
        self.accesses = [0, 0]
        self.misses = [0, 0]
        self.causes: dict[tuple[int, int], int] = {}
        self.avoided: dict[tuple[int, int], int] = {}

    def record_access(self, kind: int) -> None:
        self.accesses[kind] += 1

    def record_miss(self, kind: int, cause: int) -> None:
        self.misses[kind] += 1
        key = (kind, cause)
        self.causes[key] = self.causes.get(key, 0) + 1

    def record_avoided(self, misser_kind: int, filler_kind: int) -> None:
        key = (misser_kind, filler_kind)
        self.avoided[key] = self.avoided.get(key, 0) + 1

    # -- derived metrics ----------------------------------------------------

    def miss_rate(self, kind: int | None = None) -> float:
        """Miss rate overall or for one accessor kind, as a fraction."""
        if kind is None:
            acc = sum(self.accesses)
            mis = sum(self.misses)
        else:
            acc = self.accesses[kind]
            mis = self.misses[kind]
        return mis / acc if acc else 0.0

    def cause_shares(self) -> dict[tuple[int, int], float]:
        """Each (kind, cause) bucket as a share of *all* misses (sums to 1)."""
        total = sum(self.misses)
        if not total:
            return {}
        return {k: v / total for k, v in self.causes.items()}

    def avoided_shares(self) -> dict[tuple[int, int], float]:
        """Avoided misses as a fraction of total *actual* misses (Table 8)."""
        total = sum(self.misses)
        if not total:
            return {}
        return {k: v / total for k, v in self.avoided.items()}

    def merge(self, other: "MissStats") -> None:
        """Accumulate *other* into self (used when aggregating windows)."""
        for i in range(2):
            self.accesses[i] += other.accesses[i]
            self.misses[i] += other.misses[i]
        for k, v in other.causes.items():
            self.causes[k] = self.causes.get(k, 0) + v
        for k, v in other.avoided.items():
            self.avoided[k] = self.avoided.get(k, 0) + v
