"""Set-associative cache with LRU replacement, miss classification, and
constructive-sharing tracking.

The cache is a *behavioral* model: an access either hits or misses, and the
caller (the hierarchy) turns that into latency.  What the paper's analysis
needs from it -- and what this class provides -- is faithful replacement
behavior plus per-line ownership history:

* each resident line remembers who filled it and which threads have touched
  it since the fill, so a hit by a thread that never touched the line counts
  as a miss *avoided by interthread prefetching* (Table 8);
* each evicted line address remembers who evicted it, so a later re-miss can
  be classified as an intrathread / interthread / user-kernel conflict or an
  OS invalidation (Tables 3 and 7).
"""

from __future__ import annotations

from repro.memory.classify import MissCause, MissStats

#: Sentinel evictor thread id meaning "removed by an explicit OS flush".
_INVALIDATED = -2

#: Set-index scramble (Fibonacci hashing with a high-bit fold).  The
#: simulator feeds *virtual* addresses to the caches, and every address
#: space is laid out at a power-of-two-aligned base -- so with plain modular
#: indexing all processes would alias into the same sets, something physical
#: page allocation prevents on real machines.  The multiply-and-fold below
#: models pseudo-random physical placement; the fold is what makes the
#: *high* address bits (where address spaces differ) reach the set index.
_PLACEMENT_MULT = 0x9E3779B97F4A7C15


def placement_index(line: int) -> int:
    """Pseudo-random but deterministic line -> placement key."""
    x = line * _PLACEMENT_MULT
    return (x >> 32) ^ x


class _Line:
    """Resident cache line state."""

    __slots__ = ("filler_tid", "filler_kind", "touched")

    def __init__(self, filler_tid: int, filler_kind: int) -> None:
        self.filler_tid = filler_tid
        self.filler_kind = filler_kind
        # Bitmask of thread ids that referenced the line since the fill.
        self.touched = 1 << filler_tid


class Cache:
    """An LRU set-associative cache keyed by line address.

    Parameters
    ----------
    name:
        Diagnostic label ("L1I", "L1D", "L2").
    size:
        Capacity in bytes.
    assoc:
        Ways per set (use ``1`` for the paper's direct-mapped L2).
    line_size:
        Line size in bytes (the paper uses 64 everywhere).
    """

    def __init__(self, name: str, size: int, assoc: int, line_size: int = 64) -> None:
        if size % (assoc * line_size):
            raise ValueError(f"{name}: size must be a multiple of assoc*line_size")
        self.name = name
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.n_sets = size // (assoc * line_size)
        if self.n_sets & (self.n_sets - 1):
            raise ValueError(f"{name}: number of sets must be a power of two")
        self._set_mask = self.n_sets - 1
        self._line_shift = line_size.bit_length() - 1
        if (1 << self._line_shift) != line_size:
            raise ValueError(f"{name}: line size must be a power of two")
        # One insertion-ordered dict per set: line_addr -> _Line (LRU at front).
        self._sets: list[dict[int, _Line]] = [dict() for _ in range(self.n_sets)]
        # Eviction history: line_addr -> (evictor_tid, evictor_kind).
        self._evicted: dict[int, tuple[int, int]] = {}
        # Every line address ever referenced (for compulsory classification).
        self._seen: set[int] = set()
        self.stats = MissStats()
        self.flushes = 0

    # -- core operation -----------------------------------------------------

    def line_of(self, addr: int) -> int:
        """Line address (tag+index) containing *addr*."""
        return addr >> self._line_shift

    def access(self, addr: int, tid: int, kind: int, write: bool = False) -> bool:
        """Reference *addr*; fill on miss.  Returns True on hit.

        ``kind`` is a :class:`~repro.memory.classify.ModeKind` value (user /
        kernel).  ``write`` is accepted for interface symmetry; this model is
        write-allocate and does not distinguish dirtiness.
        """
        line = addr >> self._line_shift
        s = self._sets[placement_index(line) & self._set_mask]
        entry = s.get(line)
        stats = self.stats
        stats.accesses[kind] += 1
        if entry is not None:
            # LRU update: move to the back of the insertion order.
            del s[line]
            s[line] = entry
            bit = 1 << tid
            if not entry.touched & bit:
                # First touch by this thread since the fill: the fill by
                # another thread prefetched the line for us.
                stats.record_avoided(kind, entry.filler_kind)
                entry.touched |= bit
            return True
        # Miss: classify, then fill.
        self._classify_miss(line, tid, kind)
        if len(s) >= self.assoc:
            victim_line = next(iter(s))
            del s[victim_line]
            self._evicted[victim_line] = (tid, kind)
        s[line] = _Line(tid, kind)
        self._seen.add(line)
        return False

    def probe(self, addr: int) -> bool:
        """Non-destructive presence check (no stats, no LRU update)."""
        line = addr >> self._line_shift
        return line in self._sets[placement_index(line) & self._set_mask]

    def _classify_miss(self, line: int, tid: int, kind: int) -> None:
        stats = self.stats
        if line not in self._seen:
            stats.record_miss(kind, MissCause.COMPULSORY)
            return
        record = self._evicted.get(line)
        if record is None:
            # Referenced before but no eviction record (e.g. cleared by a
            # full flush that pre-dates history): treat as invalidation.
            stats.record_miss(kind, MissCause.INVALIDATION)
            return
        evictor_tid, evictor_kind = record
        if evictor_tid == _INVALIDATED:
            stats.record_miss(kind, MissCause.INVALIDATION)
        elif kind != evictor_kind:
            stats.record_miss(kind, MissCause.USER_KERNEL)
        elif tid == evictor_tid:
            stats.record_miss(kind, MissCause.INTRATHREAD)
        else:
            stats.record_miss(kind, MissCause.INTERTHREAD)

    # -- OS-visible operations ------------------------------------------------

    def flush_all(self) -> int:
        """Explicit OS flush of the whole cache (Alpha IMB-style).

        Every resident line is discarded and will classify a later re-miss
        as :data:`MissCause.INVALIDATION`.  Returns the number of lines
        discarded.
        """
        dropped = 0
        for s in self._sets:
            for line in s:
                self._evicted[line] = (_INVALIDATED, 0)
                dropped += 1
            s.clear()
        self.flushes += 1
        return dropped

    def flush_address(self, addr: int) -> bool:
        """Invalidate the single line containing *addr* if present."""
        line = addr >> self._line_shift
        s = self._sets[placement_index(line) & self._set_mask]
        if line in s:
            del s[line]
            self._evicted[line] = (_INVALIDATED, 0)
            return True
        return False

    # -- observability -----------------------------------------------------

    def content_state(self) -> list:
        """Deterministic content summary for checkpoint state digests:
        per set, the resident lines in LRU order with their filler
        attribution and sharing mask."""
        return [
            [[line, e.filler_tid, e.filler_kind, e.touched]
             for line, e in s.items()]
            for s in self._sets
        ]

    def register_probes(self, registry, prefix: str) -> None:
        """Expose this cache's counters in a probe registry (derived
        probes only: the access hot path is untouched)."""
        from repro.obs.registry import register_miss_stats

        register_miss_stats(registry, prefix, self.stats)
        registry.derive(f"{prefix}.flushes", lambda: self.flushes)

    # -- introspection -----------------------------------------------------

    @property
    def resident_lines(self) -> int:
        """Number of lines currently resident."""
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Cache {self.name} {self.size // 1024}KB {self.assoc}-way "
            f"{self.n_sets} sets, miss rate {self.stats.miss_rate():.3%}>"
        )
