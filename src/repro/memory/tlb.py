"""Translation lookaside buffers with address-space numbers (ASNs).

The Alpha tags TLB entries with an ASN so that multiple address spaces can
share the TLB without flushing on context switch.  On an SMT the TLB is
shared *simultaneously* by all hardware contexts -- the very property that
forced the paper's OS modifications -- so entries here are keyed by
``(asn, vpn)`` and carry the same ownership history as cache lines for miss
classification and constructive-sharing accounting.

Unlike the caches, a TLB miss is handled by *software* (PAL code): the probe
and the fill are therefore separate operations, with the kernel's refill
handler running in between.
"""

from __future__ import annotations

from repro.isa.data import PAGE_SHIFT
from repro.memory.classify import MissCause, MissStats

#: ASN used for kernel global mappings, shared by every thread.
KERNEL_ASN = 0

_INVALIDATED = -2


class _Entry:
    __slots__ = ("filler_tid", "filler_kind", "touched")

    def __init__(self, filler_tid: int, filler_kind: int) -> None:
        self.filler_tid = filler_tid
        self.filler_kind = filler_kind
        self.touched = 1 << filler_tid


class TLB:
    """Fully associative, LRU, ASN-tagged translation buffer."""

    def __init__(self, name: str, entries: int) -> None:
        if entries < 1:
            raise ValueError(f"{name}: need at least one entry")
        self.name = name
        self.capacity = entries
        # Insertion-ordered: LRU entry at the front.
        self._entries: dict[tuple[int, int], _Entry] = {}
        self._evicted: dict[tuple[int, int], tuple[int, int]] = {}
        self._seen: set[tuple[int, int]] = set()
        self.stats = MissStats()
        self.asn_flushes = 0

    @staticmethod
    def vpn_of(addr: int) -> int:
        """Virtual page number containing *addr*."""
        return addr >> PAGE_SHIFT

    def probe(self, vpn: int, asn: int, tid: int, kind: int) -> bool:
        """Look up a translation; record the access.  True on hit.

        A miss is classified immediately but **not** filled: on real
        hardware the PAL refill handler runs first, then installs the entry
        via :meth:`fill`.
        """
        key = (asn, vpn)
        entry = self._entries.get(key)
        stats = self.stats
        stats.accesses[kind] += 1
        if entry is not None:
            del self._entries[key]
            self._entries[key] = entry
            bit = 1 << tid
            if not entry.touched & bit:
                stats.record_avoided(kind, entry.filler_kind)
                entry.touched |= bit
            return True
        self._classify_miss(key, tid, kind)
        return False

    def lookup(self, vpn: int, asn: int) -> bool:
        """Presence check without stats or LRU effects."""
        return (asn, vpn) in self._entries

    def fill(self, vpn: int, asn: int, tid: int, kind: int) -> None:
        """Install a translation (the tail end of the miss handler)."""
        key = (asn, vpn)
        if key in self._entries:
            return
        if len(self._entries) >= self.capacity:
            victim_key = next(iter(self._entries))
            del self._entries[victim_key]
            self._evicted[victim_key] = (tid, kind)
        self._entries[key] = _Entry(tid, kind)
        self._seen.add(key)

    def _classify_miss(self, key: tuple[int, int], tid: int, kind: int) -> None:
        stats = self.stats
        if key not in self._seen:
            stats.record_miss(kind, MissCause.COMPULSORY)
            return
        record = self._evicted.get(key)
        if record is None:
            stats.record_miss(kind, MissCause.INVALIDATION)
            return
        evictor_tid, evictor_kind = record
        if evictor_tid == _INVALIDATED:
            stats.record_miss(kind, MissCause.INVALIDATION)
        elif kind != evictor_kind:
            stats.record_miss(kind, MissCause.USER_KERNEL)
        elif tid == evictor_tid:
            stats.record_miss(kind, MissCause.INTRATHREAD)
        else:
            stats.record_miss(kind, MissCause.INTERTHREAD)

    # -- OS-visible operations ------------------------------------------------

    def flush_asn(self, asn: int) -> int:
        """Invalidate every entry tagged with *asn* (ASN recycling).

        Returns the number of entries dropped; later re-misses classify as
        OS invalidations.
        """
        victims = [key for key in self._entries if key[0] == asn]
        for key in victims:
            del self._entries[key]
            self._evicted[key] = (_INVALIDATED, 0)
        if victims:
            self.asn_flushes += 1
        return len(victims)

    def flush_all(self) -> int:
        """Invalidate the entire TLB."""
        n = len(self._entries)
        for key in self._entries:
            self._evicted[key] = (_INVALIDATED, 0)
        self._entries.clear()
        if n:
            self.asn_flushes += 1
        return n

    def content_state(self) -> list:
        """Deterministic content summary for checkpoint state digests:
        the resident translations in LRU order."""
        return [
            [asn, vpn, e.filler_tid, e.filler_kind]
            for (asn, vpn), e in self._entries.items()
        ]

    # -- observability -----------------------------------------------------

    def register_probes(self, registry, prefix: str) -> None:
        """Expose this TLB's counters as derived registry probes."""
        from repro.obs.registry import register_miss_stats

        register_miss_stats(registry, prefix, self.stats)
        registry.derive(f"{prefix}.asn_flushes", lambda: self.asn_flushes)

    @property
    def occupancy(self) -> int:
        """Number of valid entries."""
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TLB {self.name} {self.occupancy}/{self.capacity} "
            f"miss rate {self.stats.miss_rate():.3%}>"
        )
