"""Workload protocol."""

from __future__ import annotations

import abc
import random

from repro.memory.hierarchy import MemoryHierarchy
from repro.os_model.kernel import MiniDUX


class Workload(abc.ABC):
    """Something that can be booted onto a simulated machine.

    ``setup`` creates processes, kernel threads, and devices on the given
    MiniDUX instance.  A workload instance must not be shared between
    simulations -- construct a fresh one per :class:`~repro.core.Simulation`.
    """

    name: str = "workload"

    @abc.abstractmethod
    def setup(self, os: MiniDUX, hierarchy: MemoryHierarchy, rng: random.Random) -> None:
        """Instantiate the workload on *os*."""

    def warmed_up(self, os: MiniDUX) -> bool:
        """True once the workload has left its start-up phase.

        The analysis layer snapshots counters at this boundary to produce
        the paper's start-up vs steady-state windows.
        """
        return True
