"""SPECWeb96-like client model.

SPECWeb96 requests files from four size classes (0: <1KB, 1: 1-10KB,
2: 10-100KB, 3: 100KB-1MB) with access weights 35/50/14/1%, nine files per
class.  The paper drives Apache with 128 clients (two driver processes of
64) paced by the simulation itself; here the clients are a closed-loop
in-process device: each client sends a request, waits for the full
response, ACKs data as it arrives, thinks, and repeats -- so offered load
self-regulates at server saturation exactly as in the paper's lock-stepped
setup.

File sizes are scaled down by ``scale_div`` (default 8) together with the
cache geometry; see DESIGN.md.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass

from repro.net.packets import Packet
from repro.net.stack import NetworkStack

#: SPECWeb96 class base sizes in bytes and access mix.
_CLASS_BASE = (102, 1024, 10240, 102400)
_CLASS_WEIGHTS = (0.35, 0.50, 0.14, 0.01)
_FILES_PER_CLASS = 9


@dataclass(frozen=True)
class SpecWebFile:
    """One file of the SPECWeb96 file set."""

    file_id: int
    size: int
    offset: int  # byte offset of its extent in the kernel file cache


class SpecWebFileSet:
    """The scaled SPECWeb96 file set, laid out in the kernel file cache."""

    def __init__(self, filecache_region, scale_div: int = 8) -> None:
        if scale_div < 1:
            raise ValueError("scale_div must be >= 1")
        self.scale_div = scale_div
        self.files: list[SpecWebFile] = []
        offset = 0
        capacity = filecache_region.size
        for cls_index, base in enumerate(_CLASS_BASE):
            for i in range(_FILES_PER_CLASS):
                size = max(128, (base * (i + 1)) // scale_div)
                self.files.append(
                    SpecWebFile(cls_index * _FILES_PER_CLASS + i, size, offset % capacity)
                )
                offset += size
        self._region = filecache_region
        # Within a class, smaller-indexed files are more popular (Zipf-ish).
        self._intra_weights = [1.0 / (i + 1) for i in range(_FILES_PER_CLASS)]

    def pick(self, rng: random.Random) -> SpecWebFile:
        """Draw a file according to the SPECWeb96 class and file mix."""
        cls_index = rng.choices(range(len(_CLASS_BASE)), _CLASS_WEIGHTS)[0]
        i = rng.choices(range(_FILES_PER_CLASS), self._intra_weights)[0]
        return self.files[cls_index * _FILES_PER_CLASS + i]

    def by_id(self, file_id: int) -> SpecWebFile:
        return self.files[file_id]

    def extent_address(self, file_id: int) -> int:
        """File-cache physical address of the file's first byte."""
        return self._region.base + self.files[file_id].offset


class SpecWebClients:
    """Closed-loop client population driving the server through the NIC."""

    def __init__(
        self,
        os,
        stack: NetworkStack,
        fileset: SpecWebFileSet,
        rng: random.Random,
        n_clients: int = 128,
        think_mean: int = 20_000,
        request_size: int = 300,
        ack_per_packet: float = 1.0,
        rampup: int = 120_000,
    ) -> None:
        self.os = os
        self.stack = stack
        self.fileset = fileset
        self.rng = rng
        self.n_clients = n_clients
        self.think_mean = think_mean
        self.request_size = request_size
        self.ack_per_packet = ack_per_packet
        stack.remote_rx = self.receive
        # (due_time, client_id) heap.  Clients ramp up over a window, the
        # way a benchmark run brings load online, so the server is not hit
        # by every client's first request while its processes are cold.
        self._due: list[tuple[int, int]] = [
            (rng.randrange(1, max(2, rampup)), c) for c in range(n_clients)
        ]
        heapq.heapify(self._due)
        self._expecting: dict[int, int] = {}  # conn_id -> client_id
        self.requests_sent = 0
        self.responses_completed = 0
        os.devices.append(self)

    def tick(self, now: int) -> None:
        """Issue requests for every client whose think time has elapsed."""
        due = self._due
        while due and due[0][0] <= now:
            _, client = heapq.heappop(due)
            self._send_request(client)

    def _send_request(self, client: int) -> None:
        f = self.fileset.pick(self.rng)
        conn = self.stack.new_connection(client, f.file_id, self.request_size)
        self._expecting[conn.conn_id] = client
        self.stack.nic.inject(Packet(conn.conn_id, self.request_size, "req"))
        self.requests_sent += 1

    def receive(self, packet: Packet) -> None:
        """Server-transmitted packet arrives at its client (zero latency)."""
        client = self._expecting.get(packet.conn_id)
        if client is None:
            return
        if packet.kind == "resp" and self.rng.random() < self.ack_per_packet:
            self.stack.nic.inject(Packet(packet.conn_id, 40, "ack"))
        conn = self.stack.connections.get(packet.conn_id)
        if conn is None:
            return
        conn.bytes_sent += packet.size
        if conn.bytes_to_send and conn.bytes_sent >= conn.bytes_to_send:
            # Response complete: think, then request again.
            del self._expecting[packet.conn_id]
            self.responses_completed += 1
            # Connection teardown: the client's FIN exercises the receive
            # protocol path one more time.
            self.stack.nic.inject(Packet(packet.conn_id, 40, "fin"))
            think = max(200, int(self.rng.expovariate(1.0 / self.think_mean)))
            heapq.heappush(self._due, (self.os.now + think, client))
