"""The Apache / SPECWeb96 workload model.

Sixty-four server processes (the paper's Apache configuration) share one
text segment and loop over the request cycle the paper profiles in its
Figure 7: ``accept`` -> read request -> parse -> ``stat`` (twice, the way
Apache walks the path) -> ``open`` -> read or ``smmap`` the file ->
``writev`` the response (with per-packet TCP transmit processing) -> append
to the access log -> ``close``.  Requests arrive from the closed-loop
SPECWeb client model through the NIC / interrupt / netisr path.

The mix of the user-mode portions is calibrated to the user column of the
paper's Table 5 (loads 21.8%, stores 10.1%, branches 16.7%, no floating
point, conditional-taken 54%).
"""

from __future__ import annotations

import random

from repro.isa.code import CodeModel, CodeModelConfig, SegmentSpec
from repro.isa.data import PAGE_SIZE, Region
from repro.isa.mix import BranchProfile, InstructionMix
from repro.net.packets import Packet, segment
from repro.net.stack import NetworkStack
from repro.os_model.address_space import AddressSpace
from repro.os_model.kernel import MiniDUX
from repro.workloads.base import Workload
from repro.workloads.specweb import SpecWebClients, SpecWebFileSet

#: Files at or above this (scaled) size are served via mmap + writev; the
#: rest via read + writev.  Drives the paper's smmap/munmap syscall share.
MMAP_THRESHOLD = 2048

APACHE_MIX = InstructionMix(
    load=0.218,
    store=0.101,
    branch=0.167,
    fp=0.0,
    branches=BranchProfile(
        uncond=0.129, indirect=0.103, call=0.03, ret=0.03, cond_taken=0.54,
        indirect_targets=3,
    ),
)


class ApacheWorkload(Workload):
    """Apache 1.3-like multi-process web server under SPECWeb96-like load."""

    name = "apache"

    def __init__(
        self,
        n_servers: int = 64,
        n_clients: int = 128,
        n_netisr: int = 4,
        think_mean: int = 20_000,
        scale_div: int = 8,
        netisr_cost: int = 2400,
        coalesce_interval: int = 4000,
        rampup: int = 120_000,
    ) -> None:
        self.n_servers = n_servers
        self.n_clients = n_clients
        self.n_netisr = n_netisr
        self.think_mean = think_mean
        self.scale_div = scale_div
        self.netisr_cost = netisr_cost
        self.coalesce_interval = coalesce_interval
        self.rampup = rampup
        self.stack: NetworkStack | None = None
        self.clients: SpecWebClients | None = None
        self.fileset: SpecWebFileSet | None = None
        self.threads = []
        #: Completed responses before the steady-state window opens.
        self.warmup_responses = 12

    def warmed_up(self, os) -> bool:
        """Apache has effectively no start-up: the steady window opens
        once a couple of dozen requests have completed end to end."""
        return (
            self.clients is not None
            and self.clients.responses_completed >= self.warmup_responses
        )

    def setup(self, os: MiniDUX, hierarchy, rng: random.Random) -> None:
        self.stack = NetworkStack(
            os, random.Random(rng.randrange(1 << 30)),
            n_netisr=self.n_netisr, netisr_cost=self.netisr_cost,
            coalesce_interval=self.coalesce_interval,
        )
        self.fileset = SpecWebFileSet(os.reg_filecache, scale_div=self.scale_div)
        self.clients = SpecWebClients(
            os, self.stack, self.fileset, random.Random(rng.randrange(1 << 30)),
            n_clients=self.n_clients, think_mean=self.think_mean,
            rampup=self.rampup,
        )
        # Forked server processes share the Apache text and -- via
        # copy-on-write -- most static data (configuration, mime tables,
        # scoreboards).  One shared region models those pages; without it,
        # 64 disjoint per-process footprints would swamp the L2 in a way
        # real Apache does not.
        shared_static = Region(
            "apache:static", 0x8_1000_0000, 48, 8, hot_lines=64,
            weight=0.9, p_seq=0.35, p_hot=0.995, shared=True)
        text = CodeModel(CodeModelConfig(
            "apache", 0x8_0000_0000 + 0x1_0000, APACHE_MIX,
            segments=(SegmentSpec("main", 2600, 96),),
            cold_excursion=0.015,
            return_to_hot=0.75,
            seed=rng.randrange(1 << 30),
        ))
        log_extent = os.reg_filecache.base + int(os.reg_filecache.size * 0.45)
        for i in range(self.n_servers):
            address_space = AddressSpace(pid=i, name=f"httpd{i}")
            heap = address_space.region(
                "heap", 0x40_0000, 8, 5, hot_lines=12, weight=0.5,
                p_seq=0.3, p_hot=0.999)
            address_space.regions.append(shared_static)
            address_space.region(
                "stack", 0x1000_0000, 4, 2, hot_lines=8, weight=0.6,
                p_seq=0.3, p_hot=0.999)
            io = address_space.region(
                "io", 0x2000_0000, 4, 3, hot_lines=10, weight=0.4, p_hot=0.999)
            mmap_area = address_space.region(
                "mmap", 0x3000_0000, 32, 2, hot_lines=8, weight=0.0)
            brng = random.Random(rng.randrange(1 << 30))

            def factory(thread, heap=heap, io=io, mmap_area=mmap_area,
                        brng=brng, log_extent=log_extent):
                return _server_behavior(
                    thread, self.stack, self.fileset, os, io, mmap_area,
                    log_extent, brng)

            thread = os.create_process(f"httpd{i}", i, text, address_space, factory)
            self.threads.append(thread)


def _server_behavior(thread, stack: NetworkStack, fileset: SpecWebFileSet,
                     os: MiniDUX, io, mmap_area, log_extent: int,
                     rng: random.Random):
    """One Apache server process's request loop."""
    slot: dict = {}
    iteration = 0
    marked = False
    while True:
        iteration += 1
        if iteration % 6 == 0:
            yield ("syscall", "select", {})

        def grab(slot=slot):
            slot["conn"] = stack.pop_pending_accept()

        yield ("syscall", "accept", {
            "block_if": lambda: not stack.has_pending_accept(),
            "queue": "accept",
            "on_done": grab,
        })
        conn = slot.pop("conn", None)
        if conn is None:
            continue
        if not marked:
            marked = True
            yield ("mark", "steady")
        f = fileset.by_id(conn.file_id)
        sb = stack.socket_buffer_address(conn.conn_id)
        io_addr = io.base + (iteration % 4) * PAGE_SIZE

        # Read and parse the HTTP request.
        yield ("compute", max(120, int(rng.gauss(450, 120))))
        yield ("syscall", "sock_read", {
            "nbytes": conn.request_size,
            "copy": (sb, io_addr, False, False),
        })
        yield ("compute", max(300, int(rng.gauss(1600, 350))))

        # Path walk: Apache stats the translated filename (and often the
        # directory), then opens.
        yield ("syscall", "stat", {})
        yield ("syscall", "stat", {})
        yield ("syscall", "open", {})
        yield ("compute", max(150, int(rng.gauss(700, 180))))

        response = f.size + 300  # headers + body
        conn.bytes_to_send = response
        if f.size >= MMAP_THRESHOLD:
            map_addr = mmap_area.base + (f.file_id * 16 * PAGE_SIZE) % (
                mmap_area.size // 2)
            yield ("syscall", "smmap", {
                "on_done": lambda: os.vm.record_incursion("mmap_map"),
            })
            src = map_addr
        else:
            map_addr = None
            disk = rng.random() < 0.08
            yield ("syscall", "read", {
                "nbytes": f.size,
                "copy": (fileset.extent_address(f.file_id), io_addr, True, False),
                "disk": disk,
                "dma": (fileset.extent_address(f.file_id), f.size) if disk else None,
            })
            src = io_addr

        # Build the response headers in user mode, then transmit.
        yield ("compute", max(200, int(rng.gauss(1400, 320))))
        # Transmit: one TCP output pass per packet, then hand to the link.
        sizes = segment(response)
        post_frames = []
        for j, size in enumerate(sizes):
            pkt = Packet(conn.conn_id, size, "resp")
            post_frames.append((
                "nettx",
                max(80, int(rng.gauss(420, 100))),
                (lambda pkt=pkt: stack.transmit(pkt)),
            ))
        yield ("syscall", "writev", {
            "nbytes": response,
            "copy": (src, sb, False, False),
            "post_frames": post_frames,
        })
        if map_addr is not None:
            pages = (f.size + PAGE_SIZE - 1) // PAGE_SIZE

            def unmap(map_addr=map_addr, pages=pages, pid=thread.process.pid):
                os.vm.release_range(pid, map_addr, pages)

            yield ("syscall", "munmap", {"on_done": unmap})

        # Access-log append, then tear down.
        yield ("syscall", "write", {
            "nbytes": 96,
            "copy": (io_addr, log_extent, False, True),
        })
        yield ("syscall", "close", {
            "on_done": (lambda conn_id=conn.conn_id: stack.close(conn_id)),
        })
