"""User-configurable synthetic workloads.

The SPECInt and Apache models are calibrated reproductions of the paper's
workloads; this module exposes the same machinery as a general-purpose
building kit, so downstream users can compose their own multiprogrammed or
client/server experiments:

::

    from repro.workloads.synthetic import SyntheticProgram, SyntheticWorkload

    wl = SyntheticWorkload([
        SyntheticProgram("pointer-chaser", load=0.3, dep_heavy=True,
                         heap_pages=24, syscall_rate=0.0),
        SyntheticProgram("logger", store=0.2, syscall_rate=0.02,
                         syscall="write"),
    ] * 4)
    result = Simulation(wl).run(max_instructions=200_000)
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.isa.code import CodeModel, CodeModelConfig, SegmentSpec
from repro.isa.mix import DEFAULT_DEP_PROB, BranchProfile, InstructionMix
from repro.isa.types import InstrType
from repro.os_model.address_space import AddressSpace
from repro.os_model.kernel import MiniDUX
from repro.os_model.syscalls import SYSCALL_CATALOG
from repro.workloads.base import Workload


@dataclass(frozen=True)
class SyntheticProgram:
    """Parameters of one synthetic process.

    ``syscall_rate`` is the probability, per compute chunk, of issuing the
    named system call; ``dep_heavy`` raises the register-dependence density
    (serializing the instruction stream, like pointer chasing).
    """

    name: str
    load: float = 0.20
    store: float = 0.10
    branch: float = 0.15
    fp: float = 0.02
    cond_taken: float = 0.65
    n_blocks: int = 1200
    hot_blocks: int = 48
    heap_pages: int = 16
    heap_hot_pages: int = 10
    heap_hot_lines: int = 12
    compute_chunk: int = 4000
    syscall_rate: float = 0.0
    syscall: str = "getpid"
    dep_heavy: bool = False
    touch_pages_on_start: int = 4

    def __post_init__(self) -> None:
        if self.syscall not in SYSCALL_CATALOG:
            raise ValueError(f"unknown system call {self.syscall!r}")
        if not 0.0 <= self.syscall_rate <= 1.0:
            raise ValueError("syscall_rate must be a probability")

    def mix(self) -> InstructionMix:
        dep_prob = dict(DEFAULT_DEP_PROB)
        if self.dep_heavy:
            dep_prob = {k: min(0.95, v + 0.3) for k, v in dep_prob.items()}
            dep_prob[InstrType.LOAD] = 0.8
        return InstructionMix(
            load=self.load, store=self.store, branch=self.branch, fp=self.fp,
            branches=BranchProfile(cond_taken=self.cond_taken),
            dep_prob=dep_prob,
        )


class SyntheticWorkload(Workload):
    """A multiprogram of :class:`SyntheticProgram` descriptions."""

    name = "synthetic"

    def __init__(self, programs: list[SyntheticProgram]) -> None:
        if not programs:
            raise ValueError("need at least one program")
        self.programs = list(programs)
        self.threads = []

    def warmed_up(self, os: MiniDUX) -> bool:
        return all(
            os.thread_phase.get(f"{p.name}#{i}") == "steady"
            for i, p in enumerate(self.programs)
        )

    def setup(self, os: MiniDUX, hierarchy, rng: random.Random) -> None:
        for pid, profile in enumerate(self.programs):
            name = f"{profile.name}#{pid}"
            address_space = AddressSpace(pid=pid, name=name)
            heap = address_space.region(
                "heap", 0x40_0000, profile.heap_pages, profile.heap_hot_pages,
                hot_lines=profile.heap_hot_lines, p_seq=0.35, p_hot=0.995,
            )
            address_space.region(
                "stack", 0x1000_0000, 4, 2, hot_lines=6, weight=0.5,
                p_seq=0.3, p_hot=0.999,
            )
            code = CodeModel(CodeModelConfig(
                f"synthetic:{name}",
                address_space.base + 0x1_0000,
                profile.mix(),
                segments=(SegmentSpec("main", profile.n_blocks, profile.hot_blocks),),
                cold_excursion=0.02,
                seed=rng.randrange(1 << 30),
            ))
            brng = random.Random(rng.randrange(1 << 30))

            def factory(thread, profile=profile, heap=heap, brng=brng):
                return _behavior(thread, profile, heap, brng)

            self.threads.append(
                os.create_process(name, pid, code, address_space, factory))


def _behavior(thread, profile: SyntheticProgram, heap, rng: random.Random):
    yield ("mark", "startup")
    # Touch an initial slice of the heap so the working set exists.
    for page in range(profile.touch_pages_on_start):
        yield ("compute", 600, {"scan": (heap.base + page * 8192, 4096)})
    yield ("mark", "steady")
    while True:
        yield ("compute", profile.compute_chunk)
        if profile.syscall_rate and rng.random() < profile.syscall_rate:
            yield ("syscall", profile.syscall, {})
