"""Workload models: the multiprogrammed SPECInt95 stand-in and the Apache /
SPECWeb96 web-serving stand-in, built from stochastic programs calibrated to
the paper's published instruction mixes and behavior profiles."""

from repro.workloads.base import Workload
from repro.workloads.specint import SpecIntWorkload, SPECINT_PROGRAMS
from repro.workloads.apache import ApacheWorkload
from repro.workloads.specweb import SpecWebFileSet, SpecWebClients

__all__ = [
    "Workload",
    "SpecIntWorkload",
    "SPECINT_PROGRAMS",
    "ApacheWorkload",
    "SpecWebFileSet",
    "SpecWebClients",
]
