"""The multiprogrammed SPECInt95 workload model.

Eight stochastic programs stand in for the eight SPEC95 integer benchmarks.
Each has its own text (code model), address space, and working-set profile,
calibrated around the user columns of the paper's Table 2 (loads ~20%,
stores ~10%, branches ~15%, a few percent floating point, conditional-taken
rate in the high 60s).

Behavior follows the paper's observed phase structure:

* **start-up**: process creation (execve/brk), input-file reads through the
  file system (the paper's Figure 4 shows ``read`` dominating start-up
  syscall time), and an initialization sweep that first-touches the heap --
  generating the DTLB-miss / page-allocation surge of Figures 1-3;
* **steady state**: long computation stretches over a stabilized working
  set, with occasional output writes -- OS activity falls to a few percent,
  dominated by TLB refills.

Programs mark their phase transition with a ``("mark", "steady")``
directive so the analysis layer can split windows exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.isa.code import CodeModel, CodeModelConfig, SegmentSpec
from repro.isa.data import PAGE_SIZE
from repro.isa.mix import BranchProfile, InstructionMix
from repro.os_model.address_space import AddressSpace
from repro.os_model.kernel import MiniDUX
from repro.workloads.base import Workload


@dataclass(frozen=True)
class ProgramProfile:
    """Working-set and mix parameters for one synthetic SPECInt program."""

    name: str
    load: float = 0.20
    store: float = 0.10
    branch: float = 0.15
    fp: float = 0.025
    cond_taken: float = 0.66
    n_blocks: int = 1800
    hot_blocks: int = 56
    heap_pages: int = 16
    heap_hot_pages: int = 13
    heap_hot_lines: int = 10
    p_seq: float = 0.30
    p_hot: float = 0.99
    startup_files: int = 2
    file_bytes: int = 1536
    startup_scan_pages: int = 8
    compute_chunk: int = 5000


#: Per-benchmark flavor: code size, data size, branchiness, FP content.
SPECINT_PROGRAMS: tuple[ProgramProfile, ...] = (
    ProgramProfile("gcc", n_blocks=3200, hot_blocks=84, heap_pages=24,
                   heap_hot_pages=12, heap_hot_lines=14, startup_files=3),
    ProgramProfile("go", branch=0.165, cond_taken=0.62, n_blocks=2200,
                   hot_blocks=66, fp=0.01),
    ProgramProfile("li", load=0.23, store=0.12, n_blocks=900, hot_blocks=42,
                   heap_pages=14, heap_hot_pages=10, heap_hot_lines=10, fp=0.0),
    ProgramProfile("perl", n_blocks=2600, hot_blocks=72, heap_pages=20,
                   startup_files=3, fp=0.01),
    ProgramProfile("compress", load=0.22, store=0.13, branch=0.13,
                   n_blocks=600, hot_blocks=27, heap_pages=24,
                   heap_hot_pages=12, heap_hot_lines=8, p_seq=0.6, fp=0.0),
    ProgramProfile("m88ksim", n_blocks=1600, hot_blocks=50, fp=0.03),
    ProgramProfile("ijpeg", load=0.21, branch=0.12, cond_taken=0.72,
                   n_blocks=1200, hot_blocks=40, fp=0.08, p_seq=0.55),
    ProgramProfile("vortex", load=0.22, store=0.12, n_blocks=2800,
                   hot_blocks=78, heap_pages=28, heap_hot_pages=14,
                   heap_hot_lines=12, startup_files=3),
)


class SpecIntWorkload(Workload):
    """All eight SPECInt95-like programs, multiprogrammed."""

    name = "specint"

    def __init__(self, programs: tuple[ProgramProfile, ...] = SPECINT_PROGRAMS) -> None:
        self.programs = programs
        self.threads = []

    def warmed_up(self, os: MiniDUX) -> bool:
        """Start-up ends when every program has marked itself steady."""
        return all(
            os.thread_phase.get(p.name) == "steady" for p in self.programs
        )

    def setup(self, os: MiniDUX, hierarchy, rng: random.Random) -> None:
        for pid, profile in enumerate(self.programs):
            address_space = AddressSpace(pid=pid, name=profile.name)
            heap = address_space.region(
                "heap", 0x40_0000, profile.heap_pages, profile.heap_hot_pages,
                hot_lines=profile.heap_hot_lines, p_seq=profile.p_seq,
                p_hot=profile.p_hot,
            )
            address_space.region(
                "stack", 0x1000_0000, 4, 2, hot_lines=6, weight=0.55,
                p_seq=0.3, p_hot=0.995,
            )
            mix = InstructionMix(
                load=profile.load,
                store=profile.store,
                branch=profile.branch,
                fp=profile.fp,
                branches=BranchProfile(
                    uncond=0.19, indirect=0.10, call=0.025, ret=0.025,
                    cond_taken=profile.cond_taken,
                ),
            )
            code = CodeModel(CodeModelConfig(
                f"specint:{profile.name}",
                address_space.base + 0x1_0000,
                mix,
                segments=(SegmentSpec("main", profile.n_blocks, profile.hot_blocks),),
                cold_excursion=0.03,
                return_to_hot=0.75,
                seed=rng.randrange(1 << 30),
            ))
            # Input files live in the upper half of the kernel file cache,
            # one extent per program.
            file_extent = (
                os.reg_filecache.base
                + os.reg_filecache.size // 2
                + pid * 64 * 1024
            )
            behavior_rng = random.Random(rng.randrange(1 << 30))

            def factory(thread, profile=profile, heap=heap,
                        file_extent=file_extent, brng=behavior_rng, os=os):
                return _program_behavior(thread, profile, heap, file_extent, brng, os)

            thread = os.create_process(
                profile.name, pid, code, address_space, factory)
            self.threads.append(thread)


def _program_behavior(thread, profile: ProgramProfile, heap, file_extent: int,
                      rng: random.Random, os: MiniDUX):
    """Directive generator for one SPECInt-like program (see module doc)."""
    yield ("mark", "startup")
    # The shell launches the benchmarks one after another: stagger process
    # creation so the eight execve paths do not collide artificially.
    if thread.process.pid:
        yield ("compute", 700 * thread.process.pid)
    yield ("syscall", "execve", {})
    yield ("syscall", "brk", {})

    # Start-up: read input files into the heap, touching fresh pages.
    scan_pos = 0
    heap_span = heap.size
    for i in range(profile.startup_files):
        nbytes = max(512, int(rng.gauss(profile.file_bytes, profile.file_bytes * 0.3)))
        src = file_extent + (i * profile.file_bytes) % (48 * 1024)
        dst = heap.base + scan_pos % heap_span
        yield ("syscall", "open", {})
        yield ("syscall", "read", {
            "nbytes": nbytes,
            "copy": (src, dst, True, False),
            "disk": i < 2,  # first reads hit the (zero-latency) disk
            "dma": (src, nbytes),
        })
        yield ("syscall", "close", {})
        scan_pos += nbytes
        yield ("compute", 1200, {"scan": (heap.base + scan_pos % heap_span, 4096)})
        scan_pos += 4096

    # Initialization sweep: first-touch a slice of the heap.
    target = profile.startup_scan_pages * PAGE_SIZE
    while scan_pos < target:
        chunk = min(8192, target - scan_pos)
        yield ("compute", 1200, {"scan": (heap.base + scan_pos, chunk)})
        scan_pos += chunk
        if rng.random() < 0.2:
            yield ("syscall", "brk", {})

    yield ("mark", "steady")
    iteration = 0
    while True:
        yield ("compute", profile.compute_chunk)
        iteration += 1
        if iteration % 41 == 0:
            # Periodic output append (user buffer -> file cache).
            yield ("syscall", "write", {
                "nbytes": 256,
                "copy": (heap.base, file_extent + 56 * 1024, False, True),
            })
        if iteration % 67 == 0:
            yield ("syscall", "gettimeofday", {})
