"""Simulated network substrate.

The paper runs three lock-stepped SimOS instances over a loss-free,
zero-latency simulated link whose NICs interrupt at a 10 ms granularity.
Here the clients live in-process: a :class:`~repro.net.nic.NIC` queues
arriving packets and raises coalesced interrupts, the interrupt handler
hands packets to *netisr* kernel threads (exactly the Digital Unix
structure the paper describes), and transmitted packets are delivered to
the client model's receive hook.
"""

from repro.net.packets import Packet
from repro.net.nic import NIC
from repro.net.stack import NetworkStack, Connection

__all__ = ["Packet", "NIC", "NetworkStack", "Connection"]
