"""Packet and connection records."""

from __future__ import annotations

from dataclasses import dataclass

#: Ethernet-ish MTU payload used to segment responses.
MTU = 1460


@dataclass(frozen=True)
class Packet:
    """One simulated network packet."""

    conn_id: int
    size: int
    kind: str  # "req" | "resp" | "ack"

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("packet size must be positive")
        if self.kind not in ("req", "resp", "ack", "fin"):
            raise ValueError(f"unknown packet kind {self.kind!r}")


def segment(nbytes: int) -> list[int]:
    """Split a transfer into MTU-sized packet payloads."""
    if nbytes <= 0:
        return []
    full, rest = divmod(nbytes, MTU)
    sizes = [MTU] * full
    if rest:
        sizes.append(rest)
    return sizes
