"""The kernel network stack: connections, socket buffers, netisr threads.

Digital Unix processes arriving packets on a set of identical *netisr*
kernel threads (the paper measures them at 26% of all Apache cycles,
together with interrupt handling).  Here each netisr thread loops: pop a
packet from the protocol queue, run the TCP/IP input path (a kernel-text
``netisr`` segment plus a copy burst from the physical NIC ring into the
shared socket-buffer region), and deliver the result -- a new connection to
the accept queue or an ACK that retires transmit state.

Transmit runs in the *sender's* context (``writev`` pushes per-packet
``nettx`` frames), after which the packet is handed to the client model's
receive hook.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from repro.net.nic import NIC
from repro.net.packets import Packet
from repro.os_model.kernel import MiniDUX


@dataclass
class Connection:
    """One client connection / HTTP request in flight."""

    conn_id: int
    client_id: int
    file_id: int
    request_size: int
    bytes_to_send: int = 0
    bytes_sent: int = 0
    sb_offset: int = field(default=0)


class NetworkStack:
    """Kernel-side networking state plus its netisr threads."""

    def __init__(
        self,
        os: MiniDUX,
        rng: random.Random,
        n_netisr: int = 4,
        netisr_cost: int = 650,
        coalesce_interval: int = 4000,
    ) -> None:
        self.os = os
        self.rng = rng
        self.netisr_cost = netisr_cost
        self.nic = NIC(os, self, coalesce_interval=coalesce_interval)
        self.protocol_queue: deque[Packet] = deque()
        self.connections: dict[int, Connection] = {}
        self.accept_queue: deque[int] = deque()
        self._next_conn = 1
        self.packets_processed = 0
        #: Client-model receive hook, set by the client device.
        self.remote_rx = None
        self.netisr_threads = []
        for i in range(n_netisr):
            thread = os.create_kernel_thread(f"netisr{i}", self._netisr_behavior())
            thread.priority = 0  # software-interrupt level
            os.start_thread(thread)
            self.netisr_threads.append(thread)

    # -- connection management ----------------------------------------------

    def new_connection(self, client_id: int, file_id: int, request_size: int) -> Connection:
        """Open a connection (the client's SYN+request arriving as one)."""
        conn = Connection(self._next_conn, client_id, file_id, request_size)
        self._next_conn += 1
        # 16 rotating socket buffers: heavy reuse of shared kernel lines
        # (netisr writes them, server reads them -- Table 8's cooperation).
        conn.sb_offset = (conn.conn_id % 16) * 4096
        self.connections[conn.conn_id] = conn
        return conn

    def socket_buffer_address(self, conn_id: int) -> int:
        """Socket-buffer address for a connection (shared kernel region)."""
        conn = self.connections[conn_id]
        return self.os.reg_sockbuf.base + conn.sb_offset

    def nic_ring_address(self, packet: Packet) -> int:
        """Physical NIC-ring slot the packet landed in."""
        ring = self.os.reg_nicring
        return ring.base + (packet.conn_id * 2048) % (ring.size - 2048)

    def has_pending_accept(self) -> bool:
        return bool(self.accept_queue)

    def pop_pending_accept(self) -> Connection | None:
        """Take the oldest fully-arrived connection (None if raced away)."""
        if not self.accept_queue:
            return None
        return self.connections[self.accept_queue.popleft()]

    def close(self, conn_id: int) -> None:
        """Tear down a finished connection."""
        self.connections.pop(conn_id, None)

    # -- receive path ---------------------------------------------------------

    def enqueue_rx(self, batch: list[Packet]) -> None:
        """Interrupt-handler effect: queue packets and wake netisr threads."""
        self.protocol_queue.extend(batch)
        self.os.wakeup_all("netisr")

    def _netisr_behavior(self):
        while True:
            if not self.protocol_queue:
                yield ("sleep", "netisr")
                continue
            packet = self.protocol_queue.popleft()

            def copy_spec(packet=packet):
                return (
                    self.nic_ring_address(packet),
                    self.socket_buffer_address(packet.conn_id)
                    if packet.conn_id in self.connections
                    else self.os.reg_sockbuf.base,
                    True,   # source is the physical NIC ring
                    False,  # destination is kernel-virtual socket buffer
                    packet.size,
                )

            yield (
                "kwork",
                {
                    "segment": "netisr",
                    "service": "netisr",
                    "cost": max(60, int(self.rng.gauss(self.netisr_cost, self.netisr_cost * 0.25))),
                    "lock": "net",
                    "copy": copy_spec,
                    "on_done": lambda packet=packet: self._rx_complete(packet),
                },
            )

    def _rx_complete(self, packet: Packet) -> None:
        self.packets_processed += 1
        if packet.kind == "req":
            if packet.conn_id in self.connections:
                self.accept_queue.append(packet.conn_id)
                self.os.wakeup_one("accept")
        # ACKs only exercise the protocol path (transmit-window bookkeeping).

    # -- transmit path ----------------------------------------------------------

    def transmit(self, packet: Packet) -> None:
        """Hand a transmitted packet to the simulated link (zero latency)."""
        if self.remote_rx is not None:
            self.remote_rx(packet)
