"""The simulated network interface card.

Packets injected by the client model accumulate in the receive ring; at a
fixed coalescing granularity (the paper's simulated cards interrupt every
10 ms -- scaled down here with the rest of the machine) the NIC raises one
interrupt whose handler drains a batch into the kernel's netisr queue.

Matching the paper's stated methodology, NIC DMA traffic is *not* pushed
through the memory-bus model; packets land in the physical NIC-ring region
that netisr threads then copy out of.
"""

from __future__ import annotations

from collections import deque

from repro.net.packets import Packet


class NIC:
    """Receive-side NIC with interrupt coalescing."""

    def __init__(
        self,
        os,
        stack,
        coalesce_interval: int = 4000,
        batch_limit: int = 16,
        intr_base_cost: int = 260,
        intr_per_packet: int = 150,
    ) -> None:
        self.os = os
        self.stack = stack
        self.coalesce_interval = coalesce_interval
        self.batch_limit = batch_limit
        self.intr_base_cost = intr_base_cost
        self.intr_per_packet = intr_per_packet
        self.rx_ring: deque[Packet] = deque()
        self._next_interrupt = 0
        self.packets_received = 0
        self.interrupts_raised = 0
        os.devices.append(self)

    def inject(self, packet: Packet) -> None:
        """A packet arrives from the simulated link."""
        self.rx_ring.append(packet)
        self.packets_received += 1

    def tick(self, now: int) -> None:
        """Raise a coalesced receive interrupt when due."""
        if not self.rx_ring or now < self._next_interrupt:
            return
        self._next_interrupt = now + self.coalesce_interval
        batch = []
        while self.rx_ring and len(batch) < self.batch_limit:
            batch.append(self.rx_ring.popleft())
        self.interrupts_raised += 1
        cost = self.intr_base_cost + self.intr_per_packet * len(batch)

        def effect(batch=batch):
            self.stack.enqueue_rx(batch)

        self.os.post_interrupt("intr:net", cost, effect)
