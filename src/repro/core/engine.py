"""Tiered execution engine: the semantics/timing seam.

The simulator's *semantics* -- instruction streams composed by the OS
(:mod:`repro.os_model.stream`), memory footprints, TLB interception, and
kernel/scheduler state transitions -- are independent of its *timing*
model (pipeline slots, MSHR/bus/port latencies, per-cycle accounting in
:mod:`repro.core.processor`).  This module exploits that seam to offer
three execution tiers over one :class:`~repro.core.simulator.Simulation`:

* **full** -- the detailed cycle-driven pipeline (unchanged);
* **fast** -- :func:`fast_forward`: advance architectural and kernel
  state and *warm* the caches, TLBs and branch predictor without
  per-cycle pipeline simulation.  Instructions are pulled from the same
  context streams (so every kernel/scheduler/TLB semantic is preserved),
  retire immediately, and charge a nominal clock of up to
  ``fetch_width`` instructions per cycle;
* **sampled** -- :func:`build_plan` + :func:`run_plan`: alternate
  fast-forward legs of N instructions with detailed measurement legs of
  M instructions, capture a counter window per measured leg, and
  :func:`extrapolate` whole-run probe totals with 2-sigma error bars
  routed through :func:`repro.obs.diff.mean_and_band`.

Determinism contract: a given config *and mode plan* is one
deterministic trajectory.  Because the cycle clock feeds kernel
semantics (timer interrupts, quanta, halts), fast and full runs are
*different* trajectories -- but any shared plan prefix is byte-identical
across runs, which is what makes sampled windows reproducible and
checkpoints (:mod:`repro.core.checkpoint`) verifiable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.processor import _BRANCH_SET, _TRAINABLE
from repro.isa.instruction import ST_RETIRED
from repro.isa.types import InstrType
from repro.memory.classify import mode_kind

#: Execution tiers selectable per run (the ``sampled`` tier is a *plan*
#: alternating the other two, see :func:`build_plan`).
MODES = ("full", "fast", "sampled")

#: Default user-mode stride for fast-forward: materialize 1 in `stride`
#: user-code instructions and bulk-account the rest (see
#: :meth:`repro.os_model.stream.ContextStream.next_fast`).  Kernel, PAL,
#: spin and replayed instructions always materialize exactly, so OS
#: semantics are stride-independent within a thread's user bursts.
FF_STRIDE_DEFAULT = 8


class TierStats:
    """Counters for the tiered engine, exposed as ``core.mode.*`` probes.

    All counters are monotonic (snapshot/diff treats probes as counters);
    a plain full-mode run leaves every one at zero.
    """

    __slots__ = (
        "fast_instructions",
        "fast_materialized",
        "fast_cycles",
        "detailed_instructions",
        "detailed_cycles",
        "legs",
        "samples",
        "pipeline_flushes",
        "flushed_instructions",
        "checkpoints_saved",
        "checkpoints_restored",
    )

    def __init__(self) -> None:
        self.fast_instructions = 0
        self.fast_materialized = 0
        self.fast_cycles = 0
        self.detailed_instructions = 0
        self.detailed_cycles = 0
        self.legs = 0
        self.samples = 0
        self.pipeline_flushes = 0
        self.flushed_instructions = 0
        self.checkpoints_saved = 0
        self.checkpoints_restored = 0

    def register_probes(self, registry) -> None:
        """Register the engine's probe subtree (``core.mode.*``).

        The checkpoint counters are deliberately *not* probes: probe
        snapshots are pure functions of the executed trajectory, while
        saving vs. restoring a checkpoint is harness provenance (a
        restored run must stay byte-identical to a straight-through
        one).  They are reported via artifact ``sampling`` metadata
        instead.
        """
        for name in ("fast_instructions", "fast_materialized", "fast_cycles",
                     "detailed_instructions", "detailed_cycles", "legs",
                     "samples", "pipeline_flushes", "flushed_instructions"):
            registry.derive(f"core.mode.{name}",
                            lambda t=self, n=name: getattr(t, n))


# -- fast-functional execution ----------------------------------------------


def fast_forward(sim, max_instructions: int, max_cycles: int | None = None,
                 stride: int = FF_STRIDE_DEFAULT):
    """Advance *sim* to *max_instructions* retired in fast-functional mode.

    Semantics run in full -- every instruction still comes from the
    context streams (scheduler decisions, kernel frames, TLB
    interception, spin locks), the OS still ticks on its normal cadence,
    branches still train the predictor/BTB/RAS, and cache/TLB contents
    are warmed via the hierarchy's warm-only path -- but no pipeline
    structure is modeled: instructions retire the cycle they are
    produced, up to ``fetch_width`` per (nominal) cycle.

    *stride* subsamples user-mode code: 1 in *stride* user instructions
    is materialized (and probes caches/TLBs/predictor) while the rest
    are bulk-accounted against the same frame budget with full weight in
    every retired-instruction statistic *and* in the per-cycle width
    budget, so cycle counts and OS cadence per retired instruction are
    stride-independent to first order.  Kernel and PAL instructions are
    never subsampled.  ``stride=1`` materializes everything.

    Honors an attached heartbeat (same mask test as the detailed loop)
    and watchdog (same chunked detection), so supervised fast-forward
    phases stay observable and self-terminating.
    """
    from repro.core.simulator import NoProgressError

    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    if sim.watchdog_cycles is None:
        return _fast_once(sim, max_instructions, max_cycles, stride)
    limit_cycles = max_cycles if max_cycles is not None else (1 << 62)
    interval = sim.watchdog_cycles
    while True:
        before = sim.stats.retired
        chunk_limit = min(limit_cycles, sim._now + interval)
        result = _fast_once(sim, max_instructions, chunk_limit, stride)
        if sim.stats.retired >= max_instructions or sim._now >= limit_cycles:
            return result
        if sim.stats.retired == before:
            raise NoProgressError(
                f"no instruction retired for {interval:,} fast-forward "
                f"cycles (cycle {sim._now:,}, retired {sim.stats.retired:,})",
                cycle=sim._now, retired=sim.stats.retired,
                snapshot=sim.obs.snapshot())


def _fast_once(sim, max_instructions: int, max_cycles: int | None,
               stride: int):
    os_ = sim.os
    os_tick = os_.tick
    streams = os_.streams
    n = len(streams)
    stats = sim.stats
    retire_bulk = stats.retire_bulk
    charge = stats.charge_cycle
    charge_n = stats.charge_cycles
    tier = sim.tier
    unit = sim.processor.branch_unit
    predict = unit.predict
    resolve = unit.resolve
    warm_inst = sim.hierarchy.warm_inst
    warm_data = sim.hierarchy.warm_data
    line_shift = sim.hierarchy.config.line_size.bit_length() - 1
    tick_interval = sim.tick_interval
    width = sim.processor.config.fetch_width
    per_ctx = max(1, width // n)
    last_line = sim._ff_last_line
    debt = sim._ff_debt
    heartbeat = sim.heartbeat
    beat = heartbeat.beat if heartbeat is not None else None
    hb_mask = heartbeat.mask if heartbeat is not None else 0
    # Interval telemetry: same mask test as the detailed loop, and jump
    # blocks clip at sample boundaries (like the OS-tick and heartbeat
    # clips), so samples land on exactly the same cycles in both tiers.
    timeline = sim.probe_timeline
    tl_tick = timeline.tick if timeline is not None else None
    tl_mask = timeline.mask if timeline is not None else (1 << 62) - 1
    attrib = sim.attrib
    # Interval attribution, detailed-tier style: a stream's call path is
    # re-derived only when its charged service changes (current_attrib
    # walks frames; doing it per charge costs ~10% of the fast loop).
    # None forces a first-charge derivation for every stream, which is
    # also the alignment sweep after a detailed leg ran in between.
    last_svc: list = [None] * n
    # Reused per-cycle charge buffer: charge_cycle/charge_cycles only
    # read it, and rebuilding a list every nominal cycle was the fast
    # loop's largest allocation churn (lint H101/H103).
    services: list = [""] * n
    load_t = InstrType.LOAD
    store_t = InstrType.STORE
    sync_t = InstrType.SYNC
    skip = stride - 1

    now = sim._now
    limit_cycles = max_cycles if max_cycles is not None else (1 << 62)
    while stats.retired < max_instructions and now < limit_cycles:
        if now % tick_interval == 0:
            os_tick(now)
        jump = min(debt) // per_ctx
        if jump:
            # Every context's next `jump` cycles are fully consumed by
            # width debt: nothing is pulled, so no architectural state
            # changes and the service attribution is constant.  Advance
            # them in one block, stopping at the next OS-tick (and
            # heartbeat) boundary so cadence is unchanged.
            room = tick_interval - now % tick_interval
            if jump > room:
                jump = room
            if now + jump > limit_cycles:
                jump = limit_cycles - now
            if beat is not None:
                hb_room = hb_mask + 1 - (now & hb_mask)
                if jump > hb_room:
                    jump = hb_room
            if tl_tick is not None:
                tl_room = tl_mask + 1 - (now & tl_mask)
                if jump > tl_room:
                    jump = tl_room
            if attrib is None:
                for i in range(n):
                    services[i] = streams[i].current_service
                charge_n(services, jump)
            else:
                for i in range(n):
                    s = streams[i]
                    svc = s.current_service
                    services[i] = svc
                    if svc != last_svc[i]:
                        # os_tick just above may have delivered interrupts
                        # (new frames + spans): re-derive the path whenever
                        # the observed service moved, so the settled
                        # interval matches the cycles charged to it.
                        last_svc[i] = svc
                        attrib.switch(s.ctx, s.current_attrib[1])
                charge_n(services, jump)
            pay = jump * per_ctx
            for i in range(n):
                debt[i] -= pay
            tier.fast_cycles += jump
            now += jump
            if tl_tick is not None and now & tl_mask == 0:
                tl_tick(now)
            if beat is not None and now & hb_mask == 0:
                beat(now, stats)
            continue
        delivered = 0
        materialized = 0
        budget = width  # weight units left this cycle
        start = now % n
        for k in range(n):
            stream = streams[(start + k) % n]
            ctx = stream.ctx
            ctx_budget = per_ctx if per_ctx < budget else budget
            d = debt[ctx]
            if d:
                # A previous pull's weight exceeded its cycle budget:
                # the excess consumes this cycle's slots without a new
                # pull, keeping the nominal clock at `width` retires
                # per cycle whatever the stride.
                pay = d if d < ctx_budget else ctx_budget
                debt[ctx] = d - pay
                ctx_budget -= pay
                budget -= pay
            while ctx_budget > 0:
                instr, weight = stream.next_fast(now, skip)
                if instr is None:
                    break
                itype = instr.itype
                kind = mode_kind(instr.mode)
                if itype in _BRANCH_SET:
                    # Replays (seq != -1: instructions a detailed leg
                    # flushed back) re-predict without counting, exactly
                    # like squash recovery in the detailed core.
                    prediction = predict(instr, ctx, count=instr.seq == -1)
                    instr.predicted_taken = prediction.taken
                    instr.predicted_target = prediction.next_pc
                    if itype in _TRAINABLE:
                        resolve(instr, ctx)
                line = instr.pc >> line_shift
                if line != last_line[ctx]:
                    last_line[ctx] = line
                    warm_inst(instr.pc, instr.thread_id, kind)
                if itype is load_t:
                    warm_data(instr.addr, instr.thread_id, kind, False)
                elif itype is store_t or itype is sync_t:
                    warm_data(instr.addr, instr.thread_id, kind, True)
                instr.state = ST_RETIRED
                retire_bulk(instr, weight)
                delivered += weight
                materialized += 1
                if weight > ctx_budget:
                    debt[ctx] = weight - ctx_budget
                    budget -= ctx_budget
                    ctx_budget = 0
                else:
                    ctx_budget -= weight
                    budget -= weight
            if budget <= 0:
                break
        if attrib is None:
            for i in range(n):
                services[i] = streams[i].current_service
            charge(services)
        else:
            for i in range(n):
                s = streams[i]
                svc = s.current_service
                services[i] = svc
                if svc != last_svc[i]:
                    last_svc[i] = svc
                    attrib.switch(s.ctx, s.current_attrib[1])
            charge(services)
        tier.fast_instructions += delivered
        tier.fast_materialized += materialized
        tier.fast_cycles += 1
        now += 1
        if tl_tick is not None and now & tl_mask == 0:
            tl_tick(now)
        if beat is not None and now & hb_mask == 0:
            beat(now, stats)
    sim._now = now
    return sim._result()


# -- mode plans --------------------------------------------------------------


@dataclass(frozen=True)
class Leg:
    """One contiguous stretch of execution in a single tier.

    ``instructions`` is the leg's *retired-instruction delta* target;
    like the detailed loop, a leg may overshoot by up to one cycle's
    worth of retires, deterministically.
    """

    mode: str  # "fast" | "full"
    instructions: int


def build_plan(mode: str, instructions: int, warmup: int = 0,
               sample: tuple[int, int] | None = None) -> list[Leg]:
    """The ordered leg plan for one run.

    * ``full``: optional fast warm-up leg, then one detailed leg;
    * ``fast``: optional fast warm-up leg, then one fast leg;
    * ``sampled``: fast warm-up, then alternate ``fast N`` / ``full M``
      (``sample=(N, M)``) until *instructions* are covered.

    The plan is part of a run's identity: it is derived purely from the
    spec (mode, warm-up, N:M), so equal specs always execute equal plans.
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r} (want one of {MODES})")
    if instructions < 1:
        raise ValueError(f"instructions must be >= 1, got {instructions}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    legs: list[Leg] = []
    if warmup:
        legs.append(Leg("fast", warmup))
    if mode == "sampled":
        if sample is None:
            raise ValueError("sampled mode requires sample=(N, M)")
        n, m = sample
        if n < 0 or m < 1:
            raise ValueError(f"need sample N >= 0 and M >= 1, got {n}:{m}")
        remaining = instructions
        while remaining > 0:
            if n:
                ff = min(n, remaining)
                legs.append(Leg("fast", ff))
                remaining -= ff
                if remaining <= 0:
                    break
            meas = min(m, remaining)
            legs.append(Leg("full", meas))
            remaining -= meas
    else:
        legs.append(Leg("fast" if mode == "fast" else "full", instructions))
    return legs


def run_plan(sim, plan: list[Leg], max_cycles: int | None = None,
             stride: int = FF_STRIDE_DEFAULT):
    """Execute *plan* on *sim* leg by leg.

    Returns ``(records, samples)``: one record per executed leg
    (``{"mode", "target", "retired", "cycles"}``) and one counter window
    (:func:`repro.analysis.snapshot.diff`) per detailed leg.  A detailed
    leg followed by a fast leg has its in-flight pipeline contents
    flushed back to the context streams (they re-deliver and retire in
    the next leg), so no instruction is lost across a tier transition.
    """
    from repro.analysis.snapshot import capture, diff

    tier = sim.tier
    records: list[dict] = []
    samples: list[dict] = []
    prev_mode = None
    for leg in plan:
        if max_cycles is not None and sim.now >= max_cycles:
            break
        if prev_mode == "full" and leg.mode == "fast":
            flushed = sim.processor.flush_to_streams()
            tier.pipeline_flushes += 1
            tier.flushed_instructions += flushed
        target = sim.stats.retired + leg.instructions
        leg_retired = sim.stats.retired
        leg_cycles = sim.now
        if leg.mode == "fast":
            fast_forward(sim, target, max_cycles, stride)
        else:
            before = capture(sim)
            sim.run(max_instructions=target, max_cycles=max_cycles)
            samples.append(diff(capture(sim), before))
            tier.samples += 1
            tier.detailed_instructions += sim.stats.retired - leg_retired
            tier.detailed_cycles += sim.now - leg_cycles
        tier.legs += 1
        records.append({
            "mode": leg.mode,
            "target": leg.instructions,
            "retired": sim.stats.retired - leg_retired,
            "cycles": sim.now - leg_cycles,
        })
        prev_mode = leg.mode
    return records, samples


# -- sampled extrapolation ---------------------------------------------------


def extrapolate(samples: list[dict], total_instructions: int) -> dict:
    """Whole-run probe estimates from detailed sample windows.

    Each window's flattened probes are averaged across windows and count
    probes are scaled by ``total / mean window retired``; rate probes
    (IPC, histogram means/percentiles) are reported unscaled.  The error
    bar is the 2-sigma half-width across windows from
    :func:`repro.obs.diff.mean_and_band`, scaled the same way, so a
    single window yields zero-width (unknown) bands.

    Returns ``{"probes": {name: [estimate, band]}, "windows": k,
    "measured_instructions": ..., "measured_cycles": ...}``.
    """
    from repro.obs.diff import _is_rate, mean_and_band

    if not samples:
        raise ValueError("need at least one sample window to extrapolate")
    mean, band = mean_and_band(samples)
    measured = sum(w.get("retired", 0) for w in samples)
    measured_cycles = sum(w.get("cycles", 0) for w in samples)
    mean_retired = measured / len(samples)
    scale = (total_instructions / mean_retired) if mean_retired else 0.0
    probes = {}
    for name, value in mean.items():
        if _is_rate(name):
            probes[name] = [value, band.get(name, 0.0)]
        else:
            probes[name] = [value * scale, band.get(name, 0.0) * scale]
    return {
        "probes": probes,
        "windows": len(samples),
        "measured_instructions": measured,
        "measured_cycles": measured_cycles,
    }
