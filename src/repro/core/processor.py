"""The cycle-driven SMT / superscalar core.

Each cycle runs, in reverse pipeline order:

1. **resolve** -- branch mispredictions whose execution completed this cycle
   squash all younger instructions of their context; the squashed
   correct-path instructions are handed back to the context stream for
   replay (our wrong-path model: the front end keeps fetching and the work
   is thrown away at resolution, costing exactly the fetch/queue/execute
   bandwidth the paper's squash statistics measure);
2. **retire** -- in order per context, up to 12 total per cycle;
3. **issue** -- ready instructions leave the shared 32-entry integer/FP
   queues for the functional units (6 integer of which 4 load/store and 2
   synchronization, 4 FP); memory operations access the cache hierarchy at
   issue and complete when the hierarchy says so;
4. **fetch** -- the ICOUNT-2.8 policy picks the two least-loaded fetchable
   contexts and fetches up to 8 instructions total, stopping a context's
   fetch block at a predicted-taken branch, an I-cache miss, a full queue,
   or the renaming-register limit.
"""

from __future__ import annotations

import heapq
import random

from repro.branch.unit import BranchUnit
from repro.core.config import CPUConfig
from repro.core.stats import SimStats
from repro.isa.instruction import (
    Instruction,
    ST_COMPLETED,
    ST_FETCHED,
    ST_QUEUED,
    ST_RETIRED,
    ST_SQUASHED,
)
from repro.isa.types import InstrType
from repro.memory.classify import mode_kind
from repro.memory.hierarchy import MemoryHierarchy


class _HWContext:
    """Per-hardware-context pipeline state."""

    __slots__ = (
        "index",
        "stream",
        "rob",
        "blocked_until",
        "fetch_buffer",
        "last_line",
        "queued",
        "current_service",
        "current_path",
    )

    def __init__(self, index: int, stream) -> None:
        self.index = index
        self.stream = stream
        self.rob: list[Instruction] = []
        self.blocked_until = 0
        self.fetch_buffer: Instruction | None = None
        self.last_line = -1
        self.queued = 0
        self.current_service = "idle"
        #: Call path being charged for this context's cycles; its leaf is
        #: always ``current_service`` (see repro.core.stats.Attribution).
        self.current_path = "idle"


class Processor:
    """The simulated CPU core (see module docstring)."""

    def __init__(
        self,
        config: CPUConfig,
        streams,
        hierarchy: MemoryHierarchy,
        stats: SimStats,
        rng: random.Random,
        registry=None,
    ) -> None:
        if len(streams) != config.n_contexts:
            raise ValueError("one instruction stream per hardware context required")
        self.config = config
        self.hierarchy = hierarchy
        self.stats = stats
        self.rng = rng
        self.branch_unit = BranchUnit(config.n_contexts, config.ras_depth,
                                      config.btb_entries, config.btb_assoc,
                                      config.per_context_history)
        self.contexts = [_HWContext(i, s) for i, s in enumerate(streams)]
        #: Per-context charged services, kept in sync with
        #: ``_HWContext.current_service`` by ``_admit`` so the per-cycle
        #: charge passes one reused list instead of rebuilding it
        #: (charge_cycle only reads it).
        self._services = [c.current_service for c in self.contexts]
        #: Fetch-priority sort key, bound once (the policy never changes
        #: after construction; a per-cycle lambda showed up in H104).
        self._fetch_key = self._icount_key \
            if config.fetch_policy == "icount" else self._rr_key
        self.int_queue: list[Instruction] = []
        self.fp_queue: list[Instruction] = []
        self.int_count = 0
        self.fp_count = 0
        self.inflight = 0
        self._resolves: list[tuple[int, int, Instruction]] = []
        self._event_id = 0
        self._seq = 0
        self._line_shift = hierarchy.config.line_size.bit_length() - 1
        self._rr_cursor = 0  # round-robin fetch rotation (ablation policy)
        #: Optional TraceRecorder (see repro.core.trace); None = no tracing.
        self.tracer = None
        #: Optional EventBus (see repro.obs.events); None = no events.
        self.events = None
        #: Optional call-path Attribution (see repro.core.stats); wired by
        #: Simulation.  None = flat service accounting only.
        self.attrib = None
        if registry is not None:
            self.register_probes(registry)

    def register_probes(self, registry) -> None:
        """Register the core's probe subtree (``core.*`` and ``branch.*``)."""
        stats = self.stats
        for name in ("retired", "fetched", "squashed", "zero_fetch_cycles",
                     "zero_issue_cycles", "max_issue_cycles",
                     "queue_full_stalls", "inflight_limit_stalls",
                     "fetchable_context_sum"):
            registry.derive(f"core.{name}",
                            lambda s=stats, n=name: getattr(s, n))
        self.branch_unit.register_probes(registry)

    # -- top level -----------------------------------------------------------

    def cycle(self, now: int) -> None:
        """Advance the machine by one cycle."""
        if self._resolves:
            self._resolve(now)
        self._retire(now)
        self._issue(now)
        self._fetch(now)
        self.stats.charge_cycle(self._services)

    # -- branch resolution / squash --------------------------------------------

    def _resolve(self, now: int) -> None:
        resolves = self._resolves
        while resolves and resolves[0][0] <= now:
            _, _, instr = heapq.heappop(resolves)
            if instr.state == ST_SQUASHED:
                continue
            self._squash_after(instr, now)

    def _squash_after(self, branch: Instruction, now: int) -> None:
        """Squash every instruction younger than *branch* in its context."""
        ctx = self.contexts[branch.ctx]
        rob = ctx.rob
        # Find the branch position from the tail (younger instructions are
        # nearer the end and squashes are usually shallow from the back).
        idx = len(rob) - 1
        while idx >= 0 and rob[idx] is not branch:
            idx -= 1
        if idx < 0:
            return  # branch already retired (resolution raced retirement)
        victims = rob[idx + 1:]
        del rob[idx + 1:]
        replay = []
        for v in victims:
            if v.state == ST_QUEUED:
                ctx.queued -= 1
                if v.itype is InstrType.FP_ALU:
                    self.fp_count -= 1
                else:
                    self.int_count -= 1
            # Leave the state as SQUASHED: the stale issue-queue entry is
            # dropped lazily at the next scan (re-admission assigns a fresh
            # seq, so even an already-replayed object is recognizably stale).
            v.state = ST_SQUASHED
            v.completion = -1
            self.inflight -= 1
            if self.tracer is not None:
                self.tracer.record(now, "Q", ctx.index, v)
            replay.append(v)
        # Squash statistics count fetched-then-discarded instructions; a
        # buffered-but-never-admitted instruction is replayed but was never
        # fetched into the pipeline, so it does not count.
        self.stats.squashed += len(replay)
        if self.events is not None and replay:
            self.events.emit(now, "pipeline", "squash", ctx=ctx.index,
                             service=branch.service,
                             args={"count": len(replay)})
        if ctx.fetch_buffer is not None:
            victim = ctx.fetch_buffer
            victim.state = ST_SQUASHED
            victim.completion = -1
            if self.tracer is not None:
                self.tracer.record(now, "Q", ctx.index, victim)
            replay.append(victim)
            ctx.fetch_buffer = None
        if replay:
            ctx.stream.push_replay(replay)

    # -- tier transitions ---------------------------------------------------------

    def flush_to_streams(self) -> int:
        """Drain every in-flight instruction back to its context stream.

        Used at a detailed-to-fast tier transition (see
        :mod:`repro.core.engine`): un-retired instructions in the ROBs,
        issue queues and fetch buffers are marked squashed and pushed back
        for replay -- the next leg re-delivers and retires them, so the
        retired instruction stream stays gap-free across the transition.
        Unlike a misprediction squash this is bookkeeping, not a modeled
        hardware event, so ``stats.squashed`` is not charged (the engine
        counts it under ``core.mode.flushed_instructions`` instead).
        Returns the number of instructions handed back.
        """
        flushed = 0
        for ctx in self.contexts:
            replay = []
            for v in ctx.rob:
                v.state = ST_SQUASHED
                v.completion = -1
                replay.append(v)
            ctx.rob.clear()
            if ctx.fetch_buffer is not None:
                v = ctx.fetch_buffer
                v.state = ST_SQUASHED
                v.completion = -1
                replay.append(v)
                ctx.fetch_buffer = None
            ctx.queued = 0
            ctx.last_line = -1
            ctx.blocked_until = 0
            if replay:
                ctx.stream.push_replay(replay)
                flushed += len(replay)
        self.int_queue.clear()
        self.fp_queue.clear()
        self.int_count = 0
        self.fp_count = 0
        self.inflight = 0
        self._resolves.clear()
        return flushed

    # -- retirement ---------------------------------------------------------------

    def _retire(self, now: int) -> None:
        budget = self.config.retire_width
        unit = self.branch_unit
        stats = self.stats
        for ctx in self.contexts:
            rob = ctx.rob
            done = 0
            while done < len(rob) and budget > 0:
                instr = rob[done]
                if instr.state != ST_COMPLETED or instr.completion > now:
                    break
                instr.state = ST_RETIRED
                stats.retire(instr)
                if self.tracer is not None:
                    self.tracer.record(now, "R", ctx.index, instr)
                if instr.itype in _TRAINABLE:
                    unit.resolve(instr, ctx.index)
                done += 1
                budget -= 1
                self.inflight -= 1
            if done:
                del rob[:done]
            if budget == 0:
                break

    # -- issue ------------------------------------------------------------------

    def _issue(self, now: int) -> None:
        cfg = self.config
        issued_int = issued_ls = issued_sync = issued_fp = 0
        hierarchy = self.hierarchy
        resolves = self._resolves

        remaining_int: list[tuple[int, Instruction]] = []
        for entry in self.int_queue:
            tag, instr = entry
            if instr.seq != tag or instr.state != ST_QUEUED:
                continue  # stale (squashed or replayed-and-readmitted)
            if issued_int >= cfg.int_units or instr.fetch_cycle + cfg.decode_delay > now:
                remaining_int.append(entry)
                continue
            producer = instr.producer
            if producer is not None and (
                producer.state in (ST_QUEUED, ST_FETCHED, ST_SQUASHED)
                or (producer.state == ST_COMPLETED and producer.completion > now)
            ):
                remaining_int.append(entry)
                continue
            itype = instr.itype
            if itype is InstrType.LOAD:
                if issued_ls >= cfg.ls_units:
                    remaining_int.append(entry)
                    continue
                result = hierarchy.data_access(
                    now, instr.addr, instr.thread_id, mode_kind(instr.mode), False)
                instr.completion = now + instr.latency + result.latency
                issued_ls += 1
            elif itype is InstrType.STORE:
                if issued_ls >= cfg.ls_units:
                    remaining_int.append(entry)
                    continue
                hierarchy.data_access(
                    now, instr.addr, instr.thread_id, mode_kind(instr.mode), True)
                instr.completion = hierarchy.store_complete(now)
                issued_ls += 1
            elif itype is InstrType.SYNC:
                if issued_sync >= cfg.sync_units or issued_ls >= cfg.ls_units:
                    remaining_int.append(entry)
                    continue
                result = hierarchy.data_access(
                    now, instr.addr, instr.thread_id, mode_kind(instr.mode), True)
                instr.completion = now + instr.latency + result.latency
                issued_sync += 1
                issued_ls += 1
            else:
                instr.completion = now + instr.latency
            instr.state = ST_COMPLETED
            issued_int += 1
            self.contexts[instr.ctx].queued -= 1
            self.int_count -= 1
            if instr.predicted_target != instr.target and instr.itype in _BRANCHES:
                self._event_id += 1
                heapq.heappush(resolves, (instr.completion, self._event_id, instr))
        self.int_queue = remaining_int

        if self.fp_queue:
            remaining_fp: list[tuple[int, Instruction]] = []
            for entry in self.fp_queue:
                tag, instr = entry
                if instr.seq != tag or instr.state != ST_QUEUED:
                    continue
                if issued_fp >= cfg.fp_units or instr.fetch_cycle + cfg.decode_delay > now:
                    remaining_fp.append(entry)
                    continue
                producer = instr.producer
                if producer is not None and (
                    producer.state in (ST_QUEUED, ST_FETCHED, ST_SQUASHED)
                    or (producer.state == ST_COMPLETED and producer.completion > now)
                ):
                    remaining_fp.append(entry)
                    continue
                instr.completion = now + instr.latency
                instr.state = ST_COMPLETED
                issued_fp += 1
                self.contexts[instr.ctx].queued -= 1
                self.fp_count -= 1
            self.fp_queue = remaining_fp

        total = issued_int + issued_fp
        if total == 0:
            self.stats.zero_issue_cycles += 1
        elif total >= cfg.int_units:
            self.stats.max_issue_cycles += 1

    # -- fetch ------------------------------------------------------------------

    def _fetch(self, now: int) -> None:
        cfg = self.config
        stats = self.stats
        eligible = [c for c in self.contexts if c.blocked_until <= now]
        stats.fetchable_context_sum += len(eligible)
        if not eligible or self.inflight >= cfg.inflight_limit:
            if self.inflight >= cfg.inflight_limit:
                stats.inflight_limit_stalls += 1
            stats.zero_fetch_cycles += 1
            return
        # Rotate the tie-break every cycle: with a stable sort alone, equal
        # ICOUNTs would always elect the same two contexts, starving others
        # (e.g. a context whose peers currently produce no instructions).
        self._rr_cursor = (self._rr_cursor + 1) % cfg.n_contexts
        # Contexts spinning in the kernel idle loop are fetched only when
        # nothing else is eligible: the idle loop's short dependence-free
        # stream would otherwise win ICOUNT priority and starve real work --
        # exactly the SMT resource waste the paper flags ("the idle loop ...
        # can waste resources on an SMT").
        eligible.sort(key=self._fetch_key)
        slots = cfg.fetch_width
        fetched = 0
        providers = 0
        for ctx in eligible:
            if providers >= cfg.fetch_contexts:
                break
            slots_used, stop = self._fetch_from(ctx, now, slots)
            if slots_used:
                providers += 1  # only delivering contexts consume a port
                fetched += slots_used
                slots -= slots_used
            if slots <= 0 or stop:
                break
        stats.fetched += fetched
        if fetched == 0:
            stats.zero_fetch_cycles += 1

    def _icount_key(self, c: _HWContext) -> tuple[bool, int, int]:
        return (c.current_service == "idle", c.queued,
                (c.index - self._rr_cursor) % self.config.n_contexts)

    def _rr_key(self, c: _HWContext) -> tuple[bool, int]:  # ablation policy
        return (c.current_service == "idle",
                (c.index - self._rr_cursor) % self.config.n_contexts)

    def _fetch_from(self, ctx: _HWContext, now: int, slots: int) -> tuple[int, bool]:
        """Fetch up to *slots* instructions from one context.

        Returns (instructions fetched, global-stop flag).  The global stop
        is raised when the in-flight limit is reached.
        """
        cfg = self.config
        unit = self.branch_unit
        hierarchy = self.hierarchy
        fetched = 0
        while fetched < slots:
            if self.inflight >= cfg.inflight_limit:
                return fetched, True
            instr = ctx.fetch_buffer
            if instr is not None:
                ctx.fetch_buffer = None
            else:
                instr = ctx.stream.next_instruction(now)
                if instr is None:
                    break
            # Queue admission check before anything else.
            if instr.itype is InstrType.FP_ALU:
                if self.fp_count >= cfg.fp_queue:
                    ctx.fetch_buffer = instr
                    self.stats.queue_full_stalls += 1
                    break
            elif self.int_count >= cfg.int_queue:
                ctx.fetch_buffer = instr
                self.stats.queue_full_stalls += 1
                break
            # Instruction cache access on line crossing.
            line = instr.pc >> self._line_shift
            if line != ctx.last_line:
                result = hierarchy.inst_access(
                    now, instr.pc, instr.thread_id, mode_kind(instr.mode))
                ctx.last_line = line
                if result.latency > 0:
                    ctx.blocked_until = now + result.latency
                    ctx.fetch_buffer = instr
                    break
            self._admit(ctx, instr, now)
            fetched += 1
            if instr.itype in _BRANCH_SET and instr.predicted_taken:
                break  # fetch block ends at a predicted-taken branch
        return fetched, False

    def _admit(self, ctx: _HWContext, instr: Instruction, now: int) -> None:
        first_fetch = instr.seq == -1
        self._seq += 1
        instr.seq = self._seq
        instr.ctx = ctx.index
        instr.state = ST_QUEUED
        instr.fetch_cycle = now
        if instr.itype in _BRANCH_SET:
            prediction = self.branch_unit.predict(instr, ctx.index, count=first_fetch)
            instr.predicted_taken = prediction.taken
            instr.predicted_target = prediction.next_pc
        else:
            instr.predicted_taken = False
            instr.predicted_target = instr.target  # never "mispredicted"
        # Probabilistic dependence on the previous instruction of the same
        # context's ROB tail models the register dataflow chain.
        rob = ctx.rob
        instr.producer = rob[-1] if (instr.dep and rob) else None
        rob.append(instr)
        if instr.itype is InstrType.FP_ALU:
            self.fp_queue.append((instr.seq, instr))
            self.fp_count += 1
        else:
            self.int_queue.append((instr.seq, instr))
            self.int_count += 1
        ctx.queued += 1
        self.inflight += 1
        if instr.service != ctx.current_service:
            if self.events is not None:
                # Per-context service-occupancy spans: close the old
                # service's span and open the new one (exported as one
                # track per ctx).
                self.events.emit(now, "pipeline", ctx.current_service, "E",
                                 ctx=ctx.index, service=ctx.current_service)
                self.events.emit(now, "pipeline", instr.service, "B",
                                 ctx=ctx.index, service=instr.service)
            ctx.current_service = instr.service
            self._services[ctx.index] = instr.service
            attrib = self.attrib
            if attrib is not None:
                # Re-derive the call path only when the charged service
                # changes; the cycles since the last change all belong to
                # the previous (service, path) pair, which switch() settles.
                path = attrib.path_of(instr.thread_id, instr.service)
                ctx.current_path = path
                attrib.switch(ctx.index, path)
        if self.tracer is not None:
            self.tracer.record(now, "F", ctx.index, instr)


_BRANCH_SET = frozenset(
    {
        InstrType.COND_BRANCH,
        InstrType.UNCOND_BRANCH,
        InstrType.INDIRECT_JUMP,
        InstrType.CALL,
        InstrType.RETURN,
        InstrType.PAL_CALL,
        InstrType.PAL_RETURN,
    }
)
_BRANCHES = _BRANCH_SET
_TRAINABLE = frozenset(
    {
        InstrType.COND_BRANCH,
        InstrType.UNCOND_BRANCH,
        InstrType.CALL,
        InstrType.INDIRECT_JUMP,
    }
)
