"""Top-level simulation driver.

A :class:`Simulation` assembles one machine -- memory hierarchy, MiniDUX
kernel, processor core -- boots a workload onto it, and runs for a given
number of retired instructions.  The returned :class:`SimResult` carries
references to every subsystem so the analysis layer can extract any of the
paper's metrics from a single run.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass

from repro.core.config import MachineConfig
from repro.core.engine import FF_STRIDE_DEFAULT, TierStats, fast_forward
from repro.core.processor import Processor
from repro.core.stats import Attribution, SimStats
from repro.memory.hierarchy import MemoryHierarchy
from repro.os_model.kernel import MiniDUX, OSMode

#: Every tunable simulator knob beyond (workload, machine, os_mode, seed)
#: and its default.  This dict is the single source of truth for the
#: configuration fingerprint: a run's store key covers all of these, so a
#: non-default simulation can never collide with a canonical one.
SIM_KNOB_DEFAULTS: dict[str, object] = {
    "quantum": 20_000,
    "timer_interval": 100_000,
    "tick_interval": 8,
    "omit_kernel_refs": False,
    "timeline_interval": 8192,
    "tlb_flush_on_switch": False,
    "spin_policy": "spin",
}


class NoProgressError(RuntimeError):
    """The no-progress watchdog fired: the machine burned cycles without
    retiring a single instruction (livelock / deadlock), so the run was
    aborted with diagnostics instead of looping forever.

    Carries the cycle the watchdog fired at, the retired count, and a
    probe-tree snapshot taken at that moment.
    """

    def __init__(self, message: str, cycle: int, retired: int,
                 snapshot: dict | None = None) -> None:
        super().__init__(message)
        self.cycle = cycle
        self.retired = retired
        self.snapshot = snapshot


def sim_params(
    workload_name: str,
    machine: MachineConfig,
    os_mode: OSMode = OSMode.FULL,
    seed: int = 1,
    **knobs,
) -> dict:
    """The full, JSON-safe configuration fingerprint of one simulation.

    ``knobs`` may override any entry of :data:`SIM_KNOB_DEFAULTS`; unknown
    names raise so fingerprints cannot silently omit a new knob.
    """
    unknown = set(knobs) - set(SIM_KNOB_DEFAULTS)
    if unknown:
        raise TypeError(f"unknown simulator knob(s): {sorted(unknown)}")
    params = {
        "workload": workload_name,
        "machine": asdict(machine),
        "os_mode": os_mode.value,
        "seed": seed,
    }
    params.update(SIM_KNOB_DEFAULTS)
    params.update(knobs)
    return params


@dataclass
class SimResult:
    """Handles to every subsystem of a finished simulation."""

    machine: MachineConfig
    stats: SimStats
    hierarchy: MemoryHierarchy
    os: MiniDUX
    processor: Processor
    workload: object
    os_mode: OSMode
    cycles: int

    @property
    def ipc(self) -> float:
        return self.stats.ipc


class Simulation:
    """One simulated machine plus workload, ready to run."""

    def __init__(
        self,
        workload,
        machine: MachineConfig | None = None,
        os_mode: OSMode = OSMode.FULL,
        seed: int = 1,
        quantum: int = 20_000,
        timer_interval: int = 100_000,
        tick_interval: int = 8,
        omit_kernel_refs: bool = False,
        timeline_interval: int = 8192,
        tlb_flush_on_switch: bool = False,
        spin_policy: str = "spin",
    ) -> None:
        self.machine = machine or MachineConfig.smt()
        self.workload = workload
        self.os_mode = os_mode
        self.tick_interval = tick_interval
        self.params = sim_params(
            getattr(workload, "name", type(workload).__name__),
            self.machine,
            os_mode=os_mode,
            seed=seed,
            quantum=quantum,
            timer_interval=timer_interval,
            tick_interval=tick_interval,
            omit_kernel_refs=omit_kernel_refs,
            timeline_interval=timeline_interval,
            tlb_flush_on_switch=tlb_flush_on_switch,
            spin_policy=spin_policy,
        )
        rng = random.Random(seed)
        # One probe registry per machine: every subsystem registers its
        # counters under a common tree (mem.* / branch.* / os.* / core.*)
        # that analysis snapshots fold into the run artifact.
        from repro.obs.registry import ProbeRegistry

        self.obs = ProbeRegistry()
        self.hierarchy = MemoryHierarchy(self.machine.memory,
                                         registry=self.obs)
        self.hierarchy.omit_kernel_refs = omit_kernel_refs
        self.os = MiniDUX(
            self.hierarchy,
            self.machine.cpu.n_contexts,
            rng,
            mode=os_mode,
            quantum=quantum,
            timer_interval=timer_interval,
            seed=seed,
            tlb_flush_on_switch=tlb_flush_on_switch,
            spin_policy=spin_policy,
            registry=self.obs,
        )
        self.stats = SimStats(self.machine.cpu.n_contexts, timeline_interval)
        self.processor = Processor(
            self.machine.cpu, self.os.streams, self.hierarchy, self.stats,
            rng, registry=self.obs)
        # Context switches invalidate the per-context return stacks.
        self.os.switch_listeners.append(self.processor.branch_unit.clear_context)
        # Call-path cycle attribution (always on: it adds no RNG draws and
        # no timing effects, so the simulated trajectory is unchanged; the
        # cost is one dict probe per *service change*, not per cycle).
        self.attrib = Attribution(self.stats, self.machine.cpu.n_contexts,
                                  self.os.threads_by_tid)
        self.processor.attrib = self.attrib
        # Event-ring truncation is part of the run's provenance: when this
        # probe is nonzero, trace/flame output covers a suffix of the run.
        self.obs.derive(
            "core.events.dropped",
            lambda: self.events.dropped if self.events is not None else 0)
        # Tiered-engine accounting (core.mode.* probes; all zero unless
        # fast-forward / sampling / checkpointing is used).
        self.tier = TierStats()
        self.tier.register_probes(self.obs)
        # Interval probe telemetry (repro.obs.timeline): snapshots the
        # headline probe subset every 2^k cycles in both tiers.  Default
        # -on like attribution -- pure observation, no RNG draws, no
        # timing effects -- and reconfigured post-construction
        # (configure_timeline), so, like the heartbeat and watchdog, it
        # never enters the fingerprint.
        from repro.obs.timeline import ProbeTimeline

        self.probe_timeline = ProbeTimeline(self)
        self.obs.derive(
            "core.timeline.samples",
            lambda: (self.probe_timeline.samples
                     if self.probe_timeline is not None else 0))
        self.obs.derive(
            "core.timeline.dropped",
            lambda: (self.probe_timeline.dropped
                     if self.probe_timeline is not None else 0))
        # Fast-forward I-line tracking and width-debt carry, one entry
        # per hardware context (the fast engine's analogues of the
        # pipeline's ctx.last_line and of slot occupancy).
        self._ff_last_line = [-1] * self.machine.cpu.n_contexts
        self._ff_debt = [0] * self.machine.cpu.n_contexts
        workload.setup(self.os, self.hierarchy, random.Random(seed + 7919))
        self._now = 0
        self.events = None
        self.heartbeat = None
        # Guardrail, not a config knob: attached after construction (see
        # attach_watchdog), so it never enters the fingerprint -- it
        # cannot change what a run computes, only whether a stuck run
        # dies with diagnostics instead of spinning forever.
        self.watchdog_cycles = None

    @property
    def now(self) -> int:
        """Current simulation cycle (persists across chunked runs)."""
        return self._now

    def attach_events(self, bus) -> None:
        """Wire one :class:`~repro.obs.events.EventBus` through every layer.

        Until this is called (the default), producers see ``None`` and
        event emission costs nothing.
        """
        self.events = bus
        self.processor.events = bus
        self.hierarchy.events = bus
        self.os.events = bus

    def attach_heartbeat(self, heartbeat) -> None:
        """Sample live progress every ``2^k`` cycles while running.

        *heartbeat* is a :class:`~repro.obs.live.Heartbeat`; until one is
        attached (the default) the run loop carries no per-cycle check at
        all, and with one attached the cost is a single mask test per
        cycle plus one sample every ``heartbeat.interval`` cycles.  The
        heartbeat also gets a handle on the interval telemetry sampler,
        so progress lines show the latest interval's simulated IPC and
        kernel-cycle share alongside host rates.
        """
        heartbeat.timeline = self.probe_timeline
        self.heartbeat = heartbeat

    def attach_watchdog(self, stall_cycles: int) -> None:
        """Abort with :class:`NoProgressError` if *stall_cycles* elapse
        without a single instruction retiring.

        Detection is cycle-driven (the run proceeds in ``stall_cycles``
        chunks and compares retired counts between chunks), so it is
        deterministic and adds nothing to the per-cycle hot loop; a
        stall is reported within ``2 * stall_cycles`` cycles of onset.
        Until one is attached (the default) ``run()`` is unchanged.
        """
        if stall_cycles < 1:
            raise ValueError(
                f"watchdog stall_cycles must be >= 1, got {stall_cycles}")
        self.watchdog_cycles = stall_cycles

    def configure_timeline(self, interval: int | None = None,
                           probes: tuple | None = None,
                           max_samples: int | None = None,
                           enabled: bool = True):
        """Replace the interval telemetry sampler (see repro.obs.timeline).

        Call before running.  A telemetry option, not a config knob: two
        runs differing only here follow byte-identical trajectories and
        share a fingerprint/store key -- only the artifact's
        ``probe_timeline`` record and the ``core.timeline.*`` probes
        differ.  Checkpoint state digests exclude those probes
        (:func:`repro.core.checkpoint.state_digests`), so a checkpoint
        saved under one telemetry config verify-restores under any
        other.  ``enabled=False`` removes the sampler entirely,
        restoring the pre-v7 artifact content.
        """
        if not enabled:
            self.probe_timeline = None
        else:
            from repro.obs.timeline import ProbeTimeline

            kwargs = {}
            if interval is not None:
                kwargs["interval"] = interval
            if probes is not None:
                kwargs["probes"] = probes
            if max_samples is not None:
                kwargs["max_samples"] = max_samples
            self.probe_timeline = ProbeTimeline(self, **kwargs)
        if self.heartbeat is not None:
            self.heartbeat.timeline = self.probe_timeline
        return self.probe_timeline

    def run(
        self,
        max_instructions: int = 300_000,
        max_cycles: int | None = None,
        profiler=None,
    ) -> SimResult:
        """Run until *max_instructions* retire (or *max_cycles* elapse).

        With *profiler* (a :class:`~repro.obs.profile.ScopeProfiler`),
        each step is charged to ``os.tick`` / ``core.cycle`` scopes; the
        unprofiled loop is untouched.  With a heartbeat attached
        (:meth:`attach_heartbeat`), a mask test per cycle triggers one
        progress sample every ``heartbeat.interval`` cycles.  With a
        watchdog attached (:meth:`attach_watchdog`), the run is chunked
        at watchdog granularity -- chunked runs retire exactly the same
        instruction stream -- and raises :class:`NoProgressError` when a
        full chunk retires nothing.
        """
        if self.watchdog_cycles is None:
            return self._run_once(max_instructions, max_cycles, profiler)
        limit_cycles = max_cycles if max_cycles is not None else (1 << 62)
        interval = self.watchdog_cycles
        while True:
            before = self.stats.retired
            chunk_limit = min(limit_cycles, self._now + interval)
            result = self._run_once(max_instructions, chunk_limit, profiler)
            if self.stats.retired >= max_instructions or self._now >= limit_cycles:
                return result
            if self.stats.retired == before:
                raise NoProgressError(
                    f"no instruction retired for {interval:,} cycles "
                    f"(cycle {self._now:,}, retired {self.stats.retired:,})",
                    cycle=self._now, retired=self.stats.retired,
                    snapshot=self.obs.snapshot())

    def _run_once(
        self,
        max_instructions: int,
        max_cycles: int | None,
        profiler,
    ) -> SimResult:
        os_tick = self.os.tick
        cycle = self.processor.cycle
        stats = self.stats
        tick_interval = self.tick_interval
        now = self._now
        limit_cycles = max_cycles if max_cycles is not None else (1 << 62)
        heartbeat = self.heartbeat
        # Interval telemetry: one mask test per cycle, like the heartbeat.
        # With the sampler detached the mask is a huge power of two the
        # post-increment `now` can never divide, so the branch never takes.
        timeline = self.probe_timeline
        tl_tick = timeline.tick if timeline is not None else None
        tl_mask = timeline.mask if timeline is not None else (1 << 62) - 1
        # Align attribution with the detailed tier's charging view: the
        # pipeline charges ctx.current_service until the next _admit, so
        # any fast-leg cycles still open are settled to the fast path and
        # charging resumes on the context's stored (service, path) pair.
        # Idempotent (one string compare per context) when already aligned.
        attrib = self.attrib
        if attrib is not None:
            for c in self.processor.contexts:
                attrib.switch(c.index, c.current_path)
        if profiler is not None:
            tick_scope = profiler("os.tick")
            cycle_scope = profiler("core.cycle")
            while stats.retired < max_instructions and now < limit_cycles:
                if now % tick_interval == 0:
                    with tick_scope:
                        os_tick(now)
                with cycle_scope:
                    cycle(now)
                now += 1
                if now & tl_mask == 0:
                    tl_tick(now)
        elif heartbeat is not None:
            beat = heartbeat.beat
            hb_mask = heartbeat.mask
            while stats.retired < max_instructions and now < limit_cycles:
                if now % tick_interval == 0:
                    os_tick(now)
                cycle(now)
                now += 1
                if now & tl_mask == 0:
                    tl_tick(now)
                if now & hb_mask == 0:
                    beat(now, stats)
        else:
            while stats.retired < max_instructions and now < limit_cycles:
                if now % tick_interval == 0:
                    os_tick(now)
                cycle(now)
                now += 1
                if now & tl_mask == 0:
                    tl_tick(now)
        self._now = now
        return self._result()

    def run_fast(self, max_instructions: int = 300_000,
                 max_cycles: int | None = None,
                 stride: int = FF_STRIDE_DEFAULT) -> SimResult:
        """Run in fast-functional mode until *max_instructions* retire.

        Full semantics (scheduler, kernel frames, TLB interception) with
        cache/TLB/branch-predictor warming but no pipeline timing; user
        code is subsampled at *stride* (kernel/PAL stay exact); see
        :func:`repro.core.engine.fast_forward`.  Honors an attached
        heartbeat and watchdog like :meth:`run`.
        """
        return fast_forward(self, max_instructions, max_cycles, stride)

    def _result(self) -> SimResult:
        return SimResult(
            machine=self.machine,
            stats=self.stats,
            hierarchy=self.hierarchy,
            os=self.os,
            processor=self.processor,
            workload=self.workload,
            os_mode=self.os_mode,
            cycles=self._now,
        )

    def to_artifact(self, startup: dict, steady: dict, total: dict,
                    spec_extra: dict | None = None,
                    flags: list | None = None,
                    mode: str = "full",
                    sampling: dict | None = None):
        """Freeze this simulation into a plain-data run artifact.

        ``startup``/``steady``/``total`` are the counter windows produced
        by :func:`repro.analysis.snapshot.diff`; ``spec_extra`` adds
        identifying labels (workload/cpu/os_mode names, instruction
        budget) on top of the full config fingerprint in ``self.params``;
        ``flags`` marks degraded provenance (e.g. ``["truncated"]`` when
        a max-cycle budget cut the run short; ``"timeline_truncated"``
        is appended here when the interval telemetry hit its sample
        cap).  ``mode`` and ``sampling`` record the execution tier and
        its leg plan / extrapolation / checkpoint provenance for tiered
        runs.
        """
        from repro.analysis.artifact import RunArtifact

        spec = dict(spec_extra or {})
        spec["params"] = self.params
        marks = sorted(
            [name, label, cycle]
            for (name, label), cycle in self.os.marks.items()
        )
        flags = list(flags or [])
        timeline = self.probe_timeline
        probe_timeline = timeline.to_record() if timeline is not None else None
        if (timeline is not None and timeline.dropped
                and "timeline_truncated" not in flags):
            flags.append("timeline_truncated")
        return RunArtifact(
            spec=spec,
            n_contexts=self.machine.cpu.n_contexts,
            cycles=self.stats.cycles,
            timeline=self.stats.timeline,
            marks=marks,
            startup=startup,
            steady=steady,
            total=total,
            flags=flags,
            mode=mode,
            sampling=sampling,
            probe_timeline=probe_timeline,
        )
