"""Top-level simulation driver.

A :class:`Simulation` assembles one machine -- memory hierarchy, MiniDUX
kernel, processor core -- boots a workload onto it, and runs for a given
number of retired instructions.  The returned :class:`SimResult` carries
references to every subsystem so the analysis layer can extract any of the
paper's metrics from a single run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.config import MachineConfig
from repro.core.processor import Processor
from repro.core.stats import SimStats
from repro.memory.hierarchy import MemoryHierarchy
from repro.os_model.kernel import MiniDUX, OSMode


@dataclass
class SimResult:
    """Handles to every subsystem of a finished simulation."""

    machine: MachineConfig
    stats: SimStats
    hierarchy: MemoryHierarchy
    os: MiniDUX
    processor: Processor
    workload: object
    os_mode: OSMode
    cycles: int

    @property
    def ipc(self) -> float:
        return self.stats.ipc


class Simulation:
    """One simulated machine plus workload, ready to run."""

    def __init__(
        self,
        workload,
        machine: MachineConfig | None = None,
        os_mode: OSMode = OSMode.FULL,
        seed: int = 1,
        quantum: int = 20_000,
        timer_interval: int = 100_000,
        tick_interval: int = 8,
        omit_kernel_refs: bool = False,
        timeline_interval: int = 8192,
        tlb_flush_on_switch: bool = False,
        spin_policy: str = "spin",
    ) -> None:
        self.machine = machine or MachineConfig.smt()
        self.workload = workload
        self.os_mode = os_mode
        self.tick_interval = tick_interval
        rng = random.Random(seed)
        self.hierarchy = MemoryHierarchy(self.machine.memory)
        self.hierarchy.omit_kernel_refs = omit_kernel_refs
        self.os = MiniDUX(
            self.hierarchy,
            self.machine.cpu.n_contexts,
            rng,
            mode=os_mode,
            quantum=quantum,
            timer_interval=timer_interval,
            seed=seed,
            tlb_flush_on_switch=tlb_flush_on_switch,
            spin_policy=spin_policy,
        )
        self.stats = SimStats(self.machine.cpu.n_contexts, timeline_interval)
        self.processor = Processor(
            self.machine.cpu, self.os.streams, self.hierarchy, self.stats, rng)
        # Context switches invalidate the per-context return stacks.
        self.os.switch_listeners.append(self.processor.branch_unit.clear_context)
        workload.setup(self.os, self.hierarchy, random.Random(seed + 7919))
        self._now = 0

    def run(
        self,
        max_instructions: int = 300_000,
        max_cycles: int | None = None,
    ) -> SimResult:
        """Run until *max_instructions* retire (or *max_cycles* elapse)."""
        os_tick = self.os.tick
        cycle = self.processor.cycle
        stats = self.stats
        tick_interval = self.tick_interval
        now = self._now
        limit_cycles = max_cycles if max_cycles is not None else (1 << 62)
        while stats.retired < max_instructions and now < limit_cycles:
            if now % tick_interval == 0:
                os_tick(now)
            cycle(now)
            now += 1
        self._now = now
        return SimResult(
            machine=self.machine,
            stats=stats,
            hierarchy=self.hierarchy,
            os=self.os,
            processor=self.processor,
            workload=self.workload,
            os_mode=self.os_mode,
            cycles=now,
        )
