"""The SMT / out-of-order superscalar processor core.

This package implements the paper's Table 1 machine: ICOUNT-2.8 fetch over
8 hardware contexts, register renaming limits, 32-entry integer and FP issue
queues, 6 integer (4 load/store, 2 synchronization) and 4 FP functional
units, 12-wide in-order-per-context retirement, per-context squash on branch
misprediction, and the superscalar variant (one context, two fewer pipeline
stages) used as the comparison baseline.
"""

from repro.core.config import CPUConfig, MachineConfig
from repro.core.stats import SimStats, service_class
from repro.core.processor import Processor
from repro.core.simulator import Simulation, SimResult

__all__ = [
    "CPUConfig",
    "MachineConfig",
    "SimStats",
    "service_class",
    "Processor",
    "Simulation",
    "SimResult",
]
