"""Pipeline event tracing.

A :class:`TraceRecorder` can be attached to a
:class:`~repro.core.processor.Processor` (``processor.tracer = recorder``)
to capture fetch / retire / squash events into a bounded ring buffer for
debugging and for fine-grained analyses the aggregate statistics cannot
answer ("what exactly ran on context 3 around cycle 12000?").

Tracing costs one attribute check per event when disabled, so the default
``tracer = None`` keeps the hot loop unperturbed.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass

from repro.isa.instruction import Instruction

FETCH = "F"
RETIRE = "R"
SQUASH = "Q"


@dataclass(frozen=True)
class TraceEvent:
    """One pipeline event."""

    cycle: int
    kind: str       # FETCH / RETIRE / SQUASH
    ctx: int
    pc: int
    service: str
    itype: str

    def format(self) -> str:
        return (f"{self.cycle:>10d} {self.kind} ctx{self.ctx} "
                f"{self.pc:#014x} {self.itype:<14s} {self.service}")

    def to_json_dict(self) -> dict:
        return asdict(self)


class TraceRecorder:
    """Bounded ring buffer of pipeline events with optional filtering.

    Parameters
    ----------
    capacity:
        Maximum retained events (oldest dropped first).
    kinds:
        Event kinds to record (default: all three).
    services:
        When given, only events whose service label starts with one of
        these prefixes are recorded (e.g. ``("syscall:", "netisr")``).
    """

    def __init__(
        self,
        capacity: int = 100_000,
        kinds: tuple[str, ...] = (FETCH, RETIRE, SQUASH),
        services: tuple[str, ...] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self.kinds = frozenset(kinds)
        self.services = services
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        self.recorded = 0
        self.dropped = 0

    def record(self, cycle: int, kind: str, ctx: int, instr: Instruction) -> None:
        """Record one event (no-op when filtered out)."""
        if kind not in self.kinds:
            return
        service = instr.service
        if self.services is not None and not any(
                service.startswith(p) for p in self.services):
            return
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(TraceEvent(
            cycle, kind, ctx, instr.pc, service, instr.itype.name))
        self.recorded += 1

    def window(self, start_cycle: int, end_cycle: int) -> list[TraceEvent]:
        """Events whose cycle falls in [start_cycle, end_cycle)."""
        return [e for e in self.events if start_cycle <= e.cycle < end_cycle]

    def by_service(self, prefix: str) -> list[TraceEvent]:
        """Events whose service label starts with *prefix*."""
        return [e for e in self.events if e.service.startswith(prefix)]

    def dump(self, limit: int | None = None) -> str:
        """Render the (tail of the) trace as text."""
        events = list(self.events)
        if limit is not None:
            events = events[-limit:]
        header = f"{'cycle':>10s} K ctx  {'pc':<14s} {'type':<14s} service"
        return "\n".join([header] + [e.format() for e in events])

    def to_jsonl(self, limit: int | None = None) -> str:
        """Render the (tail of the) trace as one JSON object per line.

        Machine-readable counterpart of :meth:`dump`; field names match
        :class:`TraceEvent` so lines can be loaded back losslessly.
        """
        events = list(self.events)
        if limit is not None:
            events = events[-limit:]
        return "\n".join(
            json.dumps(e.to_json_dict(), sort_keys=True) for e in events)

    def __len__(self) -> int:
        return len(self.events)
