"""Simulation statistics.

Collects everything the paper's tables and figures need:

* retired-instruction counts by mode, service, category, and addressing
  (Tables 2 and 5);
* per-service *cycle* attribution: each cycle, each hardware context charges
  its cycle share to the service it is working on, so slow (stall-heavy)
  services weigh more than their instruction counts (Figures 1-7);
* fetch/issue utilization: 0-fetch, 0-issue and max-issue cycles, average
  fetchable contexts, squash counts (Tables 4 and 6);
* a timeline of mode-class shares for the time-series figures.
"""

from __future__ import annotations

from repro.isa.types import InstrType, Mode

#: Mode classes used by the time-series figures.
CLASS_USER = 0
CLASS_KERNEL = 1
CLASS_PAL = 2
CLASS_IDLE = 3

CLASS_NAMES = ("user", "kernel", "pal", "idle")

_SERVICE_CLASS_CACHE: dict[str, int] = {}


def service_class(service: str) -> int:
    """Map an attribution label to user/kernel/pal/idle."""
    cls = _SERVICE_CLASS_CACHE.get(service)
    if cls is None:
        if service == "user":
            cls = CLASS_USER
        elif service == "idle":
            cls = CLASS_IDLE
        elif service.startswith("pal:"):
            cls = CLASS_PAL
        else:
            cls = CLASS_KERNEL
        _SERVICE_CLASS_CACHE[service] = cls
    return cls


class SimStats:
    """Mutable statistics accumulator for one simulation."""

    def __init__(self, n_contexts: int, timeline_interval: int = 8192) -> None:
        self.n_contexts = n_contexts
        self.timeline_interval = timeline_interval

        self.cycles = 0
        self.fetched = 0
        self.squashed = 0
        self.retired = 0

        # Retired-instruction breakdowns.
        self.retired_by_mode = [0, 0, 0]  # USER, KERNEL, PAL
        self.itype_by_mode: dict[tuple[int, int], int] = {}
        self.phys_mem_by_mode = [0, 0, 0]
        self.mem_by_mode = [0, 0, 0]
        self.cond_taken_by_mode = [0, 0, 0]
        self.cond_by_mode = [0, 0, 0]
        self.retired_by_service: dict[str, int] = {}

        # Cycle attribution: context-cycles charged per service.
        self.service_cycles: dict[str, int] = {}
        self.class_cycles = [0, 0, 0, 0]

        # Fetch/issue utilization.
        self.zero_fetch_cycles = 0
        self.zero_issue_cycles = 0
        self.max_issue_cycles = 0
        self.fetchable_context_sum = 0
        self.queue_full_stalls = 0
        self.inflight_limit_stalls = 0

        # Timeline for Figures 1 and 5: (cycle, per-class share) samples.
        self.timeline: list[tuple[int, tuple[float, float, float, float]]] = []
        self._window = [0, 0, 0, 0]
        self._next_sample = timeline_interval

    # -- per-cycle hooks ------------------------------------------------------

    def charge_cycle(self, services: list[str]) -> None:
        """Charge one cycle, attributed per context to *services*."""
        self.cycles += 1
        sc = self.service_cycles
        window = self._window
        classes = self.class_cycles
        for svc in services:
            sc[svc] = sc.get(svc, 0) + 1
            cls = service_class(svc)
            classes[cls] += 1
            window[cls] += 1
        if self.cycles >= self._next_sample:
            total = sum(window) or 1
            self.timeline.append(
                (self.cycles, tuple(w / total for w in window))
            )
            self._window = [0, 0, 0, 0]
            self._next_sample = self.cycles + self.timeline_interval

    def charge_cycles(self, services: list[str], count: int) -> None:
        """Charge *count* identical cycles attributed to *services*.

        The fast-forward tier's bulk path for width-debt cycles, where
        no architectural state changes between cycles so the service
        attribution is constant; equivalent to *count* calls of
        :meth:`charge_cycle` up to timeline-sample alignment (the sample
        lands at the end of the block instead of mid-block).
        """
        self.cycles += count
        sc = self.service_cycles
        window = self._window
        classes = self.class_cycles
        for svc in services:
            sc[svc] = sc.get(svc, 0) + count
            cls = service_class(svc)
            classes[cls] += count
            window[cls] += count
        if self.cycles >= self._next_sample:
            total = sum(window) or 1
            self.timeline.append(
                (self.cycles, tuple(w / total for w in window))
            )
            self._window = [0, 0, 0, 0]
            self._next_sample = self.cycles + self.timeline_interval

    # -- retirement -------------------------------------------------------------

    def retire(self, instr) -> None:
        """Account one retired instruction."""
        self.retired += 1
        mode = instr.mode
        self.retired_by_mode[mode] += 1
        key = (mode, instr.itype)
        self.itype_by_mode[key] = self.itype_by_mode.get(key, 0) + 1
        svc = instr.service
        self.retired_by_service[svc] = self.retired_by_service.get(svc, 0) + 1
        itype = instr.itype
        if itype is InstrType.LOAD or itype is InstrType.STORE or itype is InstrType.SYNC:
            self.mem_by_mode[mode] += 1
            if instr.phys:
                self.phys_mem_by_mode[mode] += 1
        elif itype is InstrType.COND_BRANCH:
            self.cond_by_mode[mode] += 1
            if instr.taken:
                self.cond_taken_by_mode[mode] += 1

    def retire_bulk(self, instr, count: int) -> None:
        """Account *count* retired instructions represented by *instr*.

        The fast-functional tier's bulk accounting: a materialized
        instruction standing for ``count`` i.i.d. draws from the same
        code-model mix charges every breakdown ``count`` times.
        """
        if count == 1:
            self.retire(instr)
            return
        self.retired += count
        mode = instr.mode
        self.retired_by_mode[mode] += count
        key = (mode, instr.itype)
        self.itype_by_mode[key] = self.itype_by_mode.get(key, 0) + count
        svc = instr.service
        self.retired_by_service[svc] = self.retired_by_service.get(svc, 0) + count
        itype = instr.itype
        if itype is InstrType.LOAD or itype is InstrType.STORE or itype is InstrType.SYNC:
            self.mem_by_mode[mode] += count
            if instr.phys:
                self.phys_mem_by_mode[mode] += count
        elif itype is InstrType.COND_BRANCH:
            self.cond_by_mode[mode] += count
            if instr.taken:
                self.cond_taken_by_mode[mode] += count

    # -- derived metrics --------------------------------------------------------

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        return self.retired / self.cycles if self.cycles else 0.0

    @property
    def squash_fraction(self) -> float:
        """Squashed instructions as a fraction of instructions fetched."""
        return self.squashed / self.fetched if self.fetched else 0.0

    @property
    def avg_fetchable_contexts(self) -> float:
        """Mean number of contexts eligible to fetch per cycle."""
        return self.fetchable_context_sum / self.cycles if self.cycles else 0.0

    def cycle_share(self, service_prefix: str) -> float:
        """Fraction of context-cycles charged to services with a prefix."""
        total = sum(self.service_cycles.values())
        if not total:
            return 0.0
        matched = sum(
            v for k, v in self.service_cycles.items() if k.startswith(service_prefix)
        )
        return matched / total

    def class_share(self, cls: int) -> float:
        """Fraction of context-cycles in a mode class (user/kernel/pal/idle)."""
        total = sum(self.class_cycles)
        return self.class_cycles[cls] / total if total else 0.0

    def mode_instruction_mix(self, mode: Mode) -> dict[InstrType, float]:
        """Retired-instruction category shares within one mode."""
        total = self.retired_by_mode[mode]
        if not total:
            return {}
        return {
            itype: count / total
            for (m, itype), count in self.itype_by_mode.items()
            if m == mode
        }

    def service_cycle_shares(self) -> dict[str, float]:
        """Every service's share of total context-cycles."""
        total = sum(self.service_cycles.values())
        if not total:
            return {}
        return {k: v / total for k, v in self.service_cycles.items()}


class Attribution:
    """Simulated-cycle call-path attribution.

    Charges every context-cycle to a *call path*: the chain of open
    kernel-service spans on the running software thread
    (:meth:`repro.os_model.thread.SoftwareThread.service_path`) with the
    charged service as the leaf, joined with ``;`` -- e.g.
    ``syscall:read;tlb:refill;pal:dtlb``.  Folding :attr:`path_cycles`
    yields a flamegraph of simulated time (:mod:`repro.obs.flame`).

    Accounting is *interval-based*: a context's current path is only
    re-derived when its charged service changes (detailed tier) or once
    per nominal cycle (fast tier), and the cycles in between are charged
    in one block using :attr:`SimStats.cycles` deltas.  That is exact
    because every charge call (:meth:`SimStats.charge_cycle` /
    :meth:`SimStats.charge_cycles`) advances ``cycles`` once and charges
    *every* context, so a per-context interval in ``cycles`` units is
    precisely the number of context-cycles charged to it.

    Invariant (asserted by tests): for every path, the leaf component
    equals the service charged over the same interval, so summing
    ``path_cycles`` grouped by leaf reproduces ``service_cycles``
    exactly.
    """

    def __init__(self, stats: SimStats, n_contexts: int,
                 threads_by_tid: dict) -> None:
        self.stats = stats
        self._threads = threads_by_tid
        #: Context-cycles charged per ``;``-joined call path.
        self.path_cycles: dict[str, int] = {}
        self._cur = ["idle"] * n_contexts
        self._start = [0] * n_contexts

    def path_of(self, tid: int, service: str) -> str:
        """The call path for *service* run by thread *tid* right now."""
        thread = self._threads.get(tid)
        if thread is None:
            return service
        return thread.service_path(service)

    def switch(self, ctx: int, path: str) -> None:
        """Settle the open interval of *ctx* and start charging *path*.

        Idempotent when the path is unchanged, so alignment sweeps at
        tier/leg boundaries cost one string compare per context.
        """
        cur = self._cur[ctx]
        if path == cur:
            return
        cycles = self.stats.cycles
        elapsed = cycles - self._start[ctx]
        if elapsed:
            pc = self.path_cycles
            pc[cur] = pc.get(cur, 0) + elapsed
        self._cur[ctx] = path
        self._start[ctx] = cycles

    def flush(self) -> None:
        """Settle every context's open interval at the current cycle."""
        cycles = self.stats.cycles
        pc = self.path_cycles
        start = self._start
        for ctx, cur in enumerate(self._cur):
            elapsed = cycles - start[ctx]
            if elapsed:
                pc[cur] = pc.get(cur, 0) + elapsed
                start[ctx] = cycles

    def snapshot(self) -> dict[str, int]:
        """Settled ``{path: context_cycles}``, sorted (determinism)."""
        self.flush()
        return dict(sorted(self.path_cycles.items()))
