"""Machine configuration (the paper's Table 1)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.hierarchy import MemoryConfig


@dataclass(frozen=True)
class CPUConfig:
    """Processor-core parameters.

    Defaults describe the 8-context SMT; :meth:`superscalar` returns the
    paper's baseline: identical resources, one context, and two fewer
    pipeline stages (its register file is smaller).
    """

    n_contexts: int = 8
    fetch_width: int = 8
    fetch_contexts: int = 2  # the 2.8 ICOUNT scheme of Tullsen et al.
    pipeline_stages: int = 9
    int_queue: int = 32
    fp_queue: int = 32
    int_units: int = 6
    ls_units: int = 4
    sync_units: int = 2
    fp_units: int = 4
    rename_registers: int = 100
    retire_width: int = 12
    ras_depth: int = 12
    #: BTB geometry.  Scaled by 1/8 with the caches (see DESIGN.md); the
    #: paper-scale machine uses 1024 entries.
    btb_entries: int = 128
    btb_assoc: int = 4
    #: Fetch-choice policy: "icount" (the paper's ICOUNT 2.8) or
    #: "round_robin" (the ablation baseline).
    fetch_policy: str = "icount"
    #: Ablation: give each hardware context its own global-history register
    #: instead of the shared one the paper's SMT models (whose interleaved
    #: updates are part of why SMT mispredicts more than the superscalar).
    per_context_history: bool = False

    def __post_init__(self) -> None:
        if self.n_contexts < 1:
            raise ValueError("need at least one hardware context")
        if self.fetch_contexts < 1 or self.fetch_contexts > self.n_contexts:
            raise ValueError("fetch_contexts must be in [1, n_contexts]")
        if self.ls_units > self.int_units:
            raise ValueError("load/store units are a subset of integer units")
        if self.fetch_policy not in ("icount", "round_robin"):
            raise ValueError(f"unknown fetch policy {self.fetch_policy!r}")

    @classmethod
    def superscalar(cls) -> "CPUConfig":
        """The out-of-order superscalar baseline of Tables 4 and 6."""
        return cls(n_contexts=1, fetch_contexts=1, pipeline_stages=7)

    @property
    def decode_delay(self) -> int:
        """Cycles between fetch and issue-queue entry (front-end depth)."""
        return max(1, self.pipeline_stages - 5)

    @property
    def inflight_limit(self) -> int:
        """Maximum unretired instructions (renaming-register bound)."""
        return self.rename_registers + self.int_queue


@dataclass(frozen=True)
class MachineConfig:
    """A complete simulated machine: core + memory system."""

    cpu: CPUConfig = field(default_factory=CPUConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)

    @classmethod
    def smt(cls) -> "MachineConfig":
        """The paper's 8-context SMT (scaled memory geometry)."""
        return cls()

    @classmethod
    def superscalar(cls) -> "MachineConfig":
        """The paper's superscalar baseline (same memory system)."""
        return cls(cpu=CPUConfig.superscalar())

    @classmethod
    def paper_scale(cls) -> "MachineConfig":
        """The literal Table 1 machine: 128KB L1s, 16MB L2, 1K-entry BTB.

        Workload footprints in :mod:`repro.workloads` are calibrated for the
        default 1/8-scaled geometry; runs at paper scale are useful for
        sensitivity studies, not for reproducing the paper's rates.
        """
        return cls(
            cpu=CPUConfig(btb_entries=1024),
            memory=MemoryConfig.paper_scale(),
        )
