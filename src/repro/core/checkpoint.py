"""Serializable mid-run checkpoints: verified deterministic replay recipes.

A simulation's live state is full of generators and closures (workload
behaviors, code-model walkers, kernel frames), so it cannot be pickled
into a resumable blob.  What *can* be serialized -- exactly because the
engine is deterministic -- is the recipe that reproduces a state:

* the full config fingerprint (``sim.params``),
* the executed leg plan and fast-forward stride
  (:mod:`repro.core.engine`),
* the instruction boundary and cycle the plan reached, and
* SHA-256 digests of the resulting state (probe tree, kernel execution
  state, cache/TLB contents).

Restoring re-executes the plan on a freshly built simulation and
*verifies* the digests, so silent nondeterminism (environment drift, a
semantics change that forgot to bump the artifact code version) is
caught as a hard :class:`CheckpointError` instead of contaminating
downstream measurements.  Checkpoints are content-addressed in the run
store (:mod:`repro.analysis.store`) by config + plan + stride, i.e. by
what they reproduce, never by when they were taken.
"""

from __future__ import annotations

import hashlib

from repro.core.engine import FF_STRIDE_DEFAULT, Leg, run_plan

#: Bump when the checkpoint payload layout or digest inputs change;
#: restore refuses mismatched schemas (the store treats them as stale).
#: v2: the probes digest excludes ``core.timeline.*`` so telemetry
#: options (repro.obs.timeline) never invalidate a checkpoint.
CHECKPOINT_SCHEMA = 2


class CheckpointError(RuntimeError):
    """A checkpoint could not be restored: schema/config mismatch, or the
    replayed state's digests drifted from the recorded ones."""


def state_digests(sim) -> dict:
    """SHA-256 digests of *sim*'s current architectural state.

    Three independent digests so a verification failure localizes the
    drift: ``probes`` (the full counter tree), ``kernel`` (scheduler,
    threads, wait queues, RNG states), ``memory`` (cache and TLB
    contents in LRU order).

    The ``core.timeline.*`` counters are excluded from the probes
    digest: they mirror the interval telemetry sampler's progress
    (:mod:`repro.obs.timeline`), which is an execution option --
    a checkpoint saved under one telemetry config must verify-restore
    under any other, just as telemetry never enters run fingerprints.
    """
    from repro.analysis.artifact import canonical_json
    from repro.analysis.snapshot import capture

    def sha(payload) -> str:
        return hashlib.sha256(canonical_json(payload).encode()).hexdigest()

    probes = {k: v for k, v in capture(sim)["probes"].items()
              if not k.startswith("core.timeline.")}
    return {
        "probes": sha(probes),
        "kernel": sha(sim.os.state_summary()),
        "memory": sha(sim.hierarchy.content_state()),
    }


def checkpoint_fingerprint(params: dict, plan: list[Leg],
                           stride: int = FF_STRIDE_DEFAULT) -> str:
    """Content address of the checkpoint reaching the end of *plan*.

    Covers the config fingerprint, the leg plan (mode + instruction
    boundary of every leg), the stride, and the checkpoint schema /
    artifact code versions -- everything that determines the replayed
    state, and nothing (wall time, host) that does not.
    """
    from repro.analysis.artifact import CODE_VERSION, canonical_json

    payload = {
        "kind": "checkpoint",
        "schema": CHECKPOINT_SCHEMA,
        "code": CODE_VERSION,
        "params": params,
        "plan": [[leg.mode, leg.instructions] for leg in plan],
        "stride": stride,
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def take(sim, plan: list[Leg], stride: int = FF_STRIDE_DEFAULT) -> dict:
    """Freeze *sim* -- positioned at the end of *plan* -- into a
    JSON-safe checkpoint payload.

    The caller is responsible for *plan* actually having been executed
    on *sim* (normally via :func:`repro.core.engine.run_plan`); the
    recorded boundary/cycle are read from the simulation itself, so an
    overshooting leg is captured faithfully.
    """
    sim.tier.checkpoints_saved += 1
    return {
        "kind": "checkpoint",
        "checkpoint_schema": CHECKPOINT_SCHEMA,
        "fingerprint": checkpoint_fingerprint(sim.params, plan, stride),
        "params": sim.params,
        "plan": [[leg.mode, leg.instructions] for leg in plan],
        "stride": stride,
        "boundary": sim.stats.retired,
        "cycle": sim.now,
        "digests": state_digests(sim),
    }


def restore(sim, ckpt: dict, max_cycles: int | None = None):
    """Replay *ckpt*'s plan on a freshly built *sim* and verify it.

    Raises :class:`CheckpointError` if the checkpoint's schema or config
    does not match, if the replay lands on a different boundary/cycle,
    or if any state digest drifted.  On success the simulation sits at
    the checkpoint boundary with byte-identical state, ready for the
    remaining legs of its run.
    """
    from repro.analysis.artifact import canonical_json

    if ckpt.get("checkpoint_schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"checkpoint schema {ckpt.get('checkpoint_schema')!r} != "
            f"{CHECKPOINT_SCHEMA} (stale checkpoint)")
    if canonical_json(ckpt["params"]) != canonical_json(sim.params):
        raise CheckpointError("checkpoint config does not match simulation")
    plan = [Leg(mode, instructions) for mode, instructions in ckpt["plan"]]
    run_plan(sim, plan, max_cycles=max_cycles, stride=ckpt["stride"])
    if sim.stats.retired != ckpt["boundary"] or sim.now != ckpt["cycle"]:
        raise CheckpointError(
            f"replay landed at retired={sim.stats.retired:,} "
            f"cycle={sim.now:,}, checkpoint recorded "
            f"retired={ckpt['boundary']:,} cycle={ckpt['cycle']:,}")
    got = state_digests(sim)
    drifted = sorted(k for k in got if got[k] != ckpt["digests"].get(k))
    if drifted:
        raise CheckpointError(
            f"state digest drift after replay: {', '.join(drifted)}")
    sim.tier.checkpoints_restored += 1
    return sim
