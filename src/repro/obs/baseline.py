"""Perf baselines and the regression gate (``repro bench``).

The ROADMAP's "fast as the hardware allows" north star needs a
measurement loop before it needs more optimizations: this module defines
standardized scenarios, measures the simulator's *own* speed on them
(host wall-clock, retired instructions per host second, peak RSS)
alongside key simulated probes, and persists each measurement as
``BENCH_<scenario>.json`` at the repository root -- the perf trajectory
files that track the simulator across PRs.

Scenarios:

* ``specint`` / ``apache`` -- a fresh 400k-instruction smt/full
  simulation, no store involvement, so the number is pure simulator
  speed;
* ``fast`` -- the same specint run through the fast-functional tier
  (:mod:`repro.core.engine`), tracking the warm-up path's speed;
* ``sampled`` -- a warm-up + interval-sampling plan over specint,
  tracking the end-to-end speed of the sampled measurement tier;
* ``report`` -- the full report build from a warm store (prefetch is
  excluded from the timing), i.e. the analysis layer's speed.

``repro bench --check`` re-measures and compares against the committed
baseline with a configurable noise band (host timings on shared machines
jitter; the default tolerance is deliberately generous), exiting nonzero
on regression -- the CI perf gate.  Simulated counters are compared too,
but only *reported*: a cycle-count change means simulator behavior
changed (which a code change may fully intend), not that it got slower.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import platform
import time

#: Version of the BENCH_*.json layout.
BASELINE_SCHEMA = 1

#: Retired-instruction budget of the simulation scenarios.
DEFAULT_INSTRUCTIONS = 400_000

#: Default relative noise band for --check (fraction; 0.25 = 25%).
DEFAULT_TOLERANCE = 0.25

#: Scenarios measured by a bare ``repro bench``.
DEFAULT_SCENARIOS = ("specint", "apache", "fast", "sampled")

#: Gated host metrics and the direction that counts as a regression.
_GATE_METRICS = (
    ("ips", "lower"),        # fewer instructions per host second = slower
    ("max_rss_kb", "higher"),  # more peak memory = heavier
)

#: Simulated probes recorded alongside the host metrics (context for the
#: trajectory; never gated).
_KEY_PROBES = (
    "core.fetched",
    "core.squashed",
    "core.zero_fetch_cycles",
    "os.sched.switches",
    "mem.l2.accesses.user",
    "mem.l2.accesses.kernel",
)


def _max_rss_kb() -> int | None:
    """Peak RSS of this process in KB, or None where unavailable."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-Unix hosts
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _measure_sim(workload: str, instructions: int) -> dict:
    """Time one fresh smt/full simulation of *workload* (no store)."""
    from repro.analysis.experiments import build_simulation
    from repro.obs.registry import snapshot_percentile

    sim = build_simulation(workload, "smt", "full", seed=11)
    t0 = time.perf_counter()
    sim.run(max_instructions=instructions)
    wall = time.perf_counter() - t0
    retired = sim.stats.retired
    cycles = sim.stats.cycles
    probes = sim.obs.snapshot()
    sim_section = {
        "cycles": cycles,
        "retired": retired,
        "ipc": round(retired / cycles, 4) if cycles else 0.0,
        "probes": {name: probes[name] for name in _KEY_PROBES
                   if name in probes},
    }
    latency = probes.get("os.syscall_latency_cycles")
    if isinstance(latency, dict):
        sim_section["probes"]["os.syscall_latency_cycles.p95"] = round(
            snapshot_percentile(latency, 0.95), 1)
    # Call-path attribution totals (repro.obs.flame): deterministic
    # context for the trajectory -- like all simulated values, reported
    # but never gated.
    attribution = sim.attrib.snapshot()
    sim_section["attribution"] = {
        "paths": len(attribution),
        "nested_paths": sum(1 for p in attribution if ";" in p),
        "nested_cycles": int(sum(
            v for p, v in attribution.items() if ";" in p)),
    }
    # Interval telemetry (repro.obs.timeline): default-on, so every
    # bench run exercises it -- the host ips gate is what enforces its
    # <2% overhead budget.
    timeline = sim.probe_timeline
    if timeline is not None:
        sim_section["timeline"] = {
            "interval": timeline.interval,
            "samples": timeline.samples,
            "dropped": timeline.dropped,
            "columns": len(timeline.columns),
        }
    host = {"wall_s": round(wall, 3),
            "ips": round(retired / wall, 1) if wall > 0 else 0.0}
    rss = _max_rss_kb()
    if rss is not None:
        host["max_rss_kb"] = rss
    return {"host": host, "sim": sim_section}


def _measure_tiered(mode: str, instructions: int) -> dict:
    """Time one fresh tiered specint/smt/full plan (no store).

    ``fast`` runs the whole budget through the fast-functional tier;
    ``sampled`` runs a quarter-budget warm-up followed by 95:5
    fast:detailed interval sampling -- the same shape the sampled-smoke
    CI job executes, so its trajectory predicts that job's wall clock.
    """
    from repro.analysis.experiments import build_simulation
    from repro.core.engine import build_plan, run_plan

    warmup = 0
    sample = None
    if mode == "sampled":
        warmup = instructions // 4
        period = max(instructions // 10, 2_000)
        measure_leg = max(period // 20, 1_000)
        sample = (period - measure_leg, measure_leg)
    plan = build_plan(mode, instructions, warmup=warmup, sample=sample)
    sim = build_simulation("specint", "smt", "full", seed=11)
    t0 = time.perf_counter()
    records, samples = run_plan(sim, plan)
    wall = time.perf_counter() - t0
    retired = sim.stats.retired
    cycles = sim.stats.cycles
    sim_section = {
        "cycles": cycles,
        "retired": retired,
        "ipc": round(retired / cycles, 4) if cycles else 0.0,
        "legs": len(records),
        "fast_instructions": sim.tier.fast_instructions,
        "fast_materialized": sim.tier.fast_materialized,
        "detailed_instructions": sim.tier.detailed_instructions,
    }
    if mode == "sampled":
        sim_section["sample_windows"] = len(samples)
        sim_section["measured_instructions"] = sum(
            w.get("retired", 0) for w in samples)
    host = {"wall_s": round(wall, 3),
            "ips": round(retired / wall, 1) if wall > 0 else 0.0}
    rss = _max_rss_kb()
    if rss is not None:
        host["max_rss_kb"] = rss
    return {"host": host, "sim": sim_section}


def _measure_report(instructions: int | None = None) -> dict:
    """Time the full report build from a warm store (prefetch untimed)."""
    from repro.analysis.report import build_report
    from repro.analysis.runner import prefetch_all

    prefetch_all()  # warm; the gate times only the analysis layer
    t0 = time.perf_counter()
    report = build_report()
    wall = time.perf_counter() - t0
    host = {"wall_s": round(wall, 3)}
    rss = _max_rss_kb()
    if rss is not None:
        host["max_rss_kb"] = rss
    return {"host": host,
            "sim": {"shape_criteria_held": report.shape_criteria_held,
                    "shape_criteria_total": report.shape_criteria_total}}


#: scenario name -> (description, measurement function taking the
#: instruction budget).
SCENARIOS = {
    "specint": ("fresh specint/smt/full simulation, store-free",
                lambda n: _measure_sim("specint", n)),
    "apache": ("fresh apache/smt/full simulation, store-free",
               lambda n: _measure_sim("apache", n)),
    "fast": ("fast-functional specint/smt/full plan, store-free",
             lambda n: _measure_tiered("fast", n)),
    "sampled": ("warm-up + 95:5 interval-sampled specint/smt/full plan",
                lambda n: _measure_tiered("sampled", n)),
    "report": ("full report build from a warm run store",
               _measure_report),
}


def measure(scenario: str,
            instructions: int | None = None) -> dict:
    """Run one scenario and return the full BENCH payload."""
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r} "
                         f"(want one of {sorted(SCENARIOS)})")
    description, fn = SCENARIOS[scenario]
    budget = instructions if instructions is not None else DEFAULT_INSTRUCTIONS
    payload = {
        "schema": BASELINE_SCHEMA,
        "scenario": scenario,
        "description": description,
    }
    if scenario != "report":
        payload["instructions"] = budget
    payload.update(fn(budget if scenario != "report" else None))
    payload["meta"] = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "generated": datetime.datetime.now().isoformat(timespec="seconds"),
    }
    return payload


def baseline_path(scenario: str, directory: str | pathlib.Path = ".") -> pathlib.Path:
    return pathlib.Path(directory) / f"BENCH_{scenario}.json"


def write_baseline(payload: dict,
                   directory: str | pathlib.Path = ".") -> pathlib.Path:
    path = baseline_path(payload["scenario"], directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(scenario: str,
                  directory: str | pathlib.Path = ".") -> dict | None:
    path = baseline_path(scenario, directory)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def check(measured: dict, baseline: dict,
          tolerance: float = DEFAULT_TOLERANCE) -> tuple[list[str], list[str]]:
    """Compare a fresh measurement against a stored baseline.

    Returns ``(regressions, notes)``: *regressions* are gate failures
    (host metric worse than the baseline beyond *tolerance*), *notes*
    are informational drifts (simulated counters changed, wall-clock
    moved on a different instruction budget, ...).
    """
    regressions: list[str] = []
    notes: list[str] = []
    m_host = measured.get("host", {})
    b_host = baseline.get("host", {})
    same_budget = measured.get("instructions") == baseline.get("instructions")
    gates = list(_GATE_METRICS)
    if "ips" not in b_host and same_budget:
        # The report scenario has no rate metric; gate wall-clock directly
        # (comparable because the workload is identical).
        gates.append(("wall_s", "higher"))
    for metric, bad_direction in gates:
        was = b_host.get(metric)
        now = m_host.get(metric)
        if not was or now is None:
            continue
        change = (now - was) / was
        worse = change > tolerance if bad_direction == "higher" \
            else change < -tolerance
        text = (f"{metric}: {was:,.1f} -> {now:,.1f} "
                f"({change * 100:+.1f}%, band ±{tolerance * 100:.0f}%)")
        if worse:
            regressions.append(text)
        elif abs(change) > tolerance:
            notes.append(f"improved {text}")
    m_sim = measured.get("sim", {})
    b_sim = baseline.get("sim", {})
    if same_budget:
        for key in ("cycles", "ipc"):
            was, now = b_sim.get(key), m_sim.get(key)
            if was and now is not None and now != was:
                notes.append(
                    f"simulated {key} drifted: {was:,} -> {now:,} "
                    "(behavior change, not gated)")
    elif "instructions" in measured or "instructions" in baseline:
        notes.append(
            f"instruction budgets differ "
            f"(baseline {baseline.get('instructions')}, "
            f"measured {measured.get('instructions')}); "
            "gating rate metrics only")
    return regressions, notes
