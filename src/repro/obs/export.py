"""Event-recording exporters: JSONL and Chrome ``trace_event`` JSON.

The Chrome exporter lays a recording out the way the paper reads a
machine: process 0 ("hardware contexts") carries one track per hardware
context showing what service each context is occupied by over time plus
per-context instants (interrupt delivery, scheduler dispatch, squashes);
process 1 ("kernel services") carries one track per kernel service with
the syscall/kwork spans executed on behalf of any thread.  The output is
the stable JSON-object form of the trace-event format, so ``repro trace
--out trace.json`` opens directly in ``chrome://tracing`` or
https://ui.perfetto.dev.  One simulated cycle maps to one microsecond of
trace time.
"""

from __future__ import annotations

import json
from collections.abc import Iterable

from repro.obs.events import BEGIN, END, SimEvent

#: Synthetic pids of the two exported processes.
PID_CONTEXTS = 0
PID_SERVICES = 1


def to_jsonl(events: Iterable[SimEvent]) -> str:
    """One compact JSON object per line, in recording order."""
    return "\n".join(
        json.dumps(e.to_json_dict(), sort_keys=True, separators=(",", ":"))
        for e in events)


def _metadata(pid: int, process_name: str,
              threads: dict[int, str]) -> list[dict]:
    out = [{"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": process_name}}]
    for tid, name in sorted(threads.items()):
        out.append({"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                    "args": {"name": name}})
    return out


def to_chrome_trace(events: Iterable[SimEvent],
                    n_contexts: int | None = None) -> dict:
    """Render a recording as a Chrome ``trace_event`` JSON object.

    Span events (phase ``B``/``E``) are paired per track into complete
    (``X``) events -- Perfetto renders those robustly even when a span is
    still open at the end of the recording (unmatched begins are emitted
    as zero-duration spans).  Timestamps are emitted in ascending order.
    """
    ctx_tids: set[int] = set(range(n_contexts)) if n_contexts else set()
    service_tids: dict[str, int] = {}
    open_spans: dict[tuple[int, int], list[SimEvent]] = {}
    trace: list[dict] = []

    def service_tid(service: str) -> int:
        tid = service_tids.get(service)
        if tid is None:
            tid = service_tids[service] = len(service_tids)
        return tid

    def track_of(event: SimEvent) -> tuple[int, int]:
        if event.ctx is not None:
            ctx_tids.add(event.ctx)
            return PID_CONTEXTS, event.ctx
        return PID_SERVICES, service_tid(event.service or event.name)

    def emit_span(pid: int, tid: int, begin: SimEvent, end_ts: int) -> None:
        trace.append({
            "ph": "X", "pid": pid, "tid": tid, "ts": begin.ts,
            "dur": max(0, end_ts - begin.ts), "name": begin.name,
            "cat": begin.kind, "args": begin.args or {},
        })

    last_ts = 0
    for event in sorted(events, key=lambda e: e.ts):
        last_ts = event.ts
        pid, tid = track_of(event)
        if event.phase == BEGIN:
            open_spans.setdefault((pid, tid), []).append(event)
        elif event.phase == END:
            stack = open_spans.get((pid, tid))
            if stack:
                emit_span(pid, tid, stack.pop(), event.ts)
            # An end without a begin (span opened before recording
            # started) carries no start point; drop it.
        else:
            trace.append({
                "ph": "i", "s": "t", "pid": pid, "tid": tid, "ts": event.ts,
                "name": event.name, "cat": event.kind,
                "args": event.args or {},
            })
    for (pid, tid), stack in open_spans.items():
        for begin in stack:
            emit_span(pid, tid, begin, last_ts)

    trace.sort(key=lambda e: e["ts"])
    meta = _metadata(PID_CONTEXTS, "hardware contexts",
                     {tid: f"ctx{tid}" for tid in sorted(ctx_tids)})
    meta += _metadata(PID_SERVICES, "kernel services",
                      {tid: name for name, tid in service_tids.items()})
    return {
        "traceEvents": meta + trace,
        "displayTimeUnit": "ms",
        "otherData": {"time_unit": "1 trace us = 1 simulated cycle"},
    }


def write_chrome_trace(path, events: Iterable[SimEvent],
                       n_contexts: int | None = None) -> dict:
    """Write the Chrome trace JSON to *path*; returns the trace object."""
    payload = to_chrome_trace(events, n_contexts)
    with open(path, "w") as f:
        json.dump(payload, f)
        f.write("\n")
    return payload
