"""Live run telemetry: heartbeats, progress rendering, pool aggregation.

A multi-million-instruction simulation is a silent busy loop; this
module gives it a pulse.  A :class:`Heartbeat` attached via
:meth:`repro.core.simulator.Simulation.attach_heartbeat` samples the
machine every ``2^k`` cycles (the run loop's check is a single mask
test, so the 2%-overhead budget holds) and feeds each sample to a sink:

* :class:`TtyProgressSink` -- one self-overwriting ``\\r`` status line
  (percent done, cycle, retired, simulated IPC and kernel-cycle share
  from the interval probe timeline when one is attached, host
  instr/sec, ETA) for ``repro run --progress``;
* :class:`JsonlSink` -- one JSON object per beat, for headless runs and
  offline analysis (``repro run --progress-out beats.jsonl``);
* :class:`StateFileSink` -- atomically overwrites one small file with
  the *latest* sample.  The parallel runner gives each worker process a
  state file and the parent's :class:`ProgressAggregator` folds them
  into one fleet-wide line (``repro prefetch --progress``).

Samples are plain dicts (JSON-safe) with both cumulative and rolling
rates; rolling values cover the window since the previous beat, which
is what makes stalls visible while cumulative averages still look fine.
"""

from __future__ import annotations

import json
import os
import sys
import time


class Heartbeat:
    """Periodic sampler for one running simulation.

    ``interval`` rounds up to a power of two; the run loop beats when
    ``now & mask == 0``.  ``target_instructions`` enables percent-done
    and ETA fields.  The same heartbeat survives chunked ``run()`` calls
    (the windowed runner executes one budget in warm-up chunks).
    """

    def __init__(self, sink, interval: int = 1 << 16,
                 target_instructions: int | None = None,
                 label: str = "") -> None:
        if interval < 1:
            raise ValueError(f"heartbeat interval must be >= 1, got {interval}")
        self.interval = 1 << max(0, (interval - 1).bit_length())
        self.mask = self.interval - 1
        self.sink = sink
        self.target = target_instructions
        self.label = label
        #: Optional ProbeTimeline whose latest interval sample is merged
        #: into every beat (simulated IPC + kernel-cycle share); set by
        #: Simulation.attach_heartbeat.
        self.timeline = None
        self.beats = 0
        self._t0 = time.perf_counter()
        self._last = (self._t0, 0, 0)  # (host time, cycle, retired)

    def beat(self, now: int, stats) -> None:
        """Record one sample (called by the run loop, every 2^k cycles)."""
        t = time.perf_counter()
        last_t, last_cycle, last_retired = self._last
        dt = t - last_t
        retired = stats.retired
        d_cycles = now - last_cycle
        d_retired = retired - last_retired
        elapsed = t - self._t0
        sample = {
            "label": self.label,
            "cycle": now,
            "retired": retired,
            "elapsed_s": round(elapsed, 3),
            "ipc": round(retired / now, 4) if now else 0.0,
            "rolling_ipc": round(d_retired / d_cycles, 4) if d_cycles else 0.0,
            "ips": round(d_retired / dt, 1) if dt > 0 else 0.0,
            "cps": round(d_cycles / dt, 1) if dt > 0 else 0.0,
        }
        if self.timeline is not None:
            latest = self.timeline.latest()
            if latest is not None:
                sample.update(latest)
        if self.target:
            sample["target"] = self.target
            sample["pct"] = round(100.0 * retired / self.target, 1)
            if sample["ips"] > 0:
                sample["eta_s"] = round(
                    max(0, self.target - retired) / sample["ips"], 1)
        self.beats += 1
        self._last = (t, now, retired)
        self.sink(sample)

    def close(self) -> None:
        close = getattr(self.sink, "close", None)
        if close is not None:
            close()


def render_sample(sample: dict) -> str:
    """One heartbeat sample as a human-readable status line."""
    parts = []
    label = sample.get("label")
    if label:
        parts.append(label)
    if "pct" in sample:
        parts.append(f"{sample['pct']:5.1f}%")
    parts.append(f"cycle {sample['cycle']:,}")
    retired = f"{sample['retired']:,}"
    if sample.get("target"):
        retired += f"/{sample['target']:,}"
    parts.append(f"{retired} instr")
    # Prefer the interval-telemetry IPC (exact over the last timeline
    # sample) over the beat-window rolling IPC when a timeline is wired.
    parts.append(f"IPC {sample.get('sim_ipc', sample['rolling_ipc']):.2f}")
    if "kernel_share" in sample:
        parts.append(f"krn {sample['kernel_share'] * 100:.0f}%")
    parts.append(f"{_si(sample['ips'])} instr/s")
    if "eta_s" in sample:
        parts.append(f"ETA {_hms(sample['eta_s'])}")
    return " | ".join(parts)


def _si(value: float) -> str:
    for bound, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if value >= bound:
            return f"{value / bound:.1f}{suffix}"
    return f"{value:.0f}"


def _hms(seconds: float) -> str:
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}:{seconds % 3600 // 60:02d}:{seconds % 60:02d}"
    return f"{seconds // 60:02d}:{seconds % 60:02d}"


class TtyProgressSink:
    """Self-overwriting single-line progress display (``\\r`` rewrite)."""

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._width = 0

    def __call__(self, sample: dict) -> None:
        self.write_line(render_sample(sample))

    def write_line(self, line: str) -> None:
        pad = max(0, self._width - len(line))
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()
        self._width = len(line)

    def close(self) -> None:
        if self._width:
            self.stream.write("\n")
            self.stream.flush()
            self._width = 0


class JsonlSink:
    """Appends every sample as one JSON line (headless telemetry)."""

    def __init__(self, path_or_stream) -> None:
        if hasattr(path_or_stream, "write"):
            self._stream, self._owned = path_or_stream, False
        else:
            self._stream, self._owned = open(path_or_stream, "w"), True

    def __call__(self, sample: dict) -> None:
        self._stream.write(json.dumps(sample, sort_keys=True) + "\n")
        self._stream.flush()

    def close(self) -> None:
        if self._owned:
            self._stream.close()


class StateFileSink:
    """Atomically overwrites one file with the latest sample.

    This is the worker half of pool progress aggregation: readers never
    see a torn write (temp file + rename), and the file stays one sample
    small no matter how long the run is.  *on_write* lets the serial
    fallback piggyback a refresh after every beat.
    """

    def __init__(self, path, on_write=None) -> None:
        self.path = str(path)
        self.on_write = on_write

    def __call__(self, sample: dict) -> None:
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w") as f:
            f.write(json.dumps(sample, sort_keys=True))
        os.replace(tmp, self.path)
        if self.on_write is not None:
            self.on_write()


class ProgressAggregator:
    """Folds per-worker state files into one fleet-wide progress line.

    The parent process creates one aggregator over a (temporary)
    directory, hands ``path_for(i)`` to each worker's
    :class:`StateFileSink`, and calls :meth:`refresh` while it waits;
    ``refresh(final=True)`` finishes the line with a newline.
    """

    def __init__(self, directory, total_runs: int,
                 total_instructions: int | None = None,
                 stream=None, stale_after: float | None = 30.0) -> None:
        self.directory = str(directory)
        self.total_runs = total_runs
        self.total_instructions = total_instructions
        self.stale_after = stale_after
        self._tty = TtyProgressSink(stream)
        self._t0 = time.perf_counter()

    def path_for(self, index: int) -> str:
        return os.path.join(self.directory, f"worker-{index}.json")

    def prune(self) -> list[str]:
        """Remove leftover ``worker-*.json`` from a previous incarnation.

        A long-lived service keeps its progress directory across
        restarts, so state files written by a dead incarnation's
        workers would otherwise sit there forever -- old enough to be
        "stale", and therefore reported as stalled workers on every
        aggregate.  Call this once at startup, before any worker
        writes.  Returns the removed names (sorted, for deterministic
        transcripts).
        """
        try:
            names = sorted(name for name in os.listdir(self.directory)
                           if name.startswith("worker-")
                           and name.endswith(".json"))
        except OSError:
            return []
        removed = []
        for name in names:
            try:
                os.unlink(os.path.join(self.directory, name))
            except OSError:  # pragma: no cover - racing deletion
                continue
            removed.append(name)
        return removed

    def samples(self) -> list[dict]:
        """Every worker's latest sample (unreadable/in-flight files skipped).

        Each sample gains an ``age_s`` field: seconds since the worker
        last rewrote its state file.  A crashed worker stops rewriting
        but its last sample stays on disk, so file age -- not sample
        content -- is what distinguishes a live worker from a dead one.
        """
        out = []
        now = time.time()
        for index in range(self.total_runs):
            path = self.path_for(index)
            try:
                with open(path) as f:
                    payload = json.load(f)
                age = max(0.0, now - os.stat(path).st_mtime)
            except (OSError, ValueError):
                continue
            if isinstance(payload, dict):
                payload["age_s"] = round(age, 1)
                out.append(payload)
        return out

    def _is_stale(self, sample: dict) -> bool:
        return (self.stale_after is not None
                and sample.get("age_s", 0.0) > self.stale_after)

    def aggregate(self) -> dict:
        """One combined sample: sums of retired/ips, overall percent.

        Workers whose state file has not been rewritten for
        ``stale_after`` seconds are counted in ``stale`` instead of
        ``active`` and excluded from the rate sum (their last-known
        retired counts still contribute to progress -- that work is
        done and persisted).
        """
        samples = self.samples()
        fresh = [s for s in samples if not self._is_stale(s)]
        retired = sum(s.get("retired", 0) for s in samples)
        agg = {
            "runs": self.total_runs,
            "active": len(fresh),
            "stale": len(samples) - len(fresh),
            "retired": retired,
            "ips": round(sum(s.get("ips", 0.0) for s in fresh), 1),
            "elapsed_s": round(time.perf_counter() - self._t0, 3),
        }
        if self.total_instructions:
            agg["target"] = self.total_instructions
            agg["pct"] = round(100.0 * retired / self.total_instructions, 1)
        return agg

    def render(self) -> str:
        agg = self.aggregate()
        parts = [f"{agg['active']}/{agg['runs']} runs"]
        if agg.get("stale"):
            parts.append(f"{agg['stale']} stalled")
        if "pct" in agg:
            parts.append(f"{agg['pct']:5.1f}%")
        retired = f"{agg['retired']:,}"
        if agg.get("target"):
            retired += f"/{agg['target']:,}"
        parts.append(f"{retired} instr")
        parts.append(f"{_si(agg['ips'])} instr/s")
        parts.append(f"{_hms(agg['elapsed_s'])} elapsed")
        return " | ".join(parts)

    def refresh(self, final: bool = False) -> None:
        self._tty.write_line(self.render())
        if final:
            self._tty.close()
