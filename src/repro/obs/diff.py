"""Differential observability: structural diffing of stored runs.

The paper's contribution is comparative measurement -- SMT vs.
superscalar, with and without the OS (Tables 4 and 9) -- so *differences
between runs* deserve to be first-class objects, not numbers eyeballed
across two ``repro counters`` printouts.  This module turns any two run
artifacts (or any two windows of them) into a :class:`DiffReport`:

* every probe of the flattened registry tree is compared -- histograms
  expand into ``.count`` / ``.sum`` / ``.mean`` / ``.p50`` / ``.p95`` /
  ``.p99`` scalars, and the pseudo-probes ``derived.ipc`` /
  ``derived.cycles`` / ``derived.retired`` are added from the window
  totals so headline metrics diff alongside raw counts;
* each comparison carries the absolute delta and the relative delta,
  with top-mover ranking by either;
* optional noise filtering: with ``seeds=N`` each side is re-run under
  ``N`` consecutive seeds (fanned out through
  :mod:`repro.analysis.runner`, so repeats execute in parallel and hit
  the store on later calls), sides compare mean-vs-mean, and a delta
  smaller than the combined confidence band (2 standard deviations per
  side) is flagged insignificant;
* ``per_kilo=True`` normalizes counts to *per 1,000 retired
  instructions* of their own side, so runs with different instruction
  budgets (e.g. the SMT and superscalar canonical budgets) compare on
  rates instead of raw volume.

``repro diff <runA> <runB>`` and ``repro counters --against <run>`` are
the CLI entry points; both resolve runs through the normal memo/store
layers, so diffing two stored artifacts never re-simulates.
"""

from __future__ import annotations

import re
import statistics
from dataclasses import dataclass, field

from repro.obs.registry import snapshot_percentile

#: Percentile scalars expanded from every histogram probe.
_PERCENTILES = ((0.50, "p50"), (0.95, "p95"), (0.99, "p99"))

#: Flattened-probe suffixes that are averages/quantiles, not counts:
#: exempt from per-kilo normalization.
_RATE_SUFFIXES = (".mean", ".p50", ".p95", ".p99")


def flatten_window(window: dict) -> dict[str, float]:
    """One counter window as a flat ``{probe: scalar}`` dict.

    Histogram snapshots expand into count/sum/mean/percentile scalars;
    the window's own totals surface as ``derived.*`` pseudo-probes.
    """
    flat: dict[str, float] = {}
    for name, value in window.get("probes", {}).items():
        if isinstance(value, dict):  # histogram snapshot
            count = value.get("count", 0)
            flat[f"{name}.count"] = count
            flat[f"{name}.sum"] = value.get("sum", 0)
            if count:
                flat[f"{name}.mean"] = value.get("sum", 0) / count
                for q, tag in _PERCENTILES:
                    flat[f"{name}.{tag}"] = snapshot_percentile(value, q)
        else:
            flat[name] = value
    cycles = window.get("cycles", 0)
    retired = window.get("retired", 0)
    flat["derived.cycles"] = cycles
    flat["derived.retired"] = retired
    if cycles:
        flat["derived.ipc"] = retired / cycles
    return flat


def compile_grep(pattern: str | None):
    """Compile a ``--grep`` pattern, or None when no filtering is wanted.

    The pattern is a Python regex matched with *unanchored*
    :func:`re.search` -- the semantics shared by every ``--grep`` in the
    CLI (``counters``, ``diff``, ``flame``).  A plain prefix like
    ``mem.l2`` therefore still matches everything it used to (the dot
    matches itself among other characters); anchor explicitly with
    ``^``/``$`` to pin the match to a name boundary.  A malformed regex
    raises ``ValueError`` with the original ``re.error`` message.
    """
    if not pattern:
        return None
    try:
        return re.compile(pattern)
    except re.error as exc:
        raise ValueError(f"bad --grep pattern {pattern!r}: {exc}") from exc


def _is_rate(name: str) -> bool:
    return name.startswith("derived.ipc") or name.endswith(_RATE_SUFFIXES)


def _per_kilo(flat: dict[str, float]) -> dict[str, float]:
    """Scale count probes to per-1,000-retired-instructions of this side."""
    retired = flat.get("derived.retired", 0)
    if not retired:
        return dict(flat)
    scale = 1000.0 / retired
    return {name: value if _is_rate(name) else value * scale
            for name, value in flat.items()}


@dataclass(frozen=True)
class ProbeDelta:
    """One probe compared across two runs (``delta = b - a``)."""

    name: str
    a: float
    b: float
    delta: float
    rel: float | None  # delta / a; None when the probe appeared (a == 0)
    band: float = 0.0  # noise half-width from seed repeats (0 = unknown)
    significant: bool = True

    def to_json_dict(self) -> dict:
        return {"name": self.name, "a": self.a, "b": self.b,
                "delta": self.delta, "rel": self.rel, "band": self.band,
                "significant": self.significant}


def diff_flat(
    flat_a: dict[str, float],
    flat_b: dict[str, float],
    grep: str | None = None,
    bands: dict[str, float] | None = None,
) -> list[ProbeDelta]:
    """Compare two flattened windows probe by probe, sorted by name.

    Probes present on only one side compare against 0 (they appeared or
    vanished); probes that are 0 on both sides are dropped.  *grep* is a
    regex filter (see :func:`compile_grep`).  With *bands* (probe name ->
    noise half-width), a delta inside the band is kept but marked
    insignificant.
    """
    bands = bands or {}
    pattern = compile_grep(grep)
    out = []
    for name in sorted(set(flat_a) | set(flat_b)):
        if pattern is not None and not pattern.search(name):
            continue
        a = flat_a.get(name, 0)
        b = flat_b.get(name, 0)
        if a == 0 and b == 0:
            continue
        delta = b - a
        band = bands.get(name, 0.0)
        out.append(ProbeDelta(
            name=name, a=a, b=b, delta=delta,
            rel=(delta / a) if a else None, band=band,
            significant=abs(delta) > band))
    return out


def _mover_key(kind: str):
    if kind == "abs":
        return lambda d: (abs(d.delta), d.name)
    if kind == "rel":
        return lambda d: (float("inf") if d.rel is None else abs(d.rel),
                          abs(d.delta), d.name)
    raise ValueError(f"unknown ranking {kind!r} (want 'abs' or 'rel')")


@dataclass
class DiffReport:
    """The structural diff of one window across two runs."""

    a_label: str
    b_label: str
    a_fingerprint: str
    b_fingerprint: str
    window: str
    deltas: list[ProbeDelta]
    seeds: int = 1
    per_kilo: bool = False
    grep: str | None = field(default=None)

    @property
    def changed(self) -> list[ProbeDelta]:
        return [d for d in self.deltas if d.delta != 0]

    @property
    def significant(self) -> list[ProbeDelta]:
        return [d for d in self.changed if d.significant]

    def delta(self, name: str) -> ProbeDelta | None:
        """The comparison for one probe, or None if it never appeared."""
        for d in self.deltas:
            if d.name == name:
                return d
        return None

    def top_movers(self, n: int = 20, key: str = "abs",
                   significant_only: bool = True) -> list[ProbeDelta]:
        """The *n* largest changes, ranked by absolute or relative delta."""
        pool = self.significant if significant_only else self.changed
        return sorted(pool, key=_mover_key(key), reverse=True)[:n]

    # -- rendering ---------------------------------------------------------

    def to_json_dict(self) -> dict:
        return {
            "a": {"label": self.a_label, "fingerprint": self.a_fingerprint},
            "b": {"label": self.b_label, "fingerprint": self.b_fingerprint},
            "window": self.window,
            "seeds": self.seeds,
            "per_kilo": self.per_kilo,
            "grep": self.grep,
            "deltas": [d.to_json_dict() for d in self.deltas],
        }

    def render(self, n: int = 20, key: str = "abs",
               show_all: bool = False) -> str:
        rows = (self.changed if show_all
                else self.top_movers(n, key=key))
        width = max([len(d.name) for d in rows], default=5)
        lines = [f"  {'probe':<{width}s} {'a':>14s} {'b':>14s} "
                 f"{'delta':>14s} {'rel':>9s}"]
        for d in rows:
            rel = "new" if d.rel is None else f"{d.rel * 100:+.1f}%"
            mark = " " if d.significant else "~"
            lines.append(f"{mark} {d.name:<{width}s} {_num(d.a):>14s} "
                         f"{_num(d.b):>14s} {_num(d.delta):>14s} {rel:>9s}")
        changed = self.changed
        noise = len(changed) - len(self.significant)
        summary = (f"{len(changed)} probe(s) differ"
                   f" [{self.window} window] a={self.a_label} b={self.b_label}")
        if self.seeds > 1:
            summary += (f"; {noise} within the noise band of {self.seeds} "
                        "seeds (marked ~)" if show_all else
                        f"; {noise} filtered as noise ({self.seeds} seeds)")
        if self.per_kilo:
            summary += "; counts per 1,000 retired instructions"
        if not show_all and len(changed) > len(rows):
            summary += f"; showing top {len(rows)} by |{key}|"
        lines.append(summary)
        return "\n".join(lines)


def _num(x: float) -> str:
    if isinstance(x, float) and not x.is_integer():
        return f"{x:,.3f}"
    return f"{int(x):,}"


# -- noise bands from repeated-seed runs ------------------------------------


def seed_specs(spec: dict, seeds: int) -> list[dict]:
    """*seeds* copies of one run spec under consecutive seeds."""
    base = spec.get("seed", 11)
    return [dict(spec, seed=base + i) for i in range(seeds)]


def mean_and_band(
    windows: list[dict], per_kilo: bool = False,
) -> tuple[dict[str, float], dict[str, float]]:
    """Per-probe mean and confidence half-width across repeated runs.

    The band is a simple 2-standard-deviation half-width (sample stdev
    across the seed repeats); a single window yields zero bands.
    """
    flats = [_per_kilo(flatten_window(w)) if per_kilo else flatten_window(w)
             for w in windows]
    names = sorted(set().union(*flats)) if flats else []
    mean: dict[str, float] = {}
    band: dict[str, float] = {}
    for name in names:
        values = [f.get(name, 0) for f in flats]
        mean[name] = sum(values) / len(values)
        band[name] = (2.0 * statistics.stdev(values)
                      if len(values) > 1 else 0.0)
    return mean, band


# -- top-level entry points -------------------------------------------------


def diff_artifacts(
    art_a, art_b, window: str = "steady", grep: str | None = None,
    per_kilo: bool = False,
) -> DiffReport:
    """Diff one window of two already-resolved artifacts (no noise model)."""
    flat_a = flatten_window(art_a.window(window))
    flat_b = flatten_window(art_b.window(window))
    if per_kilo:
        flat_a, flat_b = _per_kilo(flat_a), _per_kilo(flat_b)
    return DiffReport(
        a_label=art_a.label, b_label=art_b.label,
        a_fingerprint=art_a.fingerprint, b_fingerprint=art_b.fingerprint,
        window=window, grep=grep, per_kilo=per_kilo,
        deltas=diff_flat(flat_a, flat_b, grep=grep))


def diff_runs(
    spec_a: dict,
    spec_b: dict,
    window: str = "steady",
    grep: str | None = None,
    seeds: int = 1,
    per_kilo: bool = False,
    max_workers: int | None = None,
) -> DiffReport:
    """Diff two run *specs* (``{workload, cpu, os_mode[, instructions,
    seed]}``), resolving every needed run through the runner fan-out.

    With ``seeds > 1`` each side runs under that many consecutive seeds
    (missing repeats execute in parallel, warm ones load from the
    store); sides then compare mean-vs-mean with per-probe noise bands.
    """
    from repro.analysis import experiments
    from repro.analysis.artifact import run_fingerprint
    from repro.analysis.runner import run_many

    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    fan = seed_specs(spec_a, seeds) + seed_specs(spec_b, seeds)
    arts = list(run_many(fan, max_workers=max_workers).values())
    arts_a, arts_b = arts[:seeds], arts[seeds:]
    mean_a, band_a = mean_and_band(
        [a.window(window) for a in arts_a], per_kilo=per_kilo)
    mean_b, band_b = mean_and_band(
        [b.window(window) for b in arts_b], per_kilo=per_kilo)
    bands = {name: band_a.get(name, 0.0) + band_b.get(name, 0.0)
             for name in sorted(set(band_a) | set(band_b))}

    def _identity(spec: dict) -> tuple[str, str]:
        label = "-".join((spec["workload"], spec["cpu"],
                          spec.get("os_mode", "full")))
        resolved = experiments.run_spec(
            spec["workload"], spec["cpu"], spec.get("os_mode", "full"),
            spec.get("instructions"), spec.get("seed", 11))
        return label, run_fingerprint(resolved)

    (label_a, fp_a), (label_b, fp_b) = _identity(spec_a), _identity(spec_b)
    return DiffReport(
        a_label=label_a, b_label=label_b,
        a_fingerprint=fp_a, b_fingerprint=fp_b,
        window=window, grep=grep, seeds=seeds, per_kilo=per_kilo,
        deltas=diff_flat(mean_a, mean_b, grep=grep, bands=bands))
