"""Interval telemetry: per-interval probe time series over simulated time.

The paper's headline numbers are whole-window *averages* (Table 4's
zero-fetch shares, the kernel/user breakdowns behind Figures 1/5); this
module records how those quantities *evolve*: a :class:`ProbeTimeline`
attached to a :class:`~repro.core.simulator.Simulation` snapshots a
configurable probe subset every ``2^k`` simulated cycles -- in both
execution tiers, with samples landing on exactly the same cycle
boundaries whether an interval was simulated in detail or fast-forwarded
-- and delta-encodes the samples into a compact columnar record stored
on the run artifact (``RunArtifact.probe_timeline``, schema v7).

The record is plain data::

    {"interval": 8192, "samples": 57, "dropped": 0,
     "columns": {"core.retired": [d0, d1, ...],
                 "class.kernel": [...], "svc.syscall:read": [...], ...}}

Column ``columns[name][i]`` is the probe's *delta* over sample interval
``i``, which covers cycles ``(i*interval, (i+1)*interval]``.  Besides
the configured registry probes, every record carries the four mode-class
context-cycle columns (``class.user`` / ``class.kernel`` / ``class.pal``
/ ``class.idle``) and one ``svc.<leaf>`` column per charged service (the
per-leaf attribution totals; columns appearing mid-run are back-filled
with zeros so all columns stay equal-length).

On top of the record this module derives headline series at read time
(:func:`derived_series`: interval IPC, kernel-cycle share, zero-fetch /
zero-issue shares, ``mem.*`` miss rates, fast-tier share), detects phase
changes (:func:`detect_phases`: windowed mean shift on IPC and kernel
share, emitted as ``marks``-style boundaries sampled-mode window
placement can consume -- see :func:`suggest_warmup`), and diffs two
runs' timelines interval by interval through the same
:class:`~repro.obs.diff.DiffReport` machinery as probe diffs
(:func:`diff_timeline_artifacts` / :func:`diff_timeline_runs`).

``repro timeline <run>`` and ``repro diff --timeline`` are the CLI entry
points.  Telemetry is default-on (the per-cycle cost is one mask test;
samples are ~30 dict reads every ``interval`` cycles) and -- like the
heartbeat and watchdog -- is configured *post-construction*
(:meth:`~repro.core.simulator.Simulation.configure_timeline`), so it
never enters the configuration fingerprint: two runs differing only in
telemetry options share a store key.

Not to be confused with the mode-class ``RunArtifact.timeline`` behind
Figures 1/5 (:attr:`repro.core.stats.SimStats.timeline`): that is a
fixed four-share series; this is a general probe time-series layer.
"""

from __future__ import annotations

import statistics

from repro.core.stats import CLASS_NAMES
from repro.obs.diff import DiffReport, compile_grep, diff_flat, seed_specs

#: Default sampling interval in simulated cycles (power of two: the run
#: loops test ``now & mask == 0``, the same pattern as the heartbeat).
DEFAULT_TIMELINE_INTERVAL = 8192

#: Default sample cap.  Beyond it the recorded prefix is kept and later
#: intervals are counted in ``dropped`` (mirroring the event ring's
#: ``core.events.dropped``), so a runaway run cannot grow an artifact
#: without bound.  4096 samples cover 33.5M cycles at the default
#: interval -- far past every canonical budget.
DEFAULT_MAX_SAMPLES = 4096

#: Registry probes sampled by default: the inputs of the headline
#: derived series (IPC, zero-fetch/zero-issue shares, mem.* miss rates,
#: fast-tier share).  All are cheap scalar reads (counters or derived
#: attribute getters); histograms and derived families are not
#: sampleable (see :meth:`ProbeTimeline.__init__`).
DEFAULT_TIMELINE_PROBES = (
    "core.retired",
    "core.zero_fetch_cycles",
    "core.zero_issue_cycles",
    "core.mode.fast_cycles",
    "mem.l1i.accesses.user", "mem.l1i.accesses.kernel",
    "mem.l1i.miss.user", "mem.l1i.miss.kernel",
    "mem.l1d.accesses.user", "mem.l1d.accesses.kernel",
    "mem.l1d.miss.user", "mem.l1d.miss.kernel",
    "mem.l2.accesses.user", "mem.l2.accesses.kernel",
    "mem.l2.miss.user", "mem.l2.miss.kernel",
    "mem.itlb.accesses.user", "mem.itlb.accesses.kernel",
    "mem.itlb.miss.user", "mem.itlb.miss.kernel",
    "mem.dtlb.accesses.user", "mem.dtlb.accesses.kernel",
    "mem.dtlb.miss.user", "mem.dtlb.miss.kernel",
)

_CLASS_COLUMNS = tuple(f"class.{name}" for name in CLASS_NAMES)


class ProbeTimeline:
    """Interval sampler for one running simulation.

    ``interval`` rounds up to a power of two; the run loops sample when
    ``now & mask == 0`` (detailed tier) and clip fast-forward jump
    blocks at the same boundaries, so a sample always lands at an exact
    multiple of the interval whatever mix of tiers executed it --
    :meth:`tick` verifies that alignment and raises if a loop edit ever
    breaks it.  Sampling is pure observation: no RNG draws, no timing
    effects, so the simulated trajectory is byte-identical with
    telemetry on, off, or reconfigured.
    """

    def __init__(self, sim, interval: int = DEFAULT_TIMELINE_INTERVAL,
                 probes: tuple[str, ...] | None = None,
                 max_samples: int = DEFAULT_MAX_SAMPLES) -> None:
        if interval < 1:
            raise ValueError(f"timeline interval must be >= 1, got {interval}")
        if max_samples < 1:
            raise ValueError(
                f"timeline max_samples must be >= 1, got {max_samples}")
        self.interval = 1 << max(0, (interval - 1).bit_length())
        self.mask = self.interval - 1
        self.max_samples = max_samples
        self.probes = tuple(probes if probes is not None
                            else DEFAULT_TIMELINE_PROBES)
        self._stats = sim.stats
        self._readers = []
        for name in self.probes:
            read = sim.obs.reader(name)
            if read is None:
                raise ValueError(
                    f"cannot sample probe {name!r}: not a scalar counter or "
                    "derived probe (histograms and derived families are not "
                    "timeline-sampleable)")
            self._readers.append((name, read))
        self.samples = 0
        self.dropped = 0
        self.columns: dict[str, list[int]] = {n: [] for n, _ in self._readers}
        for name in _CLASS_COLUMNS:
            self.columns[name] = []
        self._prev: dict[str, int] = {name: 0 for name in self.columns}
        start = getattr(sim, "_now", 0)
        self._expect = (start // self.interval + 1) * self.interval

    def tick(self, now: int) -> None:
        """Record one sample (called by both run loops at ``2^k`` cycles)."""
        if now != self._expect:
            raise RuntimeError(
                f"probe-timeline sample at cycle {now:,} but expected "
                f"{self._expect:,}: a run loop stopped clipping at "
                "interval boundaries (fast/full alignment broken)")
        self._expect = now + self.interval
        if self.samples >= self.max_samples:
            self.dropped += 1
            return
        prev = self._prev
        columns = self.columns
        for name, read in self._readers:
            value = read()
            columns[name].append(value - prev[name])
            prev[name] = value
        classes = self._stats.class_cycles
        for cls, name in enumerate(_CLASS_COLUMNS):
            value = classes[cls]
            columns[name].append(value - prev[name])
            prev[name] = value
        for svc, value in self._stats.service_cycles.items():
            name = f"svc.{svc}"
            column = columns.get(name)
            if column is None:
                # A service first charged mid-run: back-fill the earlier
                # intervals with zeros so every column stays equal-length.
                column = columns[name] = [0] * self.samples
                prev[name] = 0
            column.append(value - prev[name])
            prev[name] = value
        self.samples += 1

    def latest(self) -> dict | None:
        """Headline values of the newest interval (for live heartbeats).

        Returns ``{"sim_ipc": ..., "kernel_share": ...}`` -- the last
        interval's simulated IPC and kernel-cycle share -- or None
        before the first sample.
        """
        if not self.samples:
            return None
        retired = self.columns["core.retired"][-1]
        class_deltas = [self.columns[name][-1] for name in _CLASS_COLUMNS]
        total = sum(class_deltas) or 1
        return {
            "sim_ipc": round(retired / self.interval, 4),
            "kernel_share": round(class_deltas[1] / total, 4),
        }

    def to_record(self) -> dict:
        """Freeze the sampled series into the artifact's plain-data form."""
        return {
            "interval": self.interval,
            "samples": self.samples,
            "dropped": self.dropped,
            "columns": {name: list(self.columns[name])
                        for name in sorted(self.columns)},
        }


# -- reading records ---------------------------------------------------------


def sample_cycles(record: dict) -> list[int]:
    """The end cycle of every sample interval: ``[I, 2I, 3I, ...]``."""
    interval = record["interval"]
    return [(i + 1) * interval for i in range(record["samples"])]


def _column(record: dict, name: str) -> list[int] | None:
    return record.get("columns", {}).get(name)


def _share(numer: list[int], denom_total: int) -> list[float]:
    return [v / denom_total for v in numer]


def _miss_rate(record: dict, level: str) -> list[float] | None:
    cols = record.get("columns", {})
    try:
        acc = [cols[f"mem.{level}.accesses.user"][i]
               + cols[f"mem.{level}.accesses.kernel"][i]
               for i in range(record["samples"])]
        miss = [cols[f"mem.{level}.miss.user"][i]
                + cols[f"mem.{level}.miss.kernel"][i]
                for i in range(record["samples"])]
    except KeyError:
        return None
    return [(m / a) if a else 0.0 for m, a in zip(miss, acc)]


def derived_series(record: dict) -> dict[str, list[float]]:
    """Headline series derived from a record's delta columns.

    ``ipc`` (retired / interval), ``kernel_share`` (of context-cycles),
    ``zero_fetch_share`` / ``zero_issue_share`` (of machine cycles;
    counted only while the detailed tier runs, so fast-forwarded
    intervals read 0 -- ``fast_share`` identifies them), and ``miss.*``
    rates per memory level.  Series whose input columns were not
    sampled are omitted.
    """
    interval = record["interval"]
    k = record["samples"]
    out: dict[str, list[float]] = {}
    retired = _column(record, "core.retired")
    if retired is not None:
        out["ipc"] = [v / interval for v in retired]
    class_cols = [_column(record, name) for name in _CLASS_COLUMNS]
    if all(c is not None for c in class_cols):
        totals = [sum(c[i] for c in class_cols) or 1 for i in range(k)]
        out["kernel_share"] = [class_cols[1][i] / totals[i] for i in range(k)]
    for key, probe in (("zero_fetch_share", "core.zero_fetch_cycles"),
                       ("zero_issue_share", "core.zero_issue_cycles"),
                       ("fast_share", "core.mode.fast_cycles")):
        column = _column(record, probe)
        if column is not None:
            out[key] = _share(column, interval)
    for level in ("l1i", "l1d", "l2", "itlb", "dtlb"):
        rates = _miss_rate(record, level)
        if rates is not None:
            out[f"miss.{level}"] = rates
    return out


def service_share_series(record: dict) -> dict[str, list[float]]:
    """Every ``svc.<leaf>`` column as a share of interval context-cycles."""
    k = record["samples"]
    class_cols = [_column(record, name) for name in _CLASS_COLUMNS]
    if not all(c is not None for c in class_cols):
        return {}
    totals = [sum(c[i] for c in class_cols) or 1 for i in range(k)]
    out: dict[str, list[float]] = {}
    for name in sorted(record.get("columns", {})):
        if name.startswith("svc."):
            column = record["columns"][name]
            out[name] = [column[i] / totals[i] for i in range(k)]
    return out


# -- phase detection ---------------------------------------------------------


def detect_phases(record: dict, window: int = 8, min_rel: float = 0.25,
                  min_share: float = 0.08) -> list[dict]:
    """Phase boundaries from a windowed mean shift on IPC + kernel share.

    Slides a change-point test over the per-interval series: at each
    candidate sample ``i`` the means of the ``window`` samples before
    and after are compared, and a boundary is emitted when interval IPC
    moves by more than ``min_rel`` relatively (with a small absolute
    floor, so idle-vs-idle jitter never triggers) or the kernel-cycle
    share moves by more than ``min_share`` absolutely.  After a hit the
    scan skips a full window, so one transition yields one boundary.

    Returns ``[{"index", "cycle", "metric", "before", "after"}, ...]``
    sorted by cycle; ``cycle`` is the exact interval boundary
    ``index * interval``, directly usable as a mark.  Purely a function
    of the stored record (nothing is persisted), so thresholds can be
    re-tuned against old artifacts.
    """
    if window < 1:
        raise ValueError(f"phase window must be >= 1, got {window}")
    series = derived_series(record)
    interval = record["interval"]
    k = record["samples"]
    tests = []
    if "ipc" in series:
        tests.append(("ipc", series["ipc"], "rel"))
    if "kernel_share" in series:
        tests.append(("kernel_share", series["kernel_share"], "abs"))
    boundaries: list[dict] = []
    i = window
    while i <= k - window:
        hit = None
        for metric, values, kind in tests:
            before = sum(values[i - window:i]) / window
            after = sum(values[i:i + window]) / window
            shift = abs(after - before)
            if kind == "rel":
                floor = max(min_rel * max(abs(before), abs(after)), 0.05)
                triggered = shift > floor
            else:
                triggered = shift > min_share
            if triggered:
                hit = {"index": i, "cycle": i * interval, "metric": metric,
                       "before": round(before, 6), "after": round(after, 6)}
                break
        if hit is not None:
            boundaries.append(hit)
            i += window
        else:
            i += 1
    return boundaries


def phase_marks(record: dict, **kwargs) -> list[list]:
    """Detected boundaries in the artifact ``marks`` shape:
    ``[["timeline", "phase", cycle], ...]``."""
    return [["timeline", "phase", b["cycle"]]
            for b in detect_phases(record, **kwargs)]


def suggest_warmup(record: dict, **kwargs) -> int | None:
    """Retired-instruction count at the first phase boundary, or None.

    The sampled-mode consumer: pass this as ``--warmup`` so measurement
    windows start after the run's first behavioral transition instead
    of at an arbitrary instruction count (docs/execution-modes.md).
    """
    boundaries = detect_phases(record, **kwargs)
    retired = _column(record, "core.retired")
    if not boundaries or retired is None:
        return None
    index = boundaries[0]["index"]
    return int(sum(retired[:index]))


# -- diffing timelines -------------------------------------------------------


def timeline_record(artifact) -> dict | None:
    """The probe-timeline record of an artifact, or None (pre-v7 /
    telemetry disabled), so tooling degrades gracefully on old stores."""
    record = getattr(artifact, "probe_timeline", None)
    if not isinstance(record, dict) or not record.get("samples"):
        return None
    return record


def flatten_timeline(record: dict, limit: int | None = None) -> dict[str, float]:
    """One record as flat ``{"series@cycle": value}`` pairs.

    Entries are the derived headline series plus the per-service
    context-cycle shares -- all rates, so two runs with different
    budgets compare interval-for-interval without normalization.
    *limit* truncates to the first N samples (diffs align on the cycle
    axis over the shared prefix of both runs).
    """
    cycles = sample_cycles(record)
    if limit is not None:
        cycles = cycles[:limit]
    flat: dict[str, float] = {}
    series = dict(derived_series(record))
    series.update(service_share_series(record))
    for name in sorted(series):
        values = series[name]
        for cycle, value in zip(cycles, values):
            flat[f"{name}@{cycle}"] = value
    return flat


def timeline_mean_and_band(
    records: list[dict], limit: int | None = None,
) -> tuple[dict[str, float], dict[str, float]]:
    """Per-entry mean and 2-sigma half-width across seed repeats (the
    timeline analogue of :func:`repro.obs.diff.mean_and_band`)."""
    flats = [flatten_timeline(r, limit=limit) for r in records]
    names = sorted(set().union(*flats)) if flats else []
    mean: dict[str, float] = {}
    band: dict[str, float] = {}
    for name in names:
        values = [f.get(name, 0) for f in flats]
        mean[name] = sum(values) / len(values)
        band[name] = (2.0 * statistics.stdev(values)
                      if len(values) > 1 else 0.0)
    return mean, band


def diff_timeline_artifacts(art_a, art_b,
                            grep: str | None = None) -> DiffReport:
    """Diff two artifacts' probe timelines interval by interval.

    Each delta's ``name`` is ``series@cycle``; both sides are truncated
    to the shared sample prefix so every compared entry describes the
    same slice of simulated time on both machines.  Artifacts without a
    timeline yield an empty report (pre-v7 stores).
    """
    rec_a, rec_b = timeline_record(art_a), timeline_record(art_b)
    deltas = []
    if rec_a is not None and rec_b is not None:
        limit = min(rec_a["samples"], rec_b["samples"])
        deltas = diff_flat(flatten_timeline(rec_a, limit=limit),
                           flatten_timeline(rec_b, limit=limit), grep=grep)
    return DiffReport(
        a_label=art_a.label, b_label=art_b.label,
        a_fingerprint=art_a.fingerprint, b_fingerprint=art_b.fingerprint,
        window="timeline", grep=grep, deltas=deltas)


def diff_timeline_runs(
    spec_a: dict,
    spec_b: dict,
    grep: str | None = None,
    seeds: int = 1,
    max_workers: int | None = None,
) -> DiffReport:
    """Diff two run specs' timelines with seed-repeat noise bands.

    The timeline twin of :func:`repro.obs.diff.diff_runs`: each side
    runs under ``seeds`` consecutive seeds (parallel fan-out,
    store-warm on repeat), sides compare mean-vs-mean per
    ``series@cycle`` entry, and deltas inside the combined 2-sigma band
    are marked insignificant -- ranking the *intervals* where two
    machines genuinely diverge beyond seed noise.
    """
    from repro.analysis import experiments
    from repro.analysis.artifact import run_fingerprint
    from repro.analysis.runner import run_many

    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    fan = seed_specs(spec_a, seeds) + seed_specs(spec_b, seeds)
    arts = list(run_many(fan, max_workers=max_workers).values())
    recs_a = [r for r in (timeline_record(a) for a in arts[:seeds]) if r]
    recs_b = [r for r in (timeline_record(b) for b in arts[seeds:]) if r]
    limit = min((r["samples"] for r in recs_a + recs_b), default=0)
    mean_a, band_a = timeline_mean_and_band(recs_a, limit=limit)
    mean_b, band_b = timeline_mean_and_band(recs_b, limit=limit)
    bands = {name: band_a.get(name, 0.0) + band_b.get(name, 0.0)
             for name in sorted(set(band_a) | set(band_b))}

    def _identity(spec: dict) -> tuple[str, str]:
        label = "-".join((spec["workload"], spec["cpu"],
                          spec.get("os_mode", "full")))
        resolved = experiments.run_spec(
            spec["workload"], spec["cpu"], spec.get("os_mode", "full"),
            spec.get("instructions"), spec.get("seed", 11))
        return label, run_fingerprint(resolved)

    (label_a, fp_a), (label_b, fp_b) = _identity(spec_a), _identity(spec_b)
    return DiffReport(
        a_label=label_a, b_label=label_b,
        a_fingerprint=fp_a, b_fingerprint=fp_b,
        window="timeline", grep=grep, seeds=seeds,
        deltas=diff_flat(mean_a, mean_b, grep=grep, bands=bands))


def filter_series(series: dict[str, list[float]],
                  grep: str | None) -> dict[str, list[float]]:
    """Apply the CLI's shared unanchored regex filter to a series dict."""
    pattern = compile_grep(grep)
    if pattern is None:
        return series
    return {name: values for name, values in series.items()
            if pattern.search(name)}
