"""Hierarchical probe/counter registry (observability layer 1).

A :class:`ProbeRegistry` holds every named probe of one simulated machine
in a single queryable tree.  Probe names are lowercase dotted paths whose
first segment is the owning layer::

    mem.l1d.miss.interthread.user      os.syscall.read.count
    branch.btb.accesses.kernel         core.retired

Three probe flavors cover every counter in the simulator:

* :class:`Counter` -- a plain monotonic count that a component bumps
  inline (``c.add()``).  Used for event-frequency counters (syscalls,
  flushes, interrupts) where a method call costs nothing measurable.
* :class:`Histogram` -- a fixed-bucket distribution (``h.observe(v)``),
  e.g. syscall wall-clock latency.
* **derived probes** -- a callable evaluated only at snapshot time
  (:meth:`ProbeRegistry.derive` / :meth:`ProbeRegistry.derive_map`).
  Hot structures (caches, TLBs, the BTB) keep their existing list/dict
  counters -- the cheapest bump Python offers -- and expose them through
  the registry with *zero* steady-state cost.

A disabled registry (``ProbeRegistry(enabled=False)``, or the module
singleton :data:`NULL_REGISTRY`) hands out a shared no-op counter and
drops derived registrations, so instrumented components pay one dead
method call at most when observability is off.

``snapshot()`` flattens the whole tree into ``{name: number-or-dict}``
with deterministically sorted keys; :func:`repro.analysis.snapshot.capture`
embeds it in every counter window, which is how probe values end up inside
stored :class:`~repro.analysis.artifact.RunArtifact` objects and diff
cleanly across windows.
"""

from __future__ import annotations

import re
from collections.abc import MutableMapping
from typing import Callable

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_:-]+)*$")

#: Default histogram bucket upper bounds (powers of four; cycles/latency
#: oriented).  Values above the last bound land in the overflow bucket.
DEFAULT_BUCKETS = (4, 16, 64, 256, 1024, 4096, 16384, 65536)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    inc = add

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class _NullCounter(Counter):
    """Shared sink for disabled registries: ``add`` is a no-op."""

    __slots__ = ()

    def add(self, n: int = 1) -> None:
        pass

    inc = add


NULL_COUNTER = _NullCounter("null")


class Histogram:
    """Fixed-bucket distribution of observed values.

    ``snapshot()`` renders as plain data -- ``count``, ``sum``, the bucket
    ``bounds``, and one bucket list ``[counts per bound..., overflow]`` --
    so histogram windows subtract elementwise like every other counter
    (the bounds themselves are carried through window differencing
    unchanged; see :func:`repro.analysis.snapshot.diff`).
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum")

    def __init__(self, name: str, bounds: tuple[int, ...] = DEFAULT_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"{name}: bucket bounds must be ascending and non-empty")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(bounds) + 1)  # last slot = overflow
        self.count = 0
        self.sum = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def snapshot(self) -> dict:
        return {"count": self.count, "sum": self.sum,
                "bounds": list(self.bounds), "buckets": list(self.counts)}

    # -- percentiles -------------------------------------------------------

    def percentile(self, q: float) -> float:
        """The *q*-quantile (``0 < q <= 1``) estimated from the buckets."""
        return bucket_percentile(self.counts, self.bounds, q)

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)


def bucket_percentile(counts, bounds, q: float) -> float:
    """Percentile estimate from bucket counts, linearly interpolated.

    Values inside a bucket are assumed uniform between its lower and
    upper bound; the overflow bucket is clipped to the last bound (a
    histogram cannot see past it).  An empty histogram yields 0.0.
    """
    if not 0.0 < q <= 1.0:
        raise ValueError(f"percentile must be in (0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for i, n in enumerate(counts):
        if n == 0:
            continue
        if cumulative + n >= rank:
            if i >= len(bounds):  # overflow bucket: clip to the last bound
                return float(bounds[-1])
            lo = bounds[i - 1] if i > 0 else 0
            hi = bounds[i]
            return lo + (hi - lo) * (rank - cumulative) / n
        cumulative += n
    return float(bounds[-1])  # pragma: no cover - rank <= total always hits


def snapshot_percentile(snap: dict, q: float) -> float:
    """Percentile of a histogram *snapshot* dict (``repro counters``, the
    diff engine, and the perf baselines all read stored snapshots).

    Snapshots written before the bounds were embedded (schema < 3) fall
    back to :data:`DEFAULT_BUCKETS`.
    """
    bounds = tuple(snap.get("bounds") or DEFAULT_BUCKETS)
    return bucket_percentile(snap.get("buckets", []), bounds, q)


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


NULL_HISTOGRAM = _NullHistogram("null")


class ProbeRegistry:
    """One machine's probe tree: counters, histograms, derived probes."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._derived: dict[str, Callable[[], float]] = {}
        self._derived_maps: dict[str, Callable[[], dict]] = {}

    # -- registration ------------------------------------------------------

    @staticmethod
    def _check_name(name: str) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid probe name {name!r} "
                             "(want lowercase dotted segments)")

    def counter(self, name: str) -> Counter:
        """Register (or fetch) the counter *name*.  Idempotent."""
        if not self.enabled:
            return NULL_COUNTER
        probe = self._counters.get(name)
        if probe is None:
            self._check_name(name)
            self._reserve(name)
            probe = self._counters[name] = Counter(name)
        return probe

    def histogram(self, name: str,
                  bounds: tuple[int, ...] = DEFAULT_BUCKETS) -> Histogram:
        """Register (or fetch) the histogram *name*.  Idempotent."""
        if not self.enabled:
            return NULL_HISTOGRAM
        probe = self._histograms.get(name)
        if probe is None:
            self._check_name(name)
            self._reserve(name)
            probe = self._histograms[name] = Histogram(name, bounds)
        return probe

    def derive(self, name: str, fn: Callable[[], float]) -> None:
        """Register a probe whose value is computed at snapshot time."""
        if not self.enabled:
            return
        self._check_name(name)
        self._reserve(name)
        self._derived[name] = fn

    def derive_map(self, prefix: str, fn: Callable[[], dict]) -> None:
        """Register a *family* of derived probes under one prefix.

        *fn* returns ``{suffix: number}`` at snapshot time; each entry
        becomes the probe ``prefix.suffix``.  Used for dynamically keyed
        counter dicts (per-syscall counts, per-lock contention) whose key
        sets are not known at registration time.
        """
        if not self.enabled:
            return
        self._check_name(prefix)
        if prefix in self._derived_maps:
            raise ValueError(f"duplicate probe family {prefix!r}")
        self._reserve(prefix)
        self._derived_maps[prefix] = fn

    def _reserve(self, name: str) -> None:
        owners = (self._counters, self._histograms, self._derived,
                  self._derived_maps)
        if sum(name in d for d in owners) > 0:
            raise ValueError(f"probe name {name!r} already registered "
                             "with a different flavor")

    # -- querying ----------------------------------------------------------

    def snapshot(self, prefix: str | None = None) -> dict:
        """Flatten every probe into ``{name: value}``, sorted by name.

        Counter values are ints, histograms nest as plain dicts, derived
        probes are evaluated now.  With *prefix*, only probes whose name
        starts with it are included.
        """
        out: dict[str, object] = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, h in self._histograms.items():
            out[name] = h.snapshot()
        for name, fn in self._derived.items():
            out[name] = fn()
        for family, fn in self._derived_maps.items():
            for suffix, value in fn().items():
                out[f"{family}.{suffix}"] = value
        if prefix is not None:
            out = {k: v for k, v in out.items() if k.startswith(prefix)}
        return dict(sorted(out.items()))

    def reader(self, name: str) -> Callable[[], float] | None:
        """A zero-arg getter for one *scalar* probe, or None.

        Counters and derived probes read in O(1) without building a full
        snapshot -- the hot path of interval telemetry
        (:mod:`repro.obs.timeline`).  Histograms and derived-family
        members have no scalar value and yield None.
        """
        counter = self._counters.get(name)
        if counter is not None:
            return lambda c=counter: c.value
        return self._derived.get(name)

    def names(self) -> list[str]:
        """Every registered probe name (derived families expanded)."""
        return sorted(self.snapshot())

    def __len__(self) -> int:
        return len(self.snapshot())


#: Shared disabled registry: components constructed without an explicit
#: registry attach here and pay (at most) one no-op call per bump.
NULL_REGISTRY = ProbeRegistry(enabled=False)


class CounterGroup(MutableMapping):
    """Dict-compatible facade over a family of registry counters.

    Lets legacy call sites keep their idiom (``counters["x"] += 1``,
    ``dict(counters)``) while the underlying counts live in the registry
    tree.  The key set is fixed at construction; when the registry is
    disabled the group falls back to private counters so the counts
    themselves never disappear (analysis code depends on them).
    """

    def __init__(self, registry: ProbeRegistry, prefix: str,
                 names: tuple[str, ...]) -> None:
        if registry.enabled:
            self._counters = {n: registry.counter(f"{prefix}.{n}") for n in names}
        else:
            self._counters = {n: Counter(f"{prefix}.{n}") for n in names}

    def raw(self, key: str) -> Counter:
        """The underlying :class:`Counter` (for hot call sites that keep
        a direct handle instead of paying the mapping protocol per bump)."""
        return self._counters[key]

    def __getitem__(self, key: str) -> int:
        return self._counters[key].value

    def __setitem__(self, key: str, value: int) -> None:
        self._counters[key].value = value

    def __delitem__(self, key: str) -> None:
        raise TypeError("CounterGroup keys are fixed at construction")

    def __iter__(self):
        return iter(self._counters)

    def __len__(self) -> int:
        return len(self._counters)


def register_miss_stats(registry: ProbeRegistry, prefix: str, stats) -> None:
    """Expose one :class:`~repro.memory.classify.MissStats` as derived probes.

    Registers, under *prefix* (e.g. ``mem.l1d``)::

        <prefix>.accesses.{user,kernel}
        <prefix>.miss.{user,kernel}
        <prefix>.miss.<cause>.{user,kernel}     (5 causes)
        <prefix>.avoided.{user,kernel}_fill_{user,kernel}

    The probes read the structure's live counters at snapshot time, so
    the structure's hot path is untouched.
    """
    from repro.memory.classify import MissCause

    kinds = ("user", "kernel")
    for k, kind in enumerate(kinds):
        registry.derive(f"{prefix}.accesses.{kind}",
                        lambda s=stats, k=k: s.accesses[k])
        registry.derive(f"{prefix}.miss.{kind}",
                        lambda s=stats, k=k: s.misses[k])
        for cause in MissCause:
            registry.derive(
                f"{prefix}.miss.{cause.name.lower()}.{kind}",
                lambda s=stats, key=(k, int(cause)): s.causes.get(key, 0))
        for f, filler in enumerate(kinds):
            registry.derive(
                f"{prefix}.avoided.{kind}_fill_{filler}",
                lambda s=stats, key=(k, f): s.avoided.get(key, 0))
