"""Structured event bus (observability layer 2).

One :class:`EventBus` per simulation collects *typed* events from every
layer -- pipeline service occupancy, cache misses, TLB fills, syscall
enter/exit, interrupts, scheduler dispatches -- into a single bounded
ring buffer, generalizing the pipeline-only
:class:`~repro.core.trace.TraceRecorder`.

Producers hold an ``Optional[EventBus]`` (default ``None``) and guard
each emission with one ``is not None`` check, so a simulation that never
attaches a bus pays nothing.  Attach one with
:meth:`repro.core.simulator.Simulation.attach_events`.

Timestamps are simulation cycles.  :mod:`repro.obs.export` renders a
recording as JSONL or as Chrome ``trace_event`` JSON for
``chrome://tracing`` / Perfetto (one track per hardware context and per
kernel service).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

# -- event kinds (the `cat` column of exported traces) ---------------------

PIPELINE = "pipeline"
CACHE = "cache"
TLB = "tlb"
SYSCALL = "syscall"
INTERRUPT = "interrupt"
SCHED = "sched"
#: Kernel memory-management incursions (page allocation, mmap/unmap,
#: faults) posted by :class:`repro.os_model.vm.VMSystem`.
VM = "vm"
#: Run-engine lifecycle events (supervisor retries, timeouts, faults,
#: quarantines); ``ts`` is a monotonically increasing step counter, not
#: a simulation cycle, since the engine runs outside any simulation.
ENGINE = "engine"

#: The closed registry of event kinds.  Every ``EventBus.emit`` call
#: must use one of these (``repro lint`` rule E102 checks literal call
#: sites statically); exporters and kind filters key off the same set.
KINDS = (PIPELINE, CACHE, TLB, SYSCALL, INTERRUPT, SCHED, VM, ENGINE)

# -- phases (Chrome trace_event vocabulary subset) -------------------------

BEGIN = "B"
END = "E"
INSTANT = "i"


@dataclass(frozen=True)
class SimEvent:
    """One structured event.

    ``ts`` is the simulation cycle; ``kind`` is one of the module's kind
    constants; ``phase`` is ``B``/``E`` for spans and ``i`` for instants;
    ``ctx`` is the hardware context (``None`` when the event is not bound
    to one, e.g. a syscall span attributed to a kernel-service track);
    ``tid`` is the software thread; ``service`` is the kernel-service
    attribution label (``syscall:read``, ``netisr``, ``user``, ...).
    """

    ts: int
    kind: str
    name: str
    phase: str = INSTANT
    ctx: int | None = None
    tid: int | None = None
    service: str | None = None
    args: dict | None = None

    def to_json_dict(self) -> dict:
        out = {"ts": self.ts, "kind": self.kind, "name": self.name,
               "phase": self.phase}
        if self.ctx is not None:
            out["ctx"] = self.ctx
        if self.tid is not None:
            out["tid"] = self.tid
        if self.service is not None:
            out["service"] = self.service
        if self.args:
            out["args"] = self.args
        return out


class EventBus:
    """Bounded ring buffer of :class:`SimEvent` shared by all layers.

    Parameters
    ----------
    capacity:
        Maximum retained events; the oldest are dropped first (and
        counted in :attr:`dropped`).
    kinds:
        When given, only these event kinds are recorded.
    """

    def __init__(self, capacity: int = 200_000,
                 kinds: tuple[str, ...] | None = None) -> None:
        if capacity < 1:
            raise ValueError("event bus capacity must be positive")
        self.capacity = capacity
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.events: deque[SimEvent] = deque(maxlen=capacity)
        self.recorded = 0
        self.dropped = 0

    def emit(self, ts: int, kind: str, name: str, phase: str = INSTANT,
             ctx: int | None = None, tid: int | None = None,
             service: str | None = None, args: dict | None = None) -> None:
        """Record one event (no-op when its kind is filtered out)."""
        if self.kinds is not None and kind not in self.kinds:
            return
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(SimEvent(ts, kind, name, phase, ctx, tid,
                                    service, args))
        self.recorded += 1

    # -- queries -----------------------------------------------------------

    def by_kind(self, kind: str) -> list[SimEvent]:
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> dict[str, int]:
        """Retained-event count per kind."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def window(self, start_ts: int, end_ts: int) -> list[SimEvent]:
        return [e for e in self.events if start_ts <= e.ts < end_ts]

    def __len__(self) -> int:
        return len(self.events)
