"""Simulated-cycle flamegraphs: folding and diffing call-path attribution.

Schema-v6 counter windows carry an ``attribution`` section mapping each
``;``-joined call path (the chain of open kernel-service spans with the
charged service as the leaf -- see
:class:`repro.core.stats.Attribution`) to the context-cycles charged to
it.  This module renders that table as folded-stack output (the
``stack;frames count`` format flamegraph.pl and speedscope import
directly), verifies it against the flat per-service cycle counters, and
diffs two runs' call-path trees through the same noise-band machinery as
probe diffs -- so "the kernel got slower" decomposes into ranked paths
like ``syscall:read;tlb:refill;pal:dtlb``.

``repro flame <run>`` and ``repro diff --flame`` are the CLI entry
points; both resolve runs through the normal memo/store layers.
"""

from __future__ import annotations

import statistics

from repro.obs.diff import DiffReport, compile_grep, diff_flat, seed_specs


def flame_paths(window: dict) -> dict[str, float]:
    """The attribution table of one counter window.

    Pre-v6 windows (no ``attribution`` section) yield an empty table
    rather than failing, so tooling degrades gracefully on old stores.
    """
    paths = window.get("attribution")
    return dict(paths) if isinstance(paths, dict) else {}


def fold(paths: dict[str, float], grep: str | None = None) -> str:
    """Render ``{path: cycles}`` as folded-stack lines.

    One line per path -- ``frame;frame;... count`` -- sorted by path so
    equal tables fold byte-identically.  Counts are rounded to integers
    and non-positive entries dropped (flamegraph.pl requires positive
    integer sample counts).  *grep* is the CLI's shared regex filter
    (:func:`repro.obs.diff.compile_grep`), matched against the whole
    ``;``-joined path.
    """
    pattern = compile_grep(grep)
    lines = []
    for path in sorted(paths):
        if pattern is not None and not pattern.search(path):
            continue
        count = int(round(paths[path]))
        if count > 0:
            lines.append(f"{path} {count}")
    return "\n".join(lines) + ("\n" if lines else "")


def leaf_totals(paths: dict[str, float]) -> dict[str, float]:
    """Cycles grouped by each path's leaf frame (its charged service).

    Because every path's leaf equals the service charged over the same
    cycles, this reproduces the flat ``service_cycles`` counters exactly
    -- the reconciliation invariant the tests assert.
    """
    out: dict[str, float] = {}
    for path, cycles in paths.items():
        leaf = path.rsplit(";", 1)[-1]
        out[leaf] = out.get(leaf, 0) + cycles
    return dict(sorted(out.items()))


def render_table(paths: dict[str, float], top: int = 30,
                 grep: str | None = None) -> str:
    """Human-readable call-path table: cycles, share, path (widest first)."""
    pattern = compile_grep(grep)
    rows = [(cycles, path) for path, cycles in paths.items()
            if pattern is None or pattern.search(path)]
    total = sum(c for c, _ in rows)
    rows.sort(key=lambda r: (-r[0], r[1]))
    shown = rows[:top]
    lines = [f"  {'cycles':>14s} {'share':>7s}  path"]
    for cycles, path in shown:
        share = cycles / total if total else 0.0
        lines.append(f"  {int(round(cycles)):>14,d} {share * 100:>6.2f}%  {path}")
    summary = f"{len(rows)} path(s), {int(round(total)):,} context-cycles"
    if len(rows) > len(shown):
        summary += f"; showing top {len(shown)}"
    lines.append(summary)
    return "\n".join(lines)


# -- seed fan-out statistics --------------------------------------------------


def _flat_attribution(window: dict, per_kilo: bool = False) -> dict[str, float]:
    """One window's path table, optionally per-1,000-retired normalized."""
    flat = flame_paths(window)
    if per_kilo:
        retired = window.get("retired", 0)
        if retired:
            scale = 1000.0 / retired
            flat = {path: value * scale for path, value in flat.items()}
    return flat


def attribution_mean_and_band(
    windows: list[dict], per_kilo: bool = False,
) -> tuple[dict[str, float], dict[str, float]]:
    """Per-path mean and 2-sigma half-width across seed repeats (the
    flame analogue of :func:`repro.obs.diff.mean_and_band`)."""
    flats = [_flat_attribution(w, per_kilo) for w in windows]
    names = sorted(set().union(*flats)) if flats else []
    mean: dict[str, float] = {}
    band: dict[str, float] = {}
    for name in names:
        values = [f.get(name, 0) for f in flats]
        mean[name] = sum(values) / len(values)
        band[name] = (2.0 * statistics.stdev(values)
                      if len(values) > 1 else 0.0)
    return mean, band


# -- diffing call-path trees --------------------------------------------------


def diff_flame_artifacts(
    art_a, art_b, window: str = "steady", grep: str | None = None,
    per_kilo: bool = False,
) -> DiffReport:
    """Diff the call-path tables of two resolved artifacts (no noise
    model); each delta's ``name`` is a whole ``;``-joined path."""
    flat_a = _flat_attribution(art_a.window(window), per_kilo)
    flat_b = _flat_attribution(art_b.window(window), per_kilo)
    return DiffReport(
        a_label=art_a.label, b_label=art_b.label,
        a_fingerprint=art_a.fingerprint, b_fingerprint=art_b.fingerprint,
        window=window, grep=grep, per_kilo=per_kilo,
        deltas=diff_flat(flat_a, flat_b, grep=grep))


def diff_flame_runs(
    spec_a: dict,
    spec_b: dict,
    window: str = "steady",
    grep: str | None = None,
    seeds: int = 1,
    per_kilo: bool = False,
    max_workers: int | None = None,
) -> DiffReport:
    """Diff two run specs' call-path trees with seed-repeat noise bands.

    The flame twin of :func:`repro.obs.diff.diff_runs`: each side runs
    under ``seeds`` consecutive seeds (parallel fan-out, store-warm on
    repeat), sides compare mean-vs-mean per path, and deltas inside the
    combined 2-sigma band are marked insignificant -- so a ranked
    top-movers listing attributes a cycle delta to call paths that move
    beyond seed noise.
    """
    from repro.analysis import experiments
    from repro.analysis.artifact import run_fingerprint
    from repro.analysis.runner import run_many

    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    fan = seed_specs(spec_a, seeds) + seed_specs(spec_b, seeds)
    arts = list(run_many(fan, max_workers=max_workers).values())
    arts_a, arts_b = arts[:seeds], arts[seeds:]
    mean_a, band_a = attribution_mean_and_band(
        [a.window(window) for a in arts_a], per_kilo=per_kilo)
    mean_b, band_b = attribution_mean_and_band(
        [b.window(window) for b in arts_b], per_kilo=per_kilo)
    bands = {name: band_a.get(name, 0.0) + band_b.get(name, 0.0)
             for name in sorted(set(band_a) | set(band_b))}

    def _identity(spec: dict) -> tuple[str, str]:
        label = "-".join((spec["workload"], spec["cpu"],
                          spec.get("os_mode", "full")))
        resolved = experiments.run_spec(
            spec["workload"], spec["cpu"], spec.get("os_mode", "full"),
            spec.get("instructions"), spec.get("seed", 11))
        return label, run_fingerprint(resolved)

    (label_a, fp_a), (label_b, fp_b) = _identity(spec_a), _identity(spec_b)
    return DiffReport(
        a_label=label_a, b_label=label_b,
        a_fingerprint=fp_a, b_fingerprint=fp_b,
        window=window, grep=grep, seeds=seeds, per_kilo=per_kilo,
        deltas=diff_flat(mean_a, mean_b, grep=grep, bands=bands))
