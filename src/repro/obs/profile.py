"""Simulator self-profiling (observability layer 3).

A :class:`ScopeProfiler` measures where *host* wall-clock goes while the
simulator runs -- the measurement baseline for every optimization PR.
Scopes nest; each records call count, inclusive time, and self time
(inclusive minus time spent in child scopes)::

    prof = ScopeProfiler()
    with prof("memory.access"):
        ...

:func:`profile_simulation` wires a profiler through one simulation: the
run loop times ``os.tick`` and ``core.cycle`` (see
:meth:`repro.core.simulator.Simulation.run`), and the hot component
entry points (hierarchy accesses, branch prediction, the four pipeline
stages) are wrapped so the report attributes Python time per simulated
component.  Profiling is strictly opt-in -- an unprofiled run executes
the original unwrapped code paths.
"""

from __future__ import annotations

import time
from typing import Callable


class _Scope:
    """Reusable context manager for one named scope."""

    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: "ScopeProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self):
        self._profiler._enter(self._name)
        return self

    def __exit__(self, *exc):
        self._profiler._exit()
        return False


class ScopeProfiler:
    """Nested host-time scope accumulator.

    ``stats`` maps scope name to ``[calls, inclusive_seconds,
    child_seconds]``; :meth:`report` derives self time.  Calling the
    profiler returns a context manager for the named scope; context
    managers are cached so the hot loop allocates nothing per entry.
    """

    def __init__(self) -> None:
        self.stats: dict[str, list] = {}
        self._stack: list[list] = []  # [name, start, child_seconds]
        self._scopes: dict[str, _Scope] = {}

    def __call__(self, name: str) -> _Scope:
        scope = self._scopes.get(name)
        if scope is None:
            scope = self._scopes[name] = _Scope(self, name)
        return scope

    def _enter(self, name: str) -> None:
        self._stack.append([name, time.perf_counter(), 0.0])

    def _exit(self) -> None:
        name, start, child = self._stack.pop()
        elapsed = time.perf_counter() - start
        rec = self.stats.get(name)
        if rec is None:
            rec = self.stats[name] = [0, 0.0, 0.0]
        rec[0] += 1
        rec[1] += elapsed
        rec[2] += child
        if self._stack:
            self._stack[-1][2] += elapsed

    def wrap(self, fn: Callable, name: str) -> Callable:
        """Wrap *fn* so every call runs inside the named scope."""

        def wrapper(*args, **kwargs):
            self._enter(name)
            try:
                return fn(*args, **kwargs)
            finally:
                self._exit()

        wrapper.__wrapped__ = fn
        return wrapper

    # -- reporting ---------------------------------------------------------

    def report(self) -> list[dict]:
        """Per-scope rows, sorted by self time (descending)."""
        total_self = sum(max(0.0, t - c) for _, t, c in self.stats.values()) or 1.0
        rows = []
        for name, (calls, incl, child) in self.stats.items():
            self_s = max(0.0, incl - child)
            rows.append({
                "scope": name,
                "calls": calls,
                "total_s": incl,
                "self_s": self_s,
                "self_share": self_s / total_self,
            })
        rows.sort(key=lambda r: r["self_s"], reverse=True)
        return rows

    def render(self) -> str:
        """The report as a fixed-width text table."""
        header = (f"{'scope':<24s} {'calls':>12s} {'total s':>10s} "
                  f"{'self s':>10s} {'self %':>7s}")
        lines = [header, "-" * len(header)]
        for row in self.report():
            lines.append(
                f"{row['scope']:<24s} {row['calls']:>12,d} "
                f"{row['total_s']:>10.3f} {row['self_s']:>10.3f} "
                f"{row['self_share'] * 100:>6.1f}%")
        return "\n".join(lines)


#: (attribute path, scope name) pairs instrumented by profile_simulation.
_COMPONENT_SCOPES = (
    (("hierarchy", "data_access"), "mem.data_access"),
    (("hierarchy", "inst_access"), "mem.inst_access"),
    (("processor", "_resolve"), "core.resolve"),
    (("processor", "_retire"), "core.retire"),
    (("processor", "_issue"), "core.issue"),
    (("processor", "_fetch"), "core.fetch"),
)


def profile_simulation(sim, max_instructions: int,
                       profiler: ScopeProfiler | None = None) -> ScopeProfiler:
    """Run *sim* under a scope profiler; returns the filled profiler.

    The run loop charges ``os.tick`` / ``core.cycle``; component entry
    points are shadowed with timing wrappers on the *instances* (the
    classes stay untouched) and restored afterwards.  Branch prediction
    is profiled via the branch unit's ``predict``.
    """
    prof = profiler or ScopeProfiler()
    shadowed: list[tuple[object, str]] = []
    try:
        for (owner_name, attr), scope in _COMPONENT_SCOPES:
            owner = getattr(sim, owner_name)
            setattr(owner, attr, prof.wrap(getattr(owner, attr), scope))
            shadowed.append((owner, attr))
        unit = sim.processor.branch_unit
        unit.predict = prof.wrap(unit.predict, "branch.predict")
        shadowed.append((unit, "predict"))
        with prof("sim.run"):
            sim.run(max_instructions=max_instructions, profiler=prof)
    finally:
        for owner, attr in shadowed:
            delattr(owner, attr)  # drop the instance shadow
    return prof
