"""Unified observability layer.

Three cooperating pieces, all optional and all cheap when unused:

* :mod:`repro.obs.registry` -- a hierarchical probe/counter registry.
  Components register named counters and histograms once
  (``mem.l1d.miss.interthread``, ``os.syscall.read.count``, ...) and bump
  them cheaply; the registry snapshots into one flat, queryable tree that
  is folded into every :class:`~repro.analysis.artifact.RunArtifact`.
* :mod:`repro.obs.events` -- a typed structured-event bus shared by all
  layers (pipeline service occupancy, cache misses, TLB fills, syscall
  enter/exit, interrupts, scheduler dispatch) with one bounded recorder.
  :mod:`repro.obs.export` renders a recording as JSONL or Chrome
  ``trace_event`` JSON for ``chrome://tracing`` / Perfetto.
* :mod:`repro.obs.profile` -- a host-wall-clock scope profiler showing
  where simulator (Python) time goes per simulated component.

See ``docs/observability.md`` for the probe naming scheme and a worked
example.
"""

from repro.obs.events import EventBus, SimEvent
from repro.obs.profile import ScopeProfiler, profile_simulation
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    CounterGroup,
    Histogram,
    ProbeRegistry,
)

__all__ = [
    "Counter",
    "CounterGroup",
    "EventBus",
    "Histogram",
    "NULL_REGISTRY",
    "ProbeRegistry",
    "ScopeProfiler",
    "SimEvent",
    "profile_simulation",
]
