"""Unified observability layer.

Cooperating pieces, all optional and all cheap when unused:

* :mod:`repro.obs.registry` -- a hierarchical probe/counter registry.
  Components register named counters and histograms once
  (``mem.l1d.miss.interthread``, ``os.syscall.read.count``, ...) and bump
  them cheaply; the registry snapshots into one flat, queryable tree that
  is folded into every :class:`~repro.analysis.artifact.RunArtifact`.
* :mod:`repro.obs.events` -- a typed structured-event bus shared by all
  layers (pipeline service occupancy, cache misses, TLB fills, syscall
  enter/exit, interrupts, scheduler dispatch) with one bounded recorder.
  :mod:`repro.obs.export` renders a recording as JSONL or Chrome
  ``trace_event`` JSON for ``chrome://tracing`` / Perfetto.
* :mod:`repro.obs.profile` -- a host-wall-clock scope profiler showing
  where simulator (Python) time goes per simulated component.
* :mod:`repro.obs.diff` -- structural diffing of two stored runs' probe
  trees, with top-mover ranking and repeated-seed noise filtering
  (``repro diff``, ``repro counters --against``).
* :mod:`repro.obs.baseline` -- standardized perf scenarios, the
  ``BENCH_<scenario>.json`` trajectory files, and the ``repro bench
  --check`` regression gate.
* :mod:`repro.obs.live` -- heartbeat telemetry for running simulations:
  live progress lines, JSONL heartbeats, and per-worker aggregation in
  the parallel runner.

See ``docs/observability.md`` for the probe naming scheme and worked
examples.
"""

from repro.obs.diff import DiffReport, ProbeDelta, diff_artifacts, diff_runs
from repro.obs.events import EventBus, SimEvent
from repro.obs.live import Heartbeat, ProgressAggregator
from repro.obs.profile import ScopeProfiler, profile_simulation
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    CounterGroup,
    Histogram,
    ProbeRegistry,
    snapshot_percentile,
)

__all__ = [
    "Counter",
    "CounterGroup",
    "DiffReport",
    "EventBus",
    "Heartbeat",
    "Histogram",
    "NULL_REGISTRY",
    "ProbeDelta",
    "ProbeRegistry",
    "ProgressAggregator",
    "ScopeProfiler",
    "SimEvent",
    "diff_artifacts",
    "diff_runs",
    "profile_simulation",
    "snapshot_percentile",
]
