#!/usr/bin/env python3
"""The headline result: SMT vs superscalar throughput on an OS-intensive
web-serving workload.

The paper's Apache workload achieves 4.6 IPC on the 8-context SMT but only
1.1 IPC on an otherwise-identical out-of-order superscalar -- a 4.2x gain,
the largest ever reported for SMT at the time -- because SMT overlaps the
operating system's abundant cache misses across contexts.

Run:  python examples/smt_vs_superscalar.py
"""

from repro.core import MachineConfig, Simulation
from repro.workloads import ApacheWorkload


def run(machine: MachineConfig, label: str, budget: int) -> float:
    sim = Simulation(ApacheWorkload(), machine=machine, seed=9)
    result = sim.run(max_instructions=budget)
    stats = result.stats
    print(f"\n{label}")
    print(f"  IPC                 {stats.ipc:.2f}")
    print(f"  0-fetch cycles      {stats.zero_fetch_cycles / stats.cycles * 100:.1f}%")
    print(f"  0-issue cycles      {stats.zero_issue_cycles / stats.cycles * 100:.1f}%")
    print(f"  squashed            {stats.squash_fraction * 100:.1f}% of fetched")
    print(f"  L1D outstanding     "
          f"{result.hierarchy.l1d_mshr.average_outstanding(result.cycles):.2f} misses")
    return stats.ipc


def main() -> None:
    print("Running the Apache workload on both machines (same resources,")
    print("the superscalar just lacks the extra hardware contexts)...")
    smt = run(MachineConfig.smt(), "8-context SMT", 400_000)
    ss = run(MachineConfig.superscalar(), "Out-of-order superscalar", 250_000)
    print(f"\nSMT / superscalar throughput ratio: {smt / ss:.1f}x "
          "(paper: 4.2x)")


if __name__ == "__main__":
    main()
