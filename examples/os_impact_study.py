#!/usr/bin/env python3
"""How much does ignoring the operating system distort simulation results?

The paper's first question: previous SMT studies simulated applications
only -- were their results optimistic?  This example runs the SPECInt
workload twice, once on the application-only simulator (system calls and
traps complete instantly, as in pre-2000 methodology) and once with every
kernel and PAL instruction executed, then compares the architectural
metrics the way the paper's Table 4 does.

Run:  python examples/os_impact_study.py
"""

from repro.core import Simulation
from repro.os_model import OSMode
from repro.workloads import SpecIntWorkload


def run(mode: OSMode):
    sim = Simulation(SpecIntWorkload(), os_mode=mode, seed=13)
    result = sim.run(max_instructions=400_000)
    h = result.hierarchy
    return {
        "IPC": result.stats.ipc,
        "L1I miss %": h.l1i.stats.miss_rate() * 100,
        "L1D miss %": h.l1d.stats.miss_rate() * 100,
        "L2 miss %": h.l2.stats.miss_rate() * 100,
        "DTLB miss %": h.dtlb.stats.miss_rate() * 100,
        "mispredict %": result.processor.branch_unit.misprediction_rate() * 100,
        "squash %": result.stats.squash_fraction * 100,
    }


def main() -> None:
    print("Application-only simulation (instant traps)...")
    app = run(OSMode.APP_ONLY)
    print("Full-system simulation (every kernel/PAL instruction executed)...")
    full = run(OSMode.FULL)

    print(f"\n{'metric':16s} {'app-only':>10s} {'full OS':>10s} {'change':>9s}")
    for key in app:
        a, f = app[key], full[key]
        change = "--" if a == 0 else f"{(f / a - 1) * 100:+.0f}%"
        print(f"{key:16s} {a:10.2f} {f:10.2f} {change:>9s}")
    print("\nPaper's conclusion: for SPECInt on SMT the distortion is small"
          "\n(~5% IPC), so app-only studies of such workloads were sound --"
          "\nbut OS-intensive workloads are a different story.")


if __name__ == "__main__":
    main()
