#!/usr/bin/env python3
"""Quickstart: simulate the SPECInt multiprogram on the 8-context SMT.

Builds the full machine (SMT core + memory hierarchy + MiniDUX kernel),
boots the eight-program SPECInt95-like workload, runs a few hundred
thousand instructions, and prints the headline metrics the paper reports.

Run:  python examples/quickstart.py
"""

from repro.core import Simulation
from repro.workloads import SpecIntWorkload


def main() -> None:
    sim = Simulation(SpecIntWorkload(), seed=7)
    print("Booting MiniDUX with 8 SPECInt-like programs on an 8-context SMT...")
    result = sim.run(max_instructions=300_000)

    stats = result.stats
    print(f"\nRetired {stats.retired:,} instructions in {stats.cycles:,} cycles")
    print(f"IPC:                      {stats.ipc:.2f}")
    print(f"Avg fetchable contexts:   {stats.avg_fetchable_contexts:.2f} / 8")
    print(f"Squashed (% of fetched):  {stats.squash_fraction * 100:.1f}%")
    print("\nWhere the cycles went:")
    for name, share in (
        ("user", stats.class_share(0)),
        ("kernel", stats.class_share(1)),
        ("PAL code", stats.class_share(2)),
        ("idle", stats.class_share(3)),
    ):
        print(f"  {name:9s} {share * 100:5.1f}%")
    h = result.hierarchy
    print("\nMemory system:")
    print(f"  L1 I-cache miss rate: {h.l1i.stats.miss_rate() * 100:.2f}%")
    print(f"  L1 D-cache miss rate: {h.l1d.stats.miss_rate() * 100:.2f}%")
    print(f"  L2 miss rate:         {h.l2.stats.miss_rate() * 100:.2f}%")
    print(f"  DTLB miss rate:       {h.dtlb.stats.miss_rate() * 100:.2f}%")
    print(f"\nBranch misprediction:   "
          f"{result.processor.branch_unit.misprediction_rate() * 100:.1f}%")
    print(f"Context switches:       {result.os.scheduler.switches}")
    print(f"Pages allocated by VM:  {result.os.vm.pages_allocated}")


if __name__ == "__main__":
    main()
