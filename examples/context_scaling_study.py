#!/usr/bin/env python3
"""Sweep hardware contexts and export the series: the SMT scaling story.

Uses the parameter-sweep and export utilities to produce the data behind
the paper's headline comparison -- how throughput grows as contexts are
added to the same execution resources -- and writes it to CSV for plotting.

Run:  python examples/context_scaling_study.py
"""

import pathlib

from repro.analysis.export import sweep_to_csv
from repro.analysis.sweeps import context_sweep


def main() -> None:
    print("Sweeping Apache across 1/2/4/8 hardware contexts "
          "(one scaled run each)...")
    sweep = context_sweep("apache", contexts=(1, 2, 4, 8),
                          instructions=200_000)
    print()
    print(sweep.render("ipc"))
    print()
    print(sweep.render("l1d_miss"))
    base = dict(sweep.series("ipc"))[1]
    print(f"\nSpeedup at 8 contexts: {dict(sweep.series('ipc'))[8] / base:.1f}x "
          "(paper's Apache SMT/superscalar gain: 4.2x)")
    out = pathlib.Path("context_scaling.csv")
    sweep_to_csv(sweep, out)
    print(f"Series written to {out} (plot ipc vs contexts).")


if __name__ == "__main__":
    main()
