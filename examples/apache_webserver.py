#!/usr/bin/env python3
"""Serve SPECWeb-like requests with the Apache workload model.

Reproduces the paper's central observation: a web server spends the large
majority of its cycles in the operating system -- split across system
calls, netisr protocol threads, interrupt handling, and TLB traffic.

Run:  python examples/apache_webserver.py
"""

from repro.core import Simulation
from repro.core.stats import CLASS_KERNEL, service_class
from repro.workloads import ApacheWorkload


def main() -> None:
    workload = ApacheWorkload()
    sim = Simulation(workload, seed=5)
    print("Booting MiniDUX with 64 Apache server processes, 4 netisr threads,")
    print("and 128 SPECWeb-like clients behind the simulated NIC...")
    result = sim.run(max_instructions=500_000)

    stats = result.stats
    print(f"\nIPC: {stats.ipc:.2f}   "
          f"(requests completed: {workload.clients.responses_completed}, "
          f"packets through netisr: {workload.stack.packets_processed})")
    kernel = stats.class_share(1) + stats.class_share(2)
    print(f"OS share of cycles: {kernel * 100:.1f}%  (paper: >75%)")

    print("\nTop kernel activities (% of all context-cycles):")
    shares = stats.service_cycle_shares()
    kernel_items = sorted(
        ((svc, share) for svc, share in shares.items()
         if service_class(svc) == CLASS_KERNEL),
        key=lambda kv: -kv[1],
    )
    for svc, share in kernel_items[:12]:
        print(f"  {svc:22s} {share * 100:5.2f}%")

    print(f"\nSystem calls executed: "
          f"{sum(result.os.syscall_counts.values())}, by name:")
    for name, count in sorted(result.os.syscall_counts.items(),
                              key=lambda kv: -kv[1])[:10]:
        print(f"  {name:12s} {count}")


if __name__ == "__main__":
    main()
