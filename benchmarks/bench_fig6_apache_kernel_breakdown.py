"""Figure 6: breakdown of Apache kernel activity, vs SPECInt.

Paper shape: Apache's kernel time is dominated by explicit system calls
(57%), with substantial interrupt/netisr processing (34%) and only a
moderate TLB component (13%) -- the inverse of SPECInt's TLB-dominated
kernel profile.
"""

from repro.analysis import figures
from repro.analysis.experiments import get_run


def test_fig6_apache_kernel_breakdown(benchmark, emit):
    fig = benchmark.pedantic(
        lambda: figures.fig6(
            get_run("apache", "smt", "full"),
            get_run("specint", "smt", "full"),
        ),
        rounds=1, iterations=1,
    )
    emit("fig6_apache_kernel_breakdown", fig["text"],
         runs=(get_run("apache", "smt", "full"),
               get_run("specint", "smt", "full")))
    fracs = fig["data"]["apache_kernel_fracs"]
    # System calls are the largest class of Apache kernel time.
    assert fracs["syscalls"] > fracs["interrupts+netisr"]
    assert fracs["syscalls"] > fracs["tlb+vm"]
    # Network interrupt processing is a major component (no SPECInt analog).
    assert fracs["interrupts+netisr"] > 0.08
    spec_steady = fig["data"]["spec_steady"]
    assert spec_steady.get("netisr", 0) == 0
