"""Table 4: SPECInt with and without the OS, on SMT and the superscalar.

Paper shape: adding the OS costs SMT only ~5% of IPC but the superscalar
~15%; the I-cache degrades sharply in both; SMT's IPC is roughly double
the superscalar's either way.
"""

from repro.analysis import tables
from repro.analysis.experiments import get_run


def test_tab4_os_impact_on_specint(benchmark, emit):
    def build():
        return tables.table4(
            get_run("specint", "smt", "app"),
            get_run("specint", "smt", "full"),
            get_run("specint", "ss", "app"),
            get_run("specint", "ss", "full"),
        )

    tab = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("tab4_os_impact_specint", tab["text"],
         runs=(get_run("specint", "smt", "app"),
               get_run("specint", "smt", "full"),
               get_run("specint", "ss", "app"),
               get_run("specint", "ss", "full")))
    m = tab["data"]
    # SMT holds its throughput when the OS is added (small change).
    smt_drop = 1 - m["SMT SPEC+OS"]["ipc"] / m["SMT SPEC only"]["ipc"]
    assert smt_drop < 0.15
    # SMT beats the superscalar by a wide margin on this workload.
    assert m["SMT SPEC+OS"]["ipc"] > 1.5 * m["SS SPEC+OS"]["ipc"]
    # The superscalar squashes proportionally more than SMT.
    assert m["SS SPEC+OS"]["squashed_pct"] > m["SMT SPEC+OS"]["squashed_pct"]
