"""Table 3: SPECInt miss rates and miss-cause distribution.

Paper shape: the kernel's miss rates exceed the applications' in every
structure; application intra/interthread conflicts dominate most
structures, while the kernel causes the majority of I-cache misses.
"""

from repro.analysis import tables
from repro.analysis.experiments import get_run
from repro.memory.classify import MissCause


def test_tab3_specint_miss_distribution(benchmark, emit):
    tab = benchmark.pedantic(
        lambda: tables.table3(get_run("specint", "smt", "full")),
        rounds=1, iterations=1,
    )
    emit("tab3_specint_misses", tab["text"],
         runs=get_run("specint", "smt", "full"))
    rates = tab["data"]["miss_rates"]
    # The kernel's D-cache miss rate exceeds the applications' (paper:
    # 18.8% vs 3.2%) and its BTB miss rate is high in absolute terms.  The
    # paper's kernel-BTB >> user-BTB ordering does not fully reproduce: our
    # synthetic kernel's branch working set is concentrated in the hot
    # TLB-refill handler, which stays BTB-resident because refills are so
    # frequent -- see EXPERIMENTS.md.
    assert rates[("BTB", 1)] > 8.0
    assert rates[("L1D", 1)] > rates[("L1D", 0)]
    causes = tab["data"]["causes"]
    # User-side conflicts (intra+inter) dominate DTLB misses.
    user_conflicts = (causes[("DTLB", 0, int(MissCause.INTRATHREAD))]
                      + causes[("DTLB", 0, int(MissCause.INTERTHREAD))])
    assert user_conflicts > 30
