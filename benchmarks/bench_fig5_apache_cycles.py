"""Figure 5: Apache kernel and user activity over time on SMT.

Paper shape: Apache has essentially no start-up phase and spends over 75%
of its cycles in the operating system.
"""

from repro.analysis import figures
from repro.analysis.experiments import get_run


def test_fig5_apache_cycle_breakdown(benchmark, emit):
    fig = benchmark.pedantic(
        lambda: figures.fig5(get_run("apache", "smt", "full")),
        rounds=1, iterations=1,
    )
    emit("fig5_apache_cycles", fig["text"],
         runs=get_run("apache", "smt", "full"))
    assert fig["data"]["kernel_share"] > 0.60
    assert fig["data"]["shares"]["idle"] < 0.05
