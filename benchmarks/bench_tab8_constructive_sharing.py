"""Table 8: misses avoided due to interthread cooperation (prefetching).

Paper shape: kernel-by-kernel prefetching is the dominant cooperative
effect and is much stronger on SMT than on the superscalar (65.5% vs
27.5% of I-cache misses avoided, 70.7% vs 55.0% for the L2).
"""

from repro.analysis import tables
from repro.analysis.experiments import get_run


def test_tab8_interthread_prefetching(benchmark, emit):
    tab = benchmark.pedantic(
        lambda: tables.table8(
            get_run("apache", "smt", "full"),
            get_run("apache", "ss", "full"),
        ),
        rounds=1, iterations=1,
    )
    emit("tab8_constructive_sharing", tab["text"],
         runs=(get_run("apache", "smt", "full"),
               get_run("apache", "ss", "full")))
    data = tab["data"]
    # Kernel-by-kernel sharing is the dominant entry on SMT.
    smt_kk_l1d = data[("Apache - SMT", "L1D", 1, 1)]
    assert smt_kk_l1d > data[("Apache - SMT", "L1D", 0, 0)]
    # SMT benefits from kernel-kernel prefetching more than the superscalar.
    ss_kk_l1d = data[("Apache - Superscalar", "L1D", 1, 1)]
    assert smt_kk_l1d > ss_kk_l1d
