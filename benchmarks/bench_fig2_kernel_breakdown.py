"""Figure 2: breakdown of SPECInt kernel time, start-up vs steady state.

Paper shape: start-up kernel time is dominated by TLB-miss handling and
system calls; in steady state total kernel time collapses but keeps
roughly the same TLB-dominated proportions.
"""

from repro.analysis import figures
from repro.analysis.experiments import get_run


def test_fig2_specint_kernel_breakdown(benchmark, emit):
    fig = benchmark.pedantic(
        lambda: figures.fig2(get_run("specint", "smt", "full")),
        rounds=1, iterations=1,
    )
    emit("fig2_kernel_breakdown", fig["text"],
         runs=get_run("specint", "smt", "full"))
    startup, steady = fig["data"]["startup"], fig["data"]["steady"]
    # Kernel time shrinks massively from start-up to steady state.
    assert sum(startup.values()) > 2 * sum(steady.values())
    # TLB handling is a major steady-state kernel activity.
    tlbish = steady.get("tlb handling", 0) + steady.get("memory management", 0)
    assert tlbish >= 0.4 * sum(steady.values())
