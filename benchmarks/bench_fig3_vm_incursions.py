"""Figure 3: incursions into kernel memory-management code by type.

Paper shape: page allocation accounts for the majority of kernel MM
entries (first-touch faults during working-set growth).
"""

from repro.analysis import figures
from repro.analysis.experiments import get_run


def test_fig3_vm_incursions(benchmark, emit):
    fig = benchmark.pedantic(
        lambda: figures.fig3(get_run("specint", "smt", "full")),
        rounds=1, iterations=1,
    )
    emit("fig3_vm_incursions", fig["text"],
         runs=get_run("specint", "smt", "full"))
    raw = fig["data"]["raw"]
    total = sum(raw.values())
    assert total > 0
    assert raw["page_allocation"] / total > 0.5
