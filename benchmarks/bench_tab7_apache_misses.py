"""Table 7: Apache miss-cause distribution on SMT.

Paper shape: kernel/kernel conflicts (intrathread + interthread) are the
largest cause of cache misses; user/kernel conflicts are significant;
kernel intrathread conflicts dominate the BTB.
"""

from repro.analysis import tables
from repro.analysis.experiments import get_run
from repro.memory.classify import MissCause


def test_tab7_apache_miss_distribution(benchmark, emit):
    tab = benchmark.pedantic(
        lambda: tables.table7(get_run("apache", "smt", "full")),
        rounds=1, iterations=1,
    )
    emit("tab7_apache_misses", tab["text"],
         runs=get_run("apache", "smt", "full"))
    causes = tab["data"]["causes"]

    def kernel_conflicts(structure):
        return (causes[(structure, 1, int(MissCause.INTRATHREAD))]
                + causes[(structure, 1, int(MissCause.INTERTHREAD))])

    def user_kernel(structure):
        return (causes[(structure, 0, int(MissCause.USER_KERNEL))]
                + causes[(structure, 1, int(MissCause.USER_KERNEL))])

    # Kernel-side conflicts are the dominant cause of D-cache misses.
    assert kernel_conflicts("L1D") > 35
    assert kernel_conflicts("L1I") > 35
    # User/kernel conflicts are a real, visible component.
    assert user_kernel("L1D") + user_kernel("L2") > 2
