"""Figure 1: SPECInt execution-cycle breakdown over time on SMT.

Paper shape: the OS accounts for ~18% of execution cycles during program
start-up, falling to a consistent ~5% in steady state; idle time is
negligible because all eight programs stay runnable.
"""

from repro.analysis import figures
from repro.analysis.experiments import get_run


def test_fig1_specint_cycle_breakdown(benchmark, emit):
    fig = benchmark.pedantic(
        lambda: figures.fig1(get_run("specint", "smt", "full")),
        rounds=1, iterations=1,
    )
    emit("fig1_specint_cycles", fig["text"],
         runs=get_run("specint", "smt", "full"))
    data = fig["data"]
    # Start-up is markedly more OS-intensive than steady state.
    assert data["startup_os_share"] > 1.5 * data["steady_os_share"]
    # Steady-state OS share is small (paper: ~5%).
    assert data["steady_os_share"] < 0.20
    assert data["boundary"] is not None
