"""Table 6: architectural metrics, Apache vs SPECInt on SMT, and Apache on
the superscalar.

Paper shape: Apache achieves 4.6 IPC on SMT vs 5.6 for SPECInt, with
higher miss rates in every cache; the superscalar collapses to 1.1 IPC on
Apache, with >60% zero-fetch and zero-issue cycles, while SMT keeps many
more misses outstanding concurrently.
"""

from repro.analysis import tables
from repro.analysis.experiments import get_run


def test_tab6_apache_architecture(benchmark, emit):
    def build():
        return tables.table6(
            get_run("apache", "smt", "full"),
            get_run("specint", "smt", "full"),
            get_run("apache", "ss", "full"),
        )

    tab = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("tab6_apache_arch", tab["text"],
         runs=(get_run("apache", "smt", "full"),
               get_run("specint", "smt", "full"),
               get_run("apache", "ss", "full")))
    m = tab["data"]
    # SPECInt outperforms Apache on SMT; Apache on SMT far outperforms
    # Apache on the superscalar (paper: 4.2x).
    assert m["SMT SPECInt"]["ipc"] > m["SMT Apache"]["ipc"]
    assert m["SMT Apache"]["ipc"] > 2.0 * m["SS Apache"]["ipc"]
    # Apache stresses the caches more than SPECInt.
    assert m["SMT Apache"]["l1d_miss_pct"] > m["SMT SPECInt"]["l1d_miss_pct"]
    assert m["SMT Apache"]["l1i_miss_pct"] > m["SMT SPECInt"]["l1i_miss_pct"]
    # SMT sustains more outstanding misses than the superscalar.
    assert m["SMT Apache"]["outstanding_l1d"] > m["SS Apache"]["outstanding_l1d"]
    # The superscalar wastes far more cycles unable to fetch.
    assert m["SS Apache"]["zero_fetch_pct"] > m["SMT Apache"]["zero_fetch_pct"]
