"""Figure 4: SPECInt system calls as a percentage of execution cycles.

Paper shape: file reads dominate start-up system-call time (input files),
with process creation/control and the kernel preamble filling most of the
rest; steady-state syscall time is small.
"""

from repro.analysis import figures
from repro.analysis.experiments import get_run


def test_fig4_specint_syscalls(benchmark, emit):
    fig = benchmark.pedantic(
        lambda: figures.fig4(get_run("specint", "smt", "full")),
        rounds=1, iterations=1,
    )
    emit("fig4_syscall_cycles", fig["text"],
         runs=get_run("specint", "smt", "full"))
    startup, steady = fig["data"]["startup"], fig["data"]["steady"]
    assert sum(startup.values()) > sum(steady.values())
    # Reads are a leading start-up syscall.
    top3 = sorted(startup, key=startup.get, reverse=True)[:3]
    assert "read" in top3 or "execve" in top3
