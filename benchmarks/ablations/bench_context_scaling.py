"""Ablation: Apache throughput vs number of hardware contexts.

The headline result -- SMT's 4.2x throughput gain over the superscalar on
Apache -- should appear as monotone-ish IPC growth from 1 to 8 contexts.
"""

from repro.core.config import CPUConfig, MachineConfig
from repro.core.simulator import Simulation
from repro.workloads.apache import ApacheWorkload


def _run(contexts: int) -> float:
    cpu = CPUConfig(
        n_contexts=contexts,
        fetch_contexts=min(2, contexts),
        pipeline_stages=7 if contexts == 1 else 9,
    )
    sim = Simulation(ApacheWorkload(), machine=MachineConfig(cpu=cpu), seed=11)
    return sim.run(max_instructions=220_000).ipc


def test_ablation_context_scaling(benchmark, emit):
    ipcs = benchmark.pedantic(
        lambda: {k: _run(k) for k in (1, 2, 4, 8)},
        rounds=1, iterations=1,
    )
    lines = ["Ablation: Apache IPC vs hardware contexts", "=" * 44]
    lines += [f"{k} contexts: IPC {v:.2f}  (speedup {v / ipcs[1]:.1f}x)"
              for k, v in ipcs.items()]
    emit("ablation_context_scaling", "\n".join(lines))
    assert ipcs[8] > 2.0 * ipcs[1]
    assert ipcs[4] > ipcs[1]
