"""Ablation: spin locks vs yield-on-contention (the paper's proposed
SMT-aware OS optimization).

The paper notes that "OS constructs such as the idle loop and spin locking
are unnecessary and can waste resources on an SMT" and leaves OS
optimization as future work.  This ablation implements it: contended lock
waiters are descheduled instead of spinning, freeing issue slots for other
contexts.
"""

from repro.core.simulator import Simulation
from repro.workloads.apache import ApacheWorkload


def _run(policy: str):
    sim = Simulation(ApacheWorkload(), seed=11, spin_policy=policy)
    result = sim.run(max_instructions=260_000)
    thread_spins = result.os.counters["thread_spin_instructions"]
    dispatch_spins = (result.os.counters["spin_instructions"] - thread_spins)
    return result.ipc, thread_spins, dispatch_spins


def test_ablation_spin_policy(benchmark, emit):
    outcomes = benchmark.pedantic(
        lambda: {p: _run(p) for p in ("spin", "yield")},
        rounds=1, iterations=1,
    )
    lines = ["Ablation: lock-wait policy (Apache)", "=" * 38]
    for policy, (ipc, tspin, dspin) in outcomes.items():
        lines.append(f"{policy:6s} IPC {ipc:.2f}  thread spins {tspin}  "
                     f"dispatch spins {dspin}")
    emit("ablation_spin_policy", "\n".join(lines))
    # Yielding eliminates exactly the spinning the optimization targets:
    # contended *thread-level* lock waits.  (Dispatch-level runq spins can
    # rise, because sleeping waiters mean more context switches.)
    assert outcomes["yield"][1] == 0
    assert outcomes["spin"][1] > 0
