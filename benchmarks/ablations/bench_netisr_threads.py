"""Ablation: number of netisr protocol threads.

Digital Unix runs a set of identical netisr threads; too few serialize
packet processing behind the 'net' lock's holder, too many just idle.
"""

from repro.core.simulator import Simulation
from repro.workloads.apache import ApacheWorkload


def _run(n_netisr: int) -> tuple[float, int]:
    wl = ApacheWorkload(n_netisr=n_netisr)
    sim = Simulation(wl, seed=11)
    result = sim.run(max_instructions=260_000)
    return result.ipc, wl.stack.packets_processed


def test_ablation_netisr_threads(benchmark, emit):
    outcomes = benchmark.pedantic(
        lambda: {k: _run(k) for k in (1, 2, 4)},
        rounds=1, iterations=1,
    )
    lines = ["Ablation: netisr thread count (Apache)", "=" * 40]
    lines += [f"{k} netisr: IPC {v[0]:.2f}, packets processed {v[1]}"
              for k, v in outcomes.items()]
    emit("ablation_netisr_threads", "\n".join(lines))
    # Packet processing should not collapse with the default thread count.
    assert outcomes[4][1] >= outcomes[1][1] * 0.5
