"""Ablation: ASN-tagged shared TLB vs flush-on-context-switch.

The Alpha's address-space numbers let the shared TLB survive context
switches -- the design point whose OS handling the paper had to modify for
SMT.  Flushing on every switch should raise the DTLB miss rate.
"""

from repro.core.simulator import Simulation
from repro.workloads.apache import ApacheWorkload


def _run(flush: bool) -> float:
    sim = Simulation(ApacheWorkload(), seed=11, tlb_flush_on_switch=flush)
    result = sim.run(max_instructions=220_000)
    return result.hierarchy.dtlb.stats.miss_rate()


def test_ablation_tlb_asn(benchmark, emit):
    rates = benchmark.pedantic(
        lambda: {"asn-tagged": _run(False), "flush-on-switch": _run(True)},
        rounds=1, iterations=1,
    )
    lines = ["Ablation: shared-TLB policy (Apache DTLB miss rate)", "=" * 50]
    lines += [f"{k:16s} {v * 100:.2f}%" for k, v in rates.items()]
    emit("ablation_tlb_asn", "\n".join(lines))
    assert rates["flush-on-switch"] >= rates["asn-tagged"]
