"""Ablation: shared vs per-context global branch history.

The paper's SMT shares one global-history register across all eight
contexts; interleaved updates from unrelated threads scramble it, which is
part of why the SMT misprediction rate exceeds the superscalar's on the
same workload (Table 4: 9.3% vs 5.0%).  Replicating the register per
context removes that interference.
"""

from repro.core.config import CPUConfig, MachineConfig
from repro.core.simulator import Simulation
from repro.workloads.specint import SpecIntWorkload


def _run(per_context: bool) -> float:
    machine = MachineConfig(cpu=CPUConfig(per_context_history=per_context))
    sim = Simulation(SpecIntWorkload(), machine=machine, seed=11)
    result = sim.run(max_instructions=300_000)
    return result.processor.branch_unit.misprediction_rate()


def test_ablation_branch_history(benchmark, emit):
    rates = benchmark.pedantic(
        lambda: {"shared": _run(False), "per-context": _run(True)},
        rounds=1, iterations=1,
    )
    lines = ["Ablation: global branch history (SPECInt misprediction rate)",
             "=" * 60]
    lines += [f"{k:12s} {v * 100:.2f}%" for k, v in rates.items()]
    emit("ablation_branch_history", "\n".join(lines))
    # Private histories must not predict worse than the scrambled shared one.
    assert rates["per-context"] <= rates["shared"] * 1.05
