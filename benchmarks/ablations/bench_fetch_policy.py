"""Ablation: ICOUNT-2.8 fetch vs naive round-robin fetch.

The ICOUNT policy (Tullsen et al., and Table 1 of the paper) prioritizes
the least-loaded contexts; round-robin ignores load.  ICOUNT should match
or beat round-robin throughput on the mixed Apache workload.
"""

from repro.core.config import CPUConfig, MachineConfig
from repro.core.simulator import Simulation
from repro.workloads.apache import ApacheWorkload


def _run(policy: str) -> float:
    machine = MachineConfig(cpu=CPUConfig(fetch_policy=policy))
    sim = Simulation(ApacheWorkload(), machine=machine, seed=11)
    result = sim.run(max_instructions=250_000)
    return result.ipc


def test_ablation_fetch_policy(benchmark, emit):
    ipcs = benchmark.pedantic(
        lambda: {p: _run(p) for p in ("icount", "round_robin")},
        rounds=1, iterations=1,
    )
    text = "\n".join(
        ["Ablation: fetch policy (Apache, 250k instructions)", "=" * 50]
        + [f"{p:12s} IPC {v:.2f}" for p, v in ipcs.items()]
    )
    emit("ablation_fetch_policy", text)
    # ICOUNT should not lose badly to round-robin.
    assert ipcs["icount"] > 0.85 * ipcs["round_robin"]
