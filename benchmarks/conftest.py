"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one of the paper's tables or figures.  All of
them draw on the same memoized canonical runs (see
``repro.analysis.experiments``), so the first benchmark touching a given
(workload, cpu, os_mode) combination pays its simulation cost and the rest
reuse it.  Set ``REPRO_BUDGET_MULT=0.25`` for a quick smoke pass.

Every benchmark writes its rendered output to ``benchmarks/output/`` and
prints it (visible with ``pytest -s``).
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def emit(output_dir):
    """Write a rendered table/figure to disk and echo it."""

    def _emit(name: str, text: str) -> None:
        path = output_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print()
        print(text)

    return _emit
