"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one of the paper's tables or figures.  All of
them draw on the same canonical run artifacts (see
``repro.analysis.experiments``): a session-scoped fixture warms the
on-disk run store once -- executing any missing canonical runs in
parallel, one process per core -- and every benchmark then loads stored
artifacts.  A second benchmark session on the same configuration is
therefore simulation-free.  Set ``REPRO_BUDGET_MULT=0.25`` for a quick
smoke pass (budgets are part of the store key), or
``REPRO_BENCH_NO_PREFETCH=1`` to skip the warm-up (e.g. for the ablation
benchmarks, which build their own simulations), or
``REPRO_BENCH_PROGRESS=1`` to watch the warm-up's aggregate live
progress line while cold runs execute (see ``repro.obs.live``).

Every benchmark writes its rendered output to ``benchmarks/output/`` and
prints it (visible with ``pytest -s``).
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session", autouse=True)
def warm_run_store():
    """Warm the canonical-run store once, in parallel, for the session."""
    if os.environ.get("REPRO_BENCH_NO_PREFETCH"):
        return
    from repro.analysis.runner import prefetch_all

    prefetch_all(progress=bool(os.environ.get("REPRO_BENCH_PROGRESS")))


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def _run_metrics(run) -> dict:
    """The stable metrics record of one run artifact: identity plus the
    probe tree of each counter window, all deterministically sorted."""
    return {
        "label": run.label,
        "fingerprint": run.fingerprint,
        "schema_version": run.schema_version,
        "probes": {window: run.window(window).get("probes", {})
                   for window in ("startup", "steady", "total")},
    }


@pytest.fixture(scope="session")
def emit(output_dir):
    """Write a rendered table/figure to disk and echo it.

    With *runs* (the artifact(s) an exhibit was built from), also write
    ``<name>.metrics.json``: per-run probe snapshots for every counter
    window, so each bench output carries a machine-readable metrics
    section that is stable across re-renders of the same artifacts.
    """

    def _emit(name: str, text: str, runs=None) -> None:
        path = output_dir / f"{name}.txt"
        path.write_text(text + "\n")
        if runs is not None:
            if not isinstance(runs, (list, tuple)):
                runs = (runs,)
            payload = {"exhibit": name,
                       "runs": [_run_metrics(r) for r in runs]}
            (output_dir / f"{name}.metrics.json").write_text(
                json.dumps(payload, sort_keys=True, indent=2) + "\n")
        print()
        print(text)

    return _emit
