"""Table 5: Apache dynamic instruction mix by type.

Paper shape: no floating point anywhere; about half of kernel memory
operations bypass the DTLB via physical addressing; branch content is
somewhat higher than SPECInt's.
"""

from repro.analysis import tables
from repro.analysis.experiments import get_run


def test_tab5_apache_instruction_mix(benchmark, emit):
    tab = benchmark.pedantic(
        lambda: tables.table5(get_run("apache", "smt", "full")),
        rounds=1, iterations=1,
    )
    emit("tab5_apache_mix", tab["text"],
         runs=get_run("apache", "smt", "full"))
    user, kernel = tab["data"]["User"], tab["data"]["Kernel"]
    assert user["floating_point"] < 0.2
    assert kernel["floating_point"] < 0.2
    assert kernel["phys_mem_pct"] > 25
    assert 12 <= kernel["load"] + kernel["store"] <= 45
