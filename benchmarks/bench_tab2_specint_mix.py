"""Table 2: SPECInt dynamic instruction mix by type, user vs kernel.

Paper shape: ~20% loads / ~10% stores / ~15% branches in user code with a
few percent floating point; kernel code has no FP, a large share of
physically-addressed memory operations, and a much lower conditional
taken rate.
"""

from repro.analysis import tables
from repro.analysis.experiments import get_run


def test_tab2_specint_instruction_mix(benchmark, emit):
    tab = benchmark.pedantic(
        lambda: tables.table2(get_run("specint", "smt", "full")),
        rounds=1, iterations=1,
    )
    emit("tab2_specint_mix", tab["text"],
         runs=get_run("specint", "smt", "full"))
    steady_user = tab["data"]["Steady User"]
    steady_kernel = tab["data"]["Steady Kernel"]
    assert 14 <= steady_user["load"] <= 27
    assert 9 <= steady_user["branch"] <= 22
    assert steady_user["floating_point"] > 0.5
    assert steady_kernel["floating_point"] < 0.5
    # Kernel memory ops are heavily physically addressed; user never.
    assert steady_kernel["phys_mem_pct"] > 25
    assert steady_user["phys_mem_pct"] < 1
    # Kernel conditional branches are taken less often than user ones.
    assert steady_kernel["cond_taken_pct"] < steady_user["cond_taken_pct"]
