"""Table 9: impact of the OS on Apache's hardware structures.

Paper shape: including kernel references multiplies the I-cache miss rate
several-fold (5.5x on SMT), roughly doubles branch mispredictions, and
raises every other structure's miss rate as well.
"""

from repro.analysis import tables
from repro.analysis.experiments import get_run


def test_tab9_os_impact_on_apache(benchmark, emit):
    def build():
        return tables.table9(
            get_run("apache", "smt", "omit"),
            get_run("apache", "smt", "full"),
            get_run("apache", "ss", "omit"),
            get_run("apache", "ss", "full"),
        )

    tab = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("tab9_os_impact_apache", tab["text"],
         runs=(get_run("apache", "smt", "omit"),
               get_run("apache", "smt", "full"),
               get_run("apache", "ss", "omit"),
               get_run("apache", "ss", "full")))
    m = tab["data"]
    # The OS multiplies the I-cache miss rate (paper: 5.5x) and raises the
    # D-cache miss rate (paper: +35%).  The L2 row is reported but not
    # asserted: at this run scale the user-only L2 stream is dominated by
    # compulsory first-touches (~1k accesses, 99% compulsory), an artifact
    # the paper's billion-instruction runs amortize away -- see
    # EXPERIMENTS.md.
    assert m["SMT +OS"]["l1i_miss_pct"] > 1.5 * max(0.01, m["SMT only"]["l1i_miss_pct"])
    assert m["SMT +OS"]["l1d_miss_pct"] > m["SMT only"]["l1d_miss_pct"]
    assert m["SMT +OS"]["l2_miss_pct"] > 0
