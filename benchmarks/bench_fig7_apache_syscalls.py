"""Figure 7: Apache system-call time by name and by resource category.

Paper shape: stat ~10% of all cycles, read/write/writev ~19%, I/O control
~10%; grouped by resource, network and file services are roughly balanced
with network read/write the single largest consumer.
"""

from repro.analysis import figures
from repro.analysis.experiments import get_run


def test_fig7_apache_syscall_breakdown(benchmark, emit):
    fig = benchmark.pedantic(
        lambda: figures.fig7(get_run("apache", "smt", "full")),
        rounds=1, iterations=1,
    )
    emit("fig7_apache_syscalls", fig["text"],
         runs=get_run("apache", "smt", "full"))
    by_name = fig["data"]["by_name"]
    # stat and the read/write family are leading consumers.
    top5 = sorted(by_name, key=by_name.get, reverse=True)[:5]
    assert "stat" in top5
    assert any(n in top5 for n in ("read", "writev", "write"))
    by_cat = fig["data"]["by_category"]
    assert by_cat.get("net read/write", 0) > 0.01
    assert by_cat.get("file inquiry", 0) > 0.01
