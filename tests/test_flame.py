"""Tests for call-path attribution and the flame tooling.

Covers the reconciliation invariant (folded paths grouped by leaf ==
the flat per-service cycle counters), span nesting discipline across
execution tiers, fold determinism through checkpoint restore, and the
``repro flame`` / ``repro diff --flame`` CLI surface.
"""

import pytest

from repro import cli
from repro.analysis import experiments
from repro.analysis.snapshot import capture
from repro.core.simulator import Simulation
from repro.obs import flame
from repro.obs.diff import compile_grep
from repro.obs.events import BEGIN, END, EventBus
from repro.workloads.apache import ApacheWorkload
from repro.workloads.specint import SpecIntWorkload


# -- folding ----------------------------------------------------------------


def test_fold_format_sorted_and_positive():
    paths = {"syscall:read;tlb:refill": 42.4, "user": 100.0,
             "idle": 0.0, "sched": -1.0}
    folded = flame.fold(paths)
    assert folded == "syscall:read;tlb:refill 42\nuser 100\n"
    assert flame.fold({}) == ""


def test_fold_grep_matches_whole_path():
    paths = {"syscall:read;tlb:refill": 10, "tlb:refill": 5, "user": 7}
    folded = flame.fold(paths, grep="tlb")
    assert folded == "syscall:read;tlb:refill 10\ntlb:refill 5\n"
    # anchoring is explicit: ^ pins to the path start
    assert flame.fold(paths, grep="^tlb") == "tlb:refill 5\n"


def test_leaf_totals_groups_by_charged_service():
    paths = {"syscall:read;tlb:refill": 10, "sched;tlb:refill": 5,
             "tlb:refill": 2, "user": 7}
    assert flame.leaf_totals(paths) == {"tlb:refill": 17, "user": 7}


def test_render_table_ranks_and_truncates():
    paths = {f"svc{i}": float(i) for i in range(1, 6)}
    text = flame.render_table(paths, top=2)
    assert "svc5" in text and "svc4" in text and "svc1" not in text
    assert "5 path(s)" in text and "showing top 2" in text


def test_flame_paths_tolerates_pre_v6_window():
    assert flame.flame_paths({"probes": {}}) == {}


# -- grep regex semantics ---------------------------------------------------


def test_compile_grep_is_unanchored_regex():
    pattern = compile_grep("mem.l2")
    assert pattern.search("mem.l2.miss.user")
    # unanchored: matches anywhere, and "." is a regex wildcard
    assert pattern.search("os.mem1l2.x")
    assert compile_grep("miss|refill").search("tlb.refill.kernel")
    assert compile_grep(None) is None
    with pytest.raises(ValueError, match="bad --grep pattern"):
        compile_grep("[unclosed")


def test_cli_grep_rejects_bad_regex(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_BUDGET_MULT", "0.02")
    experiments.clear_cache()
    with pytest.raises(SystemExit, match="bad --grep"):
        cli.main(["counters", "specint", "--grep", "[unclosed"])
    with pytest.raises(SystemExit, match="bad --grep"):
        cli.main(["diff", "specint-smt-full", "specint-ss-full",
                  "--grep", "(open"])


# -- reconciliation invariant -----------------------------------------------


def _reconcile(window):
    """Assert sum-over-paths-grouped-by-leaf == flat service counters."""
    attr = flame.flame_paths(window)
    svc = window["service_cycles"]
    leaves = flame.leaf_totals(attr)
    for name in sorted(set(leaves) | set(svc)):
        assert leaves.get(name, 0) == pytest.approx(svc.get(name, 0)), name
    assert sum(attr.values()) == pytest.approx(sum(svc.values()))
    return attr


def test_attribution_reconciles_with_service_cycles_detailed():
    sim = Simulation(ApacheWorkload(), seed=11)
    sim.run(max_instructions=40_000)
    snap = capture(sim)
    attr = _reconcile(snap)
    # kernel services really nest: at least one multi-frame path exists
    nested = [p for p in attr if ";" in p]
    assert nested, "expected nested call paths on an apache run"
    # and every component of every path is a known service-style label
    for path in attr:
        assert all(frag for frag in path.split(";"))


def test_attribution_reconciles_across_tiers():
    for kwargs in ({"mode": "fast"},
                   {"mode": "sampled", "warmup": 8_000,
                    "sample": (8_000, 4_000)}):
        spec = experiments.run_spec("apache", "smt", "full", 30_000, 11,
                                    **kwargs)
        rec = experiments.execute_spec(spec)
        for window in ("steady", "total"):
            _reconcile(rec.window(window))


def test_attribution_total_covers_all_context_cycles():
    sim = Simulation(SpecIntWorkload(), seed=7)
    sim.run(max_instructions=20_000)
    snap = capture(sim)
    attr = snap["attribution"]
    n_ctx = sim.machine.cpu.n_contexts
    assert sum(attr.values()) == snap["cycles"] * n_ctx


# -- span nesting discipline ------------------------------------------------

#: Kinds emitted as nested kernel-service spans (pipeline occupancy
#: spans interleave across contexts by design and are excluded).
SPAN_KINDS = ("syscall", "tlb", "interrupt", "sched")


def _assert_spans_well_nested(events):
    """Every B has a matching E in LIFO order, per software thread."""
    stacks: dict = {}
    checked = 0
    for ev in events:
        if ev.kind not in SPAN_KINDS or ev.phase not in (BEGIN, END):
            continue
        stack = stacks.setdefault(ev.tid, [])
        if ev.phase == BEGIN:
            stack.append(ev.service)
        else:
            assert stack, f"E without B: {ev}"
            assert stack[-1] == ev.service, (
                f"crossed spans on tid {ev.tid}: "
                f"open {stack[-1]!r}, closing {ev.service!r}")
            stack.pop()
            checked += 1
    assert checked > 0, "run emitted no service spans"
    return stacks


def test_detailed_run_spans_never_cross():
    sim = Simulation(ApacheWorkload(), seed=11)
    bus = EventBus()
    sim.attach_events(bus)
    sim.run(max_instructions=30_000)
    _assert_spans_well_nested(bus.events)


def test_sampled_run_spans_never_cross_or_orphan():
    from repro.core.engine import build_plan, run_plan

    sim = Simulation(ApacheWorkload(), seed=11)
    bus = EventBus()
    sim.attach_events(bus)
    plan = build_plan("sampled", 30_000, warmup=8_000, sample=(8_000, 4_000))
    run_plan(sim, plan)
    stacks = _assert_spans_well_nested(bus.events)
    # Tier transitions must not strand open spans beyond the plausible
    # in-flight depth of one nested kernel service chain per thread.
    for tid, stack in stacks.items():
        assert len(stack) <= 4, f"orphaned spans on tid {tid}: {stack}"


def test_app_only_mode_still_reconciles():
    spec = experiments.run_spec("specint", "smt", "app", 20_000, 11)
    rec = experiments.execute_spec(spec)
    _reconcile(rec.window("total"))


# -- determinism through checkpoints ----------------------------------------


def test_checkpoint_restore_reproduces_identical_fold(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    spec = experiments.run_spec("specint", "smt", "full", 16_000, 11,
                                mode="sampled", warmup=6_000,
                                sample=(6_000, 2_000))
    straight = experiments.execute_spec(spec, checkpoint=True)
    assert straight.sampling["checkpoint"]["restored"] is False
    experiments.clear_cache()
    restored = experiments.execute_spec(spec, checkpoint=True)
    assert restored.sampling["checkpoint"]["restored"] is True
    for window in ("startup", "steady", "total"):
        fold_a = flame.fold(flame.flame_paths(straight.window(window)))
        fold_b = flame.fold(flame.flame_paths(restored.window(window)))
        assert fold_a == fold_b
        assert fold_a  # non-trivial: the windows really carry paths


def test_same_seed_folds_byte_identical():
    folds = []
    for _ in range(2):
        sim = Simulation(ApacheWorkload(), seed=23)
        sim.run(max_instructions=20_000)
        folds.append(flame.fold(capture(sim)["attribution"]))
    assert folds[0] == folds[1]


# -- CLI surface ------------------------------------------------------------


@pytest.fixture
def small_budgets(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_BUDGET_MULT", "0.02")
    experiments.clear_cache()
    yield
    experiments.clear_cache()


def test_cli_flame_writes_folded_and_table(small_budgets, tmp_path, capsys):
    out = tmp_path / "apache.folded"
    assert cli.main(["flame", "apache-smt-full", "--out", str(out)]) == 0
    text = capsys.readouterr().out
    assert "wrote" in text and "path(s)" in text
    assert "context-cycles" in text
    lines = out.read_text().splitlines()
    assert lines
    for line in lines:
        path, count = line.rsplit(" ", 1)
        assert path and int(count) > 0
    # folded output is sorted by path (byte-stable)
    assert lines == sorted(lines)

    with pytest.raises(SystemExit, match="refusing to overwrite"):
        cli.main(["flame", "apache-smt-full", "--out", str(out)])


def test_cli_flame_grep_and_json(small_budgets, tmp_path, capsys):
    import json

    jpath = tmp_path / "flame.json"
    assert cli.main(["flame", "apache-smt-full", "--grep", "syscall|sched",
                     "--json", str(jpath)]) == 0
    out = capsys.readouterr().out
    table_rows = [ln for ln in out.splitlines()
                  if ln.startswith("  ") and "path" not in ln]
    assert table_rows
    payload = json.loads(jpath.read_text())
    assert payload["window"] == "steady"
    assert payload["attribution"]

    assert cli.main(["flame", "apache-smt-full",
                     "--grep", "nosuchservice"]) == 1
    assert "no call paths match" in capsys.readouterr().out


def test_cli_diff_flame_ranks_call_paths(small_budgets, tmp_path, capsys):
    import json

    jpath = tmp_path / "flame-diff.json"
    assert cli.main(["diff", "apache-ss-full", "apache-smt-full",
                     "--flame", "--json", str(jpath)]) == 0
    out = capsys.readouterr().out
    assert "apache-ss-full" in out and "apache-smt-full" in out
    payload = json.loads(jpath.read_text())
    names = [d["name"] for d in payload["deltas"]]
    assert names
    # deltas are whole call paths, not flat probe names
    assert any(";" in n for n in names)


def test_cli_diff_flame_seeded_noise_bands(small_budgets, capsys):
    assert cli.main(["diff", "specint-ss-full", "specint-smt-full",
                     "--flame", "--seeds", "2", "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "seeds" in out


def test_cli_counters_grep_is_regex(small_budgets, capsys):
    assert cli.main(["counters", "specint", "--grep",
                     r"mem\.(l1d|l2)\.miss"]) == 0
    out = capsys.readouterr().out
    names = [line.split()[0] for line in out.splitlines()
             if line.startswith("  ")]
    assert names
    assert all(n.startswith(("mem.l1d.miss", "mem.l2.miss")) for n in names)


def test_cli_flame_warns_on_dropped_events(small_budgets, capsys,
                                           monkeypatch):
    # Fabricate a window whose probe snapshot records ring overflow.
    rec = experiments.get_run("specint", "smt", "full")
    window = dict(rec.steady)
    window["probes"] = dict(window.get("probes", {}))
    window["probes"]["core.events.dropped"] = 17
    monkeypatch.setattr(type(rec), "window", lambda self, phase: window)
    monkeypatch.setattr(cli, "_resolve_run_arg",
                        lambda text, instructions, seed: rec)
    assert cli.main(["flame", "specint-smt-full"]) == 0
    out = capsys.readouterr().out
    assert "dropped 17 event(s)" in out and "truncated" in out
