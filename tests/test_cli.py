"""Tests for the command-line interface."""

import pytest

from repro import cli
from repro.analysis import experiments


@pytest.fixture(autouse=True)
def small_budgets(monkeypatch):
    """Make CLI-triggered simulations tiny so these tests stay fast."""
    monkeypatch.setenv("REPRO_BUDGET_MULT", "0.02")
    experiments.clear_cache()
    yield
    experiments.clear_cache()


def test_cli_list(capsys):
    assert cli.main(["list"]) == 0
    out = capsys.readouterr().out
    assert "specint" in out and "apache" in out


def test_cli_run_prints_metrics(capsys):
    assert cli.main(["run", "specint", "--cpu", "smt"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out
    assert "L1D miss" in out


def test_cli_table(capsys):
    assert cli.main(["table", "2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "Load" in out


def test_cli_figure(capsys):
    assert cli.main(["figure", "3"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out


def test_cli_invalid_table():
    with pytest.raises(SystemExit):
        cli.main(["table", "1"])


def test_cli_invalid_figure():
    with pytest.raises(SystemExit):
        cli.main(["figure", "8"])


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        cli.main([])


def test_cli_report_writes_file(tmp_path, capsys):
    out = tmp_path / "report.txt"
    assert cli.main(["report", "--out", str(out),
                     "--exhibits-dir", str(tmp_path / "ex")]) == 0
    assert out.exists()
    assert (tmp_path / "ex" / "tab6.txt").exists()


def test_cli_compare_runs(capsys):
    assert cli.main(["compare"]) in (0, 1)
    out = capsys.readouterr().out
    assert "shape criteria hold" in out


def test_cli_counters_prints_probe_tree(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert cli.main(["counters", "specint"]) == 0
    out = capsys.readouterr().out
    assert "mem.l1d.accesses.user" in out
    assert "os.sched.switches" in out
    assert "probe(s)" in out


def test_cli_counters_grep_filters(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert cli.main(["counters", "specint", "--grep", "branch.",
                     "--window", "steady"]) == 0
    out = capsys.readouterr().out
    names = [line.split()[0] for line in out.splitlines()
             if line.startswith("  ")]
    assert names and all(n.startswith("branch.") for n in names)

    assert cli.main(["counters", "specint", "--grep", "nosuch."]) == 1
    assert "no probes match" in capsys.readouterr().out


def test_cli_trace_writes_chrome_json(tmp_path, monkeypatch, capsys):
    import json

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    out_path = tmp_path / "trace.json"
    assert cli.main(["trace", "specint", "--instructions", "20000",
                     "--out", str(out_path)]) == 0
    assert "wrote" in capsys.readouterr().out
    payload = json.loads(out_path.read_text())
    assert payload["traceEvents"]

    jsonl_path = tmp_path / "trace.jsonl"
    assert cli.main(["trace", "specint", "--instructions", "20000",
                     "--out", str(jsonl_path), "--jsonl"]) == 0
    capsys.readouterr()
    first = json.loads(jsonl_path.read_text().splitlines()[0])
    assert {"ts", "kind", "name"} <= set(first)


def test_cli_profile_prints_table(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert cli.main(["profile", "specint", "--instructions", "20000"]) == 0
    out = capsys.readouterr().out
    assert "core.fetch" in out
    assert "self %" in out


def test_cli_prefetch_and_cache_lifecycle(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_BUDGET_MULT", "0.005")

    assert cli.main(["cache", "ls"]) == 0
    assert "empty" in capsys.readouterr().out

    assert cli.main(["prefetch", "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "8 canonical runs ready" in out
    assert str(tmp_path) in out

    assert cli.main(["cache", "ls"]) == 0
    out = capsys.readouterr().out
    assert "apache-smt-full" in out
    assert "8 stored run(s)" in out
    from repro.analysis.artifact import SCHEMA_VERSION
    assert f"v{SCHEMA_VERSION} " in out  # per-entry schema version
    assert "stale" not in out

    # A second prefetch is store-served: no simulation may run.
    experiments.clear_cache()
    monkeypatch.setattr(
        experiments, "execute_spec",
        lambda spec, **kwargs: (_ for _ in ()).throw(
            AssertionError("prefetch re-ran a stored spec")))
    assert cli.main(["prefetch"]) == 0
    assert "8 canonical runs ready" in capsys.readouterr().out

    assert cli.main(["cache", "clear"]) == 0
    assert "removed 8" in capsys.readouterr().out
    assert cli.main(["cache", "ls"]) == 0
    assert "empty" in capsys.readouterr().out


def test_cli_cache_gc_removes_only_stale_schema_entries(
        tmp_path, monkeypatch, capsys):
    import json

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert cli.main(["run", "specint"]) == 0
    capsys.readouterr()

    # Nothing stale yet: gc is a no-op.
    assert cli.main(["cache", "gc"]) == 0
    assert "no stale-schema entries" in capsys.readouterr().out

    # Fabricate a leftover from an older schema (a permanent store miss).
    current = next(tmp_path.glob("*.json"))
    old = json.loads(current.read_text())
    old["schema_version"] = old["schema_version"] - 1
    old["fingerprint"] = "0" * 64
    stale_path = tmp_path / "specint-smt-full-00000000000000000000.json"
    stale_path.write_text(json.dumps(old))

    assert cli.main(["cache", "gc", "--dry-run"]) == 0
    out = capsys.readouterr().out
    assert "would remove 1 stale run(s)" in out
    assert stale_path.exists()  # dry run keeps the file

    assert cli.main(["cache", "gc"]) == 0
    assert "removed 1 stale run(s)" in capsys.readouterr().out
    assert not stale_path.exists()
    assert current.exists()  # current-schema entries are never touched


def test_cli_trace_refuses_to_overwrite_without_force(
        tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    out_path = tmp_path / "trace.json"
    args = ["trace", "specint", "--instructions", "20000",
            "--out", str(out_path)]
    assert cli.main(args) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit, match="refusing to overwrite"):
        cli.main(args)
    assert cli.main(args + ["--force"]) == 0


def test_cli_profile_out_file_and_force(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    out_path = tmp_path / "profile.txt"
    args = ["profile", "specint", "--instructions", "20000",
            "--out", str(out_path)]
    assert cli.main(args) == 0
    assert "wrote" in capsys.readouterr().out
    assert "core.fetch" in out_path.read_text()
    with pytest.raises(SystemExit, match="refusing to overwrite"):
        cli.main(args)
    assert cli.main(args + ["--force"]) == 0


def test_cli_run_progress_out_writes_jsonl(tmp_path, monkeypatch, capsys):
    import json

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    beats_path = tmp_path / "beats.jsonl"
    assert cli.main(["run", "specint", "--progress-out",
                     str(beats_path)]) == 0
    assert "IPC" in capsys.readouterr().out
    assert beats_path.exists()
    # Tiny test budgets can finish inside one heartbeat interval; any
    # lines that did appear must be well-formed samples.
    for line in beats_path.read_text().splitlines():
        assert "cycle" in json.loads(line)


# -- supervised run engine surface ------------------------------------------


def test_cli_run_supervised_success(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert cli.main(["run", "specint", "--retries", "1"]) == 0
    assert "IPC" in capsys.readouterr().out


def test_cli_run_supervised_rejects_progress_out(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    with pytest.raises(SystemExit, match="--progress-out"):
        cli.main(["run", "specint", "--retries", "1",
                  "--progress-out", str(tmp_path / "beats.jsonl")])


def test_cli_run_supervised_failure_exit_code(tmp_path, monkeypatch, capsys):
    from repro import faults

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    plan = faults.FaultPlan(
        sites=(faults.FaultSite("worker.crash", times=0),))
    monkeypatch.setenv(faults.FAULT_PLAN_ENV, plan.dumps())
    monkeypatch.setattr(faults, "_PLAN", faults._UNSET)
    try:
        assert cli.main(["run", "specint", "--retries", "1"]) == 1
    finally:
        faults.clear()
    out = capsys.readouterr().out
    assert "run failed after 2 attempt(s)" in out
    assert "retrying in" in out


def test_cli_prefetch_supervised(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_BUDGET_MULT", "0.005")
    assert cli.main(["prefetch", "--retries", "1", "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "8/8 canonical runs ready" in out
    assert "attempt(s)" in out or "store" in out


def test_cli_cache_gc_collects_stranded_tmp(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    stranded = tmp_path / "dead.json.tmp.4242"
    stranded.write_text("half an artifact")

    assert cli.main(["cache", "gc", "--dry-run"]) == 0
    out = capsys.readouterr().out
    assert "would remove 1 stranded temp file(s)" in out
    assert stranded.exists()

    assert cli.main(["cache", "gc"]) == 0
    assert "removed 1 stranded temp file(s)" in capsys.readouterr().out
    assert not stranded.exists()


def test_cli_cache_ls_reports_quarantine(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    qdir = tmp_path / "quarantine"
    qdir.mkdir()
    (qdir / "rotten.json").write_text("garbage")
    (qdir / "rotten.json.why").write_text("unparsable JSON")

    assert cli.main(["cache", "ls"]) == 0
    out = capsys.readouterr().out
    assert "1 quarantined corrupt file(s)" in out


def test_cli_chaos_list(capsys):
    assert cli.main(["chaos", "--list"]) == 0
    out = capsys.readouterr().out
    assert "worker-crash" in out and "torn-write" in out


def test_cli_chaos_unknown_scenario(tmp_path):
    with pytest.raises(SystemExit, match="unknown scenario"):
        cli.main(["chaos", "--scenario", "nope",
                  "--store", str(tmp_path / "m")])


def test_cli_chaos_single_scenario_json(tmp_path, capsys):
    import json

    out_path = tmp_path / "chaos.json"
    assert cli.main(["chaos", "--scenario", "worker-crash",
                     "--store", str(tmp_path / "m"),
                     "--instructions", "800", "--json", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "1/1 scenarios survived" in out
    payload = json.loads(out_path.read_text())
    assert payload["scenarios"][0]["name"] == "worker-crash"
    assert payload["scenarios"][0]["survived"] is True


# -- tiered execution surface ------------------------------------------------


def test_cli_run_fast_mode(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert cli.main(["run", "specint", "--mode", "fast"]) == 0
    out = capsys.readouterr().out
    assert "execution mode      fast" in out
    assert "leg plan" in out and "stride" in out


def test_cli_run_sampled_mode_with_checkpoint(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    args = ["run", "specint", "--instructions", "12000", "--mode", "sampled",
            "--warmup", "4000", "--sample", "4000:2000", "--checkpoint"]
    assert cli.main(args) == 0
    out = capsys.readouterr().out
    assert "execution mode      sampled" in out
    assert "saved to store" in out
    assert "sampled windows" in out
    assert "+/-" in out  # extrapolated estimates carry error bars

    # Same spec again: served from the store (same fingerprint), but a
    # fresh forced execution restores the warm-up checkpoint.
    experiments.clear_cache()
    assert cli.main(args + ["--progress"]) == 0
    assert "restored from store" in capsys.readouterr().out


def test_cli_run_rejects_bad_sample(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    with pytest.raises(SystemExit, match="want N:M"):
        cli.main(["run", "specint", "--mode", "sampled", "--sample", "9"])
    with pytest.raises(SystemExit, match="integers"):
        cli.main(["run", "specint", "--mode", "sampled", "--sample", "a:b"])


def test_cli_cache_ls_shows_checkpoint_kind(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert cli.main(["run", "specint", "--instructions", "12000",
                     "--mode", "sampled", "--warmup", "4000",
                     "--sample", "4000:2000", "--checkpoint"]) == 0
    capsys.readouterr()
    assert cli.main(["cache", "ls"]) == 0
    out = capsys.readouterr().out
    assert "checkpoint" in out
    assert "ckpt:" in out
    assert "1 stored run(s), 1 checkpoint(s)" in out
    assert "stale" not in out

    assert cli.main(["cache", "ls", "--verify"]) == 0
    out = capsys.readouterr().out
    assert "0 problem(s)" in out

    assert cli.main(["cache", "gc"]) == 0
    assert "no stale-schema entries" in capsys.readouterr().out


# -- resilient service surface -----------------------------------------------


def _serve_specs():
    return [{"workload": "specint", "cpu": "smt", "os_mode": "app",
             "instructions": 800, "seed": s} for s in (1, 2)]


def test_cli_serve_spec_file(tmp_path, monkeypatch, capsys):
    import json

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    spec_file = tmp_path / "sweep.json"
    spec_file.write_text(json.dumps(_serve_specs()))
    assert cli.main(["serve", "--spec-file", str(spec_file),
                     "--isolation", "inline"]) == 0
    out = capsys.readouterr().out
    assert "service report" in out and "done=2" in out
    assert (tmp_path / "store" / "queue" / "journal.jsonl").exists()


def test_cli_serve_refuses_unfinished_journal_without_resume(
        tmp_path, monkeypatch):
    import json

    from repro.analysis.queue import JobQueue, queue_root
    from repro.analysis.runner import _resolve_item

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    # A dead incarnation left a pending job in the journal.
    JobQueue(queue_root(tmp_path / "store")).submit(
        _resolve_item(_serve_specs()[0]))
    spec_file = tmp_path / "sweep.json"
    spec_file.write_text(json.dumps(_serve_specs()))
    with pytest.raises(SystemExit, match="--resume"):
        cli.main(["serve", "--spec-file", str(spec_file),
                  "--isolation", "inline"])
    assert cli.main(["serve", "--spec-file", str(spec_file),
                     "--isolation", "inline", "--resume"]) == 0


def test_cli_serve_json_report(tmp_path, monkeypatch, capsys):
    import json

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    spec_file = tmp_path / "sweep.json"
    spec_file.write_text(json.dumps(_serve_specs()[:1]))
    out_path = tmp_path / "service.json"
    assert cli.main(["serve", "--spec-file", str(spec_file),
                     "--isolation", "inline", "--json",
                     str(out_path)]) == 0
    assert "wrote" in capsys.readouterr().out
    payload = json.loads(out_path.read_text())
    assert payload["counts"]["done"] == 1
    assert payload["clean"] is True
    assert payload["ledger"]


def test_cli_serve_rejects_bad_spec_file(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    with pytest.raises(SystemExit, match="non-empty JSON list"):
        cli.main(["serve", "--spec-file", str(bad)])
    with pytest.raises(SystemExit, match="cannot read spec file"):
        cli.main(["serve", "--spec-file", str(tmp_path / "absent.json")])
