"""Executor-layer tests: run_many/prefetch_all resolution order, store
population, and parallel-vs-serial sweep equivalence."""

import pytest

from repro.analysis import experiments, sweeps
from repro.analysis import runner
from repro.analysis.store import RunStore


@pytest.fixture(autouse=True)
def _tiny_isolated(monkeypatch, tmp_path):
    """Per-test store dir and small budgets; memo cleared on both sides."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_BUDGET_MULT", "0.005")
    experiments.clear_cache()
    yield
    experiments.clear_cache()


def test_canonical_specs_cover_the_paper():
    assert len(runner.CANONICAL_SPECS) == 8
    assert len(set(runner.CANONICAL_SPECS)) == 8
    for wl, cpu, mode in runner.CANONICAL_SPECS:
        assert wl in ("specint", "apache")
        assert cpu in ("smt", "ss")
        assert mode in ("full", "app", "omit")


def test_default_workers_bounds():
    assert 1 <= runner.default_workers() <= len(runner.CANONICAL_SPECS)


def test_run_many_serial_executes_and_stores():
    triples = [("specint", "smt", "full"), ("specint", "ss", "full")]
    result = runner.run_many(triples, max_workers=1)
    assert set(result) == {"specint-smt-full", "specint-ss-full"}
    store = RunStore()
    for artifact in result.values():
        assert store.get(artifact.fingerprint) == artifact


def test_run_many_uses_store_instead_of_rerunning(monkeypatch):
    triples = [("specint", "smt", "full")]
    first = runner.run_many(triples, max_workers=1)
    experiments.clear_cache()

    def boom(spec):  # pragma: no cover - must never run
        raise AssertionError("execute_spec called despite a warm store")

    monkeypatch.setattr(experiments, "execute_spec", boom)
    again = runner.run_many(triples, max_workers=1)
    assert again == first


def test_run_many_force_reexecutes(monkeypatch):
    triples = [("specint", "smt", "full")]
    runner.run_many(triples, max_workers=1)
    calls = []
    original = experiments.execute_spec

    def spy(spec, **kwargs):
        calls.append(spec["workload"])
        return original(spec, **kwargs)

    monkeypatch.setattr(experiments, "execute_spec", spy)
    runner.run_many(triples, max_workers=1, force=True)
    assert calls == ["specint"]


def test_prefetch_all_populates_all_eight():
    artifacts = runner.prefetch_all(max_workers=2)
    assert len(artifacts) == 8
    labels = {f"{wl}-{cpu}-{mode}" for wl, cpu, mode in runner.CANONICAL_SPECS}
    assert set(artifacts) == labels
    assert len(RunStore().entries()) == 8
    # Parallel-produced artifacts resolve through get_run afterwards.
    a = experiments.get_run("apache", "smt", "omit")
    assert a == artifacts["apache-smt-omit"]


def test_prefetch_timed_reports_elapsed():
    artifacts, elapsed = runner.prefetch_timed(max_workers=1)
    assert len(artifacts) == 8
    assert elapsed >= 0.0


def test_parallel_sweep_matches_serial():
    serial = sweeps.context_sweep("specint", contexts=(1, 2),
                                  instructions=6_000)
    parallel = sweeps.context_sweep("specint", contexts=(1, 2),
                                    instructions=6_000, max_workers=2)
    assert [p.value for p in parallel.points] == [1, 2]
    for sp, pp in zip(serial.points, parallel.points):
        assert sp.value == pp.value
        assert sp.metrics == pp.metrics


def test_run_sweep_points_preserves_order():
    points = runner.run_sweep_points("quantum", "specint", (30_000, 10_000),
                                     instructions=6_000, seed=11,
                                     max_workers=2)
    assert [v for v, _ in points] == [30_000, 10_000]
    for _, metrics in points:
        assert set(metrics) == set(sweeps.DEFAULT_METRICS)


class _BrokenPool:
    """Stands in for ProcessPoolExecutor on hosts where workers die at
    startup: entering the context manager raises BrokenExecutor."""

    def __init__(self, *args, **kwargs):
        pass

    def __enter__(self):
        from concurrent.futures import BrokenExecutor

        raise BrokenExecutor("all workers died")

    def __exit__(self, *exc):  # pragma: no cover - never entered
        return False


def test_run_many_falls_back_to_serial_on_broken_pool(monkeypatch):
    monkeypatch.setattr(runner, "ProcessPoolExecutor", _BrokenPool)
    triples = [("specint", "smt", "full"), ("specint", "ss", "full")]
    result = runner.run_many(triples, max_workers=4)
    assert set(result) == {"specint-smt-full", "specint-ss-full"}
    store = RunStore()
    for artifact in result.values():
        assert store.get(artifact.fingerprint) == artifact


def test_prefetch_all_falls_back_to_serial_on_broken_pool(monkeypatch):
    monkeypatch.setattr(runner, "ProcessPoolExecutor", _BrokenPool)
    artifacts = runner.prefetch_all(max_workers=4)
    assert len(artifacts) == 8
    assert len(RunStore().entries()) == 8


def test_run_many_carries_tier_keys_through_dict_items():
    item = {"workload": "specint", "cpu": "smt", "os_mode": "full",
            "instructions": 12_000, "mode": "sampled", "warmup": 4_000,
            "sample": (4_000, 2_000)}
    result = runner.run_many([item], max_workers=1, checkpoint=True)
    (artifact,) = result.values()
    assert artifact.mode == "sampled"
    assert artifact.spec["mode"] == "sampled"
    assert artifact.spec["warmup"] == 4_000
    assert artifact.spec["sample"] == [4_000, 2_000]
    assert artifact.sampling["checkpoint"]["restored"] is False
    # The checkpoint landed next to the run in the shared store.
    store = RunStore()
    kinds = sorted(e.kind for e in store.entries())
    assert kinds == ["checkpoint", "run"]
    # A forced re-run restores it.
    again = runner.run_many([item], max_workers=1, force=True,
                            checkpoint=True)
    (rerun,) = again.values()
    assert rerun.sampling["checkpoint"]["restored"] is True
    assert rerun.steady == artifact.steady
