"""Tests for less-traveled OS paths: disk/DMA, interrupt backlog,
TLB-flush-on-switch, and halt semantics."""

import random

import pytest

from repro.core.simulator import Simulation
from repro.memory.hierarchy import MemoryHierarchy
from repro.os_model.address_space import AddressSpace
from repro.os_model.kernel import MiniDUX
from repro.os_model.thread import ThreadState
from repro.workloads.specint import SpecIntWorkload


@pytest.fixture
def osk():
    return MiniDUX(MemoryHierarchy(), n_contexts=2, rng=random.Random(12))


def make_thread(osk, behavior):
    from repro.isa.code import CodeModel, CodeModelConfig, SegmentSpec
    from repro.isa.mix import InstructionMix
    asp = AddressSpace(pid=0, name="p0")
    asp.region("heap", 0x40_0000, 8, 4)
    code = CodeModel(CodeModelConfig(
        "p0", asp.base + 0x1_0000, InstructionMix(),
        segments=(SegmentSpec("main", 40, 8),), seed=0))
    return osk.create_process("p0", 0, code, asp, lambda t: behavior)


def drain(thread):
    services = []
    while thread.frames:
        fr = thread.frames[-1]
        if not fr.started:
            fr.start()
        instr = fr.next_instruction()
        if instr is None:
            thread.frames.pop()
            if fr.on_complete:
                fr.on_complete()
            continue
        services.append(instr.service)
    return services


def test_disk_read_invalidates_via_dma(osk):
    t = make_thread(osk, iter(()))
    target = osk.reg_filecache.base
    # Pre-warm the line the DMA will overwrite.
    osk.hierarchy.l1d.access(target, 1, 1)
    assert osk.hierarchy.l1d.probe(target)
    osk.dispatch(t, ("syscall", "read", {
        "nbytes": 256,
        "copy": (target, t.process.regions[0].base, True, False),
        "disk": True,
        "dma": (target, 256),
    }), 0)
    services = drain(t)
    assert "syscall:read" in services
    assert not osk.hierarchy.l1d.probe(target)  # DMA invalidated it


def test_post_frames_run_effects_in_order(osk):
    t = make_thread(osk, iter(()))
    order = []
    osk.dispatch(t, ("syscall", "writev", {
        "post_frames": [
            ("nettx", 20, lambda: order.append("a")),
            ("nettx", 20, lambda: order.append("b")),
        ],
        "on_done": lambda: order.append("done"),
    }), 0)
    drain(t)
    assert order == ["a", "b", "done"]


def test_interrupt_backlog_refused(osk):
    cpu = osk.cpu_threads[0]
    from repro.os_model.thread import Frame
    for _ in range(30):  # exceed the delivery backlog threshold
        cpu.push_frame(Frame(cpu.kernel_walker, 5, "intr:net", "intr"))
    assert not osk._deliver_interrupt(0, type("R", (), {
        "label": "intr:net", "cost": 50, "effect": None})())


def test_tlb_flush_on_switch_mode():
    base = Simulation(SpecIntWorkload(), seed=88)
    base_result = base.run(max_instructions=60_000)
    flush = Simulation(SpecIntWorkload(), seed=88, tlb_flush_on_switch=True)
    flush_result = flush.run(max_instructions=60_000)
    # Flushing cannot reduce the number of TLB invalidation flushes.
    assert (flush_result.hierarchy.dtlb.asn_flushes
            >= base_result.hierarchy.dtlb.asn_flushes)


def test_halt_directive_stalls_thread(osk):
    t = make_thread(osk, iter([("halt", 500), ("compute", 5)]))
    osk.scheduler.make_ready(t)
    stream = osk.streams[0]
    # Drive until the thread is current and halted (boot handlers first).
    for i in range(5000):
        stream.next_instruction(i)
        if t.halt_until > 0:
            break
    assert t.halt_until > 0
    assert t.state is not ThreadState.BLOCKED  # halted, not blocked


def test_invalid_halt_free_threads_unaffected(osk):
    t = make_thread(osk, iter([("compute", 5)]))
    assert t.halt_until == 0


def test_syscall_latency_recorded(osk):
    t = make_thread(osk, iter(()))
    osk.now = 100
    osk.dispatch(t, ("syscall", "getpid", {}), 100)
    osk.now = 240
    drain(t)
    count, total = osk.syscall_latency["getpid"]
    assert count == 1
    assert total == 140


def test_syscall_latency_accumulates(osk):
    t = make_thread(osk, iter(()))
    for start in (10, 50):
        osk.now = start
        osk.dispatch(t, ("syscall", "umask", {}), start)
        osk.now = start + 30
        drain(t)
    count, total = osk.syscall_latency["umask"]
    assert count == 2
    assert total == 60
