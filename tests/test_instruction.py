"""Tests for the dynamic instruction record."""

from repro.isa.instruction import (
    Instruction,
    ST_FETCHED,
)
from repro.isa.types import InstrType, Mode


def make(itype=InstrType.INT_ALU, **kwargs):
    defaults = dict(mode=Mode.USER, service="user", pc=0x1000)
    defaults.update(kwargs)
    return Instruction(itype, **defaults)


def test_defaults():
    instr = make()
    assert instr.state == ST_FETCHED
    assert instr.completion == -1
    assert instr.producer is None
    assert instr.seq == -1
    assert not instr.tlb_done
    assert instr.ctx == -1


def test_branch_property():
    assert make(InstrType.COND_BRANCH).is_branch
    assert make(InstrType.RETURN).is_branch
    assert make(InstrType.PAL_CALL).is_branch
    assert not make(InstrType.LOAD).is_branch
    assert not make(InstrType.INT_ALU).is_branch


def test_memory_property():
    assert make(InstrType.LOAD, addr=0x2000).is_memory
    assert make(InstrType.STORE, addr=0x2000).is_memory
    assert make(InstrType.SYNC, addr=0x2000).is_memory
    assert not make(InstrType.COND_BRANCH).is_memory


def test_slots_prevent_arbitrary_attributes():
    instr = make()
    try:
        instr.bogus = 1
    except AttributeError:
        return
    raise AssertionError("Instruction should use __slots__")


def test_fields_carried_through():
    instr = make(
        InstrType.LOAD, mode=Mode.KERNEL, service="syscall:read",
        pc=0x4000, addr=0xdead0, phys=True, dep=True, latency=2,
        thread_id=7, asn=3,
    )
    assert instr.mode is Mode.KERNEL
    assert instr.service == "syscall:read"
    assert instr.addr == 0xdead0
    assert instr.phys
    assert instr.dep
    assert instr.latency == 2
    assert instr.thread_id == 7
    assert instr.asn == 3


def test_branch_outcome_fields():
    instr = make(InstrType.COND_BRANCH, taken=True, target=0x9000)
    assert instr.taken
    assert instr.target == 0x9000


def test_repr_mentions_type():
    assert "LOAD" in repr(make(InstrType.LOAD, addr=0x10))
