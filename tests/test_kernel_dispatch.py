"""Tests for MiniDUX: thread creation, the dispatcher, TLB handlers,
interrupt delivery, and both OS modes."""

import random

import pytest

from repro.isa.types import Mode
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.tlb import KERNEL_ASN
from repro.os_model.address_space import AddressSpace
from repro.os_model.kernel import MiniDUX, OSMode
from repro.os_model.thread import ThreadState


@pytest.fixture
def osk():
    return MiniDUX(MemoryHierarchy(), n_contexts=2, rng=random.Random(1))


@pytest.fixture
def app_osk():
    return MiniDUX(MemoryHierarchy(), n_contexts=2, rng=random.Random(1),
                   mode=OSMode.APP_ONLY)


def make_process(osk, behavior_gen, pid=0):
    from repro.isa.code import CodeModel, CodeModelConfig, SegmentSpec
    from repro.isa.mix import InstructionMix
    asp = AddressSpace(pid=pid, name=f"proc{pid}")
    asp.region("heap", 0x40_0000, 8, 4)
    code = CodeModel(CodeModelConfig(
        f"proc{pid}", asp.base + 0x1_0000, InstructionMix(),
        segments=(SegmentSpec("main", 40, 8),), seed=pid))
    return osk.create_process(f"proc{pid}", pid, code, asp,
                              lambda thread: behavior_gen)


def drain(thread):
    """Pop every frame, honoring callbacks, and return emitted services."""
    services = []
    while thread.frames:
        fr = thread.frames[-1]
        if not fr.started:
            fr.start()
        instr = fr.next_instruction()
        if instr is None:
            thread.frames.pop()
            if fr.on_complete:
                fr.on_complete()
            continue
        services.append(instr.service)
    return services


def test_create_process_wires_walkers(osk):
    t = make_process(osk, iter(()))
    assert t.user_walker is not None
    assert t.kernel_walker is not None
    assert t.trap_walker is not None
    assert t.pal_walker.mode is Mode.PAL
    assert t in osk.threads
    assert t.state is ThreadState.READY


def test_idle_threads_installed_per_context(osk):
    assert all(osk.scheduler.idle[c] is not None for c in range(2))


def test_compute_directive_pushes_user_frame(osk):
    t = make_process(osk, iter(()))
    osk.dispatch(t, ("compute", 25), now=0)
    services = drain(t)
    assert len(services) == 25
    assert set(services) == {"user"}


def test_compute_with_scan_installs_burst(osk):
    t = make_process(osk, iter(()))
    heap = t.process.regions[0]
    osk.dispatch(t, ("compute", 200, {"scan": (heap.base, 64)}), now=0)
    fr = t.frames[-1]
    fr.start()
    assert t.user_walker.data.burst_active


def test_syscall_dispatch_full_mode(osk):
    t = make_process(osk, iter(()))
    done = []
    osk.dispatch(t, ("syscall", "getpid", {"on_done": lambda: done.append(1)}), 0)
    services = drain(t)
    assert "pal:callsys" in services
    assert "syscall:preamble" in services
    assert "syscall:getpid" in services
    assert "pal:rti" in services
    assert done == [1]
    assert osk.syscall_counts["getpid"] == 1


def test_syscall_app_only_zero_cost(app_osk):
    t = make_process(app_osk, iter(()))
    done = []
    app_osk.dispatch(t, ("syscall", "getpid", {"on_done": lambda: done.append(1)}), 0)
    services = drain(t)
    assert services == []           # no kernel instructions at all
    assert done == [1]              # but semantic effects still fire
    assert app_osk.syscall_counts["getpid"] == 1


def test_blocking_syscall_blocks_and_resumes(osk):
    t = make_process(osk, iter(()))
    osk.dispatch(t, ("syscall", "accept", {
        "block_if": lambda: True, "queue": "q",
    }), 0)
    emitted = 0
    while t.frames and t.runnable:
        fr = t.frames[-1]
        if not fr.started:
            fr.start()
        instr = fr.next_instruction()
        if instr is None:
            t.frames.pop()
            if fr.on_complete:
                fr.on_complete()
        else:
            emitted += 1
    assert t.state is ThreadState.BLOCKED
    assert t.frames                # continuation frames retained
    woken = osk.wakeup_one("q")
    assert woken is t
    assert t.runnable
    rest = drain(t)
    assert "pal:rti" in rest       # syscall completes after the wake


def test_syscall_copy_frames_move_bytes(osk):
    t = make_process(osk, iter(()))
    heap = t.process.regions[0]
    osk.dispatch(t, ("syscall", "read", {
        "nbytes": 256,
        "copy": (osk.reg_filecache.base, heap.base, True, False),
    }), 0)
    services = drain(t)
    assert services.count("syscall:read") > 50  # body + copy loop


def test_kwork_dispatch(osk):
    t = osk.create_kernel_thread("worker", iter(()))
    done = []
    osk.dispatch(t, ("kwork", {
        "segment": "netisr", "service": "netisr", "cost": 30,
        "on_done": lambda: done.append(1),
    }), 0)
    services = drain(t)
    assert set(services) == {"netisr"}
    assert done == [1]


def test_mark_directive_records_phase(osk):
    t = make_process(osk, iter(()))
    osk.dispatch(t, ("mark", "steady"), now=77)
    assert osk.marks[(t.name, "steady")] == 77
    assert osk.thread_phase[t.name] == "steady"


def test_exit_directive(osk):
    t = make_process(osk, iter(()))
    osk.dispatch(t, ("exit",), 0)
    assert t.state is ThreadState.DONE


def test_unknown_directive_rejected(osk):
    t = make_process(osk, iter(()))
    with pytest.raises(ValueError):
        osk.dispatch(t, ("warp", 9), 0)


def test_dtlb_miss_full_mode_defers_and_fills(osk):
    t = make_process(osk, iter(()))
    heap = t.process.regions[0]
    t.process.asn = 3
    from repro.isa.instruction import Instruction
    from repro.isa.types import InstrType
    instr = Instruction(InstrType.LOAD, Mode.USER, "user", 0x1000,
                        addr=heap.base, thread_id=t.tid, asn=3)
    vpn = heap.base >> 13
    deferred = osk.handle_dtlb_miss(t, instr, vpn, 3)
    assert deferred
    assert t.trap_depth == 1
    services = drain(t)
    assert "pal:dtlb" in services
    assert "tlb:refill" in services
    assert "vm:page_alloc" in services   # first touch allocates
    assert t.pending and t.pending[0] is instr
    assert instr.tlb_done
    assert t.trap_depth == 0
    assert osk.hierarchy.dtlb.lookup(vpn, 3)


def test_dtlb_miss_nested_takes_instant_path(osk):
    t = make_process(osk, iter(()))
    t.trap_depth = 1
    from repro.isa.instruction import Instruction
    from repro.isa.types import InstrType
    instr = Instruction(InstrType.LOAD, Mode.KERNEL, "kernel", 0x1000,
                        addr=osk.reg_vfs.base, thread_id=t.tid)
    vpn = osk.reg_vfs.base >> 13
    deferred = osk.handle_dtlb_miss(t, instr, vpn, KERNEL_ASN)
    assert not deferred
    assert osk.hierarchy.dtlb.lookup(vpn, KERNEL_ASN)


def test_itlb_miss_pal_only(osk):
    t = make_process(osk, iter(()))
    from repro.isa.instruction import Instruction
    from repro.isa.types import InstrType
    instr = Instruction(InstrType.INT_ALU, Mode.USER, "user", 0x7000_0000)
    deferred = osk.handle_itlb_miss(t, instr, 0x7000_0000 >> 13, 3)
    assert deferred
    services = drain(t)
    assert set(services) == {"pal:itlb"}
    assert t.pending


def test_interrupt_delivery_pushes_frames(osk):
    effects = []
    osk.post_interrupt("intr:net", 50, lambda: effects.append(1))
    osk.interrupts.dispatch(osk._deliver_interrupt)
    cpu = next(c for c in osk.cpu_threads if c.frames)
    services = drain(cpu)
    assert "pal:intr" in services
    assert "intr:net" in services
    assert effects == [1]


def test_interrupt_app_only_applies_effect_directly(app_osk):
    effects = []
    app_osk.post_interrupt("intr:net", 50, lambda: effects.append(1))
    app_osk.interrupts.dispatch(app_osk._deliver_interrupt)
    assert effects == [1]
    assert not any(c.frames for c in app_osk.cpu_threads)


def test_lock_word_addresses_distinct_lines(osk):
    addrs = {osk.lock_word_address(n) for n in osk.locks.DEFAULT_LOCKS}
    assert len(addrs) == len(osk.locks.DEFAULT_LOCKS)
    lines = {a >> 6 for a in addrs}
    assert len(lines) == len(addrs)


def test_tick_posts_clock_interrupts(osk):
    osk.tick(0)
    before = osk.interrupts.delivered.get("intr:clock", 0)
    osk.tick(osk.timer_interval + 1)
    after = osk.interrupts.delivered.get("intr:clock", 0)
    assert after >= before  # posted (delivery needs free contexts)
    assert osk.interrupts.posted >= 1
