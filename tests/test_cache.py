"""Tests for the classifying, sharing-aware cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import Cache
from repro.memory.classify import MissCause


def make_cache(size=4096, assoc=2, line=64):
    return Cache("T", size, assoc, line)


def test_geometry_validation():
    with pytest.raises(ValueError):
        Cache("bad", 4096 + 64, 2, 64)
    with pytest.raises(ValueError):
        Cache("bad", 4096, 2, 48)  # line size not a power of two
    with pytest.raises(ValueError):
        Cache("bad", 3 * 64 * 2, 2, 64)  # 3 sets


def test_first_access_is_compulsory_miss():
    c = make_cache()
    assert not c.access(0x1000, tid=1, kind=0)
    assert c.stats.causes[(0, int(MissCause.COMPULSORY))] == 1


def test_second_access_hits():
    c = make_cache()
    c.access(0x1000, 1, 0)
    assert c.access(0x1000, 1, 0)
    assert c.stats.miss_rate() == 0.5


def test_same_line_different_word_hits():
    c = make_cache()
    c.access(0x1000, 1, 0)
    assert c.access(0x1038, 1, 0)  # same 64B line


def test_lru_eviction_within_set():
    # Conflict three lines into one 2-way set by brute force: find three
    # addresses that share a set, then verify the oldest is the victim.
    c = make_cache(size=2 * 64 * 2, assoc=2)  # 2 sets
    addrs = []
    base = 0
    while len(addrs) < 3:
        if not c.probe(base):
            line = base
            c.access(line, 1, 0)
            if len(addrs) == 0 or not all(c.probe(a) for a in addrs):
                # eviction happened; restart collection
                pass
        base += 64
        if c.resident_lines >= 2 and len(addrs) < 3:
            addrs = [a for a in range(0, base, 64) if c.probe(a)]
    assert c.resident_lines <= 4


def test_eviction_classified_intrathread():
    c = Cache("T", 2 * 64, 1, 64)  # direct mapped, 2 sets
    # Find two addresses mapping to the same set.
    a = 0x0
    b = None
    c.access(a, 1, 0)
    addr = 64
    while b is None:
        c2 = Cache("T2", 2 * 64, 1, 64)
        c2.access(a, 1, 0)
        c2.access(addr, 1, 0)
        if not c2.probe(a):
            b = addr
        addr += 64
    c.access(b, 1, 0)   # evicts a
    assert not c.access(a, 1, 0)  # re-miss on a
    assert c.stats.causes.get((0, int(MissCause.INTRATHREAD)), 0) == 1


def test_eviction_classified_interthread_and_user_kernel():
    c = Cache("T", 2 * 64, 1, 64)
    a = 0x0
    # find conflicting address
    b = None
    addr = 64
    while b is None:
        probe_cache = Cache("P", 2 * 64, 1, 64)
        probe_cache.access(a, 1, 0)
        probe_cache.access(addr, 1, 0)
        if not probe_cache.probe(a):
            b = addr
        addr += 64
    # Interthread: same kind, different thread evicts.
    c.access(a, 1, 0)
    c.access(b, 2, 0)
    c.access(a, 1, 0)
    assert c.stats.causes.get((0, int(MissCause.INTERTHREAD)), 0) == 1
    # User/kernel: kernel evicts, user re-misses.
    c.access(b, 3, 1)   # kernel brings b back (evicting a)
    c.access(a, 1, 0)
    assert c.stats.causes.get((0, int(MissCause.USER_KERNEL)), 0) >= 1


def test_flush_all_marks_invalidation():
    c = make_cache()
    c.access(0x1000, 1, 0)
    dropped = c.flush_all()
    assert dropped == 1
    assert not c.access(0x1000, 1, 0)
    assert c.stats.causes.get((0, int(MissCause.INVALIDATION)), 0) == 1
    assert c.flushes == 1


def test_flush_address_single_line():
    c = make_cache()
    c.access(0x1000, 1, 0)
    c.access(0x2000, 1, 0)
    assert c.flush_address(0x1000)
    assert not c.probe(0x1000)
    assert c.probe(0x2000)
    assert not c.flush_address(0x9000)


def test_constructive_sharing_detected():
    c = make_cache()
    c.access(0x1000, 1, 1)          # kernel thread 1 fills
    assert c.access(0x1000, 2, 0)   # user thread 2 hits: avoided miss
    assert c.stats.avoided[(0, 1)] == 1
    # Second touch by thread 2 is not counted again.
    c.access(0x1000, 2, 0)
    assert c.stats.avoided[(0, 1)] == 1


def test_sharing_not_counted_for_filler():
    c = make_cache()
    c.access(0x1000, 1, 0)
    c.access(0x1000, 1, 0)
    assert not c.stats.avoided


def test_accesses_counted_by_kind():
    c = make_cache()
    c.access(0x1000, 1, 0)
    c.access(0x2000, 1, 1)
    assert c.stats.accesses == [1, 1]


def test_probe_has_no_side_effects():
    c = make_cache()
    c.probe(0x1000)
    assert c.stats.accesses == [0, 0]
    assert c.resident_lines == 0


@settings(max_examples=30, deadline=None)
@given(addrs=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300),
       assoc=st.sampled_from([1, 2, 4]))
def test_resident_lines_never_exceed_capacity(addrs, assoc):
    c = Cache("H", 16 * 64 * assoc, assoc, 64)
    for i, addr in enumerate(addrs):
        c.access(addr, i % 4, i % 2)
    assert c.resident_lines <= 16 * assoc


@settings(max_examples=30, deadline=None)
@given(addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
def test_miss_causes_sum_to_misses(addrs):
    c = Cache("H", 8 * 64 * 2, 2, 64)
    for i, addr in enumerate(addrs):
        c.access(addr, i % 3, 0)
    assert sum(c.stats.causes.values()) == sum(c.stats.misses)


@settings(max_examples=30, deadline=None)
@given(addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
def test_hits_plus_misses_equals_accesses(addrs):
    c = Cache("H", 8 * 64 * 2, 2, 64)
    hits = 0
    for addr in addrs:
        hits += c.access(addr, 0, 0)
    assert hits + sum(c.stats.misses) == sum(c.stats.accesses)
