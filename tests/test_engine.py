"""Tiered execution engine: plans, fast-forward invariants, sampling
extrapolation, and checkpoint replay (see docs/execution-modes.md).

The determinism side (byte-identical replays, checkpoint restore vs
straight-through) lives in test_determinism.py; this module covers the
engine's structural contracts.
"""

import pytest

from repro.analysis.experiments import build_simulation
from repro.analysis.snapshot import capture, diff, merge_windows
from repro.core import checkpoint
from repro.core.engine import (FF_STRIDE_DEFAULT, Leg, build_plan,
                               extrapolate, run_plan)


def _sim(workload="specint", seed=11):
    return build_simulation(workload, "smt", "full", seed=seed)


# -- build_plan --------------------------------------------------------------


def test_build_plan_full_is_one_detailed_leg():
    assert build_plan("full", 10_000) == [Leg("full", 10_000)]


def test_build_plan_warmup_prepends_fast_leg():
    assert build_plan("full", 10_000, warmup=2_000) == [
        Leg("fast", 2_000), Leg("full", 10_000)]
    assert build_plan("fast", 10_000, warmup=2_000) == [
        Leg("fast", 2_000), Leg("fast", 10_000)]


def test_build_plan_sampled_alternates_and_covers_budget():
    plan = build_plan("sampled", 10_000, warmup=1_000, sample=(3_000, 1_000))
    assert plan[0] == Leg("fast", 1_000)
    body = plan[1:]
    assert [leg.mode for leg in body] == ["fast", "full"] * 2 + ["fast"]
    # The warm-up is extra; the alternation covers exactly the budget.
    assert sum(leg.instructions for leg in body) == 10_000
    # The trailing fast leg is clipped to the remaining budget.
    assert body[-1].instructions == 2_000


def test_build_plan_rejects_bad_inputs():
    with pytest.raises(ValueError):
        build_plan("warp", 1_000)
    with pytest.raises(ValueError):
        build_plan("full", 0)
    with pytest.raises(ValueError):
        build_plan("full", 1_000, warmup=-1)
    with pytest.raises(ValueError):
        build_plan("sampled", 1_000)  # no sample interval
    with pytest.raises(ValueError):
        build_plan("sampled", 1_000, sample=(1_000, 0))


# -- fast-forward invariants -------------------------------------------------


def test_fast_forward_pins_ipc_at_fetch_width():
    # The nominal clock consumes exactly fetch_width slots per cycle; a
    # pull whose weight exceeds its slot becomes width debt consuming
    # later cycles, so retired minus outstanding debt is pinned to
    # cycles * width at any stride (fast-mode cycle counts are
    # stride-stable to within the final cycle's debt).
    for stride in (1, 4, 16):
        sim = _sim()
        sim.run_fast(max_instructions=20_000, stride=stride)
        width = sim.processor.config.fetch_width
        assert (sim.stats.retired - sum(sim._ff_debt)
                == sim.stats.cycles * width)
        assert sim.stats.retired / sim.stats.cycles == pytest.approx(
            width, rel=0.01)


def test_fast_forward_stride_subsamples_but_accounts_fully():
    sim = _sim()
    sim.run_fast(max_instructions=20_000, stride=8)
    tier = sim.tier
    assert tier.fast_instructions >= 20_000
    assert tier.fast_materialized < tier.fast_instructions
    # Every retired instruction is accounted in the probe tree even when
    # not materialized.
    assert sim.stats.retired == tier.fast_instructions


def test_fast_forward_rejects_bad_stride():
    sim = _sim()
    with pytest.raises(ValueError):
        sim.run_fast(max_instructions=1_000, stride=0)


def test_fast_forward_warms_caches_and_predictor():
    sim = _sim()
    sim.run_fast(max_instructions=20_000)
    probes = capture(sim)["probes"]
    assert probes["mem.l1i.accesses.kernel"] > 0
    assert probes["mem.l1d.accesses.kernel"] > 0
    assert sum(sim.processor.branch_unit.cond_predictions) > 0
    # No pipeline ran: nothing was fetched into it or squashed.
    assert sim.stats.fetched == 0
    assert sim.stats.squashed == 0


# -- run_plan ----------------------------------------------------------------


def test_run_plan_records_legs_and_samples():
    sim = _sim()
    plan = build_plan("sampled", 12_000, warmup=4_000, sample=(4_000, 2_000))
    records, samples = run_plan(sim, plan)
    assert len(records) == len(plan)
    assert [r["mode"] for r in records] == [leg.mode for leg in plan]
    assert len(samples) == sum(1 for leg in plan if leg.mode == "full")
    for record in records:
        assert record["retired"] >= record["target"]
    for window in samples:
        assert window["retired"] > 0 and window["cycles"] > 0


def test_run_plan_full_to_fast_transition_flushes_pipeline():
    sim = _sim()
    records, _ = run_plan(sim, [Leg("full", 4_000), Leg("fast", 4_000)])
    assert sim.tier.pipeline_flushes == 1
    # The flushed in-flight instructions re-delivered in the fast leg;
    # nothing was lost: the total retired covers both leg targets.
    assert sim.stats.retired >= 8_000
    assert len(records) == 2


# -- window merging and extrapolation ---------------------------------------


def test_merge_windows_sums_counters_and_keeps_bounds():
    sim = _sim()
    a0 = capture(sim)
    sim.run(max_instructions=3_000)
    a1 = capture(sim)
    sim.run(max_instructions=6_000)
    a2 = capture(sim)
    w1, w2 = diff(a1, a0), diff(a2, a1)
    merged = merge_windows([w1, w2])
    whole = diff(a2, a0)
    assert merged["retired"] == whole["retired"]
    assert merged["cycles"] == whole["cycles"]
    assert merged["probes"]["core.retired"] == whole["probes"]["core.retired"]
    # Histogram bounds are metadata: carried, not summed.
    lat = merged["probes"]["os.syscall_latency_cycles"]
    assert lat["bounds"] == w1["probes"]["os.syscall_latency_cycles"]["bounds"]


def test_extrapolate_scales_counts_not_rates():
    windows = [
        {"retired": 1_000, "cycles": 500,
         "probes": {"core.retired": 1_000, "derived.ipc": 2.0}},
        {"retired": 1_000, "cycles": 500,
         "probes": {"core.retired": 1_000, "derived.ipc": 2.0}},
    ]
    est = extrapolate(windows, total_instructions=10_000)
    assert est["windows"] == 2
    assert est["measured_instructions"] == 2_000
    estimate, band = est["probes"]["core.retired"]
    assert estimate == pytest.approx(10_000)
    assert band == pytest.approx(0.0)
    ipc, _ = est["probes"]["derived.ipc"]
    assert ipc == pytest.approx(2.0)  # rates are never scaled


def test_extrapolate_needs_a_window():
    with pytest.raises(ValueError):
        extrapolate([], total_instructions=1_000)


# -- checkpoints -------------------------------------------------------------


def test_checkpoint_roundtrip_restores_identical_state():
    plan = [Leg("fast", 8_000)]
    saver = _sim()
    run_plan(saver, plan)
    ckpt = checkpoint.take(saver, plan)
    assert ckpt["kind"] == "checkpoint"
    assert ckpt["boundary"] == saver.stats.retired

    restorer = _sim()
    checkpoint.restore(restorer, ckpt)
    assert restorer.stats.retired == saver.stats.retired
    assert restorer.now == saver.now
    assert checkpoint.state_digests(restorer) == ckpt["digests"]


def test_checkpoint_restore_rejects_config_mismatch():
    plan = [Leg("fast", 4_000)]
    saver = _sim()
    run_plan(saver, plan)
    ckpt = checkpoint.take(saver, plan)
    other = build_simulation("specint", "smt", "app", seed=11)
    with pytest.raises(checkpoint.CheckpointError):
        checkpoint.restore(other, ckpt)


def test_checkpoint_restore_rejects_stale_schema_and_drift():
    plan = [Leg("fast", 4_000)]
    saver = _sim()
    run_plan(saver, plan)
    ckpt = checkpoint.take(saver, plan)

    stale = dict(ckpt, checkpoint_schema=checkpoint.CHECKPOINT_SCHEMA + 1)
    with pytest.raises(checkpoint.CheckpointError, match="schema"):
        checkpoint.restore(_sim(), stale)

    drifted = dict(ckpt, digests=dict(ckpt["digests"], kernel="0" * 64))
    with pytest.raises(checkpoint.CheckpointError, match="kernel"):
        checkpoint.restore(_sim(), drifted)


def test_checkpoint_fingerprint_covers_plan_and_stride():
    sim = _sim()
    base = checkpoint.checkpoint_fingerprint(
        sim.params, [Leg("fast", 1_000)], FF_STRIDE_DEFAULT)
    other_plan = checkpoint.checkpoint_fingerprint(
        sim.params, [Leg("fast", 2_000)], FF_STRIDE_DEFAULT)
    other_stride = checkpoint.checkpoint_fingerprint(
        sim.params, [Leg("fast", 1_000)], FF_STRIDE_DEFAULT + 1)
    assert len({base, other_plan, other_stride}) == 3
