"""Tests for the text renderers."""

from repro.analysis.render import change_str, format_bars, format_table, format_timeline, pct


def test_format_table_alignment():
    text = format_table("T", ["a", "bbb"], [["x", 1.234], ["yy", 10.5]])
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "1.23" in text
    assert "10.5" in text


def test_format_table_note():
    text = format_table("T", ["a"], [["x"]], note="hello")
    assert text.endswith("hello")


def test_format_table_number_precision():
    text = format_table("T", ["v"], [[123.456], [0.0], [99.99]])
    assert "123" in text
    assert "0.0" in text


def test_format_bars_scales_to_peak():
    text = format_bars("B", [("big", 50.0), ("small", 5.0)], width=10)
    lines = text.splitlines()
    big = next(ln for ln in lines if ln.startswith("big"))
    small = next(ln for ln in lines if ln.startswith("small"))
    assert big.count("#") == 10
    assert 0 <= small.count("#") <= 2


def test_format_bars_empty():
    assert "(no data)" in format_bars("B", [])


def test_format_timeline_boundary_marker():
    samples = [(100, (1.0, 0.0, 0.0, 0.0)), (200, (0.5, 0.5, 0.0, 0.0))]
    text = format_timeline("TL", samples, ("user", "kernel", "pal", "idle"),
                           boundary=150)
    assert "steady state" in text
    assert "100" in text and "200" in text


def test_pct():
    assert pct(0.25) == 25.0


def test_change_str_formats():
    assert change_str(10, 10.5) == "+5%"
    assert change_str(10, 9) == "-10%"
    assert change_str(1, 5.5) == "5.5x"
    assert change_str(0, 0) == "--"
    assert change_str(0, 3) == "new"
